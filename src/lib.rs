//! Root crate of the TileLink reproduction workspace.
//!
//! This crate only re-exports the member crates so that the workspace-level
//! examples and integration tests can use a single dependency. See the
//! individual crates for the actual implementation:
//!
//! * [`tilelink`] — the paper's contribution (primitives, mapping, compiler, runtime)
//! * [`tilelink_shmem`] — NVSHMEM-like symmetric memory substrate
//! * [`tilelink_sim`] — discrete-event GPU cluster simulator
//! * [`tilelink_compute`] — dense compute kernels and cost models
//! * [`tilelink_collectives`] — NCCL-like collectives
//! * [`tilelink_tune`] — simulator-guided autotuner over the overlap design space
//! * [`tilelink_workloads`] — MLP / MoE / attention workloads and baselines
//! * [`tilelink_serve`] — tuning-as-a-service daemon (sharded warm cache, deduped searches)
//! * [`tilelink_probe`] — span profiler, metrics registry and Chrome-trace export

pub use tilelink;
pub use tilelink_collectives;
pub use tilelink_compute;
pub use tilelink_probe;
pub use tilelink_serve;
pub use tilelink_shmem;
pub use tilelink_sim;
pub use tilelink_tune;
pub use tilelink_workloads;
