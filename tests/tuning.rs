//! Cross-crate autotuner tests: the `tilelink-tune` search driving the real
//! workload oracles on the simulated cluster (the acceptance path of the
//! `tilelink-tune` subsystem).

use std::sync::Arc;

use tilelink::{CommMapping, OverlapConfig, TileShape};
use tilelink_sim::{analytic_cost, CalibratedCostModel, ClusterSpec};
use tilelink_tune::{CostOracle, SearchSpace, Strategy, TuneCache, Tuner};
use tilelink_workloads::autotune::{self, MlpAgGemmOracle, MlpOracle, TuneOptions};
use tilelink_workloads::shapes;

/// A small space that still spans tile sizes, mappings and stages.
fn small_space() -> SearchSpace {
    SearchSpace::new()
        .with_comm_tiles([TileShape::new(128, 128), TileShape::new(256, 128)])
        .with_compute_tiles([TileShape::new(128, 256), TileShape::new(256, 256)])
        .with_mappings([CommMapping::CopyEngine, CommMapping::Hybrid { sms: 20 }])
        .with_stages([2, 3])
}

#[test]
fn beam_tuned_mlp1_is_never_worse_than_the_default_config() {
    // The acceptance criterion for the fig8 MLP shape on an 8-rank H800 node.
    let shape = shapes::mlp_shapes()[0].clone();
    let cluster = ClusterSpec::h800_node(8);
    let oracle = MlpOracle::new(shape.clone(), cluster.clone());
    let default_makespan = oracle.evaluate(&OverlapConfig::default()).unwrap().total_s;

    let opts = TuneOptions {
        strategy: Strategy::Beam {
            width: 2,
            sweeps: 2,
        },
        space: small_space(),
        ..TuneOptions::default()
    };
    let tuned = autotune::tuned_full_mlp(&shape, &cluster, &opts).unwrap();
    assert!(
        tuned.layer.total_s <= default_makespan,
        "tuned {} s > default {} s",
        tuned.layer.total_s,
        default_makespan
    );
    // The winner is a real, valid configuration.
    tuned.config.validate(cluster.gpu.sm_count).unwrap();
}

#[test]
fn repeated_search_is_served_entirely_from_the_persistent_cache() {
    let dir = std::env::temp_dir().join(format!("tilelink-tuning-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mlp-ag.tsv");
    let _ = std::fs::remove_file(&path);

    let shape = shapes::mlp_shapes()[0].clone();
    let cluster = ClusterSpec::h800_node(8);
    let oracle = MlpAgGemmOracle::new(shape, cluster);
    let space = small_space();

    let first = Tuner::new(Strategy::Exhaustive)
        .with_cache(TuneCache::open(&path).unwrap())
        .tune(&oracle, &space)
        .unwrap();
    assert!(first.evaluations > 0);
    assert_eq!(first.cache_hits, 0);

    let second = Tuner::new(Strategy::Exhaustive)
        .with_cache(TuneCache::open(&path).unwrap())
        .tune(&oracle, &space)
        .unwrap();
    assert_eq!(
        second.evaluations, 0,
        "second search must not touch the simulator"
    );
    assert_eq!(second.cache_hits, first.ranked.len());
    assert_eq!(second.best.config, first.best.config);
    assert_eq!(second.best.report, first.best.report);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn search_over_the_real_oracle_is_deterministic_across_thread_counts() {
    let shape = shapes::mlp_shapes()[0].clone();
    let cluster = ClusterSpec::h800_node(8);
    let oracle = MlpAgGemmOracle::new(shape, cluster);
    let space = small_space();

    let serial = Tuner::new(Strategy::Exhaustive)
        .with_threads(1)
        .tune(&oracle, &space)
        .unwrap();
    let parallel = Tuner::new(Strategy::Exhaustive)
        .with_threads(8)
        .tune(&oracle, &space)
        .unwrap();
    assert_eq!(serial.best.config, parallel.best.config);
    let a: Vec<_> = serial
        .ranked
        .iter()
        .map(|c| (&c.config, c.report.total_s))
        .collect();
    let b: Vec<_> = parallel
        .ranked
        .iter()
        .map(|c| (&c.config, c.report.total_s))
        .collect();
    assert_eq!(a, b);
}

#[test]
fn tuning_cache_self_invalidates_across_cost_model_revisions() {
    // A tuning-cache entry written under one cost-model revision must miss
    // (and re-evaluate) under another, and hit again when the revision
    // returns — the acceptance path of the cost-provider refactor.
    let dir = std::env::temp_dir().join(format!("tilelink-tuning-rev-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mlp-ag-rev.tsv");
    let _ = std::fs::remove_file(&path);

    let shape = shapes::mlp_shapes()[0].clone();
    let cluster = ClusterSpec::h800_node(8);
    let analytic = analytic_cost(&cluster);
    let calibrated: tilelink_sim::SharedCost =
        Arc::new(CalibratedCostModel::h800_defaults(cluster.clone()));
    assert_ne!(analytic.revision(), calibrated.revision());
    let space = small_space();

    let run = |cost: &tilelink_sim::SharedCost| {
        let oracle = MlpAgGemmOracle::new(shape.clone(), cluster.clone()).with_cost(cost.clone());
        Tuner::new(Strategy::Exhaustive)
            .with_cache(TuneCache::open(&path).unwrap())
            .tune(&oracle, &space)
            .unwrap()
    };

    let first = run(&analytic);
    assert!(first.evaluations > 0);
    assert_eq!(first.cache_hits, 0);

    // Different revision: every candidate must be re-simulated.
    let other = run(&calibrated);
    assert_eq!(other.cache_hits, 0, "stale analytic entries must not hit");
    assert_eq!(other.evaluations, other.ranked.len());
    // The calibrated link model prices the AllGather strictly higher.
    assert!(other.best.report.comm_only_s > first.best.report.comm_only_s);

    // Returning to the original revision hits the original entries again.
    let back = run(&analytic);
    assert_eq!(
        back.evaluations, 0,
        "revision round-trip must be cache-served"
    );
    assert_eq!(back.cache_hits, first.ranked.len());
    assert_eq!(back.best.config, first.best.config);
    assert_eq!(back.best.report, first.best.report);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn calibrated_tuning_runs_through_tune_options() {
    // The high-level tuned_* path accepts a provider via TuneOptions and
    // reports strictly positive, calibrated timings.
    let shape = shapes::mlp_shapes()[0].clone();
    let cluster = ClusterSpec::h800_node(8);
    let calibrated: tilelink_sim::SharedCost =
        Arc::new(CalibratedCostModel::h800_defaults(cluster.clone()));
    let opts = TuneOptions {
        strategy: Strategy::Beam {
            width: 2,
            sweeps: 1,
        },
        space: small_space(),
        ..TuneOptions::default()
    }
    .with_cost(calibrated.clone());
    let tuned = autotune::tuned_full_mlp(&shape, &cluster, &opts).unwrap();
    assert!(tuned.layer.total_s > 0.0);

    // Same search under the analytic default: the calibrated run must be
    // priced higher on communication (achieved bandwidth < 100% of peak).
    let analytic_opts = TuneOptions {
        strategy: Strategy::Beam {
            width: 2,
            sweeps: 1,
        },
        space: small_space(),
        ..TuneOptions::default()
    };
    let analytic_tuned = autotune::tuned_full_mlp(&shape, &cluster, &analytic_opts).unwrap();
    assert!(tuned.layer.comm_only_s > analytic_tuned.layer.comm_only_s);
}

#[test]
fn invalid_and_unsupported_candidates_are_pruned_not_evaluated() {
    let shape = shapes::mlp_shapes()[0].clone();
    let cluster = ClusterSpec::h800_node(8);
    let oracle = MlpOracle::new(shape, cluster);

    // 200 comm SMs exceeds the device; 384-row compute tiles break the ring
    // ReduceScatter segmentation. Both must be pruned before evaluation.
    let space = SearchSpace::new()
        .with_compute_tiles([TileShape::new(128, 256), TileShape::new(384, 256)])
        .with_mappings([CommMapping::CopyEngine, CommMapping::Sm { sms: 200 }]);
    let candidates = space.candidates(&oracle);
    assert_eq!(candidates.len(), 1);
    assert_eq!(candidates[0].compute_tile, TileShape::new(128, 256));
    assert_eq!(candidates[0].comm_mapping, CommMapping::CopyEngine);

    let report = Tuner::new(Strategy::Exhaustive)
        .tune(&oracle, &space)
        .unwrap();
    assert_eq!(report.ranked.len(), 1);
    assert_eq!(report.evaluations, 1);
}

#[test]
fn tuned_e2e_calibrated_cache_never_serves_the_analytic_search() {
    // The tuned Figure 11 path against a persistent cache: a calibrated-model
    // search fills the cache, its rerun is free, and an analytic search over
    // the same file re-simulates (revision-keyed entries never alias).
    let dir = std::env::temp_dir().join(format!("tilelink-e2e-rev-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.tsv");
    let _ = std::fs::remove_file(&path);

    let (cluster, tokens) = tilelink_workloads::e2e::single_node_setup();
    let calibrated: tilelink_sim::SharedCost =
        Arc::new(CalibratedCostModel::h800_defaults(cluster.clone()));
    let model = shapes::model_configs()
        .into_iter()
        .find(|m| m.name == "LLaMA2-7B")
        .unwrap();
    let opts = TuneOptions {
        strategy: Strategy::Beam {
            width: 2,
            sweeps: 1,
        },
        space: small_space(),
        cache_path: Some(path.clone()),
        ..TuneOptions::default()
    };

    let cold = tilelink_workloads::e2e::tuned_model_timing_with(&model, tokens, &calibrated, &opts)
        .unwrap();
    assert!(cold.evaluations > 0);
    assert!(cold.mlp_config.is_some());
    assert_eq!(cold.moe_config, None);

    let warm = tilelink_workloads::e2e::tuned_model_timing_with(&model, tokens, &calibrated, &opts)
        .unwrap();
    assert_eq!(warm.evaluations, 0, "warm calibrated rerun must be free");
    assert_eq!(warm.timing, cold.timing);

    let analytic = analytic_cost(&cluster);
    let cross =
        tilelink_workloads::e2e::tuned_model_timing_with(&model, tokens, &analytic, &opts).unwrap();
    assert!(
        cross.evaluations > 0,
        "analytic search must not be served calibrated timings"
    );
    let _ = std::fs::remove_file(&path);
}
