//! Property-based tests on the core invariants of the reproduction.
//!
//! The container has no third-party property-testing crate available, so the
//! properties are exercised with a small deterministic pseudo-random sampler:
//! every case is reproducible from the printed seed.

use tilelink::{StaticMapping, TileMapping};
use tilelink_collectives::Comm;
use tilelink_compute::attention::{attention_reference, flash_attention};
use tilelink_compute::gemm::{matmul, matmul_tiled};
use tilelink_compute::Tensor;
use tilelink_shmem::ProcessGroup;

/// A splitmix64-style generator: deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `lo..hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// The static tile-centric mapping partitions the global rows exactly once,
/// maps every tile to a valid rank/channel, and its per-channel thresholds
/// sum to the tile count.
#[test]
fn static_mapping_is_a_partition() {
    let mut rng = Rng::new(0xA11CE);
    for case in 0..24 {
        let m = rng.range(1, 2048);
        let tile = rng.range(1, 256);
        let ranks = rng.range(1, 9);
        let channels = rng.range(1, 5);
        let ctx = format!("case {case}: m={m} tile={tile} ranks={ranks} channels={channels}");
        let map = StaticMapping::new(m, tile, ranks, channels);
        let mut covered = vec![false; m];
        for t in 0..map.num_tiles() {
            let rows = map.rows_of(t).unwrap();
            assert!(!rows.is_empty(), "{ctx}");
            for r in rows {
                assert!(!covered[r], "row {r} covered twice ({ctx})");
                covered[r] = true;
            }
            assert!(map.rank_of(t).unwrap() < ranks, "{ctx}");
            assert!(map.channel_of(t).unwrap() < map.num_channels(), "{ctx}");
        }
        assert!(covered.into_iter().all(|c| c), "{ctx}");
        let total: u64 = (0..map.num_channels())
            .map(|c| map.channel_threshold(c))
            .sum();
        assert_eq!(total, map.num_tiles() as u64, "{ctx}");
    }
}

/// Consumers waiting on `channels_for_rows` always cover every producer tile
/// overlapping their row range, whatever the (decoupled) consumer tile size.
#[test]
fn consumer_channels_cover_producer_tiles() {
    let mut rng = Rng::new(0xB0B);
    for case in 0..24 {
        let m = rng.range(64, 1024);
        let prod_tile = rng.range(1, 128);
        let cons_tile = rng.range(1, 256);
        let ranks = rng.range(1, 9);
        let ctx = format!("case {case}: m={m} prod={prod_tile} cons={cons_tile} ranks={ranks}");
        let map = StaticMapping::new(m, prod_tile, ranks, 2);
        let mut start = 0usize;
        while start < m {
            let rows = start..(start + cons_tile).min(m);
            let channels = map.channels_for_rows(rows.clone());
            for t in 0..map.num_tiles() {
                let trows = map.rows_of(t).unwrap();
                if trows.start < rows.end && rows.start < trows.end {
                    assert!(
                        channels.contains(&map.channel_of(t).unwrap()),
                        "tile {t} not covered for rows {rows:?} ({ctx})"
                    );
                }
            }
            start += cons_tile;
        }
    }
}

/// Tiled GEMM equals the reference GEMM for arbitrary shapes and tile sizes.
#[test]
fn tiled_gemm_matches_reference() {
    let mut rng = Rng::new(0xC0FFEE);
    for case in 0..24 {
        let m = rng.range(1, 24);
        let k = rng.range(1, 16);
        let n = rng.range(1, 24);
        let tm = rng.range(1, 16);
        let tn = rng.range(1, 16);
        let seed = rng.range(0, 1000) as u64;
        let a = Tensor::random(&[m, k], seed);
        let b = Tensor::random(&[k, n], seed + 1);
        let reference = matmul(&a, &b);
        let tiled = matmul_tiled(&a, &b, tm, tn);
        assert!(
            tiled.allclose(&reference, 1e-4),
            "case {case}: m={m} k={k} n={n} tm={tm} tn={tn} seed={seed}"
        );
    }
}

/// Flash attention equals reference attention for any KV block size — the
/// property that makes the overlapped attention kernel correct regardless
/// of the order or granularity in which remote KV tiles arrive.
#[test]
fn flash_attention_matches_reference() {
    let mut rng = Rng::new(0xF1A54);
    for case in 0..24 {
        let sq = rng.range(1, 6);
        let skv = rng.range(1, 24);
        let d = rng.range(1, 8);
        let block = rng.range(1, 16);
        let seed = rng.range(0, 1000) as u64;
        let q = Tensor::random(&[sq, d], seed);
        let k = Tensor::random(&[skv, d], seed + 1);
        let v = Tensor::random(&[skv, d], seed + 2);
        let reference = attention_reference(&q, &k, &v);
        let flash = flash_attention(&q, &k, &v, block);
        assert!(
            flash.allclose(&reference, 1e-3),
            "case {case}: sq={sq} skv={skv} d={d} block={block} seed={seed}"
        );
    }
}

/// AllGather followed by element-wise summation equals AllReduce, and
/// ReduceScatter shards concatenate to the AllReduce result — the standard
/// collective algebra the TP layers rely on.
#[test]
fn collective_algebra_holds() {
    let mut rng = Rng::new(0xD15C0);
    for case in 0..8 {
        let world = rng.range(2, 5);
        let len_per = rng.range(1, 5);
        let seed = rng.range(0, 100) as u64;
        let len = world * len_per;
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|r| Tensor::random(&[len, 1], seed + r as u64).into_vec())
            .collect();
        let inputs2 = inputs.clone();
        let results = ProcessGroup::launch(world, move |ctx| {
            let rank = ctx.rank();
            let mut comm = Comm::new(ctx);
            let ar = comm.all_reduce(&inputs2[rank]);
            let rs = comm.reduce_scatter(&inputs2[rank]);
            let rs_gathered = comm.all_gather(&rs);
            (ar, rs_gathered)
        });
        for (ar, rs_gathered) in results {
            for (a, b) in ar.iter().zip(&rs_gathered) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "case {case}: world={world} len_per={len_per} seed={seed}"
                );
            }
        }
    }
}
