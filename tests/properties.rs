//! Property-based tests on the core invariants of the reproduction.

use proptest::prelude::*;
use tilelink::{StaticMapping, TileMapping};
use tilelink_collectives::Comm;
use tilelink_compute::attention::{attention_reference, flash_attention};
use tilelink_compute::gemm::{matmul, matmul_tiled};
use tilelink_compute::Tensor;
use tilelink_shmem::ProcessGroup;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The static tile-centric mapping partitions the global rows exactly once,
    /// maps every tile to a valid rank/channel, and its per-channel thresholds
    /// sum to the tile count.
    #[test]
    fn static_mapping_is_a_partition(
        m in 1usize..2048,
        tile in 1usize..256,
        ranks in 1usize..9,
        channels in 1usize..5,
    ) {
        let map = StaticMapping::new(m, tile, ranks, channels);
        let mut covered = vec![false; m];
        for t in 0..map.num_tiles() {
            let rows = map.rows_of(t).unwrap();
            prop_assert!(!rows.is_empty());
            for r in rows {
                prop_assert!(!covered[r], "row {r} covered twice");
                covered[r] = true;
            }
            prop_assert!(map.rank_of(t).unwrap() < ranks);
            prop_assert!(map.channel_of(t).unwrap() < map.num_channels());
        }
        prop_assert!(covered.into_iter().all(|c| c));
        let total: u64 = (0..map.num_channels()).map(|c| map.channel_threshold(c)).sum();
        prop_assert_eq!(total, map.num_tiles() as u64);
    }

    /// Consumers waiting on `channels_for_rows` always cover every producer tile
    /// overlapping their row range, whatever the (decoupled) consumer tile size.
    #[test]
    fn consumer_channels_cover_producer_tiles(
        m in 64usize..1024,
        prod_tile in 1usize..128,
        cons_tile in 1usize..256,
        ranks in 1usize..9,
    ) {
        let map = StaticMapping::new(m, prod_tile, ranks, 2);
        let mut start = 0usize;
        while start < m {
            let rows = start..(start + cons_tile).min(m);
            let channels = map.channels_for_rows(rows.clone());
            for t in 0..map.num_tiles() {
                let trows = map.rows_of(t).unwrap();
                if trows.start < rows.end && rows.start < trows.end {
                    prop_assert!(channels.contains(&map.channel_of(t).unwrap()));
                }
            }
            start += cons_tile;
        }
    }

    /// Tiled GEMM equals the reference GEMM for arbitrary shapes and tile sizes.
    #[test]
    fn tiled_gemm_matches_reference(
        m in 1usize..24,
        k in 1usize..16,
        n in 1usize..24,
        tm in 1usize..16,
        tn in 1usize..16,
        seed in 0u64..1000,
    ) {
        let a = Tensor::random(&[m, k], seed);
        let b = Tensor::random(&[k, n], seed + 1);
        let reference = matmul(&a, &b);
        let tiled = matmul_tiled(&a, &b, tm, tn);
        prop_assert!(tiled.allclose(&reference, 1e-4));
    }

    /// Flash attention equals reference attention for any KV block size — the
    /// property that makes the overlapped attention kernel correct regardless
    /// of the order or granularity in which remote KV tiles arrive.
    #[test]
    fn flash_attention_matches_reference(
        sq in 1usize..6,
        skv in 1usize..24,
        d in 1usize..8,
        block in 1usize..16,
        seed in 0u64..1000,
    ) {
        let q = Tensor::random(&[sq, d], seed);
        let k = Tensor::random(&[skv, d], seed + 1);
        let v = Tensor::random(&[skv, d], seed + 2);
        let reference = attention_reference(&q, &k, &v);
        let flash = flash_attention(&q, &k, &v, block);
        prop_assert!(flash.allclose(&reference, 1e-3));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// AllGather followed by element-wise summation equals AllReduce, and
    /// ReduceScatter shards concatenate to the AllReduce result — the standard
    /// collective algebra the TP layers rely on.
    #[test]
    fn collective_algebra_holds(world in 2usize..5, len_per in 1usize..5, seed in 0u64..100) {
        let len = world * len_per;
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|r| {
                Tensor::random(&[len, 1], seed + r as u64).into_vec()
            })
            .collect();
        let inputs2 = inputs.clone();
        let results = ProcessGroup::launch(world, move |ctx| {
            let rank = ctx.rank();
            let mut comm = Comm::new(ctx);
            let ar = comm.all_reduce(&inputs2[rank]);
            let rs = comm.reduce_scatter(&inputs2[rank]);
            let rs_gathered = comm.all_gather(&rs);
            (ar, rs_gathered)
        });
        for (ar, rs_gathered) in results {
            for (a, b) in ar.iter().zip(&rs_gathered) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }
}
