//! Property-based tests on the core invariants of the reproduction.
//!
//! The container has no third-party property-testing crate available, so the
//! properties are exercised with a small deterministic pseudo-random sampler:
//! every case is reproducible from the printed seed.

use tilelink::{
    CommMapping, OverlapConfig, OverlapReport, StaticMapping, TileMapping, TileOrder, TileShape,
    TransferMode,
};
use tilelink_collectives::Comm;
use tilelink_compute::attention::{attention_reference, flash_attention};
use tilelink_compute::gemm::{matmul, matmul_tiled};
use tilelink_compute::Tensor;
use tilelink_shmem::ProcessGroup;
use tilelink_sim::ClusterSpec;
use tilelink_tune::{FnOracle, SearchSpace, Strategy, Tuner, RING_REQUIRES_PUSH};

/// A splitmix64-style generator: deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `lo..hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// The static tile-centric mapping partitions the global rows exactly once,
/// maps every tile to a valid rank/channel, and its per-channel thresholds
/// sum to the tile count.
#[test]
fn static_mapping_is_a_partition() {
    let mut rng = Rng::new(0xA11CE);
    for case in 0..24 {
        let m = rng.range(1, 2048);
        let tile = rng.range(1, 256);
        let ranks = rng.range(1, 9);
        let channels = rng.range(1, 5);
        let ctx = format!("case {case}: m={m} tile={tile} ranks={ranks} channels={channels}");
        let map = StaticMapping::new(m, tile, ranks, channels);
        let mut covered = vec![false; m];
        for t in 0..map.num_tiles() {
            let rows = map.rows_of(t).unwrap();
            assert!(!rows.is_empty(), "{ctx}");
            for r in rows {
                assert!(!covered[r], "row {r} covered twice ({ctx})");
                covered[r] = true;
            }
            assert!(map.rank_of(t).unwrap() < ranks, "{ctx}");
            assert!(map.channel_of(t).unwrap() < map.num_channels(), "{ctx}");
        }
        assert!(covered.into_iter().all(|c| c), "{ctx}");
        let total: u64 = (0..map.num_channels())
            .map(|c| map.channel_threshold(c))
            .sum();
        assert_eq!(total, map.num_tiles() as u64, "{ctx}");
    }
}

/// Consumers waiting on `channels_for_rows` always cover every producer tile
/// overlapping their row range, whatever the (decoupled) consumer tile size.
#[test]
fn consumer_channels_cover_producer_tiles() {
    let mut rng = Rng::new(0xB0B);
    for case in 0..24 {
        let m = rng.range(64, 1024);
        let prod_tile = rng.range(1, 128);
        let cons_tile = rng.range(1, 256);
        let ranks = rng.range(1, 9);
        let ctx = format!("case {case}: m={m} prod={prod_tile} cons={cons_tile} ranks={ranks}");
        let map = StaticMapping::new(m, prod_tile, ranks, 2);
        let mut start = 0usize;
        while start < m {
            let rows = start..(start + cons_tile).min(m);
            let channels = map.channels_for_rows(rows.clone());
            for t in 0..map.num_tiles() {
                let trows = map.rows_of(t).unwrap();
                if trows.start < rows.end && rows.start < trows.end {
                    assert!(
                        channels.contains(&map.channel_of(t).unwrap()),
                        "tile {t} not covered for rows {rows:?} ({ctx})"
                    );
                }
            }
            start += cons_tile;
        }
    }
}

/// Tiled GEMM equals the reference GEMM for arbitrary shapes and tile sizes.
#[test]
fn tiled_gemm_matches_reference() {
    let mut rng = Rng::new(0xC0FFEE);
    for case in 0..24 {
        let m = rng.range(1, 24);
        let k = rng.range(1, 16);
        let n = rng.range(1, 24);
        let tm = rng.range(1, 16);
        let tn = rng.range(1, 16);
        let seed = rng.range(0, 1000) as u64;
        let a = Tensor::random(&[m, k], seed);
        let b = Tensor::random(&[k, n], seed + 1);
        let reference = matmul(&a, &b);
        let tiled = matmul_tiled(&a, &b, tm, tn);
        assert!(
            tiled.allclose(&reference, 1e-4),
            "case {case}: m={m} k={k} n={n} tm={tm} tn={tn} seed={seed}"
        );
    }
}

/// Flash attention equals reference attention for any KV block size — the
/// property that makes the overlapped attention kernel correct regardless
/// of the order or granularity in which remote KV tiles arrive.
#[test]
fn flash_attention_matches_reference() {
    let mut rng = Rng::new(0xF1A54);
    for case in 0..24 {
        let sq = rng.range(1, 6);
        let skv = rng.range(1, 24);
        let d = rng.range(1, 8);
        let block = rng.range(1, 16);
        let seed = rng.range(0, 1000) as u64;
        let q = Tensor::random(&[sq, d], seed);
        let k = Tensor::random(&[skv, d], seed + 1);
        let v = Tensor::random(&[skv, d], seed + 2);
        let reference = attention_reference(&q, &k, &v);
        let flash = flash_attention(&q, &k, &v, block);
        assert!(
            flash.allclose(&reference, 1e-3),
            "case {case}: sq={sq} skv={skv} d={d} block={block} seed={seed}"
        );
    }
}

/// Beam search over any constrained space is consistent with exhaustive
/// search: its winner is never *better* than the exhaustive optimum (it
/// evaluates a subset of the same candidates), and neither strategy ever
/// lets a constraint-violating or invalid configuration reach the oracle.
#[test]
fn beam_is_never_better_than_exhaustive_and_both_respect_constraints() {
    /// A deterministic synthetic makespan, non-separable across axes so the
    /// beam's coordinate descent can genuinely get stuck short of the optimum.
    fn price(cfg: &OverlapConfig) -> f64 {
        let tile = cfg.compute_tile.numel() as f64;
        let comm = cfg.comm_tile.numel() as f64;
        let order = match cfg.order {
            TileOrder::Ring => 0.85,
            TileOrder::AllToAll => 1.0,
        };
        let mode = match cfg.mode {
            TransferMode::Push => 0.95,
            TransferMode::Pull => 1.0,
        };
        let sms = cfg.comm_mapping.comm_sms() as f64;
        (1e9 / tile + 3e4 / comm.sqrt()) * order * mode
            + sms * (cfg.num_stages as f64) * 1.7e2
            + cfg.channels_per_rank as f64 * 31.0
    }

    let comm_tiles = [
        TileShape::new(64, 64),
        TileShape::new(128, 128),
        TileShape::new(256, 128),
    ];
    let compute_tiles = [
        TileShape::new(64, 128),
        TileShape::new(128, 128),
        TileShape::new(128, 256),
    ];
    let mappings = [
        CommMapping::CopyEngine,
        CommMapping::Sm { sms: 8 },
        CommMapping::Sm { sms: 40 },
        CommMapping::Hybrid { sms: 20 },
    ];
    let cluster = ClusterSpec::h800_node(8);
    let sm_count = cluster.gpu.sm_count;

    let mut rng = Rng::new(0xBEA2);
    for case in 0..10 {
        // A random small sub-space; always both orders and modes so the
        // ring+pull constraint has pairs to prune. Every axis keeps the
        // default config's value in its candidate list, because the beam
        // always seeds from the default — a space excluding the seed would
        // let the beam (legitimately) explore outside the enumerated product
        // and beat the exhaustive optimum.
        let default = OverlapConfig::default();
        let pick = |rng: &mut Rng, n: usize| {
            let lo = rng.range(0, n);
            let hi = rng.range(lo + 1, n + 1);
            lo..hi
        };
        fn with_default<T: PartialEq>(mut subset: Vec<T>, default: T) -> Vec<T> {
            if !subset.contains(&default) {
                subset.push(default);
            }
            subset
        }
        let space = SearchSpace::new()
            .with_comm_tiles(with_default(
                comm_tiles[pick(&mut rng, comm_tiles.len())].to_vec(),
                default.comm_tile,
            ))
            .with_compute_tiles(with_default(
                compute_tiles[pick(&mut rng, compute_tiles.len())].to_vec(),
                default.compute_tile,
            ))
            .with_orders([TileOrder::AllToAll, TileOrder::Ring])
            .with_modes([TransferMode::Pull, TransferMode::Push])
            .with_mappings(with_default(
                mappings[pick(&mut rng, mappings.len())].to_vec(),
                default.comm_mapping,
            ))
            .with_stages(with_default(
                (2..=rng.range(2, 5)).collect::<Vec<_>>(),
                default.num_stages,
            ))
            .with_constraint(RING_REQUIRES_PUSH);
        let width = rng.range(1, 4);
        let sweeps = rng.range(1, 4);
        let ctx = format!("case {case}: width={width} sweeps={sweeps}");

        let oracle = FnOracle::new("prop", cluster.clone(), |cfg| {
            let t = price(cfg);
            Ok(OverlapReport::new(t, t / 3.0, 2.0 * t / 3.0))
        });
        let exhaustive = Tuner::new(Strategy::Exhaustive)
            .tune(&oracle, &space)
            .unwrap();
        let beam = Tuner::new(Strategy::Beam { width, sweeps })
            .tune(&oracle, &space)
            .unwrap();

        // Beam evaluates a subset of the exhaustive candidates, so it can tie
        // the optimum but never beat it.
        assert!(
            beam.best.report.total_s >= exhaustive.best.report.total_s,
            "{ctx}: beam {} < exhaustive {}",
            beam.best.report.total_s,
            exhaustive.best.report.total_s
        );
        // Neither search may evaluate a constraint-violating or invalid
        // config — pruning happens before the oracle, not after.
        for (which, report) in [("exhaustive", &exhaustive), ("beam", &beam)] {
            assert!(!report.ranked.is_empty(), "{ctx} {which}");
            for c in &report.ranked {
                assert!(
                    c.config.order != TileOrder::Ring || c.config.mode == TransferMode::Push,
                    "{ctx}: {which} evaluated ring+pull {}",
                    c.config.cache_key()
                );
                c.config
                    .validate(sm_count)
                    .unwrap_or_else(|e| panic!("{ctx}: {which} evaluated invalid config: {e}"));
            }
        }
    }
}

/// AllGather followed by element-wise summation equals AllReduce, and
/// ReduceScatter shards concatenate to the AllReduce result — the standard
/// collective algebra the TP layers rely on.
#[test]
fn collective_algebra_holds() {
    let mut rng = Rng::new(0xD15C0);
    for case in 0..8 {
        let world = rng.range(2, 5);
        let len_per = rng.range(1, 5);
        let seed = rng.range(0, 100) as u64;
        let len = world * len_per;
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|r| Tensor::random(&[len, 1], seed + r as u64).into_vec())
            .collect();
        let inputs2 = inputs.clone();
        let results = ProcessGroup::launch(world, move |ctx| {
            let rank = ctx.rank();
            let mut comm = Comm::new(ctx);
            let ar = comm.all_reduce(&inputs2[rank]);
            let rs = comm.reduce_scatter(&inputs2[rank]);
            let rs_gathered = comm.all_gather(&rs);
            (ar, rs_gathered)
        });
        for (ar, rs_gathered) in results {
            for (a, b) in ar.iter().zip(&rs_gathered) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "case {case}: world={world} len_per={len_per} seed={seed}"
                );
            }
        }
    }
}
