//! Cross-crate integration tests: overlapped kernels against collective +
//! compute references, and compiled kernels against the simulator.

use tilelink_collectives::Comm;
use tilelink_compute::attention::attention_reference;
use tilelink_compute::gemm::matmul;
use tilelink_compute::Tensor;
use tilelink_shmem::ProcessGroup;
use tilelink_sim::ClusterSpec;
use tilelink_workloads::{attention, baselines, mlp, moe, shapes};

#[test]
fn overlapped_ag_gemm_equals_collective_then_gemm() {
    // The fused kernel must produce exactly what "NCCL AllGather then cuBLAS
    // GEMM" produces.
    let world = 4;
    let (m, k, n_local) = (32, 8, 6);
    let tokens = Tensor::random(&[m, k], 1);
    let weights: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[k, n_local], 7 + r as u64))
        .collect();

    let overlapped = mlp::ag_gemm_functional(world, &tokens, &weights, 4, 8);

    let tokens2 = tokens.clone();
    let weights2 = weights.clone();
    let reference = ProcessGroup::launch(world, move |ctx| {
        let rank = ctx.rank();
        let mut comm = Comm::new(ctx);
        let shard = tokens2.slice_rows(rank * m / world..(rank + 1) * m / world);
        let gathered = comm.all_gather(shard.data());
        let gathered = Tensor::from_vec(gathered, &[m, k]);
        matmul(&gathered, &weights2[rank])
    });

    for (o, r) in overlapped.iter().zip(&reference) {
        assert!(o.allclose(r, 1e-4));
    }
}

#[test]
fn overlapped_gemm_rs_equals_gemm_then_reduce_scatter() {
    let world = 4;
    let (m, k_local, n) = (16, 4, 6);
    let acts: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[m, k_local], 11 + r as u64))
        .collect();
    let weights: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[k_local, n], 17 + r as u64))
        .collect();

    let overlapped = mlp::gemm_rs_functional(world, &acts, &weights, 2);

    let acts2 = acts.clone();
    let weights2 = weights.clone();
    let reference = ProcessGroup::launch(world, move |ctx| {
        let mut comm = Comm::new(ctx);
        let partial = matmul(&acts2[comm.rank()], &weights2[comm.rank()]);
        Tensor::from_vec(comm.reduce_scatter(partial.data()), &[m / world, n])
    });

    for (o, r) in overlapped.iter().zip(&reference) {
        assert!(o.allclose(r, 1e-3));
    }
}

#[test]
fn full_functional_mlp_layer_matches_single_device_math() {
    // AG+GEMM -> SiLU-mul -> GEMM+RS pieced together from the functional
    // overlapped kernels equals the plain single-device computation.
    let world = 2;
    let (m, h, i) = (16, 6, 8);
    let tokens = Tensor::random(&[m, h], 3);
    // gate and up projections, column-sharded
    let w_gate: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[h, i / world], 31 + r as u64))
        .collect();
    let w_up: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[h, i / world], 41 + r as u64))
        .collect();
    // second projection, row-sharded
    let w_down: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[i / world, h], 51 + r as u64))
        .collect();

    let gate = mlp::ag_gemm_functional(world, &tokens, &w_gate, 4, 4);
    let up = mlp::ag_gemm_functional(world, &tokens, &w_up, 4, 4);
    let hidden: Vec<Tensor> = (0..world)
        .map(|r| tilelink_compute::activation::silu_mul(&gate[r], &up[r]))
        .collect();
    let down = mlp::gemm_rs_functional(world, &hidden, &w_down, 4);

    // single-device reference
    let w_gate_full =
        Tensor::concat_rows(&w_gate.iter().map(|w| w.transpose()).collect::<Vec<_>>()).transpose();
    let w_up_full =
        Tensor::concat_rows(&w_up.iter().map(|w| w.transpose()).collect::<Vec<_>>()).transpose();
    let w_down_full = Tensor::concat_rows(&w_down);
    let reference = matmul(
        &tilelink_compute::activation::silu_mul(
            &matmul(&tokens, &w_gate_full),
            &matmul(&tokens, &w_up_full),
        ),
        &w_down_full,
    );
    let stitched = Tensor::concat_rows(&down);
    assert!(
        stitched.allclose(&reference, 1e-3),
        "diff {}",
        stitched.max_abs_diff(&reference)
    );
}

#[test]
fn overlapped_moe_equals_dispatch_reference() {
    let world = 2;
    let tokens = Tensor::random(&[12, 6], 5);
    let logits = Tensor::random(&[12, 4], 6);
    let weights: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[4, 6, 5], 70 + r as u64))
        .collect();
    let results = moe::ag_moe_functional(world, &tokens, &logits, &weights, 2, 2, 4);

    let routing = tilelink_compute::topk::topk_routing(&logits, 2);
    let dispatch = tilelink_compute::Dispatch::new(&routing);
    for (rank, res) in results.iter().enumerate() {
        let expected = tilelink_compute::group_gemm::group_gemm(
            &dispatch.gather(&tokens),
            &dispatch.expert_offsets,
            &weights[rank],
        );
        assert!(res.expert_out.allclose(&expected, 1e-3));
    }
}

#[test]
fn overlapped_attention_equals_reference_attention() {
    let world = 2;
    let (s_per_rank, d) = (6, 4);
    let q: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[s_per_rank, d], r as u64))
        .collect();
    let k: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[s_per_rank, d], 10 + r as u64))
        .collect();
    let v: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[s_per_rank, d], 20 + r as u64))
        .collect();
    let out = attention::sp_attention_functional(world, &q, &k, &v, 3);
    let k_full = Tensor::concat_rows(&k);
    let v_full = Tensor::concat_rows(&v);
    for (rank, o) in out.iter().enumerate() {
        assert!(o.allclose(&attention_reference(&q[rank], &k_full, &v_full), 1e-3));
    }
}

#[test]
fn paper_headline_speedups_hold_on_the_simulated_cluster() {
    // The paper claims 1.17x–20.76x over non-overlapping baselines. Verify the
    // simulated reproduction stays within (a generous reading of) that band for
    // representative workloads.
    let cluster = ClusterSpec::h800_node(8);

    let mlp_shape = &shapes::mlp_shapes()[0];
    let mlp_speedup = mlp::timed_full_mlp(mlp_shape, &cluster)
        .unwrap()
        .speedup_over(&baselines::non_overlap_full_mlp(mlp_shape, &cluster));
    assert!(
        mlp_speedup > 1.1 && mlp_speedup < 3.0,
        "MLP speedup {mlp_speedup:.2}"
    );

    let moe_shape = &shapes::moe_shapes()[2];
    let moe_speedup = moe::timed_full_moe(moe_shape, &cluster)
        .unwrap()
        .speedup_over(&baselines::cublas_nccl_full_moe(moe_shape, &cluster));
    assert!(
        moe_speedup > 2.0 && moe_speedup < 25.0,
        "MoE speedup {moe_speedup:.2}"
    );

    let attn_shape = &shapes::attn_shapes()[0];
    let attn =
        attention::timed_sp_attention(attn_shape, 65_536, &cluster, &attention::attention_config())
            .unwrap();
    let attn_speedup = attn.speedup_over(&baselines::torch_attention(attn_shape, 65_536, &cluster));
    assert!(
        attn_speedup > 2.0 && attn_speedup < 10.0,
        "attention speedup {attn_speedup:.2}"
    );
}

#[test]
fn multi_node_cluster_is_slower_but_still_overlaps() {
    let shape = &shapes::mlp_shapes()[0];
    let one = ClusterSpec::h800_node(8);
    let two = ClusterSpec::h800_multi_node(2);
    let r1 = mlp::timed_ag_gemm(shape, &one, &mlp::ag_gemm_config()).unwrap();
    let r2 = mlp::timed_ag_gemm(shape, &two, &mlp::ag_gemm_config()).unwrap();
    // More ranks, slower inter-node links: the collective takes longer.
    assert!(r2.comm_only_s > r1.comm_only_s);
    assert!(r2.total_s < r2.comm_only_s + r2.comp_only_s);
}
