//! Quickstart: the tile-centric primitives in ~40 lines.
//!
//! Two ranks overlap an AllGather with a consumer that processes tiles as soon
//! as they arrive, using `producer_tile_notify` / `consumer_tile_wait`.
//!
//! Run with `cargo run --example quickstart`.

use tilelink::exec::run_comm_compute;
use tilelink::primitives::{NotifyScope, PushTarget};
use tilelink::{BlockChannel, DeviceHandle, StaticMapping, TileMapping};
use tilelink_shmem::ProcessGroup;

fn main() {
    const WORLD: usize = 2;
    const ROWS: usize = 8;
    const COLS: usize = 4;
    // 4 producer tiles of 2 rows each, sharded over 2 ranks, 2 channels per rank.
    let mapping = StaticMapping::new(ROWS, 2, WORLD, 2);

    let sums = ProcessGroup::launch(WORLD, |ctx| {
        let rank = ctx.rank();
        // symmetric buffers: my shard and the gathered matrix
        let shard = ctx.alloc("shard", ROWS / WORLD * COLS);
        for i in 0..shard.len() {
            shard.store(i, (rank * 100 + i) as f32);
        }
        ctx.alloc("gathered", ROWS * COLS);
        let dev = DeviceHandle::new(
            &ctx,
            "quickstart",
            BlockChannel::derive(rank, WORLD, &mapping, 2, 1),
            0,
        );
        dev.barrier_all();

        let own_tiles = mapping.tiles_of_rank(rank);
        let (_, consumed) = run_comm_compute(
            own_tiles.len(),
            1,
            // communication blocks: push my tiles to every peer and notify
            |b| {
                let tile = own_tiles[b];
                let rows = mapping.rows_of(tile).unwrap();
                let local = (rows.start - rank * ROWS / WORLD) * COLS
                    ..(rows.end - rank * ROWS / WORLD) * COLS;
                let data = shard.read_range(local.start, local.len());
                dev.tile_push_data(
                    "gathered",
                    &mapping,
                    tile,
                    COLS,
                    &data,
                    PushTarget::Broadcast,
                );
                dev.producer_tile_notify(&mapping, tile, NotifyScope::Broadcast);
            },
            // computation block: wait for every tile and sum the gathered matrix
            |_| {
                dev.consumer_rows_wait(&mapping, 0..ROWS);
                dev.buffer_on(rank, "gathered").to_vec().iter().sum::<f32>()
            },
        );
        consumed[0]
    });

    println!("per-rank sums of the gathered matrix: {sums:?}");
    assert!(sums.iter().all(|&s| (s - sums[0]).abs() < 1e-6));
    println!("every rank observed the same gathered data — overlap was correct");
}
