//! Tensor-parallel MLP example: functional correctness + simulated performance.
//!
//! Runs the overlapped AllGather+GEMM and GEMM+ReduceScatter kernels on real
//! data (checked against the unoverlapped reference), then reproduces the
//! Table 2 comparison on the simulated 8×H800 node.
//!
//! Run with `cargo run --release --example tp_mlp`.

use tilelink_compute::gemm::matmul;
use tilelink_compute::Tensor;
use tilelink_sim::ClusterSpec;
use tilelink_workloads::{baselines, mlp, shapes};

fn main() {
    // --- functional check on a small problem -------------------------------
    let world = 4;
    let tokens = Tensor::random(&[32, 16], 1);
    let weights: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[16, 8], 10 + r as u64))
        .collect();
    let outputs = mlp::ag_gemm_functional(world, &tokens, &weights, 4, 8);
    for (rank, out) in outputs.iter().enumerate() {
        let reference = matmul(&tokens, &weights[rank]);
        assert!(out.allclose(&reference, 1e-4));
    }
    println!("functional AG+GEMM matches the unoverlapped reference on {world} ranks");

    let acts: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[32, 8], 20 + r as u64))
        .collect();
    let w2: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[8, 12], 30 + r as u64))
        .collect();
    let rs_out = mlp::gemm_rs_functional(world, &acts, &w2, 4);
    println!(
        "functional GEMM+ReduceScatter produced {} shards of shape {:?}",
        rs_out.len(),
        rs_out[0].shape()
    );

    // --- simulated performance on 8xH800 (Table 2 / Figure 8) --------------
    let cluster = ClusterSpec::h800_node(8);
    let shape = &shapes::mlp_shapes()[0];
    let non_overlap = baselines::non_overlap_full_mlp(shape, &cluster);
    let flux = baselines::flux_full_mlp(shape, &cluster);
    let tilelink = mlp::timed_full_mlp(shape, &cluster).expect("simulation");
    println!("\nMLP-1 ({}) on simulated 8xH800:", shape.source);
    println!("  cuBLAS+NCCL : {:>8.3} ms", non_overlap.total_ms());
    println!("  FLUX        : {:>8.3} ms", flux.total_ms());
    println!(
        "  TileLink    : {:>8.3} ms  ({})",
        tilelink.total_ms(),
        tilelink
    );
    println!(
        "  speedup over non-overlap: {:.2}x",
        tilelink.speedup_over(&non_overlap)
    );
}
