//! End-to-end autotuning demo: search the overlap design space for the MLP-1
//! layer on a simulated 8×H800 node instead of replaying the hand-picked
//! defaults.
//!
//! Run with `cargo run --release --example autotune`.
//!
//! Pass `--cost-model {analytic|calibrated[:path]}` to pick the cost provider
//! the candidates are priced with; the provider's revision is part of the
//! tuning-cache key, so analytic and calibrated results never alias.

use tilelink::OverlapConfig;
use tilelink_sim::{ClusterSpec, CostModelSpec};
use tilelink_tune::{CostOracle, SearchSpace, Strategy, Tuner};
use tilelink_workloads::autotune::{self, MlpOracle, TuneOptions};
use tilelink_workloads::shapes;

fn main() {
    let cluster = ClusterSpec::h800_node(8);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = CostModelSpec::from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let cost = spec
        .build(&cluster)
        .unwrap_or_else(|e| panic!("cannot build cost model {spec}: {e}"));
    let shape = shapes::mlp_shapes()[0].clone();
    println!(
        "tuning {} (S={} H={} I={}) on 8xH800 with the {} cost model (revision {})...\n",
        shape.name,
        shape.tokens,
        shape.hidden,
        shape.intermediate,
        spec,
        cost.revision()
    );

    // What the hand-picked default costs.
    let oracle = MlpOracle::new(shape.clone(), cluster.clone()).with_cost(cost.clone());
    let default_report = oracle
        .evaluate(&OverlapConfig::default())
        .expect("default config evaluates");
    println!("default config: {default_report}");

    // Beam search over the standard space (the high-level path).
    let opts = TuneOptions::default().with_cost(cost.clone());
    let tuned = autotune::tuned_full_mlp(&shape, &cluster, &opts).expect("beam search succeeds");
    println!(
        "\nbeam search ({} simulated candidates):",
        tuned.search.evaluations
    );
    println!("tuned config:   {}", tuned.layer);
    println!("config:         {}", tuned.config.cache_key());
    println!(
        "speedup over default: {:.2}x",
        default_report.total_s / tuned.layer.total_s
    );

    // The low-level path: a custom space searched exhaustively, with a
    // cross-axis constraint pruning ring+pull pairs at enumeration time.
    let space = SearchSpace::new()
        .with_comm_tiles([
            tilelink::TileShape::new(128, 128),
            tilelink::TileShape::new(256, 128),
        ])
        .with_compute_tiles([
            tilelink::TileShape::new(128, 256),
            tilelink::TileShape::new(256, 256),
        ])
        .with_mappings([
            tilelink::CommMapping::CopyEngine,
            tilelink::CommMapping::Sm { sms: 20 },
            tilelink::CommMapping::Hybrid { sms: 20 },
        ])
        .with_stages([2, 3])
        .with_constraint(tilelink_tune::RING_REQUIRES_PUSH);
    let report = Tuner::new(Strategy::Exhaustive)
        .tune(&oracle, &space)
        .expect("exhaustive search succeeds");
    println!(
        "\nexhaustive search over a custom {}-point space:",
        space.len_unpruned()
    );
    print!("{}", report.summary(5));
}
