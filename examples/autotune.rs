//! End-to-end autotuning demo: search the overlap design space for the MLP-1
//! layer on a simulated 8×H800 node instead of replaying the hand-picked
//! defaults.
//!
//! Run with `cargo run --release --example autotune`.
//!
//! Pass `--cost-model {analytic|calibrated[:path]}` to pick the cost provider
//! the candidates are priced with; the provider's revision is part of the
//! tuning-cache key, so analytic and calibrated results never alias.
//!
//! Pass `--routing {uniform|zipf:<s>|hot:<k>}` (optionally with
//! `--objective {mean|p<1-99>|worst}`) to additionally run a
//! routing-distribution-aware MoE search: MoE-1 is tuned once for the
//! expected uniform routing and once over sampled routings for the chosen
//! objective, and both winners are printed side by side.

use std::str::FromStr;

use tilelink::OverlapConfig;
use tilelink_sim::{ClusterSpec, CostModelSpec};
use tilelink_tune::{CostOracle, Objective, SearchSpace, Strategy, Tuner};
use tilelink_workloads::autotune::{self, MlpOracle, TuneOptions};
use tilelink_workloads::moe::RoutingProfile;
use tilelink_workloads::{shapes, RoutingSpec};

/// Value of an option-style `--flag VALUE` / `--flag=VALUE`, parsed with `T`'s
/// `FromStr`.
fn parse_flag<T: FromStr>(args: &[String], flag: &str) -> Option<T>
where
    T::Err: std::fmt::Display,
{
    let text = match args.iter().position(|a| a == flag) {
        Some(i) => Some(args.get(i + 1).unwrap_or_else(|| {
            eprintln!("error: {flag} requires a value");
            std::process::exit(2);
        })),
        None => {
            let prefix = format!("{flag}=");
            args.iter().find_map(|a| a.strip_prefix(&prefix).map(|_| a))
        }
    }?;
    let value = text.strip_prefix(&format!("{flag}=")).unwrap_or(text);
    match value.parse::<T>() {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let cluster = ClusterSpec::h800_node(8);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = CostModelSpec::from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let routing: Option<RoutingProfile> = parse_flag(&args, "--routing");
    let objective: Objective = parse_flag(&args, "--objective").unwrap_or(Objective::Mean);
    let cost = spec
        .build(&cluster)
        .unwrap_or_else(|e| panic!("cannot build cost model {spec}: {e}"));
    let shape = shapes::mlp_shapes()[0].clone();
    println!(
        "tuning {} (S={} H={} I={}) on 8xH800 with the {} cost model (revision {})...\n",
        shape.name,
        shape.tokens,
        shape.hidden,
        shape.intermediate,
        spec,
        cost.revision()
    );

    // What the hand-picked default costs.
    let oracle = MlpOracle::new(shape.clone(), cluster.clone()).with_cost(cost.clone());
    let default_report = oracle
        .evaluate(&OverlapConfig::default())
        .expect("default config evaluates");
    println!("default config: {default_report}");

    // Beam search over the standard space (the high-level path).
    let opts = TuneOptions::default().with_cost(cost.clone());
    let tuned = autotune::tuned_full_mlp(&shape, &cluster, &opts).expect("beam search succeeds");
    println!(
        "\nbeam search ({} simulated candidates):",
        tuned.search.evaluations
    );
    println!("tuned config:   {}", tuned.layer);
    println!("config:         {}", tuned.config.cache_key());
    println!(
        "speedup over default: {:.2}x",
        default_report.total_s / tuned.layer.total_s
    );

    // The low-level path: a custom space searched exhaustively, with a
    // cross-axis constraint pruning ring+pull pairs at enumeration time.
    let space = SearchSpace::new()
        .with_comm_tiles([
            tilelink::TileShape::new(128, 128),
            tilelink::TileShape::new(256, 128),
        ])
        .with_compute_tiles([
            tilelink::TileShape::new(128, 256),
            tilelink::TileShape::new(256, 256),
        ])
        .with_mappings([
            tilelink::CommMapping::CopyEngine,
            tilelink::CommMapping::Sm { sms: 20 },
            tilelink::CommMapping::Hybrid { sms: 20 },
        ])
        .with_stages([2, 3])
        .with_constraint(tilelink_tune::RING_REQUIRES_PUSH);
    let report = Tuner::new(Strategy::Exhaustive)
        .tune(&oracle, &space)
        .expect("exhaustive search succeeds");
    println!(
        "\nexhaustive search over a custom {}-point space:",
        space.len_unpruned()
    );
    print!("{}", report.summary(5));

    // Routing-distribution-aware MoE search: tune MoE-1 for the expected
    // uniform routing and for the sampled distribution, side by side.
    // `--objective` without `--routing` implies sampled uniform routing (the
    // same convention as the `reproduce` binary — a percentile needs a
    // distribution to take the percentile of).
    let profile = match (routing, objective) {
        (Some(p), _) => p,
        (None, Objective::Mean) => return,
        (None, _) => RoutingProfile::Uniform,
    };
    let moe_shape = shapes::moe_shapes()[0].clone();
    let moe_opts = TuneOptions::default().with_cost(cost.clone());
    println!(
        "\ntuning {} under routing {profile}, objective {objective}...",
        moe_shape.name
    );
    let mean_tuned =
        autotune::tuned_full_moe(&moe_shape, &cluster, &moe_opts).expect("mean search succeeds");
    let routed_opts = moe_opts
        .with_routing(RoutingSpec::new(profile))
        .with_objective(objective);
    let routed = autotune::tuned_full_moe(&moe_shape, &cluster, &routed_opts)
        .expect("routed search succeeds");
    println!(
        "mean/uniform winner: {}  ({})",
        mean_tuned.config.cache_key(),
        mean_tuned.layer
    );
    println!(
        "{profile}/{objective} winner:  {}  ({})",
        routed.config.cache_key(),
        routed.layer
    );
    if routed.config == mean_tuned.config {
        println!("the sampled distribution keeps the mean-tuned config");
    } else {
        println!("the sampled distribution picks a different config");
    }
}
