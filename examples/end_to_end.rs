//! End-to-end model comparison (Figure 11): PyTorch-style execution vs
//! TileLink overlapped kernels for a dense and a mixture-of-experts model.
//!
//! Run with `cargo run --release --example end_to_end`.

use tilelink_workloads::e2e;
use tilelink_workloads::shapes::model_configs;

fn main() {
    let (cluster, tokens) = e2e::single_node_setup();
    println!("simulated 8xH800, batch 4 x sequence 8192\n");
    for model in model_configs()
        .iter()
        .filter(|m| m.name == "LLaMA2-7B" || m.name == "Mixtral-8x7B")
    {
        let cmp = e2e::compare_model(model, &cluster, tokens).expect("comparison");
        println!(
            "{:<14} PyTorch {:>8.1} ms | TileLink {:>8.1} ms | speedup {:.2}x (attention {:.0}% of time)",
            model.name,
            cmp.torch.total_s * 1e3,
            cmp.tilelink.total_s * 1e3,
            cmp.speedup(),
            100.0 * cmp.tilelink.attention_s / cmp.tilelink.total_s,
        );
    }
}
