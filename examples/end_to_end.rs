//! End-to-end model comparison (Figure 11): PyTorch-style execution vs
//! TileLink overlapped kernels for a dense and a mixture-of-experts model.
//!
//! Run with `cargo run --release --example end_to_end`.
//!
//! Pass `--tune` to add a third column with *searched* per-layer
//! configurations (the `tilelink-tune` design space, persistent cache — a
//! rerun answers from disk with zero simulations). `--cost-model
//! {analytic|calibrated[:path]}` selects the pricing provider as in the
//! `reproduce` binary.

use tilelink_sim::CostModelSpec;
use tilelink_workloads::autotune::TuneOptions;
use tilelink_workloads::e2e;
use tilelink_workloads::shapes::model_configs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = CostModelSpec::from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let tune = args.iter().any(|a| a == "--tune");

    let (cluster, tokens) = e2e::single_node_setup();
    let cost = spec.build(&cluster).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    println!("simulated 8xH800, batch 4 x sequence 8192 (cost model: {spec})\n");
    let opts = TuneOptions::default().with_default_cache();
    for model in model_configs()
        .iter()
        .filter(|m| m.name == "LLaMA2-7B" || m.name == "Mixtral-8x7B")
    {
        let cmp = e2e::compare_model_with(model, tokens, &cost).expect("comparison");
        print!(
            "{:<14} PyTorch {:>8.1} ms | TileLink {:>8.1} ms | speedup {:.2}x (attention {:.0}% of time)",
            model.name,
            cmp.torch.total_s * 1e3,
            cmp.tilelink.total_s * 1e3,
            cmp.speedup(),
            100.0 * cmp.tilelink.attention_s / cmp.tilelink.total_s,
        );
        if tune {
            let tuned = e2e::tuned_model_timing_with(model, tokens, &cost, &opts).expect("tuning");
            print!(
                " | tuned {:>8.1} ms, speedup {:.2}x ({} sims, {} cached)",
                tuned.timing.total_s * 1e3,
                cmp.torch.total_s / tuned.timing.total_s,
                tuned.evaluations,
                tuned.cache_hits,
            );
        }
        println!();
    }
}
