//! Sequence-parallel attention example: AllGather-KV overlapped with flash
//! attention (Figure 6 / Figure 10 of the paper).
//!
//! Run with `cargo run --release --example sp_attention`.

use tilelink_compute::attention::attention_reference;
use tilelink_compute::Tensor;
use tilelink_sim::ClusterSpec;
use tilelink_workloads::{attention, baselines, shapes};

fn main() {
    // --- functional check ----------------------------------------------------
    let world = 4;
    let (s_per_rank, d) = (8, 8);
    let q: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[s_per_rank, d], r as u64))
        .collect();
    let k: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[s_per_rank, d], 10 + r as u64))
        .collect();
    let v: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[s_per_rank, d], 20 + r as u64))
        .collect();
    let outputs = attention::sp_attention_functional(world, &q, &k, &v, 4);
    let k_full = Tensor::concat_rows(&k);
    let v_full = Tensor::concat_rows(&v);
    for (rank, out) in outputs.iter().enumerate() {
        assert!(out.allclose(&attention_reference(&q[rank], &k_full, &v_full), 1e-3));
    }
    println!("overlapped AG-KV + flash attention matches the reference on {world} ranks");

    // --- simulated Figure 10 -------------------------------------------------
    let cluster = ClusterSpec::h800_node(8);
    let shape = &shapes::attn_shapes()[0];
    println!("\n{} on simulated 8xH800:", shape.name);
    for &seq in &shape.seq_lens {
        let torch = baselines::torch_attention(shape, seq, &cluster);
        let ring = baselines::ring_attention(shape, seq, &cluster);
        let tl =
            attention::timed_sp_attention(shape, seq, &cluster, &attention::attention_config())
                .expect("simulation");
        println!(
            "  seq {:>6}: Torch {:>9.2} ms | RingAttn {:>9.2} ms | TileLink {:>9.2} ms | overlap ratio {:>5.1}%",
            seq,
            torch.total_ms(),
            ring.total_ms(),
            tl.total_ms(),
            tl.overlap_ratio() * 100.0
        );
    }
}
