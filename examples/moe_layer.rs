//! MoE layer example: dynamic routing, dynamic mapping and overlap.
//!
//! Run with `cargo run --release --example moe_layer`.

use tilelink_compute::topk::topk_routing;
use tilelink_compute::Tensor;
use tilelink_sim::ClusterSpec;
use tilelink_workloads::{baselines, moe, shapes};

fn main() {
    // --- functional overlapped AG + Gather + GroupGEMM ----------------------
    let world = 2;
    let (m, h, experts, i_local, top_k) = (16, 8, 4, 6, 2);
    let tokens = Tensor::random(&[m, h], 1);
    let logits = Tensor::random(&[m, experts], 2);
    let weights: Vec<Tensor> = (0..world)
        .map(|r| Tensor::random(&[experts, h, i_local], 40 + r as u64))
        .collect();
    let routing = topk_routing(&logits, top_k);
    println!(
        "router put {:?} tokens on each expert",
        routing.expert_counts()
    );

    let results = moe::ag_moe_functional(world, &tokens, &logits, &weights, top_k, 4, 4);
    println!(
        "overlapped MoE first half produced expert outputs of shape {:?} on {} ranks",
        results[0].expert_out.shape(),
        results.len()
    );

    // --- simulated Figure 9 comparison --------------------------------------
    let cluster = ClusterSpec::h800_node(8);
    for shape in shapes::moe_shapes().iter().take(3) {
        let cublas = baselines::cublas_nccl_full_moe(shape, &cluster);
        let vllm = baselines::vllm_full_moe(shape, &cluster);
        let tilelink = moe::timed_full_moe(shape, &cluster).expect("simulation");
        println!(
            "{}: cuBLAS+NCCL {:>7.3} ms | vLLM-Op {:>7.3} ms | TileLink {:>7.3} ms ({:.2}x over cuBLAS)",
            shape.name,
            cublas.total_ms(),
            vllm.total_ms(),
            tilelink.total_ms(),
            tilelink.speedup_over(&cublas),
        );
    }
}
