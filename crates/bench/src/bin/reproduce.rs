//! Prints every table and figure of the paper's evaluation from the simulated
//! cluster. Run with `cargo run -p tilelink-bench --bin reproduce --release`.
//!
//! Flags (combine freely; no flags prints everything):
//! `--table2 --shapes --fig8 --fig9 --fig10 --fig11 --ablation`
//!
//! `--quick` prints a fast smoke subset (shapes + Table 2) — used by CI to
//! keep this binary from rotting.
//!
//! `--cost-model {analytic|calibrated[:path]}` selects the cost provider the
//! simulator prices transfers with: the default `analytic` model reproduces
//! the historical figures; `calibrated` layers the α/β + achieved-bandwidth
//! table (built-in H800 defaults, or a TSV you measured) over it, repricing
//! baselines and TileLink kernels consistently. The provider's revision is
//! folded into the persistent tuning-cache key, so `--tune` results obtained
//! under different cost models never alias.
//!
//! `--tune` additionally runs the `tilelink-tune` design-space search on the
//! Figure 8 MLP and Figure 9 MoE shapes and prints tuned-vs-default speedups.
//! It is opt-in (not part of the no-flag default) because a cold search
//! simulates a few hundred candidate kernels per shape; repeated runs are
//! near-free thanks to the persistent tuning cache. Combined with `--fig11`
//! (`--fig11 --tune`) the end-to-end rows gain a third, tuned-TileLink column
//! whose per-layer configs come from the same search and cache.
//!
//! `--bench-sim` times the simulator itself instead of printing figures:
//! simulations/sec of the full-trace path vs the makespan-only fast path on
//! three representative kernel graphs, plus the wall-clock throughput of a
//! cold Figure 9 tune. `--bench-sim --json` additionally writes the numbers
//! to `BENCH_sim.json` (the perf trajectory CI uploads as an artifact);
//! `--bench-sim --quick` uses fewer iterations and a compact tuning space.
//!
//! `--bench-serve` load-tests the `tilelink-serve` tuning daemon over real
//! localhost sockets: a dedup volley (N identical cold requests must trigger
//! exactly one search), a warm-hit hammer (the microsecond path) and a mixed
//! catalog sweep, reporting throughput and p50/p95/p99 latency per phase.
//! `--bench-serve --json` writes the numbers to `BENCH_serve.json` (soft-gated
//! by `perf_gate` next to `BENCH_sim.json`); `--bench-serve --quick` runs the
//! reduced CI volume.
//!
//! `--serve` runs a small smoke of the same daemon: boots it on an ephemeral
//! port, then exercises PING, a cold search, a warm hit and a concurrent
//! dedup volley through real client connections. Like `--tune` it is opt-in
//! (not part of the no-flag default).
//!
//! `--routing {uniform|zipf:<s>|hot:<k>}` and `--objective {mean|p<1-99>|worst}`
//! make the MoE part of `--tune` routing-distribution-aware: candidates are
//! priced over sampled routings through the dynamic tile mapping and the
//! search minimises the chosen statistic (e.g. the p95 makespan) instead of
//! the expected-routing mean. The report prints the mean/uniform-tuned and the
//! skew-tuned winner side by side per Figure 9 shape. `--quick --tune` runs a
//! reduced smoke version of the same comparison (used by CI).
//!
//! Observability (combine with any of the above, including `--quick` and
//! `--bench-sim`):
//!
//! * `--profile[=<path>]` enables the `tilelink-probe` span profiler for the
//!   whole run and prints a per-phase wall-time table (count, total, mean,
//!   p95, max, self-minus-children) on exit; with `=<path>` it also writes
//!   the report plus the metrics-registry snapshot as JSON.
//! * `--trace-out <dir>` simulates the three benchmark graphs and writes one
//!   Chrome `trace_event` JSON per graph into `<dir>` (ranks as processes,
//!   resource lanes as threads — open in Perfetto or `chrome://tracing`),
//!   printing each trace's utilisation/overlap summary. Combined with
//!   `--profile` it also writes `host.trace.json` with the host-side spans.
//! * `--verbose` (requires `--tune`) prints per-beam-round search progress
//!   (round, best-so-far, evaluations) to stderr while tuning.

use tilelink_bench::{
    bench_serve_json, bench_sim_json, benchmark_graphs, cost_for, default_cluster, fig10, fig11,
    fig11_tuned, fig8, fig9, fig9_oracle_phases, fig9_tune_throughput, geomean, sim_throughput,
    table2, MlpPanel, MoePanel,
};
use tilelink_sim::CostModelSpec;
use tilelink_tune::{Objective, SearchExecutor, TuneCache};
use tilelink_workloads::moe::RoutingProfile;
use tilelink_workloads::{shapes, RoutingSpec, TuneOptions};

/// The section flags of a command line: everything except the option-style
/// arguments (`--cost-model`, `--routing`, `--objective`, `--trace-out` and
/// their values, `--quick`, `--verbose` and `--profile[=…]`). `--tune` keeps
/// its historical role as a section selector.
fn section_flags(args: &[String]) -> Vec<&String> {
    let mut sections: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--cost-model" || a == "--routing" || a == "--objective" || a == "--trace-out" {
            skip_next = true; // skip the flag's value too
            continue;
        }
        if a == "--quick"
            || a == "--profile"
            || a == "--verbose"
            || a.starts_with("--cost-model=")
            || a.starts_with("--routing=")
            || a.starts_with("--objective=")
            || a.starts_with("--trace-out=")
            || a.starts_with("--profile=")
        {
            continue;
        }
        sections.push(a);
    }
    sections
}

/// Parses `--profile[=<path>]`: `None` when absent, `Some(None)` for the bare
/// flag (table on stdout only), `Some(Some(path))` when a JSON report was
/// also requested.
fn profile_arg(args: &[String]) -> Option<Option<String>> {
    let mut found = None;
    for a in args {
        if a == "--profile" {
            found = found.or(Some(None));
        } else if let Some(path) = a.strip_prefix("--profile=") {
            found = Some(Some(path.to_string()));
        }
    }
    found
}

/// Extracts the value of an option-style `--flag VALUE` / `--flag=VALUE`.
fn option_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        return match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(format!("{flag} requires a value")),
        };
    }
    let prefix = format!("{flag}=");
    Ok(args
        .iter()
        .find_map(|a| a.strip_prefix(&prefix))
        .map(String::from))
}

/// Parses `--routing` / `--objective` into the routing-aware tuning inputs.
/// `--objective` without `--routing` implies sampled uniform routing (a
/// percentile needs a distribution to take the percentile of).
fn routing_args(args: &[String]) -> Result<(Option<RoutingSpec>, Objective), String> {
    let profile = option_value(args, "--routing")?
        .map(|v| v.parse::<RoutingProfile>())
        .transpose()?;
    let objective = option_value(args, "--objective")?
        .map(|v| v.parse::<Objective>())
        .transpose()?
        .unwrap_or(Objective::Mean);
    let spec = match (profile, objective) {
        (Some(p), _) => Some(RoutingSpec::new(p)),
        (None, Objective::Mean) => None,
        (None, _) => Some(RoutingSpec::new(RoutingProfile::Uniform)),
    };
    Ok((spec, objective))
}

/// Section selection: no section flag means "print everything", so
/// `reproduce --cost-model calibrated` still prints everything.
fn wants(args: &[String], flag: &str) -> bool {
    let sections = section_flags(args);
    sections.is_empty() || sections.iter().any(|a| *a == flag)
}

fn print_groups(title: &str, groups: &[tilelink_bench::Group], baseline: &str) {
    println!("\n== {title} ==");
    for g in groups {
        print!("{:<12}", g.label);
        for e in &g.entries {
            print!(" {:>14}: {:>9.3} ms", e.method, e.ms);
        }
        println!();
    }
    println!(
        "geomean speedup of TileLink over {}: {:.2}x",
        baseline,
        geomean(groups.iter().map(|g| g.speedup("TileLink", baseline)))
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cluster = default_cluster();
    let spec = CostModelSpec::from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    // Build once and fail fast on an unloadable calibration file; every
    // single-cluster section below shares this provider (fig11 picks its own
    // clusters, so it takes the spec instead).
    let cost = cost_for(&cluster, &spec);
    println!("(cost model: {spec}, revision {})", cost.revision());
    let (routing, objective) = routing_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    // Routing flags only affect the tuning pass; accepting them without
    // `--tune` would silently drop them (same policy as --quick + sections).
    if routing.is_some() && !args.iter().any(|a| a == "--tune") {
        eprintln!("error: --routing/--objective require --tune");
        std::process::exit(2);
    }

    // `--json` only means something to the bench modes; anywhere else it
    // would be silently swallowed as an unmatched section flag, so reject it
    // (same policy as --routing without --tune).
    if args.iter().any(|a| a == "--json")
        && !args
            .iter()
            .any(|a| a == "--bench-sim" || a == "--bench-serve")
    {
        eprintln!("error: --json requires --bench-sim or --bench-serve");
        std::process::exit(2);
    }

    // Like --routing, --verbose only changes the tuning pass.
    let verbose = args.iter().any(|a| a == "--verbose");
    if verbose && !args.iter().any(|a| a == "--tune") {
        eprintln!("error: --verbose requires --tune");
        std::process::exit(2);
    }

    let profile = profile_arg(&args);
    let trace_out = option_value(&args, "--trace-out").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if profile.is_some() {
        // Enabled before any section runs so the exit report attributes the
        // whole run; disabled sites cost one relaxed atomic load each.
        tilelink_probe::set_enabled(true);
    }

    run(&args, &cluster, &spec, &cost, routing, objective, verbose);

    if let Some(dir) = &trace_out {
        write_traces(dir, &spec);
    }
    if let Some(json_path) = &profile {
        finish_profile(json_path.as_deref(), trace_out.as_deref());
    }
}

/// Everything the selected flags asked for, in section order. Split out of
/// `main` so its early returns (`--bench-sim`, `--quick`) still fall through
/// to the `--trace-out` / `--profile` epilogue.
#[allow(clippy::too_many_arguments)]
fn run(
    args: &[String],
    cluster: &tilelink_sim::ClusterSpec,
    spec: &CostModelSpec,
    cost: &tilelink_sim::SharedCost,
    routing: Option<RoutingSpec>,
    objective: Objective,
    verbose: bool,
) {
    if args.iter().any(|a| a == "--bench-sim") {
        // A perf-trajectory mode, not a figure section: it times the
        // simulator itself (trace path vs makespan-only fast path, plus a
        // cold Figure 9 tune) and with --json records the numbers into
        // BENCH_sim.json so future perf PRs have a baseline.
        let quick = args.iter().any(|a| a == "--quick");
        if let Some(flag) = section_flags(args)
            .iter()
            .find(|f| **f != "--bench-sim" && **f != "--json")
        {
            eprintln!("error: --bench-sim cannot be combined with {flag}");
            std::process::exit(2);
        }
        bench_sim(quick, args.iter().any(|a| a == "--json"), spec, cost);
        return;
    }

    if args.iter().any(|a| a == "--bench-serve") {
        // The serving counterpart of --bench-sim: load-tests the
        // tilelink-serve daemon over real sockets and with --json records
        // the numbers into BENCH_serve.json for the perf-gate trajectory.
        let quick = args.iter().any(|a| a == "--quick");
        if let Some(flag) = section_flags(args)
            .iter()
            .find(|f| **f != "--bench-serve" && **f != "--json")
        {
            eprintln!("error: --bench-serve cannot be combined with {flag}");
            std::process::exit(2);
        }
        bench_serve(quick, args.iter().any(|a| a == "--json"), spec);
        return;
    }

    if args.iter().any(|a| a == "--quick") {
        // `--quick` replaces section selection entirely; combining it with
        // section flags would silently drop them, so reject that instead.
        // `--tune` is the one exception: `--quick --tune` runs a reduced
        // tuning smoke (the CI entry point for the routing-aware search).
        if let Some(flag) = section_flags(args).iter().find(|f| **f != "--tune") {
            eprintln!("error: --quick cannot be combined with {flag}");
            std::process::exit(2);
        }
        // CI smoke subset: cheap, but exercises shapes, baselines and one
        // compiled TileLink kernel per MLP half.
        print_shapes();
        print_groups(
            "Table 2: motivational example (MLP-1)",
            &table2(cost),
            "Non-Overlap",
        );
        if args.iter().any(|a| a == "--tune") {
            quick_tune_smoke(cluster, cost, routing, objective, verbose);
            quick_e2e_tune_smoke(spec, routing, objective, verbose);
        }
        return;
    }

    if wants(args, "--shapes") {
        print_shapes();
    }

    if wants(args, "--table2") {
        print_groups(
            "Table 2: motivational example (MLP-1)",
            &table2(cost),
            "Non-Overlap",
        );
    }

    if wants(args, "--fig8") {
        print_groups(
            "Figure 8: AG+GEMM",
            &fig8(MlpPanel::AgGemm, cost),
            "cuBLAS+NCCL",
        );
        print_groups(
            "Figure 8: GEMM+RS",
            &fig8(MlpPanel::GemmRs, cost),
            "cuBLAS+NCCL",
        );
        print_groups(
            "Figure 8: full MLP",
            &fig8(MlpPanel::Full, cost),
            "cuBLAS+NCCL",
        );
    }

    if wants(args, "--fig9") {
        print_groups(
            "Figure 9: AG+Gather+GroupGEMM",
            &fig9(MoePanel::First, cost),
            "cuBLAS+NCCL",
        );
        print_groups(
            "Figure 9: GroupGEMM+Scatter+TopK+RS",
            &fig9(MoePanel::Second, cost),
            "cuBLAS+NCCL",
        );
        print_groups(
            "Figure 9: full MoE",
            &fig9(MoePanel::Full, cost),
            "cuBLAS+NCCL",
        );
    }

    if wants(args, "--fig10") {
        for idx in 0..shapes::attn_shapes().len() {
            let rows = fig10(idx, cost);
            println!("\n== Figure 10: {} ==", shapes::attn_shapes()[idx].name);
            for r in &rows {
                print!("{:<16}", r.label);
                for e in &r.group.entries {
                    print!(" {:>9}: {:>9.3} ms", e.method, e.ms);
                }
                println!("  overlap ratio: {:.1}%", r.overlap_ratio * 100.0);
            }
            println!(
                "geomean speedup over Torch: {:.2}x, over RingAttn: {:.2}x, mean overlap ratio {:.1}%",
                geomean(rows.iter().map(|r| r.group.speedup("TileLink", "Torch"))),
                geomean(rows.iter().map(|r| r.group.speedup("TileLink", "RingAttn"))),
                100.0 * rows.iter().map(|r| r.overlap_ratio).sum::<f64>() / rows.len() as f64
            );
        }
    }

    if wants(args, "--fig11") {
        // Under --tune the Figure 11 rows gain a third, tuned-TileLink column:
        // per-layer configs searched by tilelink-tune (persistent cache, so
        // reruns answer from disk with zero simulations).
        let tune_requested = args.iter().any(|a| a == "--tune");
        let tune_opts = tune_requested.then(|| {
            let opts = TuneOptions::default()
                .with_default_cache()
                .with_executor(SearchExecutor::global())
                .with_verbose(verbose);
            let opts = match routing {
                Some(spec) => opts.with_routing(spec).with_objective(objective),
                None => opts.with_objective(objective),
            };
            println!(
                "\n(figure 11 tuning cache: {})",
                TuneCache::default_path().display()
            );
            if let Some(spec) = &opts.routing {
                // The tuned MoE estimate is the objective statistic over
                // sampled routings — a harder workload than the
                // uniform-routing default column.
                println!(
                    "(MoE layers tuned and priced under routing {spec}, objective {objective})"
                );
            }
            opts
        });
        for (two_nodes, label) in [(false, "8xH800"), (true, "16xH800")] {
            let rows = match &tune_opts {
                Some(opts) => fig11_tuned(two_nodes, usize::MAX, spec, opts),
                None => fig11(two_nodes, usize::MAX, spec),
            };
            println!("\n== Figure 11: end-to-end, {label} ==");
            for r in &rows {
                print!(
                    "{:<16} Torch {:>10.1} ms   TileLink {:>10.1} ms   speedup {:.2}x",
                    r.model,
                    r.torch_ms,
                    r.tilelink_ms,
                    r.speedup()
                );
                match (&r.tuned, r.tuned_speedup()) {
                    (Some(t), Some(s)) => println!(
                        "   tuned {:>10.1} ms   speedup {s:.2}x ({} sims, {} cached)",
                        t.ms, t.evaluations, t.cache_hits
                    ),
                    _ => println!(),
                }
            }
            print!(
                "geomean speedup: {:.2}x",
                geomean(rows.iter().map(|r| r.speedup()))
            );
            if rows.iter().all(|r| r.tuned.is_some()) {
                println!(
                    "   tuned geomean: {:.2}x",
                    geomean(rows.iter().filter_map(|r| r.tuned_speedup()))
                );
            } else {
                println!();
            }
        }
    }

    if wants(args, "--ablation") {
        ablations(cost);
    }

    // Opt-in only: a cold tuning run simulates hundreds of candidates.
    if args.iter().any(|a| a == "--tune") {
        tune(cluster, cost, routing, objective, verbose);
    }

    // Opt-in only, like --tune: boots a real daemon on an ephemeral port.
    if args.iter().any(|a| a == "--serve") {
        serve_smoke(spec);
    }
}

/// `--trace-out` epilogue: simulates the three benchmark graphs and writes
/// one Chrome `trace_event` JSON per graph into `dir`, printing each trace's
/// per-rank utilisation and overlap summary.
fn write_traces(dir: &str, spec: &CostModelSpec) {
    use tilelink_sim::Engine;

    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir}: {e}"));
    for (name, cost, graph) in benchmark_graphs(spec) {
        let trace = Engine::with_cost(cost)
            .run(&graph)
            .expect("benchmark graph simulates");
        let path = format!("{dir}/{name}.trace.json");
        std::fs::write(&path, trace.to_chrome_json())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\n== Trace: {name} (wrote {path}) ==");
        print!("{}", trace.summary());
    }
}

/// `--profile` epilogue: drains every span recorded during the run, prints
/// the per-phase attribution table and — when a path was given — writes the
/// JSON report (phases plus the metrics-registry snapshot). When `--trace-out`
/// was also given, the host spans are additionally exported as a Chrome trace
/// next to the simulated ones.
fn finish_profile(json_path: Option<&str>, trace_dir: Option<&str>) {
    let spans = tilelink_probe::take_spans();
    let report = tilelink_probe::ProfileReport::from_spans(&spans);
    println!("\n== Host profile ({} spans) ==", spans.len());
    print!("{}", report.render());
    if let Some(path) = json_path {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("(wrote {path})");
    }
    if let Some(dir) = trace_dir {
        let path = format!("{dir}/host.trace.json");
        std::fs::write(&path, tilelink_probe::chrome::spans_to_chrome(&spans))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("(wrote {path})");
    }
}

fn print_shapes() {
    println!("== Table 4: benchmark shapes ==");
    for s in shapes::mlp_shapes() {
        println!(
            "{}: S={} H={} I={} ({})",
            s.name, s.tokens, s.hidden, s.intermediate, s.source
        );
    }
    for s in shapes::moe_shapes() {
        println!(
            "{}: S={} H={} I={} E={} topk={}",
            s.name, s.tokens, s.hidden, s.intermediate, s.experts, s.top_k
        );
    }
    for s in shapes::attn_shapes() {
        println!(
            "{}: heads={} head_dim={} seq={:?}",
            s.name, s.heads, s.head_dim, s.seq_lens
        );
    }
}

/// Tuned-vs-default comparison on the Figure 8 MLP and Figure 9 MoE shapes,
/// plus — when a routing distribution was requested — the mean/uniform-tuned
/// vs skew-tuned winner comparison per Figure 9 shape.
fn tune(
    cluster: &tilelink_sim::ClusterSpec,
    cost: &tilelink_sim::SharedCost,
    routing: Option<RoutingSpec>,
    objective: Objective,
    verbose: bool,
) {
    use tilelink_workloads::autotune::{self, MlpOracle, MoeOracle, TuneOptions};

    let opts = TuneOptions::default()
        .with_default_cache()
        .with_cost(cost.clone())
        .with_executor(tilelink_tune::SearchExecutor::global())
        .with_verbose(verbose);
    if let Some(path) = &opts.cache_path {
        println!(
            "\n(tuning cache: {}, cost-model revision {})",
            path.display(),
            cost.revision()
        );
    }

    println!("\n== Autotune: Figure 8 MLP layers (tuned vs default config) ==");
    let mut speedups = Vec::new();
    for shape in shapes::mlp_shapes() {
        let tuned = autotune::tuned_full_mlp(&shape, cluster, &opts).expect("tuning succeeds");
        let default_ms = default_ms(
            &tuned,
            &MlpOracle::new(shape.clone(), cluster.clone()).with_cost(cost.clone()),
        );
        let speedup = default_ms / tuned.layer.total_ms();
        speedups.push(speedup);
        println!(
            "{:<8} default {:>9.3} ms -> tuned {:>9.3} ms ({:.2}x, {} sims, {} cached) best: {}",
            shape.name,
            default_ms,
            tuned.layer.total_ms(),
            speedup,
            tuned.search.evaluations,
            tuned.search.cache_hits,
            tuned.config.cache_key()
        );
    }
    println!(
        "geomean tuned-vs-default speedup: {:.2}x",
        geomean(speedups)
    );

    println!("\n== Autotune: Figure 9 MoE layers (tuned vs default config) ==");
    let mut speedups = Vec::new();
    let mut mean_winners = Vec::new();
    for shape in shapes::moe_shapes() {
        let tuned = autotune::tuned_full_moe(&shape, cluster, &opts).expect("tuning succeeds");
        let default_ms = default_ms(
            &tuned,
            &MoeOracle::new(shape.clone(), cluster.clone()).with_cost(cost.clone()),
        );
        let speedup = default_ms / tuned.layer.total_ms();
        speedups.push(speedup);
        println!(
            "{:<8} default {:>9.3} ms -> tuned {:>9.3} ms ({:.2}x, {} sims, {} cached) best: {}",
            shape.name,
            default_ms,
            tuned.layer.total_ms(),
            speedup,
            tuned.search.evaluations,
            tuned.search.cache_hits,
            tuned.config.cache_key()
        );
        mean_winners.push((shape, tuned));
    }
    println!(
        "geomean tuned-vs-default speedup: {:.2}x",
        geomean(speedups)
    );

    // Routing-distribution-aware pass: retune each MoE shape over sampled
    // routings and print the skew winner next to the mean/uniform winner.
    let Some(spec) = routing else { return };
    let routed_opts = opts.with_routing(spec).with_objective(objective);
    println!("\n== Autotune: Figure 9 MoE layers under routing {spec}, objective {objective} ==");
    for (shape, mean_tuned) in &mean_winners {
        let routed =
            autotune::tuned_full_moe(shape, cluster, &routed_opts).expect("tuning succeeds");
        let marker = if routed.config == mean_tuned.config {
            "same config"
        } else {
            "DIFFERS"
        };
        println!(
            "{:<8} mean/uniform best: {:<44} {:>9.3} ms",
            shape.name,
            mean_tuned.config.cache_key(),
            mean_tuned.layer.total_ms(),
        );
        println!(
            "         {}/{} best:   {:<44} {:>9.3} ms  ({} sims, {} cached)  [{marker}]",
            spec.profile,
            objective,
            routed.config.cache_key(),
            routed.layer.total_ms(),
            routed.search.evaluations,
            routed.search.cache_hits,
        );
    }
}

/// Reduced tuning smoke for `--quick --tune`: one MoE shape, a compact space,
/// few routing samples — enough to exercise the routing-aware search end to
/// end without the cost of the full `--tune` pass. CI runs this under both
/// cost models.
fn quick_tune_smoke(
    cluster: &tilelink_sim::ClusterSpec,
    cost: &tilelink_sim::SharedCost,
    routing: Option<RoutingSpec>,
    objective: Objective,
    verbose: bool,
) {
    use tilelink::{CommMapping, TileShape};
    use tilelink_tune::{SearchSpace, Strategy};
    use tilelink_workloads::autotune::{self, TuneOptions};

    let shape = shapes::moe_shapes()[0].clone();
    let space = SearchSpace::new()
        .with_comm_tiles([TileShape::new(128, 128), TileShape::new(256, 128)])
        .with_compute_tiles([TileShape::new(128, 256), TileShape::new(256, 256)])
        .with_mappings([CommMapping::CopyEngine, CommMapping::Hybrid { sms: 20 }])
        .with_stages([2, 3]);
    let base = TuneOptions {
        strategy: Strategy::Beam {
            width: 2,
            sweeps: 1,
        },
        space,
        ..TuneOptions::default()
    }
    .with_cost(cost.clone())
    .with_executor(tilelink_tune::SearchExecutor::global())
    .with_verbose(verbose);

    println!("\n== Autotune smoke: {} (compact space) ==", shape.name);
    let mean_tuned =
        autotune::tuned_full_moe(&shape, cluster, &base).expect("mean tuning succeeds");
    println!(
        "mean/uniform best: {:<44} {:>9.3} ms ({} sims)",
        mean_tuned.config.cache_key(),
        mean_tuned.layer.total_ms(),
        mean_tuned.search.evaluations,
    );
    let Some(mut spec) = routing else { return };
    spec.samples = 4; // smoke: fewer sampled routings per candidate
    let routed_opts = base.with_routing(spec).with_objective(objective);
    let routed =
        autotune::tuned_full_moe(&shape, cluster, &routed_opts).expect("routed tuning succeeds");
    let marker = if routed.config == mean_tuned.config {
        "same config"
    } else {
        "DIFFERS"
    };
    println!(
        "{}/{} best:     {:<44} {:>9.3} ms ({} sims)  [{marker}]",
        spec.profile,
        objective,
        routed.config.cache_key(),
        routed.layer.total_ms(),
        routed.search.evaluations,
    );
}

/// Reduced tuned-e2e smoke for `--quick --tune`: one dense and one MoE model
/// on the single-node setup plus the dense model on the two-node setup,
/// against the persistent default cache (so CI's repeated steps reuse the
/// tuning TSV instead of re-simulating). Unlike the layer smoke above this
/// searches the *standard* space — the tuned column is only meaningful if the
/// search can reach configurations at least as good as the hand-picked ones.
fn quick_e2e_tune_smoke(
    spec: &CostModelSpec,
    routing: Option<RoutingSpec>,
    objective: Objective,
    verbose: bool,
) {
    let mut opts = TuneOptions::default()
        .with_default_cache()
        .with_objective(objective)
        .with_executor(SearchExecutor::global())
        .with_verbose(verbose);
    if let Some(mut spec) = routing {
        spec.samples = 4; // smoke: fewer sampled routings per candidate
        opts = opts.with_routing(spec);
    }
    println!(
        "\n== Tuned e2e smoke (Figure 11 subset, cache {}) ==",
        TuneCache::default_path().display()
    );
    if let Some(spec) = &opts.routing {
        // The tuned MoE estimate is then the objective statistic over sampled
        // routings — a harder workload than the uniform-routing default
        // column, so the two speedups are not directly comparable.
        println!("(MoE layers tuned and priced under routing {spec}, objective {objective})");
    }
    let models = shapes::model_configs();
    // One dense and one MoE model on the single-node setup (the MoE model is
    // what --routing/--objective act on), the dense one again on two nodes.
    for (two_nodes, names, label) in [
        (false, &["LLaMA2-7B", "Mixtral-8x7B"][..], "8xH800"),
        (true, &["LLaMA2-7B"][..], "16xH800"),
    ] {
        let (cluster, tokens) = if two_nodes {
            tilelink_workloads::e2e::two_node_setup()
        } else {
            tilelink_workloads::e2e::single_node_setup()
        };
        let cost = cost_for(&cluster, spec);
        for model in models.iter().filter(|m| names.contains(&m.name)) {
            let cmp =
                tilelink_workloads::e2e::compare_model_tuned_with(model, tokens, &cost, &opts)
                    .expect("tuned e2e smoke");
            println!(
                "{label:<8} {:<14} default speedup {:.2}x   tuned speedup {:.2}x ({} sims, {} cached)",
                model.name,
                cmp.default_speedup(),
                cmp.tuned_speedup(),
                cmp.tuned.evaluations,
                cmp.tuned.cache_hits
            );
        }
    }
}

/// Simulator-throughput trajectory: trace path vs makespan-only fast path on
/// the three benchmark graphs, plus one cold Figure 9 tune — all priced by
/// the selected `--cost-model`. With `json` the numbers are also written to
/// `BENCH_sim.json` in the working directory.
fn bench_sim(quick: bool, json: bool, spec: &CostModelSpec, cost: &tilelink_sim::SharedCost) {
    let iters = if quick { 30 } else { 200 };
    println!("== Simulator throughput ({iters} timed simulations per path) ==");
    let rows = sim_throughput(iters, spec);
    for r in &rows {
        println!(
            "{:<24} {:>6} tasks   trace {:>9.1} sims/s   makespan-only {:>9.1} sims/s   {:>5.2}x",
            r.name,
            r.tasks,
            r.trace_sims_per_sec,
            r.makespan_sims_per_sec,
            r.speedup()
        );
    }
    // Compile-vs-simulate attribution of one full fig9 MoE oracle evaluation
    // (span-profiled build/lower/plan/graph/simulate phases).
    let profile = fig9_oracle_phases(spec);
    for (label, phases) in [("cold", &profile.cold), ("warm", &profile.warm)] {
        println!(
            "fig9 MoE-1 oracle phases ({label}): build {:.3} ms, lower {:.3} ms, plan {:.3} ms, \
             graph {:.3} ms, simulate {:.3} ms ({:.1}% compile of {:.3} ms wall)",
            phases.build_ms,
            phases.lower_ms,
            phases.plan_ms,
            phases.graph_ms,
            phases.simulate_ms,
            phases.compile_fraction() * 100.0,
            phases.total_ms
        );
    }
    let tune = fig9_tune_throughput(quick, spec);
    println!(
        "fig9 MoE-1 cold tune ({}): {:.2} s wall, {} disposed/s ({} full sims, \
         {} bound-pruned, {} bounded aborts; {:.0}% short-circuited), {} sims ({:.1}/s), \
         {:.0}% patched compiles",
        if quick {
            "compact space"
        } else {
            "standard space"
        },
        tune.wall_s,
        tune.candidates_per_sec as u64,
        tune.full_sims,
        tune.pruned_bound,
        tune.bounded_aborts,
        tune.short_circuit_rate() * 100.0,
        tune.evaluations,
        tune.sims_per_sec,
        tune.patch_rate() * 100.0
    );
    if json {
        let path = "BENCH_sim.json";
        std::fs::write(
            path,
            bench_sim_json(&rows, &profile, &tune, quick, &cost.revision()),
        )
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("(wrote {path})");
    }
}

/// Serving-throughput trajectory: drives the `tilelink-serve` daemon with the
/// three-phase load generator (dedup volley, warm hammer, mixed catalog
/// sweep) over real localhost sockets. With `json` the numbers are also
/// written to `BENCH_serve.json` in the working directory.
fn bench_serve(quick: bool, json: bool, spec: &CostModelSpec) {
    use tilelink_serve::loadgen::{run_loadgen, LoadGenConfig};

    let cfg = if quick {
        LoadGenConfig::quick(spec.clone())
    } else {
        LoadGenConfig::full(spec.clone())
    };
    println!(
        "== Serving throughput ({} dedup waiters, {} clients x {} warm + {} mixed requests) ==",
        cfg.dedup_waiters, cfg.clients, cfg.warm_requests, cfg.mixed_requests
    );
    let report = run_loadgen(&cfg).unwrap_or_else(|e| panic!("load generation failed: {e}"));

    let d = &report.dedup;
    println!(
        "dedup  {:>3} identical cold requests -> {} search, {} deduped, {} warm ({} identical replies)",
        d.waiters, d.searches, d.deduped, d.warm, d.identical
    );
    let w = &report.warm;
    println!(
        "warm   {:>6} requests in {:.3} s   {:>9.0} req/s   mean {:>7.1} us   \
         p50 {:>5} us   p95 {:>5} us   p99 {:>5} us   max {:>6} us   [p99 < 1 ms: {}]",
        w.count,
        w.wall_s,
        w.requests_per_sec,
        w.mean_us,
        w.p50_us,
        w.p95_us,
        w.p99_us,
        w.max_us,
        if w.p99_us < 1000 { "OK" } else { "MISS" }
    );
    let m = &report.mixed;
    println!(
        "mixed  {:>6} requests in {:.3} s   {:>9.0} req/s   mean {:>7.1} us   \
         p50 {:>5} us   p95 {:>5} us   p99 {:>5} us   ({} warm, {} cold, {} deduped)",
        m.stats.count,
        m.stats.wall_s,
        m.stats.requests_per_sec,
        m.stats.mean_us,
        m.stats.p50_us,
        m.stats.p95_us,
        m.stats.p99_us,
        m.warm,
        m.cold,
        m.deduped
    );
    for level in &report.ramp {
        let s = &level.stats;
        println!(
            "ramp   {:>4} conns {:>6} requests   {:>9.0} req/s   mean {:>7.1} us   \
             p50 {:>5} us   p95 {:>5} us   p99 {:>5} us   [p99 < 1 ms: {}]",
            level.connections,
            s.count,
            s.requests_per_sec,
            s.mean_us,
            s.p50_us,
            s.p95_us,
            s.p99_us,
            if s.p99_us < 1000 { "OK" } else { "MISS" }
        );
    }
    let pm = &report.metrics;
    println!(
        "pipeline counters: pool_rejected={} cache_evictions={} cache_expired={} executor_reuses={}",
        pm.pool_rejected, pm.cache_evictions, pm.cache_expired, pm.executor_reuses
    );
    if json {
        let path = "BENCH_serve.json";
        std::fs::write(path, bench_serve_json(&report))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("(wrote {path})");
    }
}

/// `--serve` smoke: boots the daemon on an ephemeral localhost port and
/// exercises every request path through real client connections — PING, a
/// cold quick-space search, a warm hit of the same key, and a concurrent
/// volley of identical requests that must collapse into one search.
fn serve_smoke(spec: &CostModelSpec) {
    use std::sync::{Arc, Barrier};
    use tilelink_serve::protocol::{parse_reply, Reply};
    use tilelink_serve::server::{serve_ephemeral, Client};
    use tilelink_serve::service::{ServeOptions, TuneService};

    let server = serve_ephemeral(TuneService::new(ServeOptions {
        cost: spec.clone(),
        cache_path: None, // smoke stays hermetic: no shared TSV
        threads: Some(2),
        ..ServeOptions::quick()
    }))
    .expect("bind ephemeral port");
    println!("\n== Serve smoke (daemon on {}) ==", server.addr());

    let mut client = Client::connect(server.addr()).expect("connect");
    let pong = client.request("PING").expect("ping");
    println!("PING -> {pong}");

    let line = "TUNE workload=MLP-1";
    for pass in ["cold", "warm"] {
        let reply = client.request(line).expect("tune request");
        let Ok(Reply::Ok(fields)) = parse_reply(&reply) else {
            panic!("{pass} request failed: {reply}");
        };
        println!(
            "{line} -> source={} total {:.3} ms ({} sims) best: {}",
            fields.source, fields.total_ms, fields.evals, fields.config
        );
    }

    // Concurrent identical cold requests: the daemon must run one search and
    // broadcast it to everyone else.
    const WAITERS: usize = 4;
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(WAITERS));
    let handles: Vec<_> = (0..WAITERS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                client
                    .request("TUNE workload=MoE-1 routing=zipf:1.2 objective=p95")
                    .expect("dedup request")
            })
        })
        .collect();
    let (mut cold, mut deduped) = (0, 0);
    for handle in handles {
        match parse_reply(&handle.join().expect("waiter thread")) {
            Ok(Reply::Ok(fields)) if fields.source == "cold" => cold += 1,
            Ok(Reply::Ok(fields)) if fields.source == "deduped" => deduped += 1,
            other => panic!("dedup volley reply unexpected: {other:?}"),
        }
    }
    println!("{WAITERS} concurrent identical requests -> {cold} search, {deduped} deduped");

    let stats = client.request("STATS").expect("stats");
    println!("{stats}");
    server.shutdown();
}

/// Ablations over the design choices called out in DESIGN.md: decoupled tile
/// sizes, number of communication SMs and resource mapping.
fn ablations(cost: &tilelink_sim::SharedCost) {
    use tilelink::config::{CommMapping, TileShape};
    use tilelink_workloads::mlp;

    let shape = &shapes::mlp_shapes()[0];
    println!("\n== Ablation: compute tile size (AG+GEMM, MLP-1) ==");
    for tile in [64usize, 128, 256] {
        let cfg = mlp::ag_gemm_config().with_compute_tile(TileShape::new(128, tile));
        let r = mlp::timed_ag_gemm_with(shape, &cfg, cost).expect("ablation");
        println!("compute tile 128x{tile:<4} -> {:>9.3} ms", r.total_ms());
    }

    println!("\n== Ablation: communication SMs (GEMM+RS, MLP-1) ==");
    for sms in [8u64, 20, 40] {
        let cfg = mlp::gemm_rs_config().with_comm_mapping(CommMapping::Hybrid { sms });
        let r = mlp::timed_gemm_rs_with(shape, &cfg, cost).expect("ablation");
        println!("comm SMs {sms:<3} -> {:>9.3} ms", r.total_ms());
    }

    println!("\n== Ablation: resource mapping (AG+GEMM, MLP-1) ==");
    for (name, mapping) in [
        ("copy engine", CommMapping::CopyEngine),
        ("20 SMs", CommMapping::Sm { sms: 20 }),
        ("hybrid", CommMapping::Hybrid { sms: 20 }),
    ] {
        let cfg = mlp::ag_gemm_config().with_comm_mapping(mapping);
        let r = mlp::timed_ag_gemm_with(shape, &cfg, cost).expect("ablation");
        println!("{name:<12} -> {:>9.3} ms", r.total_ms());
    }
}

/// Milliseconds of the default config: served from the search's own ranking
/// (the default is always a beam seed), falling back to one oracle call only
/// if an exotic space excluded it.
fn default_ms(
    tuned: &tilelink_workloads::TunedLayer,
    oracle: &dyn tilelink_tune::CostOracle,
) -> f64 {
    let default = tilelink::OverlapConfig::default();
    tuned
        .search
        .ranked
        .iter()
        .find(|c| c.config == default)
        .map(|c| c.report.total_ms())
        .unwrap_or_else(|| {
            oracle
                .evaluate(&default)
                .expect("default config evaluates")
                .total_ms()
        })
}
