//! Soft performance gate over the recorded `BENCH_sim.json` /
//! `BENCH_serve.json` trajectories.
//!
//! Compares fresh benchmark numbers against recorded ones: throughput metrics
//! (sims/s, candidates/s, requests/s) that fall more than 20% below the
//! recording and durations/latencies (oracle phases, warm/mixed p50/p95/p99)
//! that run more than 20% slower are reported as `PERF WARN` lines.
//!
//! The gate is *soft* by default — it exits 0 no matter what it finds.
//! Benchmark numbers on shared CI runners are noisy, so an unconditional hard
//! gate would flake; the warnings exist to make a real regression visible in
//! the log next to the commit that caused it. `--strict` turns the warnings
//! into failures (exit 1 when any metric regresses beyond the threshold) for
//! benchmark pairs that are stable enough to block on — CI runs the simulator
//! pair strict and the noisier serving pair soft.
//!
//! Usage:
//!
//! ```text
//! perf_gate [--strict] <recorded.json> [fresh.json] [<recorded2.json> <fresh2.json>]
//! ```
//!
//! With one argument the fresh sim numbers are measured in-process (quick
//! mode, analytic cost model — matching how the recording is produced by
//! `reproduce --bench-sim --quick --json`). With two or four arguments every
//! file is read from disk, which lets CI reuse files it already generated;
//! each recorded/fresh *pair* is dispatched on its `schema` field, so a
//! `tilelink-bench-serve/*` pair is gated on the serving metrics (including
//! the v2 connection-ramp levels and pipeline counters) and anything else on
//! the simulator ones.

use tilelink_probe::{parse_json, JsonValue};

use tilelink_bench::{
    bench_sim_json, cost_for, default_cluster, fig9_oracle_phases, fig9_tune_throughput,
    sim_throughput,
};
use tilelink_sim::CostModelSpec;

/// Fractional change beyond which a metric counts as regressed.
const THRESHOLD: f64 = 0.20;

fn usage() -> ! {
    eprintln!(
        "usage: perf_gate [--strict] <recorded.json> [fresh.json] [<recorded2.json> <fresh2.json>]"
    );
    std::process::exit(2)
}

fn load(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    parse_json(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"))
}

/// Measures the quick benchmark suite in-process and returns it rendered as
/// the same JSON document `reproduce --bench-sim --quick --json` writes.
fn measure_fresh() -> JsonValue {
    let spec = CostModelSpec::default();
    let cost = cost_for(&default_cluster(), &spec);
    let rows = sim_throughput(30, &spec);
    let profile = fig9_oracle_phases(&spec);
    let tune = fig9_tune_throughput(true, &spec);
    let text = bench_sim_json(&rows, &profile, &tune, true, &cost.revision());
    parse_json(&text).expect("fresh benchmark JSON renders valid")
}

/// One comparison outcome; `regressed` applies the 20% threshold in the
/// metric's better-direction.
struct Check {
    label: String,
    recorded: f64,
    fresh: f64,
    /// `true` when larger values are better (throughput) — otherwise the
    /// metric is a duration where smaller is better.
    higher_is_better: bool,
}

impl Check {
    fn regressed(&self) -> bool {
        if self.recorded <= 0.0 {
            return false;
        }
        if self.higher_is_better {
            self.fresh < self.recorded * (1.0 - THRESHOLD)
        } else {
            self.fresh > self.recorded * (1.0 + THRESHOLD)
        }
    }

    fn change_pct(&self) -> f64 {
        if self.recorded == 0.0 {
            0.0
        } else {
            (self.fresh / self.recorded - 1.0) * 100.0
        }
    }
}

fn number_at(doc: &JsonValue, path: &[&str]) -> Option<f64> {
    let mut cur = doc;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_f64()
}

fn push_check(
    checks: &mut Vec<Check>,
    recorded: &JsonValue,
    fresh: &JsonValue,
    path: &[&str],
    label: String,
    higher_is_better: bool,
) {
    match (number_at(recorded, path), number_at(fresh, path)) {
        (Some(r), Some(f)) => checks.push(Check {
            label,
            recorded: r,
            fresh: f,
            higher_is_better,
        }),
        _ => println!("PERF NOTE {label}: missing on one side, skipped"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.iter().any(|a| a == "--strict");
    args.retain(|a| a != "--strict");
    let mut pairs: Vec<(JsonValue, JsonValue)> = Vec::new();
    match args.as_slice() {
        [rec] => {
            println!("perf_gate: measuring fresh quick benchmarks in-process...");
            pairs.push((load(rec), measure_fresh()));
        }
        [rec, new] => pairs.push((load(rec), load(new))),
        [rec1, new1, rec2, new2] => {
            pairs.push((load(rec1), load(new1)));
            pairs.push((load(rec2), load(new2)));
        }
        _ => usage(),
    }

    let mut checks = Vec::new();
    for (recorded, fresh) in &pairs {
        // Each pair declares what it measures via its schema field; the
        // recorded side decides (both sides of a pair must match anyway for
        // the shared JSON paths to resolve).
        let schema = recorded
            .get("schema")
            .and_then(|s| s.as_str())
            .unwrap_or("");
        if schema.starts_with("tilelink-bench-serve") {
            serve_checks(&mut checks, recorded, fresh);
        } else {
            sim_checks(&mut checks, recorded, fresh);
        }
    }

    let mut regressions = 0usize;
    for c in &checks {
        if c.regressed() {
            regressions += 1;
            println!(
                "PERF WARN {}: recorded {:.3}, fresh {:.3} ({:+.1}%)",
                c.label,
                c.recorded,
                c.fresh,
                c.change_pct()
            );
        }
    }
    println!(
        "perf_gate: {} metrics compared, {} regression(s) beyond {:.0}% ({})",
        checks.len(),
        regressions,
        THRESHOLD * 100.0,
        if strict {
            "strict gate, regressions fail"
        } else {
            "soft gate, informational only"
        }
    );
    if strict && regressions > 0 {
        std::process::exit(1);
    }
    // Soft mode exits 0: see the module docs — it warns, it never fails CI.
}

/// Gated metrics of a `BENCH_sim.json` pair.
fn sim_checks(checks: &mut Vec<Check>, recorded: &JsonValue, fresh: &JsonValue) {
    // Simulator throughput per benchmark graph (higher is better).
    let empty = Vec::new();
    let recorded_graphs = recorded
        .get("graphs")
        .and_then(|g| g.as_array())
        .unwrap_or(&empty);
    for g in recorded_graphs {
        let Some(name) = g.get("name").and_then(|n| n.as_str()) else {
            continue;
        };
        let fresh_graph = fresh
            .get("graphs")
            .and_then(|fg| fg.as_array())
            .and_then(|fg| {
                fg.iter()
                    .find(|cand| cand.get("name").and_then(|n| n.as_str()) == Some(name))
            });
        let Some(fresh_graph) = fresh_graph else {
            println!("PERF NOTE graphs/{name}: missing from fresh run, skipped");
            continue;
        };
        for metric in ["trace_sims_per_sec", "makespan_sims_per_sec"] {
            match (
                g.get(metric).and_then(|v| v.as_f64()),
                fresh_graph.get(metric).and_then(|v| v.as_f64()),
            ) {
                (Some(r), Some(f)) => checks.push(Check {
                    label: format!("graphs/{name}/{metric}"),
                    recorded: r,
                    fresh: f,
                    higher_is_better: true,
                }),
                _ => println!("PERF NOTE graphs/{name}/{metric}: missing, skipped"),
            }
        }
    }

    // Tuner throughput (higher is better).
    for metric in ["candidates_per_sec", "sims_per_sec"] {
        push_check(
            checks,
            recorded,
            fresh,
            &["fig9_tune", metric],
            format!("fig9_tune/{metric}"),
            true,
        );
    }

    // Branch-and-bound pruning effectiveness: the disposal rate is a
    // throughput (higher is better); the pruned/aborted/full-sim counters are
    // deterministic on a fixed space, so a count drifting means the bounds or
    // the incumbent chunking changed — note it rather than threshold-gate it.
    push_check(
        checks,
        recorded,
        fresh,
        &["fig9_tune_pruning", "candidates_per_sec"],
        "fig9_tune_pruning/candidates_per_sec".to_string(),
        true,
    );
    for counter in ["pruned_bound", "bounded_aborts", "full_sims"] {
        match (
            number_at(recorded, &["fig9_tune_pruning", counter]),
            number_at(fresh, &["fig9_tune_pruning", counter]),
        ) {
            (Some(r), Some(f)) => {
                if r != f {
                    println!(
                        "PERF NOTE fig9_tune_pruning/{counter}: recorded {r}, fresh {f} (pruning behaviour changed)"
                    );
                }
            }
            _ => println!("PERF NOTE fig9_tune_pruning/{counter}: missing on one side, skipped"),
        }
    }

    // Oracle phase durations (lower is better).
    for section in ["fig9_oracle_phases", "fig9_oracle_phases_warm"] {
        for phase in [
            "build_ms",
            "lower_ms",
            "plan_ms",
            "graph_ms",
            "simulate_ms",
            "total_ms",
        ] {
            push_check(
                checks,
                recorded,
                fresh,
                &[section, phase],
                format!("{section}/{phase}"),
                false,
            );
        }
    }
}

/// Gated metrics of a `BENCH_serve.json` pair: serving throughput (higher is
/// better) and warm/mixed latency percentiles (lower is better). The dedup
/// phase is a correctness invariant rather than a perf number, so a fresh run
/// that needed more than one search gets a note instead of a threshold check.
fn serve_checks(checks: &mut Vec<Check>, recorded: &JsonValue, fresh: &JsonValue) {
    if let Some(searches) = number_at(fresh, &["dedup", "searches"]) {
        if searches > 1.0 {
            println!(
                "PERF NOTE dedup/searches: fresh run needed {searches} searches for one identical volley (expected 1)"
            );
        }
    }
    for (phase, rps_path, lat_prefix) in [
        ("warm", vec!["warm", "requests_per_sec"], vec!["warm"]),
        (
            "mixed",
            vec!["mixed", "stats", "requests_per_sec"],
            vec!["mixed", "stats"],
        ),
    ] {
        push_check(
            checks,
            recorded,
            fresh,
            &rps_path,
            format!("{phase}/requests_per_sec"),
            true,
        );
        for pct in ["p50_us", "p95_us", "p99_us"] {
            let mut path = lat_prefix.clone();
            path.push(pct);
            push_check(
                checks,
                recorded,
                fresh,
                &path,
                format!("{phase}/{pct}"),
                false,
            );
        }
    }

    // Connection-ramp levels (schema v2), matched by connection count: the
    // latency at each level must not regress as connections multiply.
    let empty = Vec::new();
    let recorded_ramp = recorded
        .get("ramp")
        .and_then(|r| r.as_array())
        .unwrap_or(&empty);
    for level in recorded_ramp {
        let Some(conns) = level.get("connections").and_then(|c| c.as_f64()) else {
            continue;
        };
        let fresh_level = fresh.get("ramp").and_then(|r| r.as_array()).and_then(|r| {
            r.iter()
                .find(|cand| cand.get("connections").and_then(|c| c.as_f64()) == Some(conns))
        });
        let Some(fresh_level) = fresh_level else {
            println!("PERF NOTE ramp/c{conns}: missing from fresh run, skipped");
            continue;
        };
        for (metric, higher_is_better) in [
            ("requests_per_sec", true),
            ("p50_us", false),
            ("p95_us", false),
            ("p99_us", false),
        ] {
            match (
                number_at(level, &["stats", metric]),
                number_at(fresh_level, &["stats", metric]),
            ) {
                (Some(r), Some(f)) => checks.push(Check {
                    label: format!("ramp/c{conns}/{metric}"),
                    recorded: r,
                    fresh: f,
                    higher_is_better,
                }),
                _ => println!("PERF NOTE ramp/c{conns}/{metric}: missing, skipped"),
            }
        }
    }

    // Pipeline counters (schema v2): not latency dimensions, so they inform
    // rather than threshold-gate — but a fresh run that starts rejecting
    // requests or stops reusing the shared executor should say so in the log.
    for key in [
        "pool_rejected",
        "cache_evictions",
        "cache_expired",
        "executor_reuses",
    ] {
        match (
            number_at(recorded, &["metrics", key]),
            number_at(fresh, &["metrics", key]),
        ) {
            (Some(r), Some(f)) => {
                if key == "pool_rejected" && f > r {
                    println!(
                        "PERF NOTE metrics/pool_rejected: fresh run rejected {f} requests at the queue (recorded {r})"
                    );
                }
                if key == "executor_reuses" && r > 0.0 && f == 0.0 {
                    println!(
                        "PERF NOTE metrics/executor_reuses: fresh run never reused the shared executor (recorded {r})"
                    );
                }
            }
            _ => println!("PERF NOTE metrics/{key}: missing on one side, skipped"),
        }
    }
}
