//! Shared evaluation functions for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation (Section 7) has one
//! function here that produces its rows; the Criterion benches and the
//! `reproduce` binary both call these functions, so the printed numbers and the
//! benchmarked numbers are always the same code path.

#![deny(missing_docs)]

use tilelink_sim::{ClusterSpec, CostModelSpec, SharedCost};
use tilelink_workloads::{attention, baselines, e2e, mlp, moe, shapes, TuneOptions};

/// One (method, milliseconds) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Method name as used in the paper's legends.
    pub method: &'static str,
    /// Measured (simulated) time in milliseconds.
    pub ms: f64,
}

/// A labelled group of measurements (one cluster of bars in a figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// Workload label (for example "MLP-1" or "Attn-1 / 32k").
    pub label: String,
    /// Measurements of every method on this workload.
    pub entries: Vec<Measurement>,
}

impl Group {
    /// Time of one method in the group.
    ///
    /// # Panics
    ///
    /// Panics if the method is not present.
    pub fn ms_of(&self, method: &str) -> f64 {
        self.entries
            .iter()
            .find(|e| e.method == method)
            .unwrap_or_else(|| panic!("method {method} missing from group {}", self.label))
            .ms
    }

    /// Speed-up of `method` over `baseline` (>1 means `method` is faster).
    pub fn speedup(&self, method: &str, baseline: &str) -> f64 {
        self.ms_of(baseline) / self.ms_of(method)
    }
}

/// The default evaluation platform: one node of 8×H800.
pub fn default_cluster() -> ClusterSpec {
    ClusterSpec::h800_node(8)
}

/// Builds the cost provider a figure harness prices a cluster with.
///
/// # Panics
///
/// Panics if the spec names a calibration file that cannot be loaded (the
/// harness validates the flag before running figures).
pub fn cost_for(cluster: &ClusterSpec, spec: &CostModelSpec) -> SharedCost {
    spec.build(cluster)
        .unwrap_or_else(|e| panic!("cannot build cost model {spec}: {e}"))
}

// ---------------------------------------------------------------------------
// Table 2 — motivational example (MLP-1, AG+GEMM and GEMM+RS)
// ---------------------------------------------------------------------------

/// Reproduces Table 2: the four techniques on the two halves of MLP-1,
/// priced by `cost` (the cluster is the provider's; see [`cost_for`]).
pub fn table2(cost: &SharedCost) -> Vec<Group> {
    let shape = &shapes::mlp_shapes()[0];
    let ag = Group {
        label: "AG+GEMM (MLP-1)".to_string(),
        entries: vec![
            Measurement {
                method: "Non-Overlap",
                ms: baselines::non_overlap_ag_gemm_with(shape, &**cost).total_ms(),
            },
            Measurement {
                method: "Decomposition",
                ms: baselines::decompose_ag_gemm_with(shape, &**cost).total_ms(),
            },
            Measurement {
                method: "Fusion (FLUX)",
                ms: baselines::flux_ag_gemm_with(shape, &**cost).total_ms(),
            },
            Measurement {
                method: "TileLink",
                ms: mlp::timed_ag_gemm_with(shape, &mlp::ag_gemm_config(), cost)
                    .expect("tilelink ag+gemm")
                    .total_ms(),
            },
        ],
    };
    let rs = Group {
        label: "GEMM+RS (MLP-1)".to_string(),
        entries: vec![
            Measurement {
                method: "Non-Overlap",
                ms: baselines::non_overlap_gemm_rs_with(shape, &**cost).total_ms(),
            },
            Measurement {
                method: "Decomposition",
                ms: baselines::decompose_gemm_rs_with(shape, &**cost).total_ms(),
            },
            Measurement {
                method: "Fusion (FLUX)",
                ms: baselines::flux_gemm_rs_with(shape, &**cost).total_ms(),
            },
            Measurement {
                method: "TileLink",
                ms: mlp::timed_gemm_rs_with(shape, &mlp::gemm_rs_config(), cost)
                    .expect("tilelink gemm+rs")
                    .total_ms(),
            },
        ],
    };
    vec![ag, rs]
}

// ---------------------------------------------------------------------------
// Figure 8 — MLP layers
// ---------------------------------------------------------------------------

/// Which panel of Figure 8 to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlpPanel {
    /// AllGather + GEMM.
    AgGemm,
    /// GEMM + ReduceScatter.
    GemmRs,
    /// The full MLP layer.
    Full,
}

/// Reproduces one panel of Figure 8 across MLP-1..6, priced by `cost` (the
/// cluster is the provider's).
pub fn fig8(panel: MlpPanel, cost: &SharedCost) -> Vec<Group> {
    shapes::mlp_shapes()
        .iter()
        .map(|shape| {
            let (base, decomp, flux, tilelink) = match panel {
                MlpPanel::AgGemm => (
                    baselines::non_overlap_ag_gemm_with(shape, &**cost).total_ms(),
                    baselines::decompose_ag_gemm_with(shape, &**cost).total_ms(),
                    baselines::flux_ag_gemm_with(shape, &**cost).total_ms(),
                    mlp::timed_ag_gemm_with(shape, &mlp::ag_gemm_config(), cost)
                        .expect("tilelink")
                        .total_ms(),
                ),
                MlpPanel::GemmRs => (
                    baselines::non_overlap_gemm_rs_with(shape, &**cost).total_ms(),
                    baselines::decompose_gemm_rs_with(shape, &**cost).total_ms(),
                    baselines::flux_gemm_rs_with(shape, &**cost).total_ms(),
                    mlp::timed_gemm_rs_with(shape, &mlp::gemm_rs_config(), cost)
                        .expect("tilelink")
                        .total_ms(),
                ),
                MlpPanel::Full => (
                    baselines::non_overlap_full_mlp_with(shape, &**cost).total_ms(),
                    baselines::decompose_full_mlp_with(shape, &**cost).total_ms(),
                    baselines::flux_full_mlp_with(shape, &**cost).total_ms(),
                    mlp::timed_full_mlp_with(shape, cost)
                        .expect("tilelink")
                        .total_ms(),
                ),
            };
            Group {
                label: shape.name.to_string(),
                entries: vec![
                    Measurement {
                        method: "cuBLAS+NCCL",
                        ms: base,
                    },
                    Measurement {
                        method: "Async-TP Torch",
                        ms: decomp,
                    },
                    Measurement {
                        method: "FLUX",
                        ms: flux,
                    },
                    Measurement {
                        method: "TileLink",
                        ms: tilelink,
                    },
                ],
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 9 — MoE layers
// ---------------------------------------------------------------------------

/// Which panel of Figure 9 to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoePanel {
    /// AG + Gather + GroupGEMM.
    First,
    /// GroupGEMM + Scatter + TopK Reduce + RS.
    Second,
    /// The full MoE layer.
    Full,
}

/// Reproduces one panel of Figure 9 across MoE-1..6, priced by `cost` (the
/// cluster is the provider's).
pub fn fig9(panel: MoePanel, cost: &SharedCost) -> Vec<Group> {
    shapes::moe_shapes()
        .iter()
        .map(|shape| {
            let cfg = moe::moe_config();
            let (cublas, cutlass, vllm, tilelink) = match panel {
                MoePanel::First => (
                    baselines::cublas_nccl_moe_first_with(shape, &**cost).total_ms(),
                    baselines::cutlass_nccl_moe_first_with(shape, &**cost).total_ms(),
                    baselines::vllm_moe_first_with(shape, &**cost).total_ms(),
                    moe::timed_ag_group_gemm_with(shape, &cfg, cost)
                        .expect("tilelink")
                        .total_ms(),
                ),
                MoePanel::Second => (
                    baselines::cublas_nccl_moe_second_with(shape, &**cost).total_ms(),
                    baselines::cutlass_nccl_moe_second_with(shape, &**cost).total_ms(),
                    baselines::vllm_moe_second_with(shape, &**cost).total_ms(),
                    moe::timed_group_gemm_rs_with(shape, &cfg, cost)
                        .expect("tilelink")
                        .total_ms(),
                ),
                MoePanel::Full => (
                    baselines::cublas_nccl_full_moe_with(shape, &**cost).total_ms(),
                    baselines::cutlass_nccl_full_moe_with(shape, &**cost).total_ms(),
                    baselines::vllm_full_moe_with(shape, &**cost).total_ms(),
                    moe::timed_full_moe_with(shape, cost)
                        .expect("tilelink")
                        .total_ms(),
                ),
            };
            Group {
                label: shape.name.to_string(),
                entries: vec![
                    Measurement {
                        method: "cuBLAS+NCCL",
                        ms: cublas,
                    },
                    Measurement {
                        method: "CUTLASS+NCCL",
                        ms: cutlass,
                    },
                    Measurement {
                        method: "vLLM-Op",
                        ms: vllm,
                    },
                    Measurement {
                        method: "TileLink",
                        ms: tilelink,
                    },
                ],
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 10 — sequence-parallel attention + overlap ratio
// ---------------------------------------------------------------------------

/// One row of Figure 10: times for the three methods plus TileLink's overlap ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionRow {
    /// Group label ("Attn-1 / 32k").
    pub label: String,
    /// Method measurements.
    pub group: Group,
    /// TileLink's overlap ratio on this point (Section 7.2 metric).
    pub overlap_ratio: f64,
}

/// Reproduces Figure 10 for one attention configuration, priced by `cost`
/// (the cluster is the provider's).
pub fn fig10(shape_index: usize, cost: &SharedCost) -> Vec<AttentionRow> {
    let shape = &shapes::attn_shapes()[shape_index];
    shape
        .seq_lens
        .iter()
        .map(|&seq| {
            let torch = baselines::torch_attention_with(shape, seq, &**cost).total_ms();
            let ring = baselines::ring_attention_with(shape, seq, &**cost).total_ms();
            let tl = attention::timed_sp_attention_with(
                shape,
                seq,
                &attention::attention_config(),
                cost,
            )
            .expect("tilelink attention");
            AttentionRow {
                label: format!("{} / {}k", shape.name, seq / 1024),
                group: Group {
                    label: format!("{} / {}k", shape.name, seq / 1024),
                    entries: vec![
                        Measurement {
                            method: "Torch",
                            ms: torch,
                        },
                        Measurement {
                            method: "RingAttn",
                            ms: ring,
                        },
                        Measurement {
                            method: "TileLink",
                            ms: tl.total_ms(),
                        },
                    ],
                },
                overlap_ratio: tl.overlap_ratio(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 11 — end-to-end models
// ---------------------------------------------------------------------------

/// The tuned TileLink column of one Figure 11 row (present when the harness
/// ran with tuning, see [`fig11_tuned`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedE2e {
    /// TileLink time under searched per-layer configs, in milliseconds.
    pub ms: f64,
    /// Simulator evaluations the layer searches performed for this model.
    pub evaluations: usize,
    /// Lookups served by the persistent tuning cache instead of the simulator.
    pub cache_hits: usize,
}

/// One bar pair of Figure 11.
#[derive(Debug, Clone, PartialEq)]
pub struct E2eRow {
    /// Model name.
    pub model: &'static str,
    /// PyTorch baseline time in milliseconds.
    pub torch_ms: f64,
    /// TileLink time in milliseconds.
    pub tilelink_ms: f64,
    /// Tuned TileLink column; `None` when the harness ran without tuning.
    pub tuned: Option<TunedE2e>,
}

impl E2eRow {
    /// Speed-up of TileLink (default configs) over PyTorch.
    pub fn speedup(&self) -> f64 {
        self.torch_ms / self.tilelink_ms
    }

    /// Speed-up of tuned TileLink over PyTorch, when tuning ran.
    pub fn tuned_speedup(&self) -> Option<f64> {
        self.tuned.map(|t| self.torch_ms / t.ms)
    }
}

/// Reproduces Figure 11 for either the 8-GPU (false) or 16-GPU (true) setup.
///
/// Takes the cost-model *spec* rather than a built provider because the
/// cluster is chosen inside (a provider is bound to one cluster).
/// `model_subset` limits the evaluation to the first `n` models (the Criterion
/// benches use a subset to keep run times reasonable); pass `usize::MAX` for all.
pub fn fig11(two_nodes: bool, model_subset: usize, spec: &CostModelSpec) -> Vec<E2eRow> {
    let (cluster, tokens) = if two_nodes {
        e2e::two_node_setup()
    } else {
        e2e::single_node_setup()
    };
    let cost = cost_for(&cluster, spec);
    shapes::model_configs()
        .iter()
        .take(model_subset)
        .map(|model| {
            let cmp = e2e::compare_model_with(model, tokens, &cost).expect("e2e comparison");
            E2eRow {
                model: model.name,
                torch_ms: cmp.torch.total_s * 1e3,
                tilelink_ms: cmp.tilelink.total_s * 1e3,
                tuned: None,
            }
        })
        .collect()
}

/// [`fig11`] with a third, *tuned* TileLink column: per-layer configurations
/// come from the `tilelink-tune` search (strategy, space, persistent cache,
/// and — for MoE layers — routing distribution and objective all taken from
/// `opts`; its cost provider is overridden per cluster). With a warm
/// persistent cache the tuned column reports zero simulator evaluations.
///
/// # Panics
///
/// Panics if a comparison or layer search fails (the spec is validated by
/// [`cost_for`] before any search runs).
pub fn fig11_tuned(
    two_nodes: bool,
    model_subset: usize,
    spec: &CostModelSpec,
    opts: &TuneOptions,
) -> Vec<E2eRow> {
    let (cluster, tokens) = if two_nodes {
        e2e::two_node_setup()
    } else {
        e2e::single_node_setup()
    };
    let cost = cost_for(&cluster, spec);
    shapes::model_configs()
        .iter()
        .take(model_subset)
        .map(|model| {
            let cmp = e2e::compare_model_tuned_with(model, tokens, &cost, opts)
                .expect("tuned e2e comparison");
            E2eRow {
                model: model.name,
                torch_ms: cmp.base.torch.total_s * 1e3,
                tilelink_ms: cmp.base.tilelink.total_s * 1e3,
                tuned: Some(TunedE2e {
                    ms: cmp.tuned.timing.total_s * 1e3,
                    evaluations: cmp.tuned.evaluations,
                    cache_hits: cmp.tuned.cache_hits,
                }),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Simulator throughput (the engine's own perf trajectory)
// ---------------------------------------------------------------------------

/// Throughput of the simulator on one benchmark graph: full-trace path
/// ([`tilelink_sim::Engine::run`]) vs makespan-only fast path
/// ([`tilelink_sim::Engine::makespan`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SimThroughput {
    /// Graph label.
    pub name: &'static str,
    /// Number of tasks in the graph.
    pub tasks: usize,
    /// Simulations per second through the trace-recording path.
    pub trace_sims_per_sec: f64,
    /// Simulations per second through the makespan-only path.
    pub makespan_sims_per_sec: f64,
}

impl SimThroughput {
    /// Speed-up of the makespan-only path over the trace path.
    pub fn speedup(&self) -> f64 {
        self.makespan_sims_per_sec / self.trace_sims_per_sec
    }
}

fn time_sims(mut f: impl FnMut(), iters: usize) -> f64 {
    f(); // warm-up, untimed
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// The three representative kernel graphs every simulator-facing harness mode
/// shares (Figure 8 MLP half, routed Figure 9 MoE half, two-node e2e-scale
/// kernel), each paired with the cost provider that priced it.
///
/// # Panics
///
/// Panics if a benchmark kernel fails to build (a compiler regression) or the
/// spec names an unloadable calibration file.
pub fn benchmark_graphs(
    spec: &CostModelSpec,
) -> Vec<(&'static str, SharedCost, tilelink_sim::TaskGraph)> {
    use tilelink_workloads::simgraph;

    let single = cost_for(&default_cluster(), spec);
    let two_node = cost_for(&e2e::two_node_setup().0, spec);
    let fig8 = simgraph::fig8_mlp_graph_with(&single).expect("fig8 bench graph");
    let fig9 = simgraph::fig9_routed_moe_graph_with(&single).expect("fig9 bench graph");
    let e2e = simgraph::e2e_two_node_graph_with(&two_node).expect("e2e bench graph");
    vec![
        ("fig8_mlp_ag_gemm", single.clone(), fig8),
        ("fig9_routed_moe_first", single, fig9),
        ("e2e_two_node_ag_gemm", two_node, e2e),
    ]
}

/// Measures simulations/second on the three representative kernel graphs
/// ([`benchmark_graphs`]) priced by `spec`'s cost model, `iters` timed
/// simulations per path.
///
/// # Panics
///
/// Panics if a benchmark kernel fails to build (a compiler regression) or the
/// spec names an unloadable calibration file.
pub fn sim_throughput(iters: usize, spec: &CostModelSpec) -> Vec<SimThroughput> {
    use tilelink_sim::{Engine, SimScratch};

    benchmark_graphs(spec)
        .into_iter()
        .map(|(name, cost, graph)| {
            let engine = Engine::with_cost(cost.clone());
            let mut scratch = SimScratch::new();
            let trace_sims_per_sec = time_sims(
                || {
                    std::hint::black_box(engine.run(&graph).expect("trace path"));
                },
                iters,
            );
            let makespan_sims_per_sec = time_sims(
                || {
                    std::hint::black_box(
                        engine
                            .makespan_with_scratch(&graph, &mut scratch)
                            .expect("fast path"),
                    );
                },
                iters,
            );
            SimThroughput {
                name,
                tasks: graph.len(),
                trace_sims_per_sec,
                makespan_sims_per_sec,
            }
        })
        .collect()
}

/// Wall-clock throughput of one cold Figure 9 MoE tuning run (in-memory
/// cache, so every candidate is either simulated or disposed of by the
/// branch-and-bound machinery).
#[derive(Debug, Clone, PartialEq)]
pub struct TuneThroughput {
    /// Wall-clock seconds of the whole search.
    pub wall_s: f64,
    /// Distinct candidates ranked by the search (fully simulated).
    pub candidates: usize,
    /// Oracle calls performed (each prices one candidate on the simulator).
    pub evaluations: usize,
    /// Candidates *disposed of* per second of wall time: ranked candidates
    /// plus those branch-and-bound discarded (skipped on their lower bound or
    /// abort-shortened by the incumbent cutoff). A pruned candidate is search
    /// progress just like a simulated one — the search answered "can this
    /// win?" for it — so the throughput counts both.
    pub candidates_per_sec: f64,
    /// Oracle evaluations per second of wall time.
    pub sims_per_sec: f64,
    /// Candidates skipped outright: lower bound already met the incumbent.
    pub pruned_bound: usize,
    /// Candidates whose simulation aborted early at the incumbent cutoff.
    pub bounded_aborts: usize,
    /// Candidates fully simulated (the ranked count).
    pub full_sims: usize,
    /// Candidate compiles served by patching a cached lowered program.
    pub compile_patched: u64,
    /// Candidate compiles that rebuilt the tile program from the frontend.
    pub compile_full_rebuilds: u64,
}

impl TuneThroughput {
    /// Fraction of candidate compiles served by the incremental patch path.
    pub fn patch_rate(&self) -> f64 {
        let total = self.compile_patched + self.compile_full_rebuilds;
        if total == 0 {
            0.0
        } else {
            self.compile_patched as f64 / total as f64
        }
    }

    /// Fraction of disposed candidates that branch-and-bound short-circuited
    /// (lower-bound skips plus cutoff-bounded aborts).
    pub fn short_circuit_rate(&self) -> f64 {
        let disposed = self.full_sims + self.pruned_bound + self.bounded_aborts;
        if disposed == 0 {
            0.0
        } else {
            (self.pruned_bound + self.bounded_aborts) as f64 / disposed as f64
        }
    }
}

/// Times a cold `tilelink-tune` search on the first Figure 9 MoE shape,
/// priced by `spec`'s cost model.
///
/// `quick` uses a compact space and a narrow beam (the CI trajectory
/// recording); otherwise the standard space under the default strategy — the
/// same search `reproduce --tune` runs per shape.
///
/// The search is repeated from a cold compile cache several times and the
/// fastest repeat is reported (criterion-style minimum-time estimation): a
/// quick search finishes in ~10 ms, so a single wall-clock window is dominated
/// by scheduler noise on a shared core, while the best of N approaches the
/// true cost of the work.
///
/// # Panics
///
/// Panics if the search fails (an oracle or space regression) or the spec
/// names an unloadable calibration file.
pub fn fig9_tune_throughput(quick: bool, spec: &CostModelSpec) -> TuneThroughput {
    use tilelink::TileShape;
    use tilelink_tune::{SearchSpace, Strategy};
    use tilelink_workloads::autotune;

    let shape = shapes::moe_shapes()[0].clone();
    let opts = if quick {
        // A compact 128-combination grid, searched exhaustively: the CI
        // trajectory recording for the branch-and-bound path. The space
        // deliberately spans the Sm mappings and small compute tiles whose
        // admissible lower bounds exceed the best configuration's makespan,
        // so a healthy run disposes of most of the grid without compiling
        // or fully simulating it (`fig9_tune_pruning` in `BENCH_sim.json`).
        TuneOptions {
            strategy: Strategy::Exhaustive,
            space: SearchSpace::new()
                .with_comm_tiles([TileShape::new(64, 64), TileShape::new(128, 128)])
                .with_compute_tiles([
                    TileShape::new(64, 128),
                    TileShape::new(128, 128),
                    TileShape::new(128, 256),
                    TileShape::new(256, 256),
                ])
                .with_mappings([
                    tilelink::CommMapping::CopyEngine,
                    tilelink::CommMapping::Sm { sms: 8 },
                    tilelink::CommMapping::Sm { sms: 12 },
                    tilelink::CommMapping::Sm { sms: 16 },
                    tilelink::CommMapping::Sm { sms: 20 },
                    tilelink::CommMapping::Sm { sms: 40 },
                ])
                .with_channels([1, 4])
                .with_stages([2, 4]),
            ..TuneOptions::default()
        }
    } else {
        TuneOptions {
            strategy: Strategy::default(),
            ..TuneOptions::default()
        }
    };
    let opts = opts.with_cost(cost_for(&default_cluster(), spec));
    let repeats = if quick { 5 } else { 3 };
    let mut best: Option<TuneThroughput> = None;
    for _ in 0..repeats {
        // A cold search: no lowered programs carried over from earlier runs in
        // this process (or from the previous repeat).
        tilelink::reset_compile_cache();
        let start = std::time::Instant::now();
        let tuned = autotune::tuned_full_moe(&shape, &default_cluster(), &opts).expect("fig9 tune");
        let wall_s = start.elapsed().as_secs_f64();
        let disposed = tuned.search.ranked.len() + tuned.search.failed.bound_pruned;
        let run = TuneThroughput {
            wall_s,
            candidates: tuned.search.ranked.len(),
            evaluations: tuned.search.evaluations,
            candidates_per_sec: disposed as f64 / wall_s,
            sims_per_sec: tuned.search.evaluations as f64 / wall_s,
            pruned_bound: tuned.search.pruned_bound(),
            bounded_aborts: tuned.search.bounded_aborts,
            full_sims: tuned.search.ranked.len(),
            compile_patched: tuned.search.compile_patched,
            compile_full_rebuilds: tuned.search.compile_full_rebuilds,
        };
        if best
            .as_ref()
            .is_none_or(|b| run.candidates_per_sec > b.candidates_per_sec)
        {
            best = Some(run);
        }
    }
    best.expect("at least one tune repeat")
}

/// Wall-clock milliseconds of each instrumented phase of one full Figure 9
/// MoE oracle evaluation (see [`fig9_oracle_phases`]): the compile-vs-simulate
/// attribution the ROADMAP's compile-speedup work will be judged against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OraclePhases {
    /// Tile-program building (`compile.build` spans).
    pub build_ms: f64,
    /// Lowering + consistency checks + pipelining (`compile.lower`).
    pub lower_ms: f64,
    /// Resource planning (`compile.plan`, [`ResourcePlan::derive`]-equivalent).
    pub plan_ms: f64,
    /// Task-graph construction (`graph.build`).
    pub graph_ms: f64,
    /// Discrete-event simulation (`simulate`).
    pub simulate_ms: f64,
    /// Wall clock of the whole oracle evaluation (phases plus glue).
    pub total_ms: f64,
}

impl OraclePhases {
    /// Fraction of the evaluation spent compiling (build + lower + plan +
    /// graph construction) rather than simulating.
    pub fn compile_fraction(&self) -> f64 {
        let compile = self.build_ms + self.lower_ms + self.plan_ms + self.graph_ms;
        let attributed = compile + self.simulate_ms;
        if attributed > 0.0 {
            compile / attributed
        } else {
            0.0
        }
    }
}

/// Cold and warm phase attributions of the Figure 9 MoE oracle.
///
/// *Cold* is the first evaluation after [`tilelink::reset_compile_cache`]:
/// the tile programs are built from the frontend, lowered and checked. *Warm*
/// is the steady state the tuner actually runs in: the immediately following
/// evaluation of the same `(workload, cluster)`, where the compiler patches
/// the cached lowered programs (pipeline + re-plan only) instead of
/// rebuilding them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleProfile {
    /// First evaluation, empty compile cache.
    pub cold: OraclePhases,
    /// Second evaluation, incremental recompilation path.
    pub warm: OraclePhases,
}

/// Profiles one full Figure 9 MoE oracle evaluation (default config, MoE-1,
/// both layer halves plus activation) twice — cold, then warm — and
/// attributes each evaluation's wall time to the instrumented pipeline
/// phases.
///
/// The span profiler is enabled just for these evaluations and restored to
/// its previous state afterwards; spans recorded before the call are
/// preserved for any later process-wide profile report.
///
/// # Panics
///
/// Panics if the evaluation fails (a compiler/oracle regression) or the spec
/// names an unloadable calibration file.
pub fn fig9_oracle_phases(spec: &CostModelSpec) -> OracleProfile {
    use tilelink_tune::CostOracle;
    use tilelink_workloads::autotune::MoeOracle;

    let shape = shapes::moe_shapes()[0].clone();
    let oracle =
        MoeOracle::new(shape, default_cluster()).with_cost(cost_for(&default_cluster(), spec));
    let was_enabled = tilelink_probe::enabled();
    tilelink_probe::set_enabled(true);
    // Scoped capture: set aside spans recorded before these evaluations so
    // each report attributes exactly one oracle call, then put everything
    // back.
    let mut prior = tilelink_probe::take_spans();
    tilelink::reset_compile_cache();
    let mut measure = || {
        let start = std::time::Instant::now();
        oracle
            .evaluate(&tilelink::OverlapConfig::default())
            .expect("fig9 oracle evaluation");
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        let ours = tilelink_probe::take_spans();
        let report = tilelink_probe::ProfileReport::from_spans(&ours);
        prior.extend(ours);
        let ms = |name: &str| report.phase(name).map_or(0.0, |p| p.total_ms());
        OraclePhases {
            build_ms: ms("compile.build"),
            lower_ms: ms("compile.lower"),
            plan_ms: ms("compile.plan"),
            graph_ms: ms("graph.build"),
            simulate_ms: ms("simulate"),
            total_ms,
        }
    };
    let cold = measure();
    let warm = measure();
    tilelink_probe::set_enabled(was_enabled);
    tilelink_probe::restore_spans(prior);
    OracleProfile { cold, warm }
}

/// Serialises the simulator-throughput trajectory as JSON (`BENCH_sim.json`):
/// per-graph simulations/sec on both engine paths, the compile-vs-simulate
/// phase breakdown of one full Figure 9 MoE oracle evaluation, plus the
/// Figure 9 tune throughput, so future perf PRs have a baseline to compare
/// against. `cost_revision` records which cost model priced the runs.
pub fn bench_sim_json(
    graphs: &[SimThroughput],
    profile: &OracleProfile,
    tune: &TuneThroughput,
    quick: bool,
    cost_revision: &str,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"tilelink-bench-sim/v1\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"cost_revision\": \"{cost_revision}\",\n"));
    out.push_str("  \"graphs\": [\n");
    for (i, g) in graphs.iter().enumerate() {
        let comma = if i + 1 == graphs.len() { "" } else { "," };
        out.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"tasks\": {}, \"trace_sims_per_sec\": {:.1}, ",
                "\"makespan_sims_per_sec\": {:.1}, \"speedup\": {:.2}}}{}\n"
            ),
            g.name,
            g.tasks,
            g.trace_sims_per_sec,
            g.makespan_sims_per_sec,
            g.speedup(),
            comma
        ));
    }
    out.push_str("  ],\n");
    let phase_entry = |phases: &OraclePhases| {
        format!(
            concat!(
                "{{\"build_ms\": {:.4}, \"lower_ms\": {:.4}, ",
                "\"plan_ms\": {:.4}, \"graph_ms\": {:.4}, \"simulate_ms\": {:.4}, ",
                "\"total_ms\": {:.4}, \"compile_fraction\": {:.3}}}"
            ),
            phases.build_ms,
            phases.lower_ms,
            phases.plan_ms,
            phases.graph_ms,
            phases.simulate_ms,
            phases.total_ms,
            phases.compile_fraction()
        )
    };
    out.push_str(&format!(
        "  \"fig9_oracle_phases\": {},\n",
        phase_entry(&profile.cold)
    ));
    out.push_str(&format!(
        "  \"fig9_oracle_phases_warm\": {},\n",
        phase_entry(&profile.warm)
    ));
    out.push_str(&format!(
        concat!(
            "  \"fig9_tune\": {{\"wall_s\": {:.3}, \"candidates\": {}, \"evaluations\": {}, ",
            "\"candidates_per_sec\": {:.1}, \"sims_per_sec\": {:.1}, ",
            "\"compile_patched\": {}, \"compile_full_rebuilds\": {}, \"patch_rate\": {:.3}}},\n"
        ),
        tune.wall_s,
        tune.candidates,
        tune.evaluations,
        tune.candidates_per_sec,
        tune.sims_per_sec,
        tune.compile_patched,
        tune.compile_full_rebuilds,
        tune.patch_rate()
    ));
    out.push_str(&format!(
        concat!(
            "  \"fig9_tune_pruning\": {{\"candidates_per_sec\": {:.1}, ",
            "\"pruned_bound\": {}, \"bounded_aborts\": {}, \"full_sims\": {}, ",
            "\"short_circuit_rate\": {:.3}}}\n"
        ),
        tune.candidates_per_sec,
        tune.pruned_bound,
        tune.bounded_aborts,
        tune.full_sims,
        tune.short_circuit_rate()
    ));
    out.push('}');
    out
}

/// Serialises a serve load-generator run as JSON (`BENCH_serve.json`):
/// dedup-phase batching counts, warm-path latency percentiles and
/// throughput, the mixed-phase source breakdown, the connection-ramp levels
/// and the pipeline-counter deltas, next to `BENCH_sim.json` so `perf_gate`
/// can soft-gate serving performance the same way it gates simulator
/// throughput.
pub fn bench_serve_json(report: &tilelink_serve::ServeBenchReport) -> String {
    let latency_entry = |stats: &tilelink_serve::loadgen::LatencyStats| {
        format!(
            concat!(
                "{{\"requests\": {}, \"wall_s\": {:.4}, \"requests_per_sec\": {:.1}, ",
                "\"mean_us\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, ",
                "\"max_us\": {}}}"
            ),
            stats.count,
            stats.wall_s,
            stats.requests_per_sec,
            stats.mean_us,
            stats.p50_us,
            stats.p95_us,
            stats.p99_us,
            stats.max_us
        )
    };
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"tilelink-bench-serve/v2\",\n");
    out.push_str(&format!("  \"quick\": {},\n", report.config.quick));
    out.push_str(&format!(
        "  \"cost_revision\": \"{}\",\n",
        report.cost_revision
    ));
    out.push_str(&format!(
        concat!(
            "  \"dedup\": {{\"waiters\": {}, \"searches\": {}, \"deduped\": {}, ",
            "\"warm\": {}, \"identical\": {}}},\n"
        ),
        report.dedup.waiters,
        report.dedup.searches,
        report.dedup.deduped,
        report.dedup.warm,
        report.dedup.identical
    ));
    out.push_str(&format!("  \"warm\": {},\n", latency_entry(&report.warm)));
    out.push_str(&format!(
        "  \"mixed\": {{\"stats\": {}, \"warm\": {}, \"cold\": {}, \"deduped\": {}}},\n",
        latency_entry(&report.mixed.stats),
        report.mixed.warm,
        report.mixed.cold,
        report.mixed.deduped
    ));
    out.push_str("  \"ramp\": [\n");
    for (i, level) in report.ramp.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"connections\": {}, \"stats\": {}}}{}\n",
            level.connections,
            latency_entry(&level.stats),
            if i + 1 < report.ramp.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        concat!(
            "  \"metrics\": {{\"pool_rejected\": {}, \"cache_evictions\": {}, ",
            "\"cache_expired\": {}, \"executor_reuses\": {}}}\n"
        ),
        report.metrics.pool_rejected,
        report.metrics.cache_evictions,
        report.metrics.cache_expired,
        report.metrics.executor_reuses
    ));
    out.push('}');
    out
}

/// Times `iters` invocations of `f` and prints min/median/max wall-clock
/// milliseconds under `name`.
///
/// A minimal stand-in for a third-party benchmark harness (none is available
/// in this offline environment); the `cargo bench` targets of this crate are
/// plain `harness = false` binaries built on it.
pub fn bench_case(name: &str, iters: usize, mut f: impl FnMut()) {
    f(); // warm-up, untimed
    let mut samples_ms = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let start = std::time::Instant::now();
        f();
        samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples_ms.sort_by(f64::total_cmp);
    println!(
        "{name:<44} median {:>9.3} ms  (min {:>9.3}, max {:>9.3}, {} iters)",
        samples_ms[samples_ms.len() / 2],
        samples_ms[0],
        samples_ms[samples_ms.len() - 1],
        samples_ms.len()
    );
}

/// Geometric mean of an iterator of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn table2_has_expected_shape_and_ordering() {
        let groups = table2(&cost_for(&default_cluster(), &CostModelSpec::Analytic));
        assert_eq!(groups.len(), 2);
        for g in &groups {
            assert_eq!(g.entries.len(), 4);
            // Decomposition is the slowest method in both halves (paper Table 2).
            assert!(g.ms_of("Decomposition") > g.ms_of("Non-Overlap"));
            // TileLink beats the non-overlapping baseline.
            assert!(g.speedup("TileLink", "Non-Overlap") > 1.0, "{g:?}");
        }
    }

    #[test]
    fn bench_serve_json_parses_with_every_gated_key() {
        let stats = |count: usize| tilelink_serve::loadgen::LatencyStats {
            count,
            wall_s: 0.5,
            requests_per_sec: count as f64 / 0.5,
            mean_us: 42.0,
            p50_us: 30,
            p95_us: 90,
            p99_us: 150,
            max_us: 400,
        };
        let report = tilelink_serve::ServeBenchReport {
            config: tilelink_serve::LoadGenConfig::quick(CostModelSpec::Analytic),
            cost_revision: "analytic-v2".to_string(),
            dedup: tilelink_serve::loadgen::DedupPhase {
                waiters: 16,
                searches: 1,
                deduped: 15,
                warm: 0,
                identical: 16,
            },
            warm: stats(2000),
            mixed: tilelink_serve::loadgen::MixedPhase {
                stats: stats(200),
                warm: 150,
                cold: 30,
                deduped: 20,
            },
            ramp: vec![
                tilelink_serve::RampLevel {
                    connections: 8,
                    stats: stats(2000),
                },
                tilelink_serve::RampLevel {
                    connections: 64,
                    stats: stats(2000),
                },
            ],
            metrics: tilelink_serve::PipelineMetrics {
                pool_rejected: 0,
                cache_evictions: 3,
                cache_expired: 1,
                executor_reuses: 12,
            },
        };
        let json = bench_serve_json(&report);
        let v = tilelink_probe::parse_json(&json).expect("valid BENCH_serve JSON");
        // The keys perf_gate reads; losing one silently un-gates serving perf.
        for (path, key) in [
            ("warm", "requests_per_sec"),
            ("warm", "p50_us"),
            ("warm", "p95_us"),
            ("warm", "p99_us"),
            ("dedup", "searches"),
            ("dedup", "deduped"),
            ("metrics", "pool_rejected"),
            ("metrics", "cache_evictions"),
            ("metrics", "cache_expired"),
            ("metrics", "executor_reuses"),
        ] {
            assert!(
                v.get(path).and_then(|o| o.get(key)).is_some(),
                "missing {path}.{key} in {json}"
            );
        }
        assert!(v
            .get("mixed")
            .and_then(|m| m.get("stats"))
            .and_then(|s| s.get("p99_us"))
            .is_some());
        // Every ramp level carries connections + p99 for the gate.
        let ramp = v
            .get("ramp")
            .and_then(|r| r.as_array())
            .expect("ramp array");
        assert_eq!(ramp.len(), 2);
        for level in ramp {
            assert!(level.get("connections").is_some());
            assert!(level.get("stats").and_then(|s| s.get("p99_us")).is_some());
        }
    }

    #[test]
    fn fig10_rows_have_overlap_ratio() {
        let rows = fig10(0, &cost_for(&default_cluster(), &CostModelSpec::Analytic));
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.overlap_ratio >= 0.0 && r.overlap_ratio <= 1.0);
            assert!(r.group.speedup("TileLink", "Torch") > 1.0);
        }
    }

    #[test]
    fn sim_throughput_measures_all_three_graphs() {
        let rows = sim_throughput(2, &CostModelSpec::Analytic);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.tasks > 0, "{}", r.name);
            assert!(r.trace_sims_per_sec > 0.0, "{}", r.name);
            assert!(r.makespan_sims_per_sec > 0.0, "{}", r.name);
        }
        let tune = TuneThroughput {
            wall_s: 2.0,
            candidates: 10,
            evaluations: 8,
            candidates_per_sec: 5.0,
            sims_per_sec: 4.0,
            pruned_bound: 4,
            bounded_aborts: 2,
            full_sims: 10,
            compile_patched: 18,
            compile_full_rebuilds: 2,
        };
        let cold = OraclePhases {
            build_ms: 0.5,
            lower_ms: 1.0,
            plan_ms: 0.25,
            graph_ms: 0.75,
            simulate_ms: 2.5,
            total_ms: 5.5,
        };
        let warm = OraclePhases {
            build_ms: 0.0,
            lower_ms: 0.2,
            plan_ms: 0.05,
            graph_ms: 0.3,
            simulate_ms: 2.5,
            total_ms: 3.2,
        };
        let profile = OracleProfile { cold, warm };
        let json = bench_sim_json(&rows, &profile, &tune, true, "analytic-v2");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"fig9_tune\""));
        assert!(json.contains("fig9_routed_moe_first"));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"cost_revision\": \"analytic-v2\""));
        // The perf trajectory is machine-read by CI and future PRs: hold it to
        // a validator-grade parse, and check the phase keys CI gates on.
        let v = tilelink_probe::parse_json(&json).expect("valid BENCH_sim JSON");
        for entry in ["fig9_oracle_phases", "fig9_oracle_phases_warm"] {
            let ph = v.get(entry).expect("phase breakdown");
            for key in ["build_ms", "lower_ms", "plan_ms", "graph_ms", "simulate_ms"] {
                assert!(
                    ph.get(key)
                        .and_then(tilelink_probe::JsonValue::as_f64)
                        .is_some(),
                    "{entry}.{key}"
                );
            }
        }
        assert_eq!(
            v.get("fig9_oracle_phases")
                .and_then(|p| p.get("compile_fraction"))
                .and_then(tilelink_probe::JsonValue::as_f64),
            Some(0.5)
        );
        let tune_v = v.get("fig9_tune").expect("tune block");
        assert_eq!(
            tune_v
                .get("patch_rate")
                .and_then(tilelink_probe::JsonValue::as_f64),
            Some(0.9)
        );
        let pruning = v.get("fig9_tune_pruning").expect("pruning block");
        for (key, want) in [
            ("candidates_per_sec", 5.0),
            ("pruned_bound", 4.0),
            ("bounded_aborts", 2.0),
            ("full_sims", 10.0),
            // 6 of 16 disposed candidates were short-circuited.
            ("short_circuit_rate", 0.375),
        ] {
            assert_eq!(
                pruning.get(key).and_then(tilelink_probe::JsonValue::as_f64),
                Some(want),
                "fig9_tune_pruning.{key}"
            );
        }
    }

    #[test]
    fn fig9_oracle_phases_attribute_the_evaluation() {
        let profile = fig9_oracle_phases(&CostModelSpec::Analytic);
        let phases = profile.cold;
        // Every instrumented phase of a cold MoE oracle evaluation must
        // actually run: both halves build + lower + plan, build their graphs,
        // and simulate.
        assert!(phases.build_ms > 0.0, "{phases:?}");
        assert!(phases.lower_ms > 0.0, "{phases:?}");
        assert!(phases.plan_ms > 0.0, "{phases:?}");
        assert!(phases.graph_ms > 0.0, "{phases:?}");
        assert!(phases.simulate_ms > 0.0, "{phases:?}");
        // Attributed phase time can never exceed the evaluation's wall clock
        // (build/lower/plan/graph/simulate are disjoint top-level scopes).
        let attributed = phases.build_ms
            + phases.lower_ms
            + phases.plan_ms
            + phases.graph_ms
            + phases.simulate_ms;
        assert!(
            attributed <= phases.total_ms,
            "attributed {attributed} ms > wall {} ms",
            phases.total_ms
        );
        let frac = phases.compile_fraction();
        assert!((0.0..=1.0).contains(&frac), "{frac}");
        // The warm evaluation rides the incremental recompilation path: the
        // frontend build never runs, while lowering (the cached-program
        // patch), planning, graph construction and simulation still do.
        let warm = profile.warm;
        assert!(warm.build_ms == 0.0, "{warm:?}");
        assert!(warm.lower_ms > 0.0, "{warm:?}");
        assert!(warm.plan_ms > 0.0, "{warm:?}");
        assert!(warm.graph_ms > 0.0, "{warm:?}");
        assert!(warm.simulate_ms > 0.0, "{warm:?}");
    }

    #[test]
    fn fig8_trace_out_is_validator_grade_chrome_json() {
        use tilelink_probe::JsonValue;

        // The same graph `--trace-out` exports: first of the benchmark set.
        let (name, cost, graph) = benchmark_graphs(&CostModelSpec::Analytic)
            .into_iter()
            .next()
            .expect("benchmark graphs");
        assert_eq!(name, "fig8_mlp_ag_gemm");
        let tasks = graph.len();
        let trace = tilelink_sim::Engine::with_cost(cost)
            .run(&graph)
            .expect("fig8 graph simulates");
        let parsed = tilelink_probe::parse_json(&trace.to_chrome_json()).expect("valid trace JSON");
        let JsonValue::Array(events) = parsed else {
            panic!("trace_event output must be a JSON array");
        };
        let meta_of = |meta: &str, pid: f64, tid: Option<f64>| {
            events
                .iter()
                .filter(|m| {
                    m.get("ph").and_then(JsonValue::as_str) == Some("M")
                        && m.get("name").and_then(JsonValue::as_str) == Some(meta)
                        && m.get("pid").and_then(JsonValue::as_f64) == Some(pid)
                        && tid.is_none_or(|t| m.get("tid").and_then(JsonValue::as_f64) == Some(t))
                })
                .count()
        };
        let mut x_events = 0usize;
        for ev in &events {
            let pid = ev.get("pid").and_then(JsonValue::as_f64).expect("pid");
            let tid = ev.get("tid").and_then(JsonValue::as_f64).expect("tid");
            match ev.get("ph").and_then(JsonValue::as_str) {
                Some("M") => {}
                Some("X") => {
                    x_events += 1;
                    // Consistent timestamps, and lanes/processes that were
                    // actually declared: every rank names its process, every
                    // used resource lane names its thread.
                    assert!(ev.get("ts").and_then(JsonValue::as_f64).expect("ts") >= 0.0);
                    assert!(ev.get("dur").and_then(JsonValue::as_f64).expect("dur") >= 0.0);
                    assert_eq!(meta_of("process_name", pid, None), 1, "pid {pid}");
                    assert_eq!(
                        meta_of("thread_name", pid, Some(tid)),
                        1,
                        "pid {pid} tid {tid}"
                    );
                }
                ph => panic!("unexpected ph {ph:?}"),
            }
        }
        // One complete event per simulated task, spread over all 8 ranks.
        assert_eq!(x_events, tasks);
        let mut pids: Vec<u64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(JsonValue::as_f64))
            .map(|p| p as u64)
            .collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sim_throughput_accepts_the_calibrated_model() {
        let spec = CostModelSpec::Calibrated { path: None };
        let rows = sim_throughput(1, &spec);
        assert_eq!(rows.len(), 3);
        let tune = fig9_tune_throughput(true, &spec);
        assert!(tune.evaluations > 0);
        assert!(tune.wall_s > 0.0);
    }

    #[test]
    fn fig11_subset_speeds_up() {
        let rows = fig11(false, 2, &CostModelSpec::Analytic);
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(r.speedup() > 1.0, "{}: {:.2}", r.model, r.speedup());
            assert_eq!(r.tuned, None);
            assert_eq!(r.tuned_speedup(), None);
        }
    }

    #[test]
    fn fig11_tuned_rows_carry_the_tuned_column() {
        let opts = tilelink_workloads::TuneOptions::default();
        let rows = fig11_tuned(false, 1, &CostModelSpec::Analytic, &opts);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        let t = r.tuned.expect("tuned column");
        assert!(t.evaluations > 0, "cold in-memory search must simulate");
        // Under the deterministic analytic model the searched config never
        // loses to the hand-picked defaults end to end (empirical pin, same
        // caveat as e2e::tests::tuned_speedup_is_at_least_the_default_config_speedup).
        let tuned_speedup = r.tuned_speedup().expect("tuned speedup");
        assert!(
            tuned_speedup >= r.speedup(),
            "tuned {tuned_speedup:.3}x < default {:.3}x",
            r.speedup()
        );
    }
}
