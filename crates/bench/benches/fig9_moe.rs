//! Figure 9: MoE layers across MoE-1..6.
//!
//! Run with `cargo bench -p tilelink-bench --bench fig9_moe`.

use tilelink_bench::{bench_case, cost_for, default_cluster, fig9, geomean, MoePanel};
use tilelink_sim::CostModelSpec;
use tilelink_workloads::{moe, shapes};

fn main() {
    let cluster = default_cluster();
    let cost = cost_for(&cluster, &CostModelSpec::Analytic);
    for shape in shapes::moe_shapes().iter().take(2) {
        bench_case(
            &format!("fig9/tilelink_full_moe/{}", shape.name),
            10,
            || {
                moe::timed_full_moe(shape, &cluster).unwrap();
            },
        );
    }

    for (panel, name) in [
        (MoePanel::First, "AG+Gather+GroupGEMM"),
        (MoePanel::Second, "GroupGEMM+Scatter+TopK+RS"),
        (MoePanel::Full, "full MoE"),
    ] {
        let groups = fig9(panel, &cost);
        println!(
            "Figure 9 {name}: TileLink geomean speedup over cuBLAS+NCCL = {:.2}x, over vLLM-Op = {:.2}x",
            geomean(groups.iter().map(|g| g.speedup("TileLink", "cuBLAS+NCCL"))),
            geomean(groups.iter().map(|g| g.speedup("TileLink", "vLLM-Op"))),
        );
    }
}
