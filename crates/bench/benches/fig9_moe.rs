//! Figure 9: MoE layers across MoE-1..6.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tilelink_bench::{default_cluster, fig9, geomean, MoePanel};
use tilelink_workloads::{moe, shapes};

fn bench_fig9(c: &mut Criterion) {
    let cluster = default_cluster();
    let mut group = c.benchmark_group("fig9_moe");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for shape in shapes::moe_shapes().iter().take(2) {
        group.bench_function(format!("tilelink_full_moe/{}", shape.name), |b| {
            b.iter(|| moe::timed_full_moe(shape, &cluster).unwrap())
        });
    }
    group.finish();

    for (panel, name) in [
        (MoePanel::First, "AG+Gather+GroupGEMM"),
        (MoePanel::Second, "GroupGEMM+Scatter+TopK+RS"),
        (MoePanel::Full, "full MoE"),
    ] {
        let groups = fig9(&cluster, panel);
        println!(
            "Figure 9 {name}: TileLink geomean speedup over cuBLAS+NCCL = {:.2}x, over vLLM-Op = {:.2}x",
            geomean(groups.iter().map(|g| g.speedup("TileLink", "cuBLAS+NCCL"))),
            geomean(groups.iter().map(|g| g.speedup("TileLink", "vLLM-Op"))),
        );
    }
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
