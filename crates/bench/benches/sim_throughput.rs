//! Raw simulator throughput: full-trace path vs makespan-only fast path on
//! the three representative kernel graphs (Figure 8 MLP half, routed Figure 9
//! MoE half, two-node e2e-scale kernel), plus the wall-clock throughput of a
//! cold Figure 9 tuning run.
//!
//! Run with `cargo bench -p tilelink-bench --bench sim_throughput`
//! (`SIM_BENCH_ITERS` overrides the per-path iteration count). This is the
//! local view of the trajectory `reproduce --bench-sim --json` records into
//! `BENCH_sim.json` for CI.

use tilelink_bench::{fig9_tune_throughput, sim_throughput};
use tilelink_sim::CostModelSpec;

fn main() {
    let iters: usize = std::env::var("SIM_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    println!("simulator throughput ({iters} timed simulations per path, analytic cost model)\n");
    for row in sim_throughput(iters, &CostModelSpec::Analytic) {
        println!(
            "{:<24} {:>6} tasks   trace {:>9.1} sims/s   makespan-only {:>9.1} sims/s   {:>5.2}x",
            row.name,
            row.tasks,
            row.trace_sims_per_sec,
            row.makespan_sims_per_sec,
            row.speedup()
        );
    }
    let tune = fig9_tune_throughput(false, &CostModelSpec::Analytic);
    println!(
        "\nfig9 MoE-1 cold tune (standard space): {:.2} s wall, {} candidates ({:.1}/s), {} sims ({:.1}/s)",
        tune.wall_s, tune.candidates, tune.candidates_per_sec, tune.evaluations, tune.sims_per_sec
    );
}
