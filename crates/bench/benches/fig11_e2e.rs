//! Figure 11: end-to-end models on 8×H800 and 16×H800.
//!
//! Run with `cargo bench -p tilelink-bench --bench fig11_e2e`.

use tilelink_bench::{bench_case, fig11, geomean};
use tilelink_sim::CostModelSpec;
use tilelink_workloads::{e2e, shapes};

fn main() {
    let (cluster, tokens) = e2e::single_node_setup();
    // Benchmark one dense and one MoE model end to end.
    for model in [&shapes::model_configs()[1], &shapes::model_configs()[5]] {
        bench_case(&format!("fig11/tilelink_e2e/{}", model.name), 10, || {
            e2e::tilelink_model_timing(model, &cluster, tokens).unwrap();
        });
    }

    for (two_nodes, label) in [(false, "8xH800"), (true, "16xH800")] {
        let rows = fig11(two_nodes, usize::MAX, &CostModelSpec::Analytic);
        println!(
            "Figure 11 ({label}): geomean TileLink speedup over PyTorch = {:.2}x",
            geomean(rows.iter().map(|r| r.speedup()))
        );
        for r in &rows {
            println!("  {:<16} {:.2}x", r.model, r.speedup());
        }
    }
}
