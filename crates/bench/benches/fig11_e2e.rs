//! Figure 11: end-to-end models on 8×H800 and 16×H800.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tilelink_bench::{fig11, geomean};
use tilelink_workloads::{e2e, shapes};

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_e2e");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let (cluster, tokens) = e2e::single_node_setup();
    // Benchmark one dense and one MoE model end to end.
    for model in [&shapes::model_configs()[1], &shapes::model_configs()[5]] {
        group.bench_function(format!("tilelink_e2e/{}", model.name), |b| {
            b.iter(|| e2e::tilelink_model_timing(model, &cluster, tokens).unwrap())
        });
    }
    group.finish();

    for (two_nodes, label) in [(false, "8xH800"), (true, "16xH800")] {
        let rows = fig11(two_nodes, usize::MAX);
        println!(
            "Figure 11 ({label}): geomean TileLink speedup over PyTorch = {:.2}x",
            geomean(rows.iter().map(|r| r.speedup()))
        );
        for r in &rows {
            println!("  {:<16} {:.2}x", r.model, r.speedup());
        }
    }
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
