//! Table 2: the motivational MLP-1 example under the four techniques.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tilelink_bench::{default_cluster, table2};
use tilelink_workloads::{baselines, mlp, shapes};

fn bench_table2(c: &mut Criterion) {
    let cluster = default_cluster();
    let shape = &shapes::mlp_shapes()[0];
    let mut group = c.benchmark_group("table2_motivation");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("non_overlap_ag_gemm", |b| {
        b.iter(|| baselines::non_overlap_ag_gemm(shape, &cluster))
    });
    group.bench_function("tilelink_ag_gemm", |b| {
        b.iter(|| mlp::timed_ag_gemm(shape, &cluster, &mlp::ag_gemm_config()).unwrap())
    });
    group.bench_function("tilelink_gemm_rs", |b| {
        b.iter(|| mlp::timed_gemm_rs(shape, &cluster, &mlp::gemm_rs_config()).unwrap())
    });
    group.finish();

    // Print the actual table once so `cargo bench` output records it.
    for g in table2(&cluster) {
        println!("{}:", g.label);
        for e in &g.entries {
            println!("  {:<15} {:>9.3} ms", e.method, e.ms);
        }
    }
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
