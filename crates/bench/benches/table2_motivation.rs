//! Table 2: the motivational MLP-1 example under the four techniques.
//!
//! Run with `cargo bench -p tilelink-bench --bench table2_motivation`.

use tilelink_bench::{bench_case, cost_for, default_cluster, table2};
use tilelink_sim::CostModelSpec;
use tilelink_workloads::{baselines, mlp, shapes};

fn main() {
    let cluster = default_cluster();
    let shape = &shapes::mlp_shapes()[0];
    bench_case("table2/non_overlap_ag_gemm", 10, || {
        baselines::non_overlap_ag_gemm(shape, &cluster);
    });
    bench_case("table2/tilelink_ag_gemm", 10, || {
        mlp::timed_ag_gemm(shape, &cluster, &mlp::ag_gemm_config()).unwrap();
    });
    bench_case("table2/tilelink_gemm_rs", 10, || {
        mlp::timed_gemm_rs(shape, &cluster, &mlp::gemm_rs_config()).unwrap();
    });

    // Print the actual table once so `cargo bench` output records it.
    for g in table2(&cost_for(&cluster, &CostModelSpec::Analytic)) {
        println!("{}:", g.label);
        for e in &g.entries {
            println!("  {:<15} {:>9.3} ms", e.method, e.ms);
        }
    }
}
