//! Figure 8: MLP layers (AG+GEMM, GEMM+RS, full MLP) across MLP-1..6.
//!
//! Run with `cargo bench -p tilelink-bench --bench fig8_mlp`.

use tilelink_bench::{bench_case, cost_for, default_cluster, fig8, geomean, MlpPanel};
use tilelink_sim::CostModelSpec;
use tilelink_workloads::{mlp, shapes};

fn main() {
    let cluster = default_cluster();
    let cost = cost_for(&cluster, &CostModelSpec::Analytic);
    // Benchmark the TileLink kernel generation + simulation for two shapes.
    for shape in shapes::mlp_shapes().iter().take(2) {
        bench_case(
            &format!("fig8/tilelink_full_mlp/{}", shape.name),
            10,
            || {
                mlp::timed_full_mlp(shape, &cluster).unwrap();
            },
        );
    }

    for (panel, name) in [
        (MlpPanel::AgGemm, "AG+GEMM"),
        (MlpPanel::GemmRs, "GEMM+RS"),
        (MlpPanel::Full, "full MLP"),
    ] {
        let groups = fig8(panel, &cost);
        println!(
            "Figure 8 {name}: TileLink geomean speedup over cuBLAS+NCCL = {:.2}x, over FLUX = {:.2}x",
            geomean(groups.iter().map(|g| g.speedup("TileLink", "cuBLAS+NCCL"))),
            geomean(groups.iter().map(|g| g.speedup("TileLink", "FLUX"))),
        );
    }
}
