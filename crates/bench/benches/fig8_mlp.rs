//! Figure 8: MLP layers (AG+GEMM, GEMM+RS, full MLP) across MLP-1..6.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tilelink_bench::{default_cluster, fig8, geomean, MlpPanel};
use tilelink_workloads::{mlp, shapes};

fn bench_fig8(c: &mut Criterion) {
    let cluster = default_cluster();
    let mut group = c.benchmark_group("fig8_mlp");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    // Benchmark the TileLink kernel generation + simulation for two shapes.
    for shape in shapes::mlp_shapes().iter().take(2) {
        group.bench_function(format!("tilelink_full_mlp/{}", shape.name), |b| {
            b.iter(|| mlp::timed_full_mlp(shape, &cluster).unwrap())
        });
    }
    group.finish();

    for (panel, name) in [
        (MlpPanel::AgGemm, "AG+GEMM"),
        (MlpPanel::GemmRs, "GEMM+RS"),
        (MlpPanel::Full, "full MLP"),
    ] {
        let groups = fig8(&cluster, panel);
        println!(
            "Figure 8 {name}: TileLink geomean speedup over cuBLAS+NCCL = {:.2}x, over FLUX = {:.2}x",
            geomean(groups.iter().map(|g| g.speedup("TileLink", "cuBLAS+NCCL"))),
            geomean(groups.iter().map(|g| g.speedup("TileLink", "FLUX"))),
        );
    }
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
