//! Figure 10: sequence-parallel self-attention and overlap ratio.
//!
//! Run with `cargo bench -p tilelink-bench --bench fig10_attention`.

use tilelink_bench::{bench_case, cost_for, default_cluster, fig10, geomean};
use tilelink_sim::CostModelSpec;
use tilelink_workloads::{attention, shapes};

fn main() {
    let cluster = default_cluster();
    let cost = cost_for(&cluster, &CostModelSpec::Analytic);
    let shape = &shapes::attn_shapes()[0];
    for &seq in &[16_384usize, 65_536] {
        bench_case(
            &format!("fig10/tilelink_sp_attention/{}k", seq / 1024),
            10,
            || {
                attention::timed_sp_attention(shape, seq, &cluster, &attention::attention_config())
                    .unwrap();
            },
        );
    }

    for idx in 0..shapes::attn_shapes().len() {
        let rows = fig10(idx, &cost);
        println!(
            "Figure 10 {}: geomean speedup over Torch = {:.2}x, over RingAttn = {:.2}x, mean overlap ratio = {:.1}%",
            shapes::attn_shapes()[idx].name,
            geomean(rows.iter().map(|r| r.group.speedup("TileLink", "Torch"))),
            geomean(rows.iter().map(|r| r.group.speedup("TileLink", "RingAttn"))),
            100.0 * rows.iter().map(|r| r.overlap_ratio).sum::<f64>() / rows.len() as f64,
        );
    }
}
