//! Figure 10: sequence-parallel self-attention and overlap ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tilelink_bench::{default_cluster, fig10, geomean};
use tilelink_workloads::{attention, shapes};

fn bench_fig10(c: &mut Criterion) {
    let cluster = default_cluster();
    let shape = &shapes::attn_shapes()[0];
    let mut group = c.benchmark_group("fig10_attention");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for &seq in &[16_384usize, 65_536] {
        group.bench_function(format!("tilelink_sp_attention/{}k", seq / 1024), |b| {
            b.iter(|| {
                attention::timed_sp_attention(shape, seq, &cluster, &attention::attention_config()).unwrap()
            })
        });
    }
    group.finish();

    for idx in 0..shapes::attn_shapes().len() {
        let rows = fig10(&cluster, idx);
        println!(
            "Figure 10 {}: geomean speedup over Torch = {:.2}x, over RingAttn = {:.2}x, mean overlap ratio = {:.1}%",
            shapes::attn_shapes()[idx].name,
            geomean(rows.iter().map(|r| r.group.speedup("TileLink", "Torch"))),
            geomean(rows.iter().map(|r| r.group.speedup("TileLink", "RingAttn"))),
            100.0 * rows.iter().map(|r| r.overlap_ratio).sum::<f64>() / rows.len() as f64,
        );
    }
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
