//! Golden regression test pinning the analytic figures.
//!
//! The analytic cost model is the reference the repository's figures were
//! built on: Figure 8/9 default-config speedups over the baselines, and the
//! `--tune` tuned-vs-default geomeans. Any edit to the cost model — e.g. the
//! ROADMAP's bottleneck-aware ring-hop pricing fix — moves these numbers, and
//! that *must* be a deliberate decision, not silent drift.
//!
//! RE-BASELINE DELIBERATELY: if a test here fails because you changed the
//! cost model (or the search space / strategy defaults) on purpose, update
//! the pinned constants to the values printed in the assertion message, and
//! say so in the commit message. Do not loosen the tolerance.

use tilelink_bench::{cost_for, default_cluster, fig11, fig8, fig9, geomean, MlpPanel, MoePanel};
use tilelink_sim::CostModelSpec;
use tilelink_workloads::autotune::{self, TuneOptions};
use tilelink_workloads::shapes;

/// Relative tolerance: the simulator is deterministic, so figure geomeans are
/// bit-stable; the margin only absorbs benign float-noise from refactors that
/// reorder mathematically-identical operations.
const REL_TOL: f64 = 1e-9;

fn assert_pinned(label: &str, actual: f64, pinned: f64) {
    let rel = (actual - pinned).abs() / pinned;
    assert!(
        rel < REL_TOL,
        "{label} drifted: pinned {pinned:.15}, got {actual:.15} (rel {rel:.2e}).\n\
         If this change is deliberate, re-baseline the constant to the value above."
    );
}

#[test]
fn fig8_full_mlp_geomean_is_pinned() {
    let cost = cost_for(&default_cluster(), &CostModelSpec::Analytic);
    let groups = fig8(MlpPanel::Full, &cost);
    let actual = geomean(groups.iter().map(|g| g.speedup("TileLink", "cuBLAS+NCCL")));
    assert_pinned("fig8 full-MLP geomean", actual, 1.309702108081508);
}

#[test]
fn fig9_full_moe_geomean_is_pinned() {
    let cost = cost_for(&default_cluster(), &CostModelSpec::Analytic);
    let groups = fig9(MoePanel::Full, &cost);
    let actual = geomean(groups.iter().map(|g| g.speedup("TileLink", "cuBLAS+NCCL")));
    assert_pinned("fig9 full-MoE geomean", actual, 3.976571952754703);
}

#[test]
fn fig11_e2e_geomeans_are_pinned() {
    // End-to-end Figure 11 speedup geomeans under the analytic model, both
    // cluster setups. The 16-GPU value was re-baselined deliberately when the
    // ring baselines started paying the InfiniBand bottleneck hop
    // (1.492083017131577 before the fix, when every hop was priced as the
    // intra-node rank 0→1 link); the 8-GPU value is bit-identical to the
    // pre-fix figure because every single-node hop rides NVLink.
    let single = fig11(false, usize::MAX, &CostModelSpec::Analytic);
    let actual = geomean(single.iter().map(|r| r.speedup()));
    assert_pinned("fig11 8xH800 geomean", actual, 1.650689315301968);

    let two_node = fig11(true, usize::MAX, &CostModelSpec::Analytic);
    let actual = geomean(two_node.iter().map(|r| r.speedup()));
    assert_pinned("fig11 16xH800 geomean", actual, 2.831073385410031);

    // The two-node torch baselines must stay strictly costlier than the
    // single-node ones (IB pricing + doubled tokens), model by model.
    for (one, two) in single.iter().zip(&two_node) {
        assert_eq!(one.model, two.model);
        assert!(two.torch_ms > 2.0 * one.torch_ms, "{}", one.model);
    }
}

#[test]
fn tuned_vs_default_geomeans_are_pinned() {
    // The `reproduce --tune` headline numbers: default beam strategy over the
    // standard space, analytic costs, all six shapes per figure.
    //
    // Checked for re-baselining when branch-and-bound pruning landed and
    // `SearchSpace::standard()` picked up the RING_REQUIRES_PUSH constraint:
    // both values stayed bit-identical, because pruning is admissible (the
    // winner is never discarded) and no beam winner was ever a pull-mode
    // ring — the constraint only stops the search from wasting evaluations
    // on combinations that would deadlock on real hardware.
    let cluster = default_cluster();
    let opts = TuneOptions::default();

    let mlp = geomean(shapes::mlp_shapes().iter().map(|shape| {
        let tuned = autotune::tuned_full_mlp(shape, &cluster, &opts).expect("mlp tuning");
        default_total(&tuned) / tuned.layer.total_s
    }));
    assert_pinned("fig8 tuned-vs-default geomean", mlp, 1.515577185072659);

    let moe = geomean(shapes::moe_shapes().iter().map(|shape| {
        let tuned = autotune::tuned_full_moe(shape, &cluster, &opts).expect("moe tuning");
        default_total(&tuned) / tuned.layer.total_s
    }));
    assert_pinned("fig9 tuned-vs-default geomean", moe, 2.146300772725036);
}

/// Makespan of the default config out of the search's own ranking (the
/// default is always a beam seed under the default options).
fn default_total(tuned: &tilelink_workloads::TunedLayer) -> f64 {
    let default = tilelink::OverlapConfig::default();
    tuned
        .search
        .ranked
        .iter()
        .find(|c| c.config == default)
        .expect("default config is a beam seed")
        .report
        .total_s
}
