//! Signal slots with release/acquire semantics (the symmetric control plane).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How long a waiter spins before yielding the thread.
const SPIN_BEFORE_YIELD: u32 = 64;

/// An array of 64-bit signal slots shared between ranks.
///
/// Signal slots are the implementation substrate of the paper's *signal
/// primitives* (`producer_tile_notify`, `consumer_tile_wait`, `peer_tile_notify`,
/// `peer_tile_wait`, `rank_notify`, `rank_wait`). The memory-consistency contract
/// of Section 3.2.1 is implemented directly:
///
/// * notify operations ([`SignalSet::set`], [`SignalSet::add`]) use **release**
///   ordering, so no prior memory access can be reordered after them;
/// * wait operations ([`SignalSet::wait_ge`], [`SignalSet::wait_eq`]) use
///   **acquire** ordering, so no later memory access can be reordered before
///   them.
///
/// A slot usually represents one *channel* of the tile-centric channel mapping
/// (`f_C` in Section 4.1): producers increment the slot once per finished tile,
/// and the consumer waits until the counter reaches the producer threshold.
///
/// # Example
///
/// ```
/// use tilelink_shmem::SignalSet;
///
/// let signals = SignalSet::new(4);
/// signals.add(2, 1);
/// signals.wait_ge(2, 1);
/// assert_eq!(signals.load(2), 1);
/// ```
#[derive(Clone)]
pub struct SignalSet {
    slots: Arc<[AtomicU64]>,
}

impl SignalSet {
    /// Creates `len` signal slots, all initialised to zero.
    pub fn new(len: usize) -> Self {
        let slots: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        Self {
            slots: slots.into(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Stores `value` into slot `index` with **release** ordering.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set(&self, index: usize, value: u64) {
        self.slots[index].store(value, Ordering::Release);
    }

    /// Adds `delta` to slot `index` with **release** ordering and returns the
    /// previous value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn add(&self, index: usize, delta: u64) -> u64 {
        self.slots[index].fetch_add(delta, Ordering::Release)
    }

    /// Loads slot `index` with **acquire** ordering.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn load(&self, index: usize) -> u64 {
        self.slots[index].load(Ordering::Acquire)
    }

    /// Resets slot `index` to zero (release ordering).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn reset(&self, index: usize) {
        self.set(index, 0);
    }

    /// Resets every slot to zero.
    pub fn reset_all(&self) {
        for i in 0..self.len() {
            self.reset(i);
        }
    }

    /// Blocks until slot `index` is at least `value` (acquire ordering).
    ///
    /// The waiter spins briefly and then yields to the scheduler, which keeps
    /// oversubscribed test configurations (many simulated blocks per hardware
    /// thread) from livelocking.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn wait_ge(&self, index: usize, value: u64) {
        let slot = &self.slots[index];
        let mut spins = 0u32;
        while slot.load(Ordering::Acquire) < value {
            spins += 1;
            if spins > SPIN_BEFORE_YIELD {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Blocks until slot `index` equals `value` exactly (acquire ordering).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn wait_eq(&self, index: usize, value: u64) {
        let slot = &self.slots[index];
        let mut spins = 0u32;
        while slot.load(Ordering::Acquire) != value {
            spins += 1;
            if spins > SPIN_BEFORE_YIELD {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl std::fmt::Debug for SignalSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignalSet")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn new_slots_start_at_zero() {
        let s = SignalSet::new(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        for i in 0..3 {
            assert_eq!(s.load(i), 0);
        }
    }

    #[test]
    fn set_and_load() {
        let s = SignalSet::new(1);
        s.set(0, 42);
        assert_eq!(s.load(0), 42);
    }

    #[test]
    fn add_returns_previous_value() {
        let s = SignalSet::new(1);
        assert_eq!(s.add(0, 5), 0);
        assert_eq!(s.add(0, 3), 5);
        assert_eq!(s.load(0), 8);
    }

    #[test]
    fn reset_and_reset_all() {
        let s = SignalSet::new(2);
        s.set(0, 1);
        s.set(1, 2);
        s.reset(0);
        assert_eq!(s.load(0), 0);
        assert_eq!(s.load(1), 2);
        s.reset_all();
        assert_eq!(s.load(1), 0);
    }

    #[test]
    fn wait_ge_observes_writes_before_release() {
        // The canonical message-passing litmus test: the waiter must observe the
        // data store once it observes the signal.
        let s = SignalSet::new(1);
        let data = std::sync::Arc::new(AtomicU64::new(0));
        let (s2, data2) = (s.clone(), data.clone());
        let producer = thread::spawn(move || {
            data2.store(99, Ordering::Relaxed);
            s2.set(0, 1);
        });
        s.wait_ge(0, 1);
        assert_eq!(data.load(Ordering::Relaxed), 99);
        producer.join().unwrap();
    }

    #[test]
    fn wait_eq_blocks_until_exact_value() {
        let s = SignalSet::new(1);
        let s2 = s.clone();
        let t = thread::spawn(move || {
            for _ in 0..4 {
                s2.add(0, 1);
            }
        });
        s.wait_eq(0, 4);
        assert_eq!(s.load(0), 4);
        t.join().unwrap();
    }

    #[test]
    fn concurrent_adds_accumulate() {
        let s = SignalSet::new(1);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                thread::spawn(move || {
                    for _ in 0..100 {
                        s.add(0, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.load(0), 400);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", SignalSet::new(1)).is_empty());
    }
}
