//! Name-based symmetric allocation registry (the symmetric heap).

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

use crate::{Result, SharedBuffer, ShmemError, SignalSet};

/// What a symbol resolves to on one rank's heap.
#[derive(Clone, Debug)]
enum Symbol {
    Buffer(SharedBuffer),
    Signals(SignalSet),
}

/// A registry of named, per-rank symmetric allocations.
///
/// NVSHMEM's symmetric heap guarantees that every rank allocates the same
/// object at the same symmetric address, so a rank can compute a peer's pointer
/// from its own. We reproduce the addressing property with *names*: every rank
/// registers its local buffer under an agreed-upon name, and a peer resolves
/// `(rank, name)` to the remote handle. Lookups block until the owning rank has
/// performed its registration, mirroring the collective nature of
/// `nvshmem_malloc`.
///
/// The registry is typically used through [`crate::RankContext`]; it is public
/// so that host-side code (for example a benchmark harness that pre-allocates
/// weights) can also populate it.
pub struct SymmetricRegistry {
    world_size: usize,
    symbols: Mutex<HashMap<(usize, String), Symbol>>,
    registered: Condvar,
}

impl SymmetricRegistry {
    /// Creates an empty registry for `world_size` ranks.
    pub fn new(world_size: usize) -> Self {
        Self {
            world_size,
            symbols: Mutex::new(HashMap::new()),
            registered: Condvar::new(),
        }
    }

    /// Number of ranks this registry serves.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    fn check_rank(&self, rank: usize) -> Result<()> {
        if rank >= self.world_size {
            return Err(ShmemError::InvalidRank {
                rank,
                world_size: self.world_size,
            });
        }
        Ok(())
    }

    /// Registers (or re-uses) a buffer of length `len` named `name` on `rank`.
    ///
    /// Registering the same name twice returns the existing buffer, so the call
    /// is idempotent, as long as the lengths agree.
    ///
    /// # Errors
    ///
    /// Returns [`ShmemError::InvalidRank`] for an out-of-range rank and
    /// [`ShmemError::LengthMismatch`] when re-registering with a different
    /// length.
    pub fn alloc_buffer(&self, rank: usize, name: &str, len: usize) -> Result<SharedBuffer> {
        self.check_rank(rank)?;
        let mut symbols = self.symbols.lock().expect("registry lock poisoned");
        let key = (rank, name.to_string());
        if let Some(Symbol::Buffer(existing)) = symbols.get(&key) {
            if existing.len() != len {
                return Err(ShmemError::LengthMismatch {
                    name: name.to_string(),
                    existing: existing.len(),
                    requested: len,
                });
            }
            return Ok(existing.clone());
        }
        let buffer = SharedBuffer::zeros(len);
        symbols.insert(key, Symbol::Buffer(buffer.clone()));
        self.registered.notify_all();
        Ok(buffer)
    }

    /// Registers (or re-uses) a signal set of `len` slots named `name` on `rank`.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`SymmetricRegistry::alloc_buffer`].
    pub fn alloc_signals(&self, rank: usize, name: &str, len: usize) -> Result<SignalSet> {
        self.check_rank(rank)?;
        let mut symbols = self.symbols.lock().expect("registry lock poisoned");
        let key = (rank, name.to_string());
        if let Some(Symbol::Signals(existing)) = symbols.get(&key) {
            if existing.len() != len {
                return Err(ShmemError::LengthMismatch {
                    name: name.to_string(),
                    existing: existing.len(),
                    requested: len,
                });
            }
            return Ok(existing.clone());
        }
        let signals = SignalSet::new(len);
        symbols.insert(key, Symbol::Signals(signals.clone()));
        self.registered.notify_all();
        Ok(signals)
    }

    /// Resolves the buffer named `name` on `rank`, blocking until it is registered.
    ///
    /// # Errors
    ///
    /// Returns [`ShmemError::InvalidRank`] for an out-of-range rank, or
    /// [`ShmemError::UnknownSymbol`] if the symbol resolves to a signal set
    /// instead of a buffer.
    pub fn buffer(&self, rank: usize, name: &str) -> Result<SharedBuffer> {
        self.check_rank(rank)?;
        let key = (rank, name.to_string());
        let mut symbols = self.symbols.lock().expect("registry lock poisoned");
        loop {
            match symbols.get(&key) {
                Some(Symbol::Buffer(b)) => return Ok(b.clone()),
                Some(Symbol::Signals(_)) => {
                    return Err(ShmemError::UnknownSymbol {
                        rank,
                        name: name.to_string(),
                    })
                }
                None => {
                    symbols = self
                        .registered
                        .wait(symbols)
                        .expect("registry lock poisoned")
                }
            }
        }
    }

    /// Resolves the signal set named `name` on `rank`, blocking until registered.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`SymmetricRegistry::buffer`].
    pub fn signals(&self, rank: usize, name: &str) -> Result<SignalSet> {
        self.check_rank(rank)?;
        let key = (rank, name.to_string());
        let mut symbols = self.symbols.lock().expect("registry lock poisoned");
        loop {
            match symbols.get(&key) {
                Some(Symbol::Signals(s)) => return Ok(s.clone()),
                Some(Symbol::Buffer(_)) => {
                    return Err(ShmemError::UnknownSymbol {
                        rank,
                        name: name.to_string(),
                    })
                }
                None => {
                    symbols = self
                        .registered
                        .wait(symbols)
                        .expect("registry lock poisoned")
                }
            }
        }
    }

    /// Returns the buffer if it is already registered, without blocking.
    pub fn try_buffer(&self, rank: usize, name: &str) -> Option<SharedBuffer> {
        let symbols = self.symbols.lock().expect("registry lock poisoned");
        match symbols.get(&(rank, name.to_string())) {
            Some(Symbol::Buffer(b)) => Some(b.clone()),
            _ => None,
        }
    }

    /// Names of every symbol registered on `rank`, sorted for reproducibility.
    pub fn symbols_on(&self, rank: usize) -> Vec<String> {
        let symbols = self.symbols.lock().expect("registry lock poisoned");
        let mut names: Vec<String> = symbols
            .keys()
            .filter(|(r, _)| *r == rank)
            .map(|(_, n)| n.clone())
            .collect();
        names.sort();
        names
    }
}

impl std::fmt::Debug for SymmetricRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymmetricRegistry")
            .field("world_size", &self.world_size)
            .field(
                "symbols",
                &self.symbols.lock().expect("registry lock poisoned").len(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn alloc_and_lookup() {
        let reg = SymmetricRegistry::new(2);
        let b = reg.alloc_buffer(0, "x", 4).unwrap();
        b.store(0, 1.5);
        let again = reg.buffer(0, "x").unwrap();
        assert_eq!(again.load(0), 1.5);
    }

    #[test]
    fn alloc_is_idempotent() {
        let reg = SymmetricRegistry::new(1);
        let a = reg.alloc_buffer(0, "x", 4).unwrap();
        let b = reg.alloc_buffer(0, "x", 4).unwrap();
        a.store(1, 2.0);
        assert_eq!(b.load(1), 2.0);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let reg = SymmetricRegistry::new(1);
        reg.alloc_buffer(0, "x", 4).unwrap();
        let err = reg.alloc_buffer(0, "x", 8).unwrap_err();
        assert!(matches!(err, ShmemError::LengthMismatch { .. }));
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let reg = SymmetricRegistry::new(2);
        assert!(matches!(
            reg.alloc_buffer(5, "x", 1),
            Err(ShmemError::InvalidRank { .. })
        ));
        assert!(matches!(
            reg.buffer(5, "x"),
            Err(ShmemError::InvalidRank { .. })
        ));
    }

    #[test]
    fn kind_mismatch_is_unknown_symbol() {
        let reg = SymmetricRegistry::new(1);
        reg.alloc_signals(0, "sig", 2).unwrap();
        assert!(matches!(
            reg.buffer(0, "sig"),
            Err(ShmemError::UnknownSymbol { .. })
        ));
    }

    #[test]
    fn lookup_blocks_until_registration() {
        let reg = Arc::new(SymmetricRegistry::new(2));
        let reg2 = reg.clone();
        let waiter = thread::spawn(move || reg2.buffer(1, "late").unwrap().load(0));
        thread::sleep(std::time::Duration::from_millis(20));
        let b = reg.alloc_buffer(1, "late", 1).unwrap();
        b.store(0, 7.0);
        // The waiter may have resolved the handle before the store; both observing
        // 0.0 and 7.0 are legal. We only require that it unblocks.
        let v = waiter.join().unwrap();
        assert!(v == 0.0 || v == 7.0);
    }

    #[test]
    fn try_buffer_does_not_block() {
        let reg = SymmetricRegistry::new(1);
        assert!(reg.try_buffer(0, "missing").is_none());
        reg.alloc_buffer(0, "present", 1).unwrap();
        assert!(reg.try_buffer(0, "present").is_some());
    }

    #[test]
    fn symbols_on_lists_registered_names() {
        let reg = SymmetricRegistry::new(2);
        reg.alloc_buffer(0, "b", 1).unwrap();
        reg.alloc_buffer(0, "a", 1).unwrap();
        reg.alloc_buffer(1, "c", 1).unwrap();
        assert_eq!(reg.symbols_on(0), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(reg.symbols_on(1), vec!["c".to_string()]);
    }

    #[test]
    fn signal_alloc_and_lookup() {
        let reg = SymmetricRegistry::new(1);
        let s = reg.alloc_signals(0, "bar", 4).unwrap();
        s.set(3, 9);
        assert_eq!(reg.signals(0, "bar").unwrap().load(3), 9);
    }
}
