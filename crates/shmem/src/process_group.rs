//! Thread-per-rank process groups and per-rank contexts.

use std::sync::{Arc, Barrier};

use crate::{Result, SharedBuffer, SignalSet, SymmetricRegistry};

/// Shared state of one process group.
struct GroupShared {
    world_size: usize,
    registry: SymmetricRegistry,
    barrier: Barrier,
}

/// A process group that runs one thread per rank.
///
/// The paper launches the generated kernel on every GPU of the node (Figure 7:
/// "Launch" across ranks 0–7 after NVSHMEM initialisation). `ProcessGroup`
/// reproduces that launch step with scoped threads: [`ProcessGroup::launch`]
/// spawns `world_size` threads, hands each a [`RankContext`], and joins them,
/// returning the per-rank results in rank order.
///
/// # Example
///
/// ```
/// use tilelink_shmem::ProcessGroup;
///
/// let sums = ProcessGroup::launch(4, |ctx| {
///     // every rank contributes its rank id to a naive all-reduce
///     let buf = ctx.alloc("contrib", 1);
///     buf.store(0, ctx.rank() as f32);
///     ctx.barrier();
///     (0..ctx.world_size())
///         .map(|r| ctx.remote(r, "contrib").load(0))
///         .sum::<f32>()
/// });
/// assert_eq!(sums, vec![6.0; 4]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessGroup {
    world_size: usize,
}

impl ProcessGroup {
    /// Creates a process-group descriptor for `world_size` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `world_size` is zero.
    pub fn new(world_size: usize) -> Self {
        assert!(world_size > 0, "world size must be positive");
        Self { world_size }
    }

    /// Number of ranks.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Runs `body` once per rank on its own thread and returns the results in
    /// rank order.
    ///
    /// This is the moral equivalent of `torchrun`/`mpirun` plus NVSHMEM
    /// initialisation in the paper's runtime (Figure 7).
    ///
    /// # Panics
    ///
    /// Panics if any rank's closure panics; the panic is propagated.
    pub fn run<F, R>(&self, body: F) -> Vec<R>
    where
        F: Fn(RankContext) -> R + Send + Sync,
        R: Send,
    {
        let shared = Arc::new(GroupShared {
            world_size: self.world_size,
            registry: SymmetricRegistry::new(self.world_size),
            barrier: Barrier::new(self.world_size),
        });
        let body = &body;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.world_size)
                .map(|rank| {
                    let shared = shared.clone();
                    scope.spawn(move || {
                        let ctx = RankContext { rank, shared };
                        body(ctx)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }

    /// Convenience wrapper: `ProcessGroup::new(world_size).run(body)`.
    ///
    /// # Panics
    ///
    /// Panics if `world_size` is zero or if any rank's closure panics.
    pub fn launch<F, R>(world_size: usize, body: F) -> Vec<R>
    where
        F: Fn(RankContext) -> R + Send + Sync,
        R: Send,
    {
        Self::new(world_size).run(body)
    }
}

/// Everything one rank needs to talk to its peers.
///
/// A `RankContext` is handed to the per-rank closure by [`ProcessGroup::run`].
/// It exposes the rank id, the world size, symmetric allocation, remote lookups
/// and a global barrier.
#[derive(Clone)]
pub struct RankContext {
    rank: usize,
    shared: Arc<GroupShared>,
}

impl RankContext {
    /// This rank's id in `[0, world_size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    pub fn world_size(&self) -> usize {
        self.shared.world_size
    }

    /// Waits until every rank reaches this barrier.
    ///
    /// Equivalent to `nvshmem_barrier_all` / a NCCL stream synchronisation in
    /// the paper's runtime.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Allocates (or re-opens) a local symmetric buffer named `name` of `len` values.
    ///
    /// # Panics
    ///
    /// Panics if the same name was registered with a different length; use
    /// [`RankContext::try_alloc`] for a fallible version.
    pub fn alloc(&self, name: &str, len: usize) -> SharedBuffer {
        self.try_alloc(name, len)
            .expect("symmetric buffer allocation failed")
    }

    /// Fallible version of [`RankContext::alloc`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::ShmemError::LengthMismatch`] when re-registering the
    /// same name with a different length.
    pub fn try_alloc(&self, name: &str, len: usize) -> Result<SharedBuffer> {
        self.shared.registry.alloc_buffer(self.rank, name, len)
    }

    /// Allocates (or re-opens) a local signal set named `name` with `len` slots.
    ///
    /// # Panics
    ///
    /// Panics if the same name was registered with a different length.
    pub fn alloc_signals(&self, name: &str, len: usize) -> SignalSet {
        self.shared
            .registry
            .alloc_signals(self.rank, name, len)
            .expect("symmetric signal allocation failed")
    }

    /// Returns this rank's buffer named `name`, blocking until it is allocated.
    ///
    /// # Panics
    ///
    /// Panics if the symbol resolves to a signal set.
    pub fn local(&self, name: &str) -> SharedBuffer {
        self.remote(self.rank, name)
    }

    /// Returns `rank`'s buffer named `name`, blocking until that rank allocates it.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range or the symbol resolves to a signal set.
    pub fn remote(&self, rank: usize, name: &str) -> SharedBuffer {
        self.shared
            .registry
            .buffer(rank, name)
            .expect("remote symmetric buffer lookup failed")
    }

    /// Returns `rank`'s signal set named `name`, blocking until allocated.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range or the symbol resolves to a buffer.
    pub fn remote_signals(&self, rank: usize, name: &str) -> SignalSet {
        self.shared
            .registry
            .signals(rank, name)
            .expect("remote symmetric signal lookup failed")
    }

    /// Returns every rank's buffer named `name` in rank order.
    ///
    /// This is the "remote tensors" argument of the `tile_push_data` /
    /// `tile_pull_data` primitives (Table 3).
    pub fn all_buffers(&self, name: &str) -> Vec<SharedBuffer> {
        (0..self.world_size())
            .map(|r| self.remote(r, name))
            .collect()
    }

    /// Direct access to the underlying registry (host-style access).
    pub fn registry(&self) -> &SymmetricRegistry {
        &self.shared.registry
    }
}

impl std::fmt::Debug for RankContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankContext")
            .field("rank", &self.rank)
            .field("world_size", &self.world_size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_returns_results_in_rank_order() {
        let out = ProcessGroup::launch(4, |ctx| ctx.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_world_size_panics() {
        let _ = ProcessGroup::new(0);
    }

    #[test]
    fn world_size_is_visible_to_every_rank() {
        let out = ProcessGroup::launch(3, |ctx| ctx.world_size());
        assert_eq!(out, vec![3, 3, 3]);
    }

    #[test]
    fn ranks_exchange_data_through_symmetric_buffers() {
        let out = ProcessGroup::launch(4, |ctx| {
            let mine = ctx.alloc("slot", 2);
            mine.write_slice(0, &[ctx.rank() as f32, 100.0 + ctx.rank() as f32]);
            ctx.barrier();
            let next = (ctx.rank() + 1) % ctx.world_size();
            ctx.remote(next, "slot").read_range(0, 2)
        });
        assert_eq!(out[0], vec![1.0, 101.0]);
        assert_eq!(out[3], vec![0.0, 100.0]);
    }

    #[test]
    fn all_buffers_returns_world_size_handles() {
        let out = ProcessGroup::launch(3, |ctx| {
            ctx.alloc("b", 1).store(0, ctx.rank() as f32);
            ctx.barrier();
            ctx.all_buffers("b")
                .iter()
                .map(|b| b.load(0))
                .collect::<Vec<_>>()
        });
        for row in out {
            assert_eq!(row, vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn signal_handshake_between_ranks() {
        // rank 0 produces a value and notifies, rank 1 waits and reads it.
        let out = ProcessGroup::launch(2, |ctx| {
            let data = ctx.alloc("data", 1);
            let flags = ctx.alloc_signals("flags", 1);
            ctx.barrier();
            if ctx.rank() == 0 {
                let peer = ctx.remote(1, "data");
                peer.store(0, 3.25);
                ctx.remote_signals(1, "flags").set(0, 1);
                0.0
            } else {
                flags.wait_ge(0, 1);
                data.load(0)
            }
        });
        assert_eq!(out[1], 3.25);
    }

    #[test]
    fn barrier_orders_phases() {
        let out = ProcessGroup::launch(4, |ctx| {
            let b = ctx.alloc("phase", 1);
            b.store(0, 1.0);
            ctx.barrier();
            // After the barrier every rank must see every peer's phase-1 store.
            let sum: f32 = ctx.all_buffers("phase").iter().map(|b| b.load(0)).sum();
            sum
        });
        assert_eq!(out, vec![4.0; 4]);
    }

    #[test]
    fn reuse_of_group_descriptor() {
        let pg = ProcessGroup::new(2);
        assert_eq!(pg.world_size(), 2);
        let a = pg.run(|ctx| ctx.rank());
        let b = pg.run(|ctx| ctx.rank() + 5);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(b, vec![5, 6]);
    }

    #[test]
    fn debug_impls_are_nonempty() {
        assert!(!format!("{:?}", ProcessGroup::new(1)).is_empty());
        let dbg = ProcessGroup::launch(1, |ctx| format!("{ctx:?}"));
        assert!(dbg[0].contains("RankContext"));
    }
}
