//! # tilelink-shmem
//!
//! A software stand-in for NVSHMEM: the symmetric-memory substrate that the
//! TileLink runtime uses to exchange tiles of data and synchronisation signals
//! between ranks.
//!
//! The paper runs every rank as a separate process on its own GPU and uses
//! NVSHMEM to (a) allocate *symmetric* buffers that every peer can address and
//! (b) perform signal operations with release/acquire semantics. This crate
//! reproduces both facilities with operating-system threads:
//!
//! * one thread per rank, launched by [`ProcessGroup::launch`];
//! * [`SharedBuffer`] — a remotely addressable buffer of `f32` values backed by
//!   relaxed atomics (data plane);
//! * [`SignalSet`] — an array of 64-bit signal slots with **release** stores on
//!   notify and **acquire** loads on wait (control plane), which is exactly the
//!   memory-consistency contract that Section 3.2.1 of the paper assigns to the
//!   tile-centric primitives;
//! * [`SymmetricRegistry`] — name-based symmetric allocation so that a rank can
//!   obtain a handle to a peer's buffer, mirroring NVSHMEM's symmetric heap.
//!
//! # Example
//!
//! ```
//! use tilelink_shmem::ProcessGroup;
//!
//! // Two ranks exchange a value through symmetric memory.
//! let results = ProcessGroup::launch(2, |ctx| {
//!     let buf = ctx.alloc("mailbox", 1);
//!     buf.store(0, ctx.rank() as f32);
//!     ctx.barrier();
//!     let peer = ctx.remote((ctx.rank() + 1) % 2, "mailbox");
//!     peer.load(0)
//! });
//! assert_eq!(results, vec![1.0, 0.0]);
//! ```

#![deny(missing_docs)]

mod buffer;
mod error;
mod process_group;
mod registry;
mod signal;

pub use buffer::SharedBuffer;
pub use error::ShmemError;
pub use process_group::{ProcessGroup, RankContext};
pub use registry::SymmetricRegistry;
pub use signal::SignalSet;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ShmemError>;
