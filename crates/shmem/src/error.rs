//! Error type for the symmetric-memory substrate.

use std::fmt;

/// Errors produced by symmetric-memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmemError {
    /// A buffer or signal set was requested under a name that no rank registered.
    UnknownSymbol {
        /// Rank whose heap was searched.
        rank: usize,
        /// Symbol name that was looked up.
        name: String,
    },
    /// A symmetric allocation was attempted twice with different lengths.
    LengthMismatch {
        /// Symbol name of the conflicting allocation.
        name: String,
        /// Length already registered.
        existing: usize,
        /// Length requested by the failing call.
        requested: usize,
    },
    /// An index was outside the bounds of a buffer or signal set.
    OutOfBounds {
        /// Offending index.
        index: usize,
        /// Length of the container.
        len: usize,
    },
    /// A rank identifier was not smaller than the world size.
    InvalidRank {
        /// Offending rank.
        rank: usize,
        /// Number of ranks in the process group.
        world_size: usize,
    },
}

impl fmt::Display for ShmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmemError::UnknownSymbol { rank, name } => {
                write!(f, "symbol `{name}` was never registered on rank {rank}")
            }
            ShmemError::LengthMismatch {
                name,
                existing,
                requested,
            } => write!(
                f,
                "symmetric allocation `{name}` requested length {requested} but length {existing} is registered"
            ),
            ShmemError::OutOfBounds { index, len } => {
                write!(f, "index {index} is out of bounds for length {len}")
            }
            ShmemError::InvalidRank { rank, world_size } => {
                write!(f, "rank {rank} is invalid for world size {world_size}")
            }
        }
    }
}

impl std::error::Error for ShmemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            ShmemError::UnknownSymbol {
                rank: 1,
                name: "x".into(),
            },
            ShmemError::LengthMismatch {
                name: "x".into(),
                existing: 4,
                requested: 8,
            },
            ShmemError::OutOfBounds { index: 9, len: 4 },
            ShmemError::InvalidRank {
                rank: 9,
                world_size: 4,
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShmemError>();
    }
}
