//! Remotely addressable `f32` buffers (the symmetric data plane).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A buffer of `f32` values that any rank (thread) may read or write.
///
/// `SharedBuffer` plays the role of device global memory registered with
/// NVSHMEM: all accesses go through relaxed atomics, and ordering between a
/// producer's writes and a consumer's reads is established *only* by the
/// release/acquire signal operations in [`crate::SignalSet`]. This is the same
/// contract the paper relies on: data stores are plain stores, and the
/// `notify`/`wait` primitives carry the release/acquire fences.
///
/// Cloning a `SharedBuffer` is cheap and yields another handle to the same
/// storage.
///
/// # Example
///
/// ```
/// use tilelink_shmem::SharedBuffer;
///
/// let buf = SharedBuffer::from_slice(&[1.0, 2.0, 3.0]);
/// buf.store(1, 5.0);
/// assert_eq!(buf.to_vec(), vec![1.0, 5.0, 3.0]);
/// ```
#[derive(Clone)]
pub struct SharedBuffer {
    cells: Arc<[AtomicU32]>,
}

impl SharedBuffer {
    /// Creates a buffer of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        let cells: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0f32.to_bits())).collect();
        Self {
            cells: cells.into(),
        }
    }

    /// Creates a buffer initialised from a slice.
    pub fn from_slice(values: &[f32]) -> Self {
        let cells: Vec<AtomicU32> = values.iter().map(|v| AtomicU32::new(v.to_bits())).collect();
        Self {
            cells: cells.into(),
        }
    }

    /// Number of elements in the buffer.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Loads one element (relaxed).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn load(&self, index: usize) -> f32 {
        f32::from_bits(self.cells[index].load(Ordering::Relaxed))
    }

    /// Stores one element (relaxed).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn store(&self, index: usize, value: f32) {
        self.cells[index].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `value` to the element at `index` and returns the new value.
    ///
    /// Used by reduction epilogues (for example the Top-K reduce of the MoE
    /// layer) where several tiles accumulate into the same destination.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn fetch_add(&self, index: usize, value: f32) -> f32 {
        let cell = &self.cells[index];
        let mut current = cell.load(Ordering::Relaxed);
        loop {
            let next = (f32::from_bits(current) + value).to_bits();
            match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return f32::from_bits(next),
                Err(actual) => current = actual,
            }
        }
    }

    /// Copies `values` into the buffer starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + values.len()` exceeds the buffer length.
    pub fn write_slice(&self, offset: usize, values: &[f32]) {
        assert!(
            offset + values.len() <= self.len(),
            "write_slice: range {}..{} out of bounds for length {}",
            offset,
            offset + values.len(),
            self.len()
        );
        for (i, v) in values.iter().enumerate() {
            self.cells[offset + i].store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Reads `len` elements starting at `offset` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` exceeds the buffer length.
    pub fn read_range(&self, offset: usize, len: usize) -> Vec<f32> {
        assert!(
            offset + len <= self.len(),
            "read_range: range {}..{} out of bounds for length {}",
            offset,
            offset + len,
            self.len()
        );
        (0..len).map(|i| self.load(offset + i)).collect()
    }

    /// Copies `len` elements from `src` (starting at `src_offset`) into `self`
    /// (starting at `dst_offset`).
    ///
    /// This is the building block of the `tile_push_data` / `tile_pull_data`
    /// and `rank_copy_data` primitives.
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds.
    pub fn copy_from(&self, dst_offset: usize, src: &SharedBuffer, src_offset: usize, len: usize) {
        assert!(
            src_offset + len <= src.len(),
            "copy_from: source range out of bounds"
        );
        assert!(
            dst_offset + len <= self.len(),
            "copy_from: destination range out of bounds"
        );
        for i in 0..len {
            let bits = src.cells[src_offset + i].load(Ordering::Relaxed);
            self.cells[dst_offset + i].store(bits, Ordering::Relaxed);
        }
    }

    /// Adds `len` elements of `src` element-wise into `self`.
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds.
    pub fn add_from(&self, dst_offset: usize, src: &SharedBuffer, src_offset: usize, len: usize) {
        assert!(
            src_offset + len <= src.len(),
            "add_from: source range out of bounds"
        );
        assert!(
            dst_offset + len <= self.len(),
            "add_from: destination range out of bounds"
        );
        for i in 0..len {
            let v = src.load(src_offset + i);
            let cur = self.load(dst_offset + i);
            self.store(dst_offset + i, cur + v);
        }
    }

    /// Fills the whole buffer with `value`.
    pub fn fill(&self, value: f32) {
        for cell in self.cells.iter() {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Copies the entire buffer into a `Vec<f32>`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.read_range(0, self.len())
    }
}

impl std::fmt::Debug for SharedBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBuffer")
            .field("len", &self.len())
            .finish()
    }
}

impl From<Vec<f32>> for SharedBuffer {
    fn from(values: Vec<f32>) -> Self {
        Self::from_slice(&values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn zeros_and_len() {
        let b = SharedBuffer::zeros(16);
        assert_eq!(b.len(), 16);
        assert!(!b.is_empty());
        assert!(b.to_vec().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_buffer() {
        let b = SharedBuffer::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.to_vec(), Vec::<f32>::new());
    }

    #[test]
    fn store_load_roundtrip() {
        let b = SharedBuffer::zeros(4);
        b.store(2, -3.5);
        assert_eq!(b.load(2), -3.5);
    }

    #[test]
    fn write_and_read_slices() {
        let b = SharedBuffer::zeros(8);
        b.write_slice(2, &[1.0, 2.0, 3.0]);
        assert_eq!(b.read_range(2, 3), vec![1.0, 2.0, 3.0]);
        assert_eq!(b.load(1), 0.0);
        assert_eq!(b.load(5), 0.0);
    }

    #[test]
    fn copy_from_moves_data_between_buffers() {
        let src = SharedBuffer::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let dst = SharedBuffer::zeros(4);
        dst.copy_from(1, &src, 2, 2);
        assert_eq!(dst.to_vec(), vec![0.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn add_from_accumulates() {
        let src = SharedBuffer::from_slice(&[1.0, 1.0]);
        let dst = SharedBuffer::from_slice(&[2.0, 3.0]);
        dst.add_from(0, &src, 0, 2);
        assert_eq!(dst.to_vec(), vec![3.0, 4.0]);
    }

    #[test]
    fn clone_aliases_storage() {
        let a = SharedBuffer::zeros(2);
        let b = a.clone();
        a.store(0, 7.0);
        assert_eq!(b.load(0), 7.0);
    }

    #[test]
    fn fetch_add_is_atomic_across_threads() {
        let b = SharedBuffer::zeros(1);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let b = b.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        b.fetch_add(0, 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(b.load(0), 8000.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_slice_out_of_bounds_panics() {
        SharedBuffer::zeros(2).write_slice(1, &[1.0, 2.0]);
    }

    #[test]
    fn from_vec_conversion() {
        let b: SharedBuffer = vec![1.0, 2.0].into();
        assert_eq!(b.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn fill_overwrites_all() {
        let b = SharedBuffer::from_slice(&[1.0, 2.0, 3.0]);
        b.fill(9.0);
        assert_eq!(b.to_vec(), vec![9.0, 9.0, 9.0]);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", SharedBuffer::zeros(1)).is_empty());
    }
}
