//! Fast-path / trace-path parity: `Engine::makespan` must be bit-identical to
//! `Engine::run(..).makespan()` — one scheduler, two recorders — across
//! randomized graphs under both cost models, plus a wakeup-order regression
//! for the per-resource wait lists.

use std::sync::Arc;

use tilelink_sim::{
    CalibratedCostModel, ClusterSpec, Engine, ResourceKind, SharedCost, SimScratch, TaskGraph, Work,
};

/// Deterministic splitmix64 (same generator the routing sampler uses; no
/// external dependencies allowed in this environment).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A random graph mixing Sm / DMA / LinkBytes / Host tasks with fan-in and
/// fan-out dependencies, saturated enough that tasks genuinely contend (the
/// wait lists are exercised, not just the happy path).
fn random_graph(seed: u64, world: usize) -> TaskGraph {
    let mut rng = Rng(seed);
    let mut g = TaskGraph::new();
    let tasks = 40 + rng.below(80) as usize;
    for i in 0..tasks {
        let rank = rng.below(world as u64) as usize;
        let id = match rng.below(4) {
            0 => g.add_task(
                format!("sm/{i}"),
                rank,
                ResourceKind::Sm,
                // Often more than half the SMs, so two tasks cannot share.
                33 + rng.below(99),
                match rng.below(3) {
                    0 => Work::MatmulFlops {
                        flops: 1e9 + rng.below(64) as f64 * 1e9,
                        efficiency: 0.5,
                    },
                    1 => Work::HbmBytes {
                        bytes: 1e6 + rng.below(512) as f64 * 1e6,
                    },
                    _ => Work::Latency {
                        seconds: 1e-5 * (1 + rng.below(40)) as f64,
                    },
                },
            ),
            1 => {
                let dst = rng.below(world as u64) as usize;
                g.add_task(
                    format!("dma/{i}"),
                    rank,
                    ResourceKind::DmaEngine,
                    1 + rng.below(4),
                    Work::LinkBytes {
                        bytes: 1e5 + rng.below(1024) as f64 * 1e5,
                        dst_rank: dst,
                    },
                )
            }
            2 => {
                let dst = rng.below(world as u64) as usize;
                g.add_task(
                    format!("link/{i}"),
                    rank,
                    ResourceKind::LinkOut,
                    // 34..100 shares: at most two transfers share a port.
                    34 + rng.below(67),
                    Work::LinkBytes {
                        bytes: 1e5 + rng.below(1024) as f64 * 1e5,
                        dst_rank: dst,
                    },
                )
            }
            _ => g.add_host_latency(format!("host/{i}"), rank, 1e-6 * (1 + rng.below(30)) as f64),
        };
        // Fan-in: up to 3 predecessors among earlier tasks (fan-out arises
        // naturally when several later tasks pick the same predecessor).
        for _ in 0..rng.below(4) {
            if id.0 > 0 {
                let pred = rng.below(id.0 as u64) as usize;
                g.add_dep(tilelink_sim::TaskId(pred), id);
            }
        }
    }
    g
}

fn providers(world: usize) -> Vec<(&'static str, SharedCost)> {
    let cluster = if world > 8 {
        ClusterSpec::h800_multi_node(world / 8)
    } else {
        ClusterSpec::h800_node(world)
    };
    vec![
        ("analytic", tilelink_sim::analytic_cost(&cluster)),
        (
            "calibrated",
            Arc::new(CalibratedCostModel::h800_defaults(cluster)),
        ),
    ]
}

#[test]
fn fast_path_makespan_is_bit_identical_to_the_trace_path() {
    for world in [4usize, 16] {
        for (model, cost) in providers(world) {
            let engine = Engine::with_cost(cost);
            let mut scratch = SimScratch::new();
            for seed in 0..24u64 {
                let g = random_graph(seed * 7919 + 1, world);
                let traced = engine.run(&g).expect("trace path").makespan();
                let fast = engine
                    .makespan_with_scratch(&g, &mut scratch)
                    .expect("fast path");
                assert_eq!(
                    fast.to_bits(),
                    traced.to_bits(),
                    "seed {seed}, world {world}, {model}: fast {fast} != traced {traced}"
                );
            }
        }
    }
}

#[test]
fn repeated_scratch_reuse_does_not_leak_state_between_graphs() {
    let engine = Engine::new(ClusterSpec::h800_node(4));
    let mut scratch = SimScratch::new();
    // Alternate between differently-shaped graphs on one scratch; every
    // result must match a fresh computation.
    for seed in 0..10u64 {
        let g = random_graph(seed, 4);
        let fresh = engine.makespan(&g).unwrap();
        let reused = engine.makespan_with_scratch(&g, &mut scratch).unwrap();
        assert_eq!(reused.to_bits(), fresh.to_bits(), "seed {seed}");
    }
}

/// The scenario where naive per-resource wait lists would reorder starts
/// relative to the old single-FIFO scan:
///
/// * `early` (ready 3rd) first parks on rank 0's `LinkOut`;
/// * `late` (ready 4th) parks on rank 3's `LinkIn`;
/// * at t=1 rank 0's port frees, `early` wakes but re-parks on rank 3's
///   `LinkIn` — *behind* `late` in that list's insertion order;
/// * at t=2 rank 3's ingress frees with room for only one transfer.
///
/// FIFO start order says `early` (it became ready first) must win; an
/// insertion-ordered wait list would start `late` instead. The wake merge
/// sorts by ready sequence, so `early` starts at 2 s and `late` at 3 s.
#[test]
fn wakeup_order_preserves_global_fifo_ready_order() {
    let cluster = ClusterSpec::h800_node(4);
    let mut g = TaskGraph::new();
    let bw = cluster.gpu.nvlink_bytes_per_s();
    let transfer = |secs: f64, dst: usize| Work::LinkBytes {
        bytes: secs * bw,
        dst_rank: dst,
    };
    // Holds rank 0 LinkOut (and rank 1 LinkIn) for ~1 s.
    g.add_task(
        "hold_r0_out",
        0,
        ResourceKind::LinkOut,
        100,
        transfer(1.0, 1),
    );
    // Holds rank 3 LinkIn (and rank 2 LinkOut) for ~2 s.
    g.add_task(
        "hold_r3_in",
        2,
        ResourceKind::LinkOut,
        100,
        transfer(2.0, 3),
    );
    let early = g.add_task("early", 0, ResourceKind::LinkOut, 100, transfer(1.0, 3));
    let late = g.add_task("late", 1, ResourceKind::LinkOut, 100, transfer(1.0, 3));

    let engine = Engine::new(cluster);
    let trace = engine.run(&g).unwrap();
    let early_start = trace.entry(early).unwrap().start;
    let late_start = trace.entry(late).unwrap().start;
    assert!(
        early_start < late_start,
        "FIFO ready order violated: early starts at {early_start}, late at {late_start}"
    );
    // early runs 2s..3s (after both blockers), late only after early frees
    // rank 3's ingress again.
    assert!((early_start - 2.0).abs() < 1e-6, "early at {early_start}");
    assert!((late_start - 3.0).abs() < 1e-6, "late at {late_start}");
    // And the fast path agrees to the bit.
    assert_eq!(
        engine.makespan(&g).unwrap().to_bits(),
        trace.makespan().to_bits()
    );
}
