//! Per-GPU hardware description and presets.

/// Hardware parameters of one GPU.
///
/// Values are deliberately coarse: the simulator is used to compare *overlap
/// strategies* against each other, so only the ratios between compute
/// throughput, memory bandwidth, interconnect bandwidth and host latency have
/// to be realistic.
///
/// The default preset [`GpuSpec::h800`] matches the paper's evaluation platform
/// (NVIDIA H800: Hopper compute with NVLink capped at 400 GB/s total).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u64,
    /// Peak dense BF16 tensor-core throughput in TFLOP/s.
    pub peak_tflops: f64,
    /// HBM bandwidth in GB/s.
    pub hbm_gbps: f64,
    /// Per-direction NVLink bandwidth towards peers in the same node, GB/s.
    pub nvlink_gbps: f64,
    /// Per-direction network (InfiniBand) bandwidth towards other nodes, GB/s.
    pub ib_gbps: f64,
    /// Number of asynchronous DMA copy engines usable for peer-to-peer copies.
    pub dma_engines: u64,
    /// Latency of launching one kernel from the host, in microseconds.
    pub kernel_launch_us: f64,
    /// Latency of one host-driven synchronisation (stream wait / event), in microseconds.
    pub host_sync_us: f64,
}

impl GpuSpec {
    /// Number of shareable units one interconnect port direction is divided
    /// into: a `LinkOut`/`LinkIn` task's `units` is the *percent* of the
    /// port's per-direction bandwidth it occupies. The scheduler's capacity
    /// tables, trace utilisation and the workload graph builders all derive
    /// their port shares from this constant so they cannot drift.
    pub const LINK_PORT_SHARES: u64 = 100;

    /// NVIDIA H800 SXM (the paper's platform): 132 SMs, ~990 TFLOP/s dense BF16,
    /// 3.35 TB/s HBM3, 200 GB/s per-direction NVLink (400 GB/s total), 50 GB/s IB.
    pub fn h800() -> Self {
        Self {
            name: "H800".to_string(),
            sm_count: 132,
            peak_tflops: 989.0,
            hbm_gbps: 3350.0,
            nvlink_gbps: 200.0,
            ib_gbps: 50.0,
            dma_engines: 4,
            kernel_launch_us: 5.0,
            host_sync_us: 20.0,
        }
    }

    /// NVIDIA H100 SXM: same compute, full 450 GB/s per-direction NVLink.
    pub fn h100() -> Self {
        Self {
            name: "H100".to_string(),
            nvlink_gbps: 450.0,
            ..Self::h800()
        }
    }

    /// NVIDIA A100 SXM: 108 SMs, 312 TFLOP/s BF16, 2.0 TB/s HBM2e, 300 GB/s NVLink.
    pub fn a100() -> Self {
        Self {
            name: "A100".to_string(),
            sm_count: 108,
            peak_tflops: 312.0,
            hbm_gbps: 2039.0,
            nvlink_gbps: 300.0,
            ib_gbps: 25.0,
            dma_engines: 4,
            kernel_launch_us: 5.0,
            host_sync_us: 20.0,
        }
    }

    /// Peak throughput in FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.peak_tflops * 1e12
    }

    /// HBM bandwidth in bytes/s.
    pub fn hbm_bytes_per_s(&self) -> f64 {
        self.hbm_gbps * 1e9
    }

    /// NVLink per-direction bandwidth in bytes/s.
    pub fn nvlink_bytes_per_s(&self) -> f64 {
        self.nvlink_gbps * 1e9
    }

    /// Inter-node per-direction bandwidth in bytes/s.
    pub fn ib_bytes_per_s(&self) -> f64 {
        self.ib_gbps * 1e9
    }

    /// Kernel launch latency in seconds.
    pub fn kernel_launch_s(&self) -> f64 {
        self.kernel_launch_us * 1e-6
    }

    /// Host synchronisation latency in seconds.
    pub fn host_sync_s(&self) -> f64 {
        self.host_sync_us * 1e-6
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::h800()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h800_matches_published_specs() {
        let g = GpuSpec::h800();
        assert_eq!(g.sm_count, 132);
        assert!(g.peak_tflops > 900.0);
        // H800 NVLink is capped well below the H100.
        assert!(g.nvlink_gbps < GpuSpec::h100().nvlink_gbps);
    }

    #[test]
    fn unit_conversions() {
        let g = GpuSpec::h800();
        assert!((g.peak_flops() - 989.0e12).abs() < 1e6);
        assert!((g.hbm_bytes_per_s() - 3.35e12).abs() < 1e9);
        assert!((g.kernel_launch_s() - 5e-6).abs() < 1e-12);
    }

    #[test]
    fn default_is_h800() {
        assert_eq!(GpuSpec::default(), GpuSpec::h800());
    }

    #[test]
    fn a100_is_slower_than_h800() {
        assert!(GpuSpec::a100().peak_tflops < GpuSpec::h800().peak_tflops);
    }
}
