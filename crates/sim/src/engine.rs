//! The discrete-event scheduler.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::{
    analytic_cost, ClusterSpec, CostProvider, ResourceKind, Result, Seconds, SharedCost, SimError,
    TaskGraph, TaskId, Trace, TraceEntry, Work,
};

/// A completion event in the event queue. Ordered by time, then task id for
/// determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Completion {
    time: Seconds,
    task: TaskId,
}

impl Eq for Completion {}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.task.cmp(&other.task))
    }
}

/// Executes [`TaskGraph`]s against a [`ClusterSpec`].
///
/// The engine is a resource-constrained list scheduler: a task starts as soon
/// as (a) all of its dependencies have finished and (b) its requested resource
/// units are free on its rank. Ready tasks are considered in submission order,
/// which mirrors how a GPU's block scheduler drains a grid.
#[derive(Debug, Clone)]
pub struct Engine {
    cost: SharedCost,
}

impl Engine {
    /// Creates an engine for the given cluster with the default analytic cost
    /// model.
    pub fn new(cluster: ClusterSpec) -> Self {
        Self::with_cost(analytic_cost(&cluster))
    }

    /// Creates an engine priced by an explicit cost provider (the cluster is
    /// taken from the provider, so the two can never disagree).
    pub fn with_cost(cost: SharedCost) -> Self {
        Self { cost }
    }

    /// The cluster being simulated.
    pub fn cluster(&self) -> &ClusterSpec {
        self.cost.cluster()
    }

    /// The cost provider used to convert work into durations.
    pub fn cost(&self) -> &dyn CostProvider {
        &*self.cost
    }

    fn capacity(&self, kind: ResourceKind) -> u64 {
        let gpu = &self.cluster().gpu;
        match kind {
            ResourceKind::Sm => gpu.sm_count,
            ResourceKind::DmaEngine => gpu.dma_engines,
            ResourceKind::LinkOut | ResourceKind::LinkIn => 100,
            ResourceKind::Host => 1,
        }
    }

    fn validate(&self, graph: &TaskGraph) -> Result<()> {
        let world = self.cluster().world_size();
        for (id, task) in graph.iter() {
            if task.rank >= world {
                return Err(SimError::InvalidRank {
                    rank: task.rank,
                    world_size: world,
                });
            }
            if let Work::LinkBytes { dst_rank, .. } = task.work {
                if dst_rank >= world {
                    return Err(SimError::InvalidRank {
                        rank: dst_rank,
                        world_size: world,
                    });
                }
            }
            let cap = self.capacity(task.resource);
            if task.units == 0 || task.units > cap {
                return Err(SimError::InsufficientCapacity {
                    task: id,
                    requested: task.units,
                    capacity: cap,
                });
            }
        }
        Ok(())
    }

    /// Runs the graph to completion and returns the execution trace.
    ///
    /// # Errors
    ///
    /// Returns an error if a task references an invalid rank, requests more
    /// units than exist, or if the dependency graph contains a cycle.
    pub fn run(&self, graph: &TaskGraph) -> Result<Trace> {
        self.validate(graph)?;

        let mut available: HashMap<(usize, ResourceKind), u64> = HashMap::new();
        for rank in 0..self.cluster().world_size() {
            for kind in ResourceKind::ALL {
                available.insert((rank, kind), self.capacity(kind));
            }
        }

        let mut predecessor_count = graph.predecessor_counts();
        let mut ready: VecDeque<TaskId> = graph
            .iter()
            .filter(|(id, _)| predecessor_count[id.0] == 0)
            .map(|(id, _)| id)
            .collect();
        let mut events: BinaryHeap<Reverse<Completion>> = BinaryHeap::new();
        let mut entries: Vec<Option<TraceEntry>> = vec![None; graph.len()];
        // Extra resources (dst LinkIn) held by a running task.
        let mut extra_held: HashMap<TaskId, (usize, ResourceKind, u64)> = HashMap::new();

        let mut now: Seconds = 0.0;
        let mut completed = 0usize;
        let mut running = 0usize;

        loop {
            // Start every ready task whose resources are free, in FIFO order.
            let mut deferred: VecDeque<TaskId> = VecDeque::new();
            while let Some(id) = ready.pop_front() {
                let task = graph.task(id);
                let key = (task.rank, task.resource);
                let free = *available.get(&key).expect("resource exists");
                // A link transfer also needs ingress capacity at the destination.
                let link_dst = match task.work {
                    Work::LinkBytes { dst_rank, .. } if dst_rank != task.rank => {
                        Some((dst_rank, ResourceKind::LinkIn, task.units))
                    }
                    _ => None,
                };
                let dst_free = link_dst
                    .map(|(r, k, u)| *available.get(&(r, k)).expect("resource exists") >= u)
                    .unwrap_or(true);
                if free >= task.units && dst_free {
                    *available.get_mut(&key).expect("resource exists") -= task.units;
                    if let Some((r, k, u)) = link_dst {
                        *available.get_mut(&(r, k)).expect("resource exists") -= u;
                        extra_held.insert(id, (r, k, u));
                    }
                    let duration = self.cost.duration(task, task.units);
                    let end = now + duration;
                    entries[id.0] = Some(TraceEntry {
                        task: id,
                        name: task.name.clone(),
                        rank: task.rank,
                        resource: task.resource,
                        units: task.units,
                        start: now,
                        end,
                    });
                    events.push(Reverse(Completion {
                        time: end,
                        task: id,
                    }));
                    running += 1;
                } else {
                    deferred.push_back(id);
                }
            }
            ready = deferred;

            if running == 0 {
                if completed == graph.len() {
                    break;
                }
                // Nothing is running and nothing could start: the remaining
                // tasks are blocked on predecessors that will never finish.
                return Err(SimError::DependencyCycle {
                    stuck: graph.len() - completed,
                });
            }

            // Advance to the next completion.
            let Reverse(Completion { time, task: id }) = events.pop().expect("running tasks exist");
            now = time;
            running -= 1;
            completed += 1;
            let task = graph.task(id);
            *available
                .get_mut(&(task.rank, task.resource))
                .expect("resource exists") += task.units;
            if let Some((r, k, u)) = extra_held.remove(&id) {
                *available.get_mut(&(r, k)).expect("resource exists") += u;
            }
            for &succ in graph.successors(id) {
                predecessor_count[succ.0] -= 1;
                if predecessor_count[succ.0] == 0 {
                    ready.push_back(succ);
                }
            }

            // Drain any other completions at the same instant before trying to
            // start new work, so resources freed "simultaneously" are pooled.
            while let Some(&Reverse(peek)) = events.peek() {
                if peek.time > now {
                    break;
                }
                let Reverse(Completion { task: id, .. }) = events.pop().expect("peeked");
                running -= 1;
                completed += 1;
                let task = graph.task(id);
                *available
                    .get_mut(&(task.rank, task.resource))
                    .expect("resource exists") += task.units;
                if let Some((r, k, u)) = extra_held.remove(&id) {
                    *available.get_mut(&(r, k)).expect("resource exists") += u;
                }
                for &succ in graph.successors(id) {
                    predecessor_count[succ.0] -= 1;
                    if predecessor_count[succ.0] == 0 {
                        ready.push_back(succ);
                    }
                }
            }

            if completed == graph.len() && running == 0 && ready.is_empty() {
                break;
            }
        }

        let entries: Vec<TraceEntry> = entries.into_iter().flatten().collect();
        Ok(Trace::new(self.cluster().clone(), entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuSpec, Task};

    fn engine() -> Engine {
        Engine::new(ClusterSpec::h800_node(4))
    }

    #[test]
    fn empty_graph_has_zero_makespan() {
        let trace = engine().run(&TaskGraph::new()).unwrap();
        assert_eq!(trace.makespan(), 0.0);
        assert!(trace.entries().is_empty());
    }

    #[test]
    fn independent_tasks_on_different_resources_overlap() {
        let mut g = TaskGraph::new();
        g.add_task(
            "compute",
            0,
            ResourceKind::Sm,
            132,
            Work::Latency { seconds: 1.0 },
        );
        g.add_task(
            "copy",
            0,
            ResourceKind::DmaEngine,
            1,
            Work::Latency { seconds: 1.0 },
        );
        let trace = engine().run(&g).unwrap();
        assert!(
            (trace.makespan() - 1.0).abs() < 1e-9,
            "tasks should overlap"
        );
    }

    #[test]
    fn tasks_on_the_same_saturated_resource_serialise() {
        let mut g = TaskGraph::new();
        g.add_task(
            "a",
            0,
            ResourceKind::Sm,
            132,
            Work::Latency { seconds: 1.0 },
        );
        g.add_task(
            "b",
            0,
            ResourceKind::Sm,
            132,
            Work::Latency { seconds: 1.0 },
        );
        let trace = engine().run(&g).unwrap();
        assert!((trace.makespan() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn partial_sm_allocations_share_the_gpu() {
        let mut g = TaskGraph::new();
        g.add_task("a", 0, ResourceKind::Sm, 66, Work::Latency { seconds: 1.0 });
        g.add_task("b", 0, ResourceKind::Sm, 66, Work::Latency { seconds: 1.0 });
        let trace = engine().run(&g).unwrap();
        assert!((trace.makespan() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_serialise_even_across_resources() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 0, ResourceKind::Sm, 1, Work::Latency { seconds: 1.0 });
        let b = g.add_task(
            "b",
            1,
            ResourceKind::DmaEngine,
            1,
            Work::Latency { seconds: 0.5 },
        );
        g.add_dep(a, b);
        let trace = engine().run(&g).unwrap();
        assert!((trace.makespan() - 1.5).abs() < 1e-9);
        assert!(trace.entry(b).unwrap().start >= trace.entry(a).unwrap().end);
    }

    #[test]
    fn link_transfer_occupies_both_endpoints() {
        let mut g = TaskGraph::new();
        // Two transfers into rank 1 at full port share must serialise on rank 1's ingress.
        g.add_task(
            "c0",
            0,
            ResourceKind::LinkOut,
            100,
            Work::LinkBytes {
                bytes: 200e9,
                dst_rank: 1,
            },
        );
        g.add_task(
            "c2",
            2,
            ResourceKind::LinkOut,
            100,
            Work::LinkBytes {
                bytes: 200e9,
                dst_rank: 1,
            },
        );
        let trace = engine().run(&g).unwrap();
        // each transfer is 1 s at 200 GB/s
        assert!((trace.makespan() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_host_latency("a", 0, 1.0);
        let b = g.add_host_latency("b", 0, 1.0);
        g.add_dep(a, b);
        g.add_dep(b, a);
        assert!(matches!(
            engine().run(&g),
            Err(SimError::DependencyCycle { .. })
        ));
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let mut g = TaskGraph::new();
        g.add_host_latency("a", 9, 1.0);
        assert!(matches!(
            engine().run(&g),
            Err(SimError::InvalidRank { .. })
        ));
    }

    #[test]
    fn oversized_request_is_rejected() {
        let mut g = TaskGraph::new();
        g.push(Task::new(
            "too-big",
            0,
            ResourceKind::Sm,
            500,
            Work::Latency { seconds: 1.0 },
        ));
        assert!(matches!(
            engine().run(&g),
            Err(SimError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn matmul_work_uses_cost_model() {
        let gpu = GpuSpec::h800();
        let flops = 0.5 * gpu.peak_flops(); // half a second of work at peak
        let mut g = TaskGraph::new();
        g.add_task(
            "gemm",
            0,
            ResourceKind::Sm,
            gpu.sm_count,
            Work::MatmulFlops {
                flops,
                efficiency: 1.0,
            },
        );
        let trace = Engine::new(ClusterSpec::new(gpu, 1, 1)).run(&g).unwrap();
        assert!((trace.makespan() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn engine_with_calibrated_cost_slows_small_transfers() {
        let cluster = ClusterSpec::h800_node(2);
        let mut g = TaskGraph::new();
        g.add_task(
            "signal",
            0,
            ResourceKind::DmaEngine,
            1,
            Work::LinkBytes {
                bytes: 8.0,
                dst_rank: 1,
            },
        );
        let analytic = Engine::new(cluster.clone()).run(&g).unwrap().makespan();
        let calibrated = Engine::with_cost(std::sync::Arc::new(
            crate::CalibratedCostModel::h800_defaults(cluster),
        ))
        .run(&g)
        .unwrap()
        .makespan();
        assert!(analytic > 0.0, "α floor keeps signals from being free");
        assert!(calibrated > analytic);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut g = TaskGraph::new();
        for i in 0..50 {
            let t = g.add_task(
                format!("t{i}"),
                i % 4,
                ResourceKind::Sm,
                32,
                Work::Latency {
                    seconds: 0.01 * (i % 7 + 1) as f64,
                },
            );
            if i >= 4 {
                g.add_dep(TaskId(i - 4), t);
            }
        }
        let e = engine();
        let a = e.run(&g).unwrap();
        let b = e.run(&g).unwrap();
        assert_eq!(a.makespan(), b.makespan());
    }
}
