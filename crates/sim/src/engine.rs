//! The discrete-event scheduler facade: validation plus the two recorders.

use std::cell::RefCell;

use crate::sched::{schedule, schedule_bounded, BoundedMakespan, SimScratch};
use crate::{
    analytic_cost, ClusterSpec, CostProvider, Result, Seconds, SharedCost, SimError, TaskGraph,
    Trace, TraceEntry, Work,
};

/// Executes [`TaskGraph`]s against a [`ClusterSpec`].
///
/// The engine is a resource-constrained list scheduler: a task starts as soon
/// as (a) all of its dependencies have finished and (b) its requested resource
/// units are free on its rank. Ready tasks are considered in submission order,
/// which mirrors how a GPU's block scheduler drains a grid.
///
/// The scheduling core lives in [`crate::sched`]; the engine exposes it twice:
///
/// * [`Engine::run`] records a full [`Trace`] (per-task timing, utilisation);
/// * [`Engine::makespan`] / [`Engine::makespan_with_scratch`] record nothing
///   and return only the makespan — several times faster, and what search
///   loops that price thousands of candidate graphs should call.
#[derive(Debug, Clone)]
pub struct Engine {
    cost: SharedCost,
}

impl Engine {
    /// Creates an engine for the given cluster with the default analytic cost
    /// model.
    pub fn new(cluster: ClusterSpec) -> Self {
        Self::with_cost(analytic_cost(&cluster))
    }

    /// Creates an engine priced by an explicit cost provider (the cluster is
    /// taken from the provider, so the two can never disagree).
    pub fn with_cost(cost: SharedCost) -> Self {
        Self { cost }
    }

    /// The cluster being simulated.
    pub fn cluster(&self) -> &ClusterSpec {
        self.cost.cluster()
    }

    /// The cost provider used to convert work into durations.
    pub fn cost(&self) -> &dyn CostProvider {
        &*self.cost
    }

    fn validate(&self, graph: &TaskGraph) -> Result<()> {
        let world = self.cluster().world_size();
        for (id, task) in graph.iter() {
            if task.rank >= world {
                return Err(SimError::InvalidRank {
                    rank: task.rank,
                    world_size: world,
                });
            }
            if let Work::LinkBytes { dst_rank, .. } = task.work {
                if dst_rank >= world {
                    return Err(SimError::InvalidRank {
                        rank: dst_rank,
                        world_size: world,
                    });
                }
            }
            let cap = self.cluster().resource_capacity(task.resource);
            if task.units == 0 || task.units > cap {
                return Err(SimError::InsufficientCapacity {
                    task: id,
                    requested: task.units,
                    capacity: cap,
                });
            }
        }
        Ok(())
    }

    /// Runs the graph to completion and returns the execution trace.
    ///
    /// # Errors
    ///
    /// Returns an error if a task references an invalid rank, requests more
    /// units than exist, or if the dependency graph contains a cycle.
    pub fn run(&self, graph: &TaskGraph) -> Result<Trace> {
        tilelink_probe::metrics::SIM_TRACE_RUNS.inc();
        self.validate(graph)?;
        let mut entries: Vec<Option<TraceEntry>> = vec![None; graph.len()];
        // The trace path allocates per-task entries anyway, so it pays for a
        // local scratch rather than borrowing the thread-local one — keeping
        // `run` re-entrant for cost providers that themselves simulate.
        let mut scratch = SimScratch::new();
        schedule(&*self.cost, graph, &mut scratch, |id, task, start, end| {
            entries[id.0] = Some(TraceEntry {
                task: id,
                name: task.name.to_arc(),
                rank: task.rank,
                resource: task.resource,
                units: task.units,
                start,
                end,
            });
        })?;
        let entries: Vec<TraceEntry> = entries.into_iter().flatten().collect();
        Ok(Trace::new(self.cluster().clone(), entries))
    }

    /// Runs the graph to completion and returns only its makespan, skipping
    /// all trace recording.
    ///
    /// This is the fast path for search loops: it produces bit-identical
    /// timing to [`Engine::run`] (one shared scheduler, see [`crate::sched`])
    /// but allocates no per-task entries. Buffers are reused through one
    /// scratch per thread; callers managing their own can use
    /// [`Engine::makespan_with_scratch`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::run`].
    pub fn makespan(&self, graph: &TaskGraph) -> Result<Seconds> {
        SCRATCH.with(|scratch| match scratch.try_borrow_mut() {
            Ok(mut scratch) => {
                tilelink_probe::metrics::SIM_SCRATCH_REUSES.inc();
                self.makespan_with_scratch(graph, &mut scratch)
            }
            // Re-entrant simulation (a cost provider that itself simulates on
            // this thread): fall back to a fresh scratch instead of panicking
            // on the RefCell.
            Err(_) => {
                tilelink_probe::metrics::SIM_SCRATCH_COLD.inc();
                self.makespan_with_scratch(graph, &mut SimScratch::new())
            }
        })
    }

    /// [`Engine::makespan`] with an explicit reusable scratch buffer.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::run`].
    pub fn makespan_with_scratch(
        &self,
        graph: &TaskGraph,
        scratch: &mut SimScratch,
    ) -> Result<Seconds> {
        // One relaxed counter bump per simulation (never per event) keeps the
        // fast path's throughput intact while the registry still sees every run.
        tilelink_probe::metrics::SIM_MAKESPAN_RUNS.inc();
        self.validate(graph)?;
        schedule(&*self.cost, graph, scratch, |_, _, _, _| {})
    }

    /// [`Engine::makespan`] with an abort cutoff: runs the identical
    /// scheduler, but stops as soon as the simulated clock provably exceeds
    /// `cutoff`, returning [`BoundedMakespan::Exceeded`] with the partial
    /// makespan (a certified lower bound on the true one).
    ///
    /// When the cutoff is never hit, the returned
    /// [`BoundedMakespan::Finished`] value is bit-identical to what
    /// [`Engine::makespan`] returns — both drive the same scheduling core.
    /// This is the branch-and-bound fast path: search loops pass the
    /// incumbent-best as `cutoff` and discard candidates that exceed it
    /// without simulating their tail.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::run`].
    pub fn makespan_bounded(&self, graph: &TaskGraph, cutoff: Seconds) -> Result<BoundedMakespan> {
        SCRATCH.with(|scratch| match scratch.try_borrow_mut() {
            Ok(mut scratch) => {
                tilelink_probe::metrics::SIM_SCRATCH_REUSES.inc();
                self.makespan_bounded_with_scratch(graph, cutoff, &mut scratch)
            }
            Err(_) => {
                tilelink_probe::metrics::SIM_SCRATCH_COLD.inc();
                self.makespan_bounded_with_scratch(graph, cutoff, &mut SimScratch::new())
            }
        })
    }

    /// [`Engine::makespan_bounded`] with an explicit reusable scratch buffer.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::run`].
    pub fn makespan_bounded_with_scratch(
        &self,
        graph: &TaskGraph,
        cutoff: Seconds,
        scratch: &mut SimScratch,
    ) -> Result<BoundedMakespan> {
        tilelink_probe::metrics::SIM_MAKESPAN_RUNS.inc();
        self.validate(graph)?;
        let result = schedule_bounded(&*self.cost, graph, scratch, cutoff, |_, _, _, _| {})?;
        if matches!(result, BoundedMakespan::Exceeded(_)) {
            tilelink_probe::metrics::SIM_MAKESPAN_BOUNDED_ABORTS.inc();
        }
        Ok(result)
    }
}

thread_local! {
    /// One warm scratch per thread: repeated simulations (e.g. a tuner worker
    /// thread pricing candidates back to back) reuse its buffers without any
    /// caller-side plumbing.
    static SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch::new());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuSpec, ResourceKind, Task, TaskId};

    fn engine() -> Engine {
        Engine::new(ClusterSpec::h800_node(4))
    }

    #[test]
    fn empty_graph_has_zero_makespan() {
        let trace = engine().run(&TaskGraph::new()).unwrap();
        assert_eq!(trace.makespan(), 0.0);
        assert!(trace.entries().is_empty());
        assert_eq!(engine().makespan(&TaskGraph::new()).unwrap(), 0.0);
    }

    #[test]
    fn independent_tasks_on_different_resources_overlap() {
        let mut g = TaskGraph::new();
        g.add_task(
            "compute",
            0,
            ResourceKind::Sm,
            132,
            Work::Latency { seconds: 1.0 },
        );
        g.add_task(
            "copy",
            0,
            ResourceKind::DmaEngine,
            1,
            Work::Latency { seconds: 1.0 },
        );
        let trace = engine().run(&g).unwrap();
        assert!(
            (trace.makespan() - 1.0).abs() < 1e-9,
            "tasks should overlap"
        );
    }

    #[test]
    fn tasks_on_the_same_saturated_resource_serialise() {
        let mut g = TaskGraph::new();
        g.add_task(
            "a",
            0,
            ResourceKind::Sm,
            132,
            Work::Latency { seconds: 1.0 },
        );
        g.add_task(
            "b",
            0,
            ResourceKind::Sm,
            132,
            Work::Latency { seconds: 1.0 },
        );
        let trace = engine().run(&g).unwrap();
        assert!((trace.makespan() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn partial_sm_allocations_share_the_gpu() {
        let mut g = TaskGraph::new();
        g.add_task("a", 0, ResourceKind::Sm, 66, Work::Latency { seconds: 1.0 });
        g.add_task("b", 0, ResourceKind::Sm, 66, Work::Latency { seconds: 1.0 });
        let trace = engine().run(&g).unwrap();
        assert!((trace.makespan() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_serialise_even_across_resources() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 0, ResourceKind::Sm, 1, Work::Latency { seconds: 1.0 });
        let b = g.add_task(
            "b",
            1,
            ResourceKind::DmaEngine,
            1,
            Work::Latency { seconds: 0.5 },
        );
        g.add_dep(a, b);
        let trace = engine().run(&g).unwrap();
        assert!((trace.makespan() - 1.5).abs() < 1e-9);
        assert!(trace.entry(b).unwrap().start >= trace.entry(a).unwrap().end);
    }

    #[test]
    fn link_transfer_occupies_both_endpoints() {
        let mut g = TaskGraph::new();
        // Two transfers into rank 1 at full port share must serialise on rank 1's ingress.
        g.add_task(
            "c0",
            0,
            ResourceKind::LinkOut,
            100,
            Work::LinkBytes {
                bytes: 200e9,
                dst_rank: 1,
            },
        );
        g.add_task(
            "c2",
            2,
            ResourceKind::LinkOut,
            100,
            Work::LinkBytes {
                bytes: 200e9,
                dst_rank: 1,
            },
        );
        let trace = engine().run(&g).unwrap();
        // each transfer is 1 s at 200 GB/s
        assert!((trace.makespan() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_host_latency("a", 0, 1.0);
        let b = g.add_host_latency("b", 0, 1.0);
        g.add_dep(a, b);
        g.add_dep(b, a);
        assert!(matches!(
            engine().run(&g),
            Err(SimError::DependencyCycle { .. })
        ));
        assert!(matches!(
            engine().makespan(&g),
            Err(SimError::DependencyCycle { .. })
        ));
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let mut g = TaskGraph::new();
        g.add_host_latency("a", 9, 1.0);
        assert!(matches!(
            engine().run(&g),
            Err(SimError::InvalidRank { .. })
        ));
    }

    #[test]
    fn oversized_request_is_rejected() {
        let mut g = TaskGraph::new();
        g.push(Task::new(
            "too-big",
            0,
            ResourceKind::Sm,
            500,
            Work::Latency { seconds: 1.0 },
        ));
        assert!(matches!(
            engine().run(&g),
            Err(SimError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn matmul_work_uses_cost_model() {
        let gpu = GpuSpec::h800();
        let flops = 0.5 * gpu.peak_flops(); // half a second of work at peak
        let mut g = TaskGraph::new();
        g.add_task(
            "gemm",
            0,
            ResourceKind::Sm,
            gpu.sm_count,
            Work::MatmulFlops {
                flops,
                efficiency: 1.0,
            },
        );
        let trace = Engine::new(ClusterSpec::new(gpu, 1, 1)).run(&g).unwrap();
        assert!((trace.makespan() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn engine_with_calibrated_cost_slows_small_transfers() {
        let cluster = ClusterSpec::h800_node(2);
        let mut g = TaskGraph::new();
        g.add_task(
            "signal",
            0,
            ResourceKind::DmaEngine,
            1,
            Work::LinkBytes {
                bytes: 8.0,
                dst_rank: 1,
            },
        );
        let analytic = Engine::new(cluster.clone()).run(&g).unwrap().makespan();
        let calibrated = Engine::with_cost(std::sync::Arc::new(
            crate::CalibratedCostModel::h800_defaults(cluster),
        ))
        .run(&g)
        .unwrap()
        .makespan();
        assert!(analytic > 0.0, "α floor keeps signals from being free");
        assert!(calibrated > analytic);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut g = TaskGraph::new();
        for i in 0..50 {
            let t = g.add_task(
                format!("t{i}"),
                i % 4,
                ResourceKind::Sm,
                32,
                Work::Latency {
                    seconds: 0.01 * (i % 7 + 1) as f64,
                },
            );
            if i >= 4 {
                g.add_dep(TaskId(i - 4), t);
            }
        }
        let e = engine();
        let a = e.run(&g).unwrap();
        let b = e.run(&g).unwrap();
        assert_eq!(a.makespan(), b.makespan());
    }

    /// Prices every task by running a nested simulation on the same thread —
    /// the re-entrancy case the thread-local scratch must tolerate.
    #[derive(Debug)]
    struct RecursiveCost {
        inner: SharedCost,
    }

    impl CostProvider for RecursiveCost {
        fn cluster(&self) -> &ClusterSpec {
            self.inner.cluster()
        }

        fn duration(&self, task: &crate::Task, units: u64) -> Seconds {
            let mut sub = TaskGraph::new();
            sub.add_host_latency("nested", 0, 1e-6);
            let nested = Engine::with_cost(self.inner.clone())
                .makespan(&sub)
                .expect("nested simulation");
            self.inner.duration(task, units) + nested
        }

        fn revision(&self) -> String {
            "recursive-test".to_string()
        }
    }

    #[test]
    fn engine_survives_reentrant_cost_providers() {
        let cluster = ClusterSpec::h800_node(2);
        let cost: SharedCost = std::sync::Arc::new(RecursiveCost {
            inner: analytic_cost(&cluster),
        });
        let engine = Engine::with_cost(cost);
        let mut g = TaskGraph::new();
        g.add_task("a", 0, ResourceKind::Sm, 66, Work::Latency { seconds: 1.0 });
        g.add_task("b", 1, ResourceKind::Sm, 66, Work::Latency { seconds: 2.0 });
        // Both recorders must price through the nested simulation without
        // panicking on the thread-local scratch.
        let traced = engine.run(&g).unwrap().makespan();
        let fast = engine.makespan(&g).unwrap();
        assert_eq!(fast.to_bits(), traced.to_bits());
        assert!((fast - (2.0 + 1e-6)).abs() < 1e-9);
    }

    fn chain_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        for i in 0..40 {
            let t = g.add_task(
                format!("t{i}"),
                i % 4,
                ResourceKind::Sm,
                48,
                Work::Latency {
                    seconds: 0.01 * (i % 5 + 1) as f64,
                },
            );
            if i >= 3 {
                g.add_dep(TaskId(i - 3), t);
            }
        }
        g
    }

    #[test]
    fn bounded_makespan_is_bit_identical_when_cutoff_not_hit() {
        let g = chain_graph();
        let e = engine();
        let exact = e.makespan(&g).unwrap();
        for cutoff in [f64::INFINITY, exact * 2.0, exact] {
            match e.makespan_bounded(&g, cutoff).unwrap() {
                BoundedMakespan::Finished(m) => assert_eq!(m.to_bits(), exact.to_bits()),
                BoundedMakespan::Exceeded(c) => panic!("cutoff {cutoff} wrongly aborted at {c}"),
            }
        }
    }

    #[test]
    fn bounded_makespan_aborts_below_the_true_makespan() {
        let g = chain_graph();
        let e = engine();
        let exact = e.makespan(&g).unwrap();
        let before = tilelink_probe::metrics::SIM_MAKESPAN_BOUNDED_ABORTS.get();
        match e.makespan_bounded(&g, exact * 0.25).unwrap() {
            BoundedMakespan::Exceeded(clock) => {
                assert!(clock > exact * 0.25, "abort clock must exceed the cutoff");
                assert!(
                    clock <= exact,
                    "abort clock is a lower bound on the true makespan"
                );
            }
            BoundedMakespan::Finished(m) => panic!("cutoff below makespan {m} did not abort"),
        }
        assert!(tilelink_probe::metrics::SIM_MAKESPAN_BOUNDED_ABORTS.get() > before);
        // Zero cutoff aborts at the very first completion batch.
        assert!(matches!(
            e.makespan_bounded(&g, 0.0).unwrap(),
            BoundedMakespan::Exceeded(_)
        ));
    }

    #[test]
    fn bounded_makespan_validates_like_the_unbounded_path() {
        let mut g = TaskGraph::new();
        g.add_host_latency("a", 9, 1.0);
        assert!(matches!(
            engine().makespan_bounded(&g, f64::INFINITY),
            Err(SimError::InvalidRank { .. })
        ));
    }

    #[test]
    fn makespan_matches_run_and_reuses_scratch() {
        let mut g = TaskGraph::new();
        for i in 0..40 {
            let t = g.add_task(
                format!("t{i}"),
                i % 4,
                ResourceKind::Sm,
                48,
                Work::Latency {
                    seconds: 0.01 * (i % 5 + 1) as f64,
                },
            );
            if i >= 3 {
                g.add_dep(TaskId(i - 3), t);
            }
        }
        let e = engine();
        let traced = e.run(&g).unwrap().makespan();
        let mut scratch = SimScratch::new();
        // Same scratch across repeated runs must not change the result.
        for _ in 0..3 {
            assert_eq!(e.makespan_with_scratch(&g, &mut scratch).unwrap(), traced);
        }
        assert_eq!(e.makespan(&g).unwrap(), traced);
    }
}
