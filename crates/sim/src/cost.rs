//! Analytic cost model: converts work descriptions into durations.

use crate::{ClusterSpec, LinkClass, Seconds, Task, Work};

/// Per-message latency floor (α) of a self-copy, in seconds.
///
/// Even a zero-byte message (a barrier release, a signal flag) costs a memory
/// round trip; without the floor the simulator prices such tasks at exactly
/// 0 s, which lets degenerate schedules look free.
pub const ALPHA_SELF_S: Seconds = 0.15e-6;
/// Per-message latency floor (α) of an intra-node NVLink transfer, in seconds.
pub const ALPHA_INTRA_NODE_S: Seconds = 0.5e-6;
/// Per-message latency floor (α) of an inter-node InfiniBand transfer, in seconds.
pub const ALPHA_INTER_NODE_S: Seconds = 2.0e-6;

/// α floor for one link class (see [`ALPHA_SELF_S`] and friends).
pub fn link_alpha_s(class: LinkClass) -> Seconds {
    match class {
        LinkClass::SelfCopy => ALPHA_SELF_S,
        LinkClass::IntraNode => ALPHA_INTRA_NODE_S,
        LinkClass::InterNode => ALPHA_INTER_NODE_S,
    }
}

/// Fraction of the link a transfer task gets: port resources are percentage
/// shares, any other carrier (a DMA engine, the host) owns the full port.
pub(crate) fn link_share(task: &Task, units: u64) -> f64 {
    match task.resource {
        crate::ResourceKind::LinkOut | crate::ResourceKind::LinkIn => {
            (units as f64 / 100.0).clamp(1e-3, 1.0)
        }
        _ => 1.0,
    }
}

/// Converts [`Work`] into durations given a [`ClusterSpec`] and the number of
/// resource units a task was granted.
///
/// The model also provides the GEMM efficiency heuristics used when *building*
/// task graphs (tile efficiency and wave quantisation), because the achieved
/// fraction of peak depends on tile shape decisions made by the compiler, not
/// by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    cluster: ClusterSpec,
}

impl CostModel {
    /// Stable fingerprint of the analytic model's formulas and constants.
    ///
    /// Folded into tuning-cache keys (see `tilelink-tune`) so cached results
    /// evaluated under an older model revision self-invalidate. Bump this
    /// whenever a formula or constant in this file changes observable
    /// durations.
    pub const REVISION: &'static str = "analytic-v2";

    /// Creates a cost model for a cluster.
    pub fn new(cluster: ClusterSpec) -> Self {
        Self { cluster }
    }

    /// The cluster this model describes.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Duration of `task` when granted `units` of its resource.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero (the engine validates this before starting a task).
    pub fn duration(&self, task: &Task, units: u64) -> Seconds {
        assert!(units > 0, "granted units must be positive");
        let gpu = &self.cluster.gpu;
        match task.work {
            Work::MatmulFlops { flops, efficiency } => {
                let fraction = units as f64 / gpu.sm_count as f64;
                let fraction = fraction.min(1.0);
                flops / (gpu.peak_flops() * fraction * efficiency.clamp(1e-3, 1.0))
            }
            Work::HbmBytes { bytes } => {
                let fraction = (units as f64 / gpu.sm_count as f64).min(1.0);
                // A handful of SMs is enough to saturate HBM; model bandwidth as
                // saturating once ~25% of the SMs participate.
                let achievable = (fraction * 4.0).min(1.0);
                bytes / (gpu.hbm_bytes_per_s() * achievable.max(1e-3))
            }
            Work::LinkBytes { bytes, dst_rank } => {
                let bw = self.cluster.link_bytes_per_s(task.rank, dst_rank);
                let share = link_share(task, units);
                // A transfer can never beat the per-message latency of its
                // link class: the α floor keeps barrier/signal-sized messages
                // from costing 0 s. Sub-floor transfers only occur for
                // messages well under ~100 KB, so bandwidth-bound transfers
                // are priced exactly as before.
                let alpha = link_alpha_s(self.cluster.link_class(task.rank, dst_rank));
                (bytes / (bw * share)).max(alpha)
            }
            Work::Latency { seconds } => seconds,
        }
    }

    /// Total floating-point operations of an `m × n × k` GEMM.
    pub fn matmul_flops(m: usize, n: usize, k: usize) -> f64 {
        2.0 * m as f64 * n as f64 * k as f64
    }

    /// Achieved fraction of peak for a GEMM executed with `tile_m × tile_n`
    /// output tiles over `k` reduction steps.
    ///
    /// The heuristic captures the two effects the paper leans on when arguing
    /// for decoupled tile sizes (Section 3.1 and the Async-TP discussion in
    /// Section 7.2):
    ///
    /// * small output tiles cannot keep the tensor cores busy (low arithmetic
    ///   intensity → lower efficiency);
    /// * small `k` extents pay a larger share of prologue/epilogue overhead.
    pub fn gemm_tile_efficiency(tile_m: usize, tile_n: usize, k: usize) -> f64 {
        // Reference point: a 128x128 tile with a deep reduction reaches ~85% of peak.
        let tile_area = (tile_m * tile_n) as f64;
        let area_factor = (tile_area / (128.0 * 128.0)).min(1.0).powf(0.35);
        let depth_factor = (k as f64 / 512.0).min(1.0).powf(0.25);
        (0.85 * area_factor * depth_factor).clamp(0.05, 0.92)
    }

    /// Wave-quantisation efficiency: the fraction of the last wave that does
    /// useful work when `tiles` thread blocks are scheduled onto `sms` SMs.
    ///
    /// This is the "resource quantization inefficiency" the paper attributes to
    /// decomposed kernels (Section 2.2, citing Stream-K).
    pub fn wave_quantization(tiles: usize, sms: u64) -> f64 {
        if tiles == 0 || sms == 0 {
            return 1.0;
        }
        let waves = (tiles as f64 / sms as f64).ceil();
        let useful = tiles as f64 / sms as f64;
        (useful / waves).clamp(0.05, 1.0)
    }

    /// Combined GEMM efficiency for an `m × n × k` problem tiled as
    /// `tile_m × tile_n` on `sms` SMs.
    pub fn gemm_efficiency(
        m: usize,
        n: usize,
        k: usize,
        tile_m: usize,
        tile_n: usize,
        sms: u64,
    ) -> f64 {
        let tiles = m.div_ceil(tile_m) * n.div_ceil(tile_n);
        Self::gemm_tile_efficiency(tile_m, tile_n, k) * Self::wave_quantization(tiles, sms)
    }

    /// Seconds needed to run an `m × n × k` GEMM on `sms` SMs with the given tiling.
    pub fn gemm_seconds(
        &self,
        m: usize,
        n: usize,
        k: usize,
        tile_m: usize,
        tile_n: usize,
        sms: u64,
    ) -> Seconds {
        let gpu = &self.cluster.gpu;
        let eff = Self::gemm_efficiency(m, n, k, tile_m, tile_n, sms);
        let fraction = (sms as f64 / gpu.sm_count as f64).min(1.0);
        Self::matmul_flops(m, n, k) / (gpu.peak_flops() * fraction * eff)
    }

    /// Seconds to stream `bytes` through HBM at full bandwidth.
    pub fn hbm_seconds(&self, bytes: f64) -> Seconds {
        bytes / self.cluster.gpu.hbm_bytes_per_s()
    }

    /// Seconds to move `bytes` from `src` to `dst` at full port bandwidth,
    /// floored at the link class's per-message α (consistent with how
    /// [`CostModel::duration`] prices [`Work::LinkBytes`], so the closed-form
    /// baselines and the simulated path agree on small messages).
    pub fn link_seconds(&self, src: usize, dst: usize, bytes: f64) -> Seconds {
        let alpha = link_alpha_s(self.cluster.link_class(src, dst));
        (bytes / self.cluster.link_bytes_per_s(src, dst)).max(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuSpec, ResourceKind};

    fn model() -> CostModel {
        CostModel::new(ClusterSpec::h800_node(8))
    }

    #[test]
    fn matmul_duration_scales_with_sms() {
        let m = model();
        let task_full = Task::new(
            "g",
            0,
            ResourceKind::Sm,
            132,
            Work::MatmulFlops {
                flops: 1e12,
                efficiency: 0.8,
            },
        );
        let full = m.duration(&task_full, 132);
        let half = m.duration(&task_full, 66);
        assert!((half / full - 2.0).abs() < 1e-9);
    }

    #[test]
    fn link_duration_uses_topology() {
        let multi = CostModel::new(ClusterSpec::h800_multi_node(2));
        let intra = Task::new(
            "c",
            0,
            ResourceKind::LinkOut,
            100,
            Work::LinkBytes {
                bytes: 1e9,
                dst_rank: 1,
            },
        );
        let inter = Task::new(
            "c",
            0,
            ResourceKind::LinkOut,
            100,
            Work::LinkBytes {
                bytes: 1e9,
                dst_rank: 8,
            },
        );
        assert!(multi.duration(&inter, 100) > multi.duration(&intra, 100));
    }

    #[test]
    fn tiny_link_messages_pay_the_alpha_floor() {
        // A 1-byte signal used to cost ~0 s; it must now pay the per-message
        // latency of its link class.
        let multi = CostModel::new(ClusterSpec::h800_multi_node(2));
        for (dst, alpha) in [
            (0usize, ALPHA_SELF_S),
            (1, ALPHA_INTRA_NODE_S),
            (8, ALPHA_INTER_NODE_S),
        ] {
            let t = Task::new(
                "sig",
                0,
                ResourceKind::DmaEngine,
                1,
                Work::LinkBytes {
                    bytes: 1.0,
                    dst_rank: dst,
                },
            );
            assert_eq!(multi.duration(&t, 1), alpha, "dst {dst}");
        }
    }

    #[test]
    fn bulk_link_transfers_are_unaffected_by_the_alpha_floor() {
        // 1 GB over NVLink takes 5 ms >> α: the floor must not perturb it.
        let m = model();
        let t = Task::new(
            "c",
            0,
            ResourceKind::DmaEngine,
            1,
            Work::LinkBytes {
                bytes: 1e9,
                dst_rank: 1,
            },
        );
        let expected = 1e9 / m.cluster().gpu.nvlink_bytes_per_s();
        assert_eq!(m.duration(&t, 1), expected);
    }

    #[test]
    fn latency_is_independent_of_units() {
        let m = model();
        let t = Task::new(
            "l",
            0,
            ResourceKind::Host,
            1,
            Work::Latency { seconds: 1e-5 },
        );
        assert_eq!(m.duration(&t, 1), 1e-5);
    }

    #[test]
    fn hbm_saturates_with_quarter_of_sms() {
        let m = model();
        let t = Task::new("h", 0, ResourceKind::Sm, 132, Work::HbmBytes { bytes: 1e9 });
        let quarter = m.duration(&t, 33);
        let full = m.duration(&t, 132);
        assert!((quarter / full - 1.0).abs() < 0.05);
        // ...but a very small SM share is bandwidth-limited.
        let tiny = m.duration(&t, 4);
        assert!(tiny > full * 2.0);
    }

    #[test]
    fn tile_efficiency_prefers_larger_tiles() {
        let small = CostModel::gemm_tile_efficiency(32, 32, 4096);
        let large = CostModel::gemm_tile_efficiency(128, 256, 4096);
        assert!(large > small);
        assert!(large <= 0.92);
        assert!(small >= 0.05);
    }

    #[test]
    fn wave_quantization_penalises_partial_waves() {
        // 133 tiles on 132 SMs → two waves, second nearly empty.
        let bad = CostModel::wave_quantization(133, 132);
        let good = CostModel::wave_quantization(264, 132);
        assert!(bad < 0.55);
        assert!(good > 0.99);
    }

    #[test]
    fn gemm_seconds_sane_magnitude() {
        // 8192 x 11008 x 4096 BF16 GEMM on a full H800 should take on the order
        // of a millisecond (the paper's Table 2 measures ~0.5 ms for the
        // tensor-parallel shard of this GEMM).
        let m = model();
        let t = m.gemm_seconds(8192, 11008, 4096, 128, 128, 132);
        assert!(t > 1e-4 && t < 5e-3, "unexpected GEMM time {t}");
    }

    #[test]
    fn gemm_seconds_decreases_with_more_sms() {
        let m = model();
        let few = m.gemm_seconds(4096, 4096, 4096, 128, 128, 32);
        let many = m.gemm_seconds(4096, 4096, 4096, 128, 128, 128);
        assert!(many < few);
    }

    #[test]
    fn link_seconds_helper_applies_the_same_alpha_floor_as_duration() {
        // The closed-form helper the baselines use must agree with the
        // engine's per-task pricing on tiny messages.
        let m = CostModel::new(ClusterSpec::h800_multi_node(2));
        assert_eq!(m.link_seconds(0, 1, 1.0), ALPHA_INTRA_NODE_S);
        assert_eq!(m.link_seconds(0, 8, 1.0), ALPHA_INTER_NODE_S);
        assert_eq!(m.link_seconds(0, 0, 1.0), ALPHA_SELF_S);
        // Bandwidth-bound transfers are unaffected.
        let bulk = 1e9 / m.cluster().gpu.nvlink_bytes_per_s();
        assert_eq!(m.link_seconds(0, 1, 1e9), bulk);
    }

    #[test]
    fn helper_times_positive() {
        let m = model();
        assert!(m.hbm_seconds(1e6) > 0.0);
        assert!(m.link_seconds(0, 1, 1e6) > 0.0);
        assert!(CostModel::matmul_flops(2, 3, 4) == 48.0);
        let _ = GpuSpec::h800();
    }
}
