//! Analytic cost model: converts work descriptions into durations.

use crate::{ClusterSpec, Seconds, Task, Work};

/// Converts [`Work`] into durations given a [`ClusterSpec`] and the number of
/// resource units a task was granted.
///
/// The model also provides the GEMM efficiency heuristics used when *building*
/// task graphs (tile efficiency and wave quantisation), because the achieved
/// fraction of peak depends on tile shape decisions made by the compiler, not
/// by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    cluster: ClusterSpec,
}

impl CostModel {
    /// Creates a cost model for a cluster.
    pub fn new(cluster: ClusterSpec) -> Self {
        Self { cluster }
    }

    /// The cluster this model describes.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Duration of `task` when granted `units` of its resource.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero (the engine validates this before starting a task).
    pub fn duration(&self, task: &Task, units: u64) -> Seconds {
        assert!(units > 0, "granted units must be positive");
        let gpu = &self.cluster.gpu;
        match task.work {
            Work::MatmulFlops { flops, efficiency } => {
                let fraction = units as f64 / gpu.sm_count as f64;
                let fraction = fraction.min(1.0);
                flops / (gpu.peak_flops() * fraction * efficiency.clamp(1e-3, 1.0))
            }
            Work::HbmBytes { bytes } => {
                let fraction = (units as f64 / gpu.sm_count as f64).min(1.0);
                // A handful of SMs is enough to saturate HBM; model bandwidth as
                // saturating once ~25% of the SMs participate.
                let achievable = (fraction * 4.0).min(1.0);
                bytes / (gpu.hbm_bytes_per_s() * achievable.max(1e-3))
            }
            Work::LinkBytes { bytes, dst_rank } => {
                let bw = self.cluster.link_bytes_per_s(task.rank, dst_rank);
                // Only port resources are expressed as a percentage share of the
                // link; a DMA engine (or any other carrier) gets the full port.
                let share = match task.resource {
                    crate::ResourceKind::LinkOut | crate::ResourceKind::LinkIn => {
                        (units as f64 / 100.0).clamp(1e-3, 1.0)
                    }
                    _ => 1.0,
                };
                bytes / (bw * share)
            }
            Work::Latency { seconds } => seconds,
        }
    }

    /// Total floating-point operations of an `m × n × k` GEMM.
    pub fn matmul_flops(m: usize, n: usize, k: usize) -> f64 {
        2.0 * m as f64 * n as f64 * k as f64
    }

    /// Achieved fraction of peak for a GEMM executed with `tile_m × tile_n`
    /// output tiles over `k` reduction steps.
    ///
    /// The heuristic captures the two effects the paper leans on when arguing
    /// for decoupled tile sizes (Section 3.1 and the Async-TP discussion in
    /// Section 7.2):
    ///
    /// * small output tiles cannot keep the tensor cores busy (low arithmetic
    ///   intensity → lower efficiency);
    /// * small `k` extents pay a larger share of prologue/epilogue overhead.
    pub fn gemm_tile_efficiency(tile_m: usize, tile_n: usize, k: usize) -> f64 {
        // Reference point: a 128x128 tile with a deep reduction reaches ~85% of peak.
        let tile_area = (tile_m * tile_n) as f64;
        let area_factor = (tile_area / (128.0 * 128.0)).min(1.0).powf(0.35);
        let depth_factor = (k as f64 / 512.0).min(1.0).powf(0.25);
        (0.85 * area_factor * depth_factor).clamp(0.05, 0.92)
    }

    /// Wave-quantisation efficiency: the fraction of the last wave that does
    /// useful work when `tiles` thread blocks are scheduled onto `sms` SMs.
    ///
    /// This is the "resource quantization inefficiency" the paper attributes to
    /// decomposed kernels (Section 2.2, citing Stream-K).
    pub fn wave_quantization(tiles: usize, sms: u64) -> f64 {
        if tiles == 0 || sms == 0 {
            return 1.0;
        }
        let waves = (tiles as f64 / sms as f64).ceil();
        let useful = tiles as f64 / sms as f64;
        (useful / waves).clamp(0.05, 1.0)
    }

    /// Combined GEMM efficiency for an `m × n × k` problem tiled as
    /// `tile_m × tile_n` on `sms` SMs.
    pub fn gemm_efficiency(
        m: usize,
        n: usize,
        k: usize,
        tile_m: usize,
        tile_n: usize,
        sms: u64,
    ) -> f64 {
        let tiles = m.div_ceil(tile_m) * n.div_ceil(tile_n);
        Self::gemm_tile_efficiency(tile_m, tile_n, k) * Self::wave_quantization(tiles, sms)
    }

    /// Seconds needed to run an `m × n × k` GEMM on `sms` SMs with the given tiling.
    pub fn gemm_seconds(
        &self,
        m: usize,
        n: usize,
        k: usize,
        tile_m: usize,
        tile_n: usize,
        sms: u64,
    ) -> Seconds {
        let gpu = &self.cluster.gpu;
        let eff = Self::gemm_efficiency(m, n, k, tile_m, tile_n, sms);
        let fraction = (sms as f64 / gpu.sm_count as f64).min(1.0);
        Self::matmul_flops(m, n, k) / (gpu.peak_flops() * fraction * eff)
    }

    /// Seconds to stream `bytes` through HBM at full bandwidth.
    pub fn hbm_seconds(&self, bytes: f64) -> Seconds {
        bytes / self.cluster.gpu.hbm_bytes_per_s()
    }

    /// Seconds to move `bytes` from `src` to `dst` at full port bandwidth.
    pub fn link_seconds(&self, src: usize, dst: usize, bytes: f64) -> Seconds {
        bytes / self.cluster.link_bytes_per_s(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuSpec, ResourceKind};

    fn model() -> CostModel {
        CostModel::new(ClusterSpec::h800_node(8))
    }

    #[test]
    fn matmul_duration_scales_with_sms() {
        let m = model();
        let task_full = Task::new(
            "g",
            0,
            ResourceKind::Sm,
            132,
            Work::MatmulFlops {
                flops: 1e12,
                efficiency: 0.8,
            },
        );
        let full = m.duration(&task_full, 132);
        let half = m.duration(&task_full, 66);
        assert!((half / full - 2.0).abs() < 1e-9);
    }

    #[test]
    fn link_duration_uses_topology() {
        let multi = CostModel::new(ClusterSpec::h800_multi_node(2));
        let intra = Task::new(
            "c",
            0,
            ResourceKind::LinkOut,
            100,
            Work::LinkBytes {
                bytes: 1e9,
                dst_rank: 1,
            },
        );
        let inter = Task::new(
            "c",
            0,
            ResourceKind::LinkOut,
            100,
            Work::LinkBytes {
                bytes: 1e9,
                dst_rank: 8,
            },
        );
        assert!(multi.duration(&inter, 100) > multi.duration(&intra, 100));
    }

    #[test]
    fn latency_is_independent_of_units() {
        let m = model();
        let t = Task::new(
            "l",
            0,
            ResourceKind::Host,
            1,
            Work::Latency { seconds: 1e-5 },
        );
        assert_eq!(m.duration(&t, 1), 1e-5);
    }

    #[test]
    fn hbm_saturates_with_quarter_of_sms() {
        let m = model();
        let t = Task::new("h", 0, ResourceKind::Sm, 132, Work::HbmBytes { bytes: 1e9 });
        let quarter = m.duration(&t, 33);
        let full = m.duration(&t, 132);
        assert!((quarter / full - 1.0).abs() < 0.05);
        // ...but a very small SM share is bandwidth-limited.
        let tiny = m.duration(&t, 4);
        assert!(tiny > full * 2.0);
    }

    #[test]
    fn tile_efficiency_prefers_larger_tiles() {
        let small = CostModel::gemm_tile_efficiency(32, 32, 4096);
        let large = CostModel::gemm_tile_efficiency(128, 256, 4096);
        assert!(large > small);
        assert!(large <= 0.92);
        assert!(small >= 0.05);
    }

    #[test]
    fn wave_quantization_penalises_partial_waves() {
        // 133 tiles on 132 SMs → two waves, second nearly empty.
        let bad = CostModel::wave_quantization(133, 132);
        let good = CostModel::wave_quantization(264, 132);
        assert!(bad < 0.55);
        assert!(good > 0.99);
    }

    #[test]
    fn gemm_seconds_sane_magnitude() {
        // 8192 x 11008 x 4096 BF16 GEMM on a full H800 should take on the order
        // of a millisecond (the paper's Table 2 measures ~0.5 ms for the
        // tensor-parallel shard of this GEMM).
        let m = model();
        let t = m.gemm_seconds(8192, 11008, 4096, 128, 128, 132);
        assert!(t > 1e-4 && t < 5e-3, "unexpected GEMM time {t}");
    }

    #[test]
    fn gemm_seconds_decreases_with_more_sms() {
        let m = model();
        let few = m.gemm_seconds(4096, 4096, 4096, 128, 128, 32);
        let many = m.gemm_seconds(4096, 4096, 4096, 128, 128, 128);
        assert!(many < few);
    }

    #[test]
    fn helper_times_positive() {
        let m = model();
        assert!(m.hbm_seconds(1e6) > 0.0);
        assert!(m.link_seconds(0, 1, 1e6) > 0.0);
        assert!(CostModel::matmul_flops(2, 3, 4) == 48.0);
        let _ = GpuSpec::h800();
    }
}
