//! Task-graph construction API.

use crate::{ResourceKind, Task, TaskId, TaskLabel, Work};

/// A dependency graph of simulated tasks.
///
/// Graphs are built by the timed executor of the `tilelink` crate (one graph
/// per compiled kernel or per baseline implementation) and executed by
/// [`crate::Engine::run`]. Edges express "must finish before": the tile-centric
/// notify/wait pairs of the functional runtime become dependency edges here.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    /// `edges[i]` lists the tasks that depend on task `i`. May hold warm
    /// spare slots beyond `tasks.len()` after a [`Self::reset`]; only the
    /// first `tasks.len()` entries are live.
    successors: Vec<Vec<TaskId>>,
    /// Number of unfinished predecessors per task.
    predecessor_count: Vec<usize>,
}

/// Equality over the *live* graph only: warm spare successor slots kept by
/// [`TaskGraph::reset`] for reuse do not affect comparisons.
impl PartialEq for TaskGraph {
    fn eq(&self, other: &Self) -> bool {
        self.tasks == other.tasks
            && self.predecessor_count == other.predecessor_count
            && self.successors[..self.tasks.len()] == other.successors[..other.tasks.len()]
    }
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the graph for rebuilding while keeping every allocation warm:
    /// the task table, the predecessor counts and — crucially — each per-task
    /// successor `Vec`, so the next build's `add_dep`s do not reallocate.
    pub fn reset(&mut self) {
        self.tasks.clear();
        self.predecessor_count.clear();
        for edges in &mut self.successors {
            edges.clear();
        }
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` if the graph holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task and returns its id.
    pub fn add_task(
        &mut self,
        name: impl Into<TaskLabel>,
        rank: usize,
        resource: ResourceKind,
        units: u64,
        work: Work,
    ) -> TaskId {
        self.push(Task::new(name, rank, resource, units, work))
    }

    /// Adds an already-constructed task and returns its id.
    pub fn push(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(task);
        if self.successors.len() < self.tasks.len() {
            self.successors.push(Vec::new());
        }
        self.predecessor_count.push(0);
        id
    }

    /// Declares that `before` must finish before `after` may start.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this graph.
    pub fn add_dep(&mut self, before: TaskId, after: TaskId) {
        assert!(before.0 < self.tasks.len(), "unknown predecessor task");
        assert!(after.0 < self.tasks.len(), "unknown successor task");
        self.successors[before.0].push(after);
        self.predecessor_count[after.0] += 1;
    }

    /// Declares `after` to depend on every task in `before`.
    ///
    /// # Panics
    ///
    /// Panics if any id does not belong to this graph.
    pub fn add_deps(&mut self, before: &[TaskId], after: TaskId) {
        for &b in before {
            self.add_dep(b, after);
        }
    }

    /// Adds a fixed-latency host task, a common convenience for kernel-launch
    /// and synchronisation overheads.
    pub fn add_host_latency(
        &mut self,
        name: impl Into<TaskLabel>,
        rank: usize,
        seconds: f64,
    ) -> TaskId {
        self.add_task(name, rank, ResourceKind::Host, 1, Work::Latency { seconds })
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Iterates over `(id, task)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// Tasks that depend on `id`.
    pub(crate) fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.successors[id.0]
    }

    /// Copies the predecessor counts into `out`, reusing its allocation (the
    /// scheduler runs this once per simulation).
    pub(crate) fn fill_predecessor_counts(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend_from_slice(&self.predecessor_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn add_tasks_and_deps() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 0, ResourceKind::Sm, 1, Work::Latency { seconds: 1.0 });
        let b = g.add_task("b", 0, ResourceKind::Sm, 1, Work::Latency { seconds: 1.0 });
        let c = g.add_host_latency("c", 0, 0.5);
        g.add_dep(a, b);
        g.add_deps(&[a, b], c);
        assert_eq!(g.len(), 3);
        assert_eq!(g.successors(a), &[b, c]);
        let mut counts = Vec::new();
        g.fill_predecessor_counts(&mut counts);
        assert_eq!(counts, vec![0, 1, 2]);
        assert_eq!(&*g.task(c).name, "c");
    }

    #[test]
    #[should_panic(expected = "unknown successor task")]
    fn dep_on_unknown_task_panics() {
        let mut g = TaskGraph::new();
        let a = g.add_host_latency("a", 0, 0.0);
        g.add_dep(a, TaskId(7));
    }

    #[test]
    fn reset_keeps_slots_warm_and_rebuilds_identically() {
        let build = |g: &mut TaskGraph| {
            let a = g.add_task("a", 0, ResourceKind::Sm, 1, Work::Latency { seconds: 1.0 });
            let b = g.add_task("b", 0, ResourceKind::Sm, 1, Work::Latency { seconds: 1.0 });
            g.add_dep(a, b);
        };
        let mut fresh = TaskGraph::new();
        build(&mut fresh);
        // A bigger graph first, so reset leaves spare warm slots behind.
        let mut reused = TaskGraph::new();
        for i in 0..5 {
            reused.add_host_latency(format!("t{i}"), 0, 0.0);
        }
        reused.add_dep(TaskId(0), TaskId(4));
        reused.reset();
        assert!(reused.is_empty());
        build(&mut reused);
        assert_eq!(reused, fresh);
        assert_eq!(fresh, reused);
        assert_eq!(reused.successors(TaskId(0)), &[TaskId(1)]);
        let mut counts = Vec::new();
        reused.fill_predecessor_counts(&mut counts);
        assert_eq!(counts, vec![0, 1]);
    }

    #[test]
    fn iter_visits_in_insertion_order() {
        let mut g = TaskGraph::new();
        g.add_host_latency("first", 0, 0.0);
        g.add_host_latency("second", 0, 0.0);
        let names: Vec<&str> = g.iter().map(|(_, t)| &*t.name).collect();
        assert_eq!(names, vec!["first", "second"]);
    }
}
