//! Task-graph construction API.

use std::sync::Arc;

use crate::{ResourceKind, Task, TaskId, Work};

/// A dependency graph of simulated tasks.
///
/// Graphs are built by the timed executor of the `tilelink` crate (one graph
/// per compiled kernel or per baseline implementation) and executed by
/// [`crate::Engine::run`]. Edges express "must finish before": the tile-centric
/// notify/wait pairs of the functional runtime become dependency edges here.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    /// `edges[i]` lists the tasks that depend on task `i`.
    successors: Vec<Vec<TaskId>>,
    /// Number of unfinished predecessors per task.
    predecessor_count: Vec<usize>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` if the graph holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task and returns its id.
    pub fn add_task(
        &mut self,
        name: impl Into<Arc<str>>,
        rank: usize,
        resource: ResourceKind,
        units: u64,
        work: Work,
    ) -> TaskId {
        self.push(Task::new(name, rank, resource, units, work))
    }

    /// Adds an already-constructed task and returns its id.
    pub fn push(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(task);
        self.successors.push(Vec::new());
        self.predecessor_count.push(0);
        id
    }

    /// Declares that `before` must finish before `after` may start.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this graph.
    pub fn add_dep(&mut self, before: TaskId, after: TaskId) {
        assert!(before.0 < self.tasks.len(), "unknown predecessor task");
        assert!(after.0 < self.tasks.len(), "unknown successor task");
        self.successors[before.0].push(after);
        self.predecessor_count[after.0] += 1;
    }

    /// Declares `after` to depend on every task in `before`.
    ///
    /// # Panics
    ///
    /// Panics if any id does not belong to this graph.
    pub fn add_deps(&mut self, before: &[TaskId], after: TaskId) {
        for &b in before {
            self.add_dep(b, after);
        }
    }

    /// Adds a fixed-latency host task, a common convenience for kernel-launch
    /// and synchronisation overheads.
    pub fn add_host_latency(
        &mut self,
        name: impl Into<Arc<str>>,
        rank: usize,
        seconds: f64,
    ) -> TaskId {
        self.add_task(name, rank, ResourceKind::Host, 1, Work::Latency { seconds })
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Iterates over `(id, task)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// Tasks that depend on `id`.
    pub(crate) fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.successors[id.0]
    }

    /// Copies the predecessor counts into `out`, reusing its allocation (the
    /// scheduler runs this once per simulation).
    pub(crate) fn fill_predecessor_counts(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend_from_slice(&self.predecessor_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn add_tasks_and_deps() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 0, ResourceKind::Sm, 1, Work::Latency { seconds: 1.0 });
        let b = g.add_task("b", 0, ResourceKind::Sm, 1, Work::Latency { seconds: 1.0 });
        let c = g.add_host_latency("c", 0, 0.5);
        g.add_dep(a, b);
        g.add_deps(&[a, b], c);
        assert_eq!(g.len(), 3);
        assert_eq!(g.successors(a), &[b, c]);
        let mut counts = Vec::new();
        g.fill_predecessor_counts(&mut counts);
        assert_eq!(counts, vec![0, 1, 2]);
        assert_eq!(&*g.task(c).name, "c");
    }

    #[test]
    #[should_panic(expected = "unknown successor task")]
    fn dep_on_unknown_task_panics() {
        let mut g = TaskGraph::new();
        let a = g.add_host_latency("a", 0, 0.0);
        g.add_dep(a, TaskId(7));
    }

    #[test]
    fn iter_visits_in_insertion_order() {
        let mut g = TaskGraph::new();
        g.add_host_latency("first", 0, 0.0);
        g.add_host_latency("second", 0, 0.0);
        let names: Vec<&str> = g.iter().map(|(_, t)| &*t.name).collect();
        assert_eq!(names, vec!["first", "second"]);
    }
}
