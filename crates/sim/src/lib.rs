//! # tilelink-sim
//!
//! A discrete-event performance simulator of a multi-GPU cluster. It stands in
//! for the 8×H800 / 16×H800 test beds used in the paper's evaluation
//! (Section 7), which are not available in this environment.
//!
//! The simulator models exactly the resources whose concurrent use produces the
//! paper's speedups:
//!
//! * **streaming multiprocessors (SMs)** — compute kernels and SM-driven copies
//!   occupy a configurable number of SMs for their duration; the GEMM cost model
//!   accounts for tile efficiency and wave quantisation;
//! * **DMA copy engines** — host-triggered `rank_copy_data` transfers run on copy
//!   engines and do not contend with SMs;
//! * **NVLink / InfiniBand ports** — every transfer occupies a share of the
//!   source rank's egress and the destination rank's ingress bandwidth;
//! * **the host** — kernel launches and host-driven synchronisation add latency,
//!   which is what makes the decomposition baseline slow.
//!
//! Work is described as a dependency graph of [`Task`]s ([`TaskGraph`]) and
//! executed by [`Engine::run`], producing a [`Trace`] with per-task timing, a
//! makespan, and per-resource utilisation. Search loops that only need the
//! makespan should call [`Engine::makespan`] (optionally threading a reusable
//! [`SimScratch`] through [`Engine::makespan_with_scratch`]): the same
//! scheduler with trace recording compiled out, several times faster.
//!
//! Work is priced by a pluggable [`CostProvider`]: the analytic [`CostModel`]
//! (the default — roofline GEMMs, pure-bandwidth links with a per-message α
//! floor) or the measured [`CalibratedCostModel`] (α/β latency plus a
//! size-bucketed achieved-bandwidth table per link class, loadable from a
//! TSV). [`CostModelSpec`] parses `--cost-model` command-line selectors, and
//! every provider exposes a [`CostProvider::revision`] fingerprint that
//! downstream caches fold into their keys.
//!
//! # Example
//!
//! ```
//! use tilelink_sim::{ClusterSpec, Engine, ResourceKind, TaskGraph, Work};
//!
//! let cluster = ClusterSpec::h800_node(2);
//! let mut graph = TaskGraph::new();
//! // A GEMM on rank 0 using all SMs, followed by a copy of its output to rank 1.
//! let gemm = graph.add_task("gemm", 0, ResourceKind::Sm, 132, Work::MatmulFlops {
//!     flops: 2.0 * 4096.0 * 4096.0 * 4096.0,
//!     efficiency: 0.8,
//! });
//! let copy = graph.add_task("push", 0, ResourceKind::LinkOut, 100, Work::LinkBytes {
//!     bytes: 4096.0 * 4096.0 * 2.0,
//!     dst_rank: 1,
//! });
//! graph.add_dep(gemm, copy);
//! let trace = Engine::new(cluster).run(&graph).unwrap();
//! assert!(trace.makespan() > 0.0);
//! ```

#![deny(missing_docs)]

mod calibration;
mod cluster;
mod cost;
mod engine;
mod error;
mod gpu;
mod graph;
mod provider;
mod sched;
mod task;
mod trace;

pub use calibration::{BandwidthBucket, CalibratedCostModel, LinkCalibration};
pub use cluster::{ClusterSpec, LinkClass};
pub use cost::{link_alpha_s, CostModel, ALPHA_INTER_NODE_S, ALPHA_INTRA_NODE_S, ALPHA_SELF_S};
pub use engine::Engine;
pub use error::SimError;
pub use gpu::GpuSpec;
pub use graph::TaskGraph;
pub use provider::{analytic_cost, CostModelSpec, CostProvider, SharedCost};
pub use sched::{BoundedMakespan, SimScratch};
pub use task::{ResourceKind, Task, TaskId, TaskLabel, Work};
pub use trace::{Trace, TraceEntry};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimError>;

/// Simulated time in seconds.
pub type Seconds = f64;

/// Converts microseconds to [`Seconds`].
pub fn us(v: f64) -> Seconds {
    v * 1e-6
}

/// Converts milliseconds to [`Seconds`].
pub fn ms(v: f64) -> Seconds {
    v * 1e-3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_helpers() {
        assert!((us(1.0) - 1e-6).abs() < 1e-12);
        assert!((ms(1.0) - 1e-3).abs() < 1e-9);
    }
}
