//! The scheduling core shared by the trace path and the makespan fast path.
//!
//! [`schedule`] is the resource-constrained list scheduler behind
//! [`crate::Engine`]: a task starts as soon as (a) all of its dependencies
//! have finished and (b) its requested resource units are free on its rank,
//! with ready tasks considered in submission order. Both [`crate::Engine::run`]
//! (which records a full [`crate::Trace`]) and [`crate::Engine::makespan`]
//! (which records nothing) drive this one implementation through the
//! `on_start` recorder callback, so the two paths cannot drift apart.
//!
//! # Hot-path layout
//!
//! Resource availability lives in a flat `Vec<u64>` indexed by
//! `rank * ResourceKind::COUNT + kind.index()` instead of a `HashMap`, and the
//! extra `LinkIn` units a cross-rank transfer holds at its destination live in
//! a `Vec<Option<..>>` indexed by task id. Blocked tasks wait in a per-slot
//! wait list, so a completion only re-examines tasks actually blocked on the
//! freed resource instead of rescanning one global FIFO (the old engine's
//! O(T²) behaviour on deep graphs).
//!
//! # FIFO equivalence
//!
//! The old engine kept every not-yet-startable task in one FIFO deque and
//! rescanned all of it after each completion batch. Start order there was the
//! order tasks *entered* the deque. This scheduler preserves that order
//! exactly: every task gets a monotonically increasing sequence number when it
//! becomes ready, keeps it while parked in wait lists, and each wake batch is
//! sorted by it before the start pass. A task parked on resource `R` can only
//! have become startable if some completion freed `R` (availability never
//! increases otherwise), and any completion freeing `R` wakes `R`'s entire
//! wait list — so skipping the tasks whose resources did not free is
//! invisible: those attempts would have failed in the old engine too.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{CostProvider, ResourceKind, Result, Seconds, SimError, Task, TaskGraph, TaskId, Work};

/// A completion event in the event queue. Ordered by time, then task id for
/// determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Completion {
    time: Seconds,
    task: TaskId,
}

impl Eq for Completion {}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.task.cmp(&other.task))
    }
}

/// Reusable scheduler state for the makespan fast path.
///
/// One simulation allocates nothing when it runs on a warm scratch of the same
/// shape: callers that price many graphs in a row (the tuner's worker threads,
/// the report-only executor) should create one `SimScratch` and thread it
/// through [`crate::Engine::makespan_with_scratch`].
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Free units per `rank * ResourceKind::COUNT + kind.index()` slot.
    available: Vec<u64>,
    /// Extra destination-`LinkIn` `(slot, units)` held by a running transfer,
    /// indexed by task id.
    extra_held: Vec<Option<(usize, u64)>>,
    /// Unfinished-predecessor count per task.
    predecessor_count: Vec<usize>,
    /// Ready sequence number per task (`usize::MAX` = not ready yet).
    seq: Vec<usize>,
    /// Tasks blocked on each resource slot.
    wait_lists: Vec<Vec<usize>>,
    /// Tasks to attempt in the current start pass, sorted by `seq`.
    pending: Vec<usize>,
    /// Resource slots freed by the current completion batch.
    freed: Vec<usize>,
    /// Pending completions.
    events: BinaryHeap<Reverse<Completion>>,
}

impl SimScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, tasks: usize, slots: usize) {
        self.available.clear();
        self.available.resize(slots, 0);
        self.extra_held.clear();
        self.extra_held.resize(tasks, None);
        self.seq.clear();
        self.seq.resize(tasks, usize::MAX);
        if self.wait_lists.len() < slots {
            self.wait_lists.resize_with(slots, Vec::new);
        }
        for list in &mut self.wait_lists {
            list.clear();
        }
        self.pending.clear();
        self.freed.clear();
        self.events.clear();
    }
}

/// Outcome of a cutoff-bounded schedule: either the exact makespan, or proof
/// that it exceeds the caller's cutoff.
///
/// `Exceeded(clock)` carries the partial makespan at the abort point — a
/// certified *lower bound* on the true makespan (task end times only grow),
/// not the final value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundedMakespan {
    /// The graph ran to completion; the makespan is exact and bit-identical
    /// to what the unbounded path returns.
    Finished(Seconds),
    /// Scheduling stopped early: some already-started task ends after the
    /// cutoff, so the true makespan is at least this value.
    Exceeded(Seconds),
}

impl BoundedMakespan {
    /// The clock value carried either way (exact makespan or its certified
    /// lower bound).
    #[must_use]
    pub fn clock(self) -> Seconds {
        match self {
            Self::Finished(s) | Self::Exceeded(s) => s,
        }
    }
}

/// Runs `graph` to completion, invoking `on_start` for every task as it is
/// scheduled (with its id, the task, its start and its end time), and returns
/// the makespan: the maximum end time over all tasks (0 for an empty graph).
///
/// The caller ([`crate::Engine`]) is responsible for validating the graph
/// first; this function assumes ranks are in range and no task requests more
/// units than its resource's capacity.
///
/// # Errors
///
/// Returns [`SimError::DependencyCycle`] if the graph cannot make progress.
pub(crate) fn schedule(
    cost: &dyn CostProvider,
    graph: &TaskGraph,
    scratch: &mut SimScratch,
    on_start: impl FnMut(TaskId, &Task, Seconds, Seconds),
) -> Result<Seconds> {
    match schedule_bounded(cost, graph, scratch, f64::INFINITY, on_start)? {
        BoundedMakespan::Finished(makespan) => Ok(makespan),
        // Nothing exceeds an infinite cutoff.
        BoundedMakespan::Exceeded(_) => unreachable!("infinite cutoff can never be exceeded"),
    }
}

/// [`schedule`] with an abort cutoff: identical event-by-event scheduling, but
/// the loop stops as soon as the running makespan (the max end time over all
/// *started* tasks, which only grows) strictly exceeds `cutoff`.
///
/// With `cutoff = f64::INFINITY` this is exactly [`schedule`] — same code
/// path, so bounded and unbounded results are bit-identical whenever the
/// cutoff is not hit.
pub(crate) fn schedule_bounded(
    cost: &dyn CostProvider,
    graph: &TaskGraph,
    scratch: &mut SimScratch,
    cutoff: Seconds,
    mut on_start: impl FnMut(TaskId, &Task, Seconds, Seconds),
) -> Result<BoundedMakespan> {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    scratch.reset(graph.len(), world * ResourceKind::COUNT);
    let SimScratch {
        available,
        extra_held,
        predecessor_count,
        seq,
        wait_lists,
        pending,
        freed,
        events,
    } = scratch;

    let capacity: [u64; ResourceKind::COUNT] =
        ResourceKind::ALL.map(|kind| cluster.resource_capacity(kind));
    for (slot, free) in available.iter_mut().enumerate() {
        *free = capacity[slot % ResourceKind::COUNT];
    }

    graph.fill_predecessor_counts(predecessor_count);
    let mut next_seq = 0usize;
    for (id, _) in graph.iter() {
        if predecessor_count[id.0] == 0 {
            seq[id.0] = next_seq;
            next_seq += 1;
            pending.push(id.0);
        }
    }

    let mut now: Seconds = 0.0;
    let mut makespan: Seconds = 0.0;
    let mut completed = 0usize;
    let mut running = 0usize;

    loop {
        // Start pass: attempt every woken/new ready task, in ready order.
        for &tid in pending.iter() {
            let id = TaskId(tid);
            let task = graph.task(id);
            let slot = task.rank * ResourceKind::COUNT + task.resource.index();
            // A link transfer also needs ingress capacity at the destination.
            let link_dst = match task.work {
                Work::LinkBytes { dst_rank, .. } if dst_rank != task.rank => {
                    Some(dst_rank * ResourceKind::COUNT + ResourceKind::LinkIn.index())
                }
                _ => None,
            };
            if available[slot] < task.units {
                wait_lists[slot].push(tid);
                continue;
            }
            if let Some(dst_slot) = link_dst {
                if available[dst_slot] < task.units {
                    wait_lists[dst_slot].push(tid);
                    continue;
                }
            }
            available[slot] -= task.units;
            if let Some(dst_slot) = link_dst {
                available[dst_slot] -= task.units;
                extra_held[tid] = Some((dst_slot, task.units));
            }
            let end = now + cost.duration(task, task.units);
            events.push(Reverse(Completion {
                time: end,
                task: id,
            }));
            running += 1;
            makespan = makespan.max(end);
            on_start(id, task, now, end);
        }
        pending.clear();

        // The makespan is monotone in started tasks, so exceeding the cutoff
        // here proves the final makespan would too — abort before draining
        // any more completions. Strict `>` keeps ties (a candidate exactly
        // matching the incumbent) on the exact path.
        if makespan > cutoff {
            return Ok(BoundedMakespan::Exceeded(makespan));
        }

        if running == 0 {
            if completed == graph.len() {
                break;
            }
            // Nothing is running and nothing could start: the remaining
            // tasks are blocked on predecessors that will never finish.
            return Err(SimError::DependencyCycle {
                stuck: graph.len() - completed,
            });
        }

        // Advance to the next completion and drain everything at the same
        // instant before trying to start new work, so resources freed
        // "simultaneously" are pooled.
        freed.clear();
        let mut batch_time: Option<Seconds> = None;
        while let Some(&Reverse(Completion { time, .. })) = events.peek() {
            match batch_time {
                None => batch_time = Some(time),
                Some(t) if time > t => break,
                Some(_) => {}
            }
            let Reverse(Completion { task: id, .. }) = events.pop().expect("peeked");
            now = time;
            running -= 1;
            completed += 1;
            let task = graph.task(id);
            let slot = task.rank * ResourceKind::COUNT + task.resource.index();
            available[slot] += task.units;
            freed.push(slot);
            if let Some((dst_slot, units)) = extra_held[id.0].take() {
                available[dst_slot] += units;
                freed.push(dst_slot);
            }
            for &succ in graph.successors(id) {
                predecessor_count[succ.0] -= 1;
                if predecessor_count[succ.0] == 0 {
                    seq[succ.0] = next_seq;
                    next_seq += 1;
                    pending.push(succ.0);
                }
            }
        }

        // Wake only the tasks blocked on a freed resource, merged with the
        // newly readied ones in ready order (see the module docs for why this
        // is exactly the old global-FIFO order).
        for &slot in freed.iter() {
            pending.append(&mut wait_lists[slot]);
        }
        pending.sort_unstable_by_key(|&tid| seq[tid]);
    }

    Ok(BoundedMakespan::Finished(makespan))
}
