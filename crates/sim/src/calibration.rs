//! Measured transfer-cost calibration: α/β latency plus size-bucketed
//! achieved bandwidth per link class.
//!
//! The analytic [`CostModel`] prices a transfer as `bytes / bandwidth` with a
//! small per-message α floor. Real interconnects behave differently: achieved
//! bandwidth ramps with message size (a 4 KB NVLink put reaches a few percent
//! of peak, a 64 MB put reaches ~95%), and every message pays a fixed launch
//! latency. Both T3 (Pati et al.) and AMD's DMA design-space exploration model
//! transfers exactly this way — `t = α + bytes / (β · achieved(bytes))` — and
//! that is what [`CalibratedCostModel`] implements on top of the analytic
//! base: GEMM/HBM/latency work is priced unchanged, link work goes through the
//! calibration table.
//!
//! Tables are loadable from a TSV (one bucket per line) so measured numbers
//! from a real machine can be dropped in without recompiling:
//!
//! ```text
//! # class  max_bytes  alpha_us  achieved_frac
//! nvlink   4096       1.2       0.05
//! nvlink   65536      1.2       0.35
//! nvlink   inf        1.2       0.95
//! ```
//!
//! `class` is one of `self`, `nvlink`, `ib` (see [`LinkClass`]); `max_bytes`
//! is the inclusive upper edge of the bucket (`inf` for the last); `alpha_us`
//! is the per-message latency in microseconds; `achieved_frac` is the
//! fraction of the class's peak bandwidth reached inside the bucket.

use std::path::Path;

use crate::{
    cost, ClusterSpec, CostModel, CostProvider, LinkClass, Result, Seconds, SimError, Task, Work,
};

/// One size bucket of a link class's achieved-bandwidth curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthBucket {
    /// Inclusive upper edge of the bucket in bytes (`f64::INFINITY` for the last).
    pub max_bytes: f64,
    /// Per-message latency (α) inside this bucket, in microseconds.
    pub alpha_us: f64,
    /// Fraction of the class's peak bandwidth achieved inside this bucket.
    pub achieved_frac: f64,
}

impl BandwidthBucket {
    /// α in seconds.
    pub fn alpha_s(&self) -> Seconds {
        self.alpha_us * 1e-6
    }
}

/// A per-link-class calibration table (see the module docs for the format).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkCalibration {
    /// Buckets per class, sorted by ascending `max_bytes`. Indexed through
    /// [`LinkCalibration::class_index`]; an empty class falls back to the
    /// analytic model.
    buckets: [Vec<BandwidthBucket>; 3],
}

fn class_index(class: LinkClass) -> usize {
    match class {
        LinkClass::SelfCopy => 0,
        LinkClass::IntraNode => 1,
        LinkClass::InterNode => 2,
    }
}

impl LinkCalibration {
    /// An empty table: every class falls back to the analytic model.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Built-in defaults for the paper's H800 platform.
    ///
    /// The bucket edges and fractions follow the shape of published NVLink /
    /// InfiniBand message-rate curves (latency-bound below ~64 KB, ramping to
    /// ~95% of peak beyond a few MB); they are deliberately coarse — the point
    /// is the *structure* (α plus size-dependent β), with the TSV loader as
    /// the path for dropping in measured numbers.
    pub fn h800_defaults() -> Self {
        let mut cal = Self::empty();
        cal.set_class(
            LinkClass::SelfCopy,
            vec![
                bucket(4096.0, 0.3, 0.10),
                bucket(65536.0, 0.3, 0.45),
                bucket(1048576.0, 0.3, 0.80),
                bucket(f64::INFINITY, 0.3, 0.95),
            ],
        );
        cal.set_class(
            LinkClass::IntraNode,
            vec![
                bucket(4096.0, 1.2, 0.05),
                bucket(65536.0, 1.2, 0.35),
                bucket(1048576.0, 1.2, 0.70),
                bucket(16777216.0, 1.2, 0.90),
                bucket(f64::INFINITY, 1.2, 0.95),
            ],
        );
        cal.set_class(
            LinkClass::InterNode,
            vec![
                bucket(4096.0, 3.5, 0.03),
                bucket(65536.0, 3.5, 0.25),
                bucket(1048576.0, 3.5, 0.55),
                bucket(16777216.0, 3.5, 0.85),
                bucket(f64::INFINITY, 3.5, 0.92),
            ],
        );
        cal
    }

    /// Replaces one class's buckets (kept sorted by `max_bytes`).
    pub fn set_class(&mut self, class: LinkClass, mut buckets: Vec<BandwidthBucket>) {
        buckets.sort_by(|a, b| a.max_bytes.total_cmp(&b.max_bytes));
        self.buckets[class_index(class)] = buckets;
    }

    /// The buckets of one class (empty slice if uncalibrated).
    pub fn class(&self, class: LinkClass) -> &[BandwidthBucket] {
        &self.buckets[class_index(class)]
    }

    /// Returns `true` if no class has any bucket.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
    }

    /// The bucket pricing a `bytes`-sized message on `class`, or `None` if
    /// the class is uncalibrated. Messages beyond the last bucket edge use
    /// the last bucket.
    pub fn bucket(&self, class: LinkClass, bytes: f64) -> Option<&BandwidthBucket> {
        let buckets = self.class(class);
        buckets
            .iter()
            .find(|b| bytes <= b.max_bytes)
            .or_else(|| buckets.last())
    }

    /// Calibrated seconds for `bytes` on `class` at `peak_bytes_per_s`, or
    /// `None` if the class is uncalibrated.
    pub fn transfer_seconds(
        &self,
        class: LinkClass,
        peak_bytes_per_s: f64,
        bytes: f64,
    ) -> Option<Seconds> {
        self.bucket(class, bytes)
            .map(|b| b.alpha_s() + bytes / (peak_bytes_per_s * b.achieved_frac))
    }

    /// Parses a calibration table from TSV text (see the module docs).
    ///
    /// Unlike the forgiving tuning-cache loader, parsing is strict: a
    /// calibration table is authored, not appended, so a malformed line is an
    /// error rather than silently dropped data.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Calibration`] on an unknown class tag, a
    /// non-numeric field, an achieved fraction outside `(0, 1]`, a negative
    /// α, non-monotone bucket edges within a class, or a class whose last
    /// bucket edge is not `inf`.
    pub fn from_tsv(text: &str) -> Result<Self> {
        let bad = |line_no: usize, message: String| SimError::Calibration {
            message: format!("line {line_no}: {message}"),
        };
        let mut per_class: [Vec<BandwidthBucket>; 3] = Default::default();
        for (i, line) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let [class, max_bytes, alpha_us, achieved_frac] = fields.as_slice() else {
                return Err(bad(
                    line_no,
                    format!(
                        "expected 4 fields (class, max_bytes, alpha_us, achieved_frac), got {}",
                        fields.len()
                    ),
                ));
            };
            let class = LinkClass::from_tag(class).ok_or_else(|| {
                bad(
                    line_no,
                    format!("unknown link class {class:?} (expected self, nvlink or ib)"),
                )
            })?;
            let max_bytes = if *max_bytes == "inf" {
                f64::INFINITY
            } else {
                max_bytes
                    .parse::<f64>()
                    .map_err(|e| bad(line_no, format!("bad max_bytes: {e}")))?
            };
            let alpha_us = alpha_us
                .parse::<f64>()
                .map_err(|e| bad(line_no, format!("bad alpha_us: {e}")))?;
            let achieved_frac = achieved_frac
                .parse::<f64>()
                .map_err(|e| bad(line_no, format!("bad achieved_frac: {e}")))?;
            if max_bytes.is_nan() || max_bytes <= 0.0 {
                return Err(bad(
                    line_no,
                    format!("max_bytes must be positive, got {max_bytes}"),
                ));
            }
            if alpha_us.is_nan() || alpha_us < 0.0 {
                return Err(bad(
                    line_no,
                    format!("alpha_us must be >= 0, got {alpha_us}"),
                ));
            }
            if achieved_frac.is_nan() || achieved_frac <= 0.0 || achieved_frac > 1.0 {
                return Err(bad(
                    line_no,
                    format!("achieved_frac must be in (0, 1], got {achieved_frac}"),
                ));
            }
            per_class[class_index(class)].push(BandwidthBucket {
                max_bytes,
                alpha_us,
                achieved_frac,
            });
        }
        let mut cal = Self::empty();
        for class in LinkClass::ALL {
            let buckets = std::mem::take(&mut per_class[class_index(class)]);
            // Bucket edges must be authored in strictly increasing order: a
            // duplicated or out-of-order edge is almost always a typo in a
            // hand-edited table, and silently re-sorting it would hide which
            // bucket actually prices a message.
            for pair in buckets.windows(2) {
                if pair[1].max_bytes <= pair[0].max_bytes {
                    return Err(SimError::Calibration {
                        message: format!(
                            "class {:?} bucket edges must be strictly increasing, got {} after {}",
                            class.tag(),
                            pair[1].max_bytes,
                            pair[0].max_bytes
                        ),
                    });
                }
            }
            // A calibrated class must cover every message size: without a
            // final `inf` bucket, arbitrarily large transfers would silently
            // inherit the last (typically small-message) achieved fraction.
            if let Some(last) = buckets.iter().map(|b| b.max_bytes).reduce(f64::max) {
                if last.is_finite() {
                    return Err(SimError::Calibration {
                        message: format!(
                            "class {:?} has no `inf` bucket: its largest edge is {last} bytes,                              leaving bigger messages priced by the wrong bucket",
                            class.tag()
                        ),
                    });
                }
            }
            cal.set_class(class, buckets);
        }
        if cal.is_empty() {
            return Err(SimError::Calibration {
                message: "calibration table contains no buckets".to_string(),
            });
        }
        Ok(cal)
    }

    /// Loads a calibration table from a TSV file.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Calibration`] if the file cannot be read or parsed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| SimError::Calibration {
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::from_tsv(&text).map_err(|e| match e {
            SimError::Calibration { message } => SimError::Calibration {
                message: format!("{}: {message}", path.display()),
            },
            other => other,
        })
    }

    /// Serialises the table back to its canonical TSV form.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("# class\tmax_bytes\talpha_us\tachieved_frac\n");
        for class in LinkClass::ALL {
            for b in self.class(class) {
                let edge = if b.max_bytes.is_infinite() {
                    "inf".to_string()
                } else {
                    format!("{}", b.max_bytes)
                };
                out.push_str(&format!(
                    "{}\t{edge}\t{}\t{}\n",
                    class.tag(),
                    b.alpha_us,
                    b.achieved_frac
                ));
            }
        }
        out
    }

    /// Order-independent fingerprint of the table contents (FNV-1a over the
    /// canonical TSV form). Feeds [`CostProvider::revision`].
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut hash = FNV_OFFSET;
        for byte in self.to_tsv().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }
}

fn bucket(max_bytes: f64, alpha_us: f64, achieved_frac: f64) -> BandwidthBucket {
    BandwidthBucket {
        max_bytes,
        alpha_us,
        achieved_frac,
    }
}

/// A [`CostProvider`] layering a [`LinkCalibration`] over the analytic model.
///
/// Compute, HBM and latency work is priced by the analytic [`CostModel`]
/// unchanged; link transfers pay `α + bytes / (peak · achieved(bytes) · share)`
/// from the calibration table of their link class. Classes absent from the
/// table fall back to the analytic pricing (including its α floor).
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedCostModel {
    base: CostModel,
    calibration: LinkCalibration,
}

impl CalibratedCostModel {
    /// Creates a calibrated model from an explicit table.
    pub fn new(cluster: ClusterSpec, calibration: LinkCalibration) -> Self {
        Self {
            base: CostModel::new(cluster),
            calibration,
        }
    }

    /// Creates a calibrated model with the built-in H800 defaults.
    pub fn h800_defaults(cluster: ClusterSpec) -> Self {
        Self::new(cluster, LinkCalibration::h800_defaults())
    }

    /// Creates a calibrated model from a calibration TSV file.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Calibration`] if the file cannot be read or parsed.
    pub fn from_tsv_file(cluster: ClusterSpec, path: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::new(cluster, LinkCalibration::load(path)?))
    }

    /// The calibration table in use.
    pub fn calibration(&self) -> &LinkCalibration {
        &self.calibration
    }
}

impl CostProvider for CalibratedCostModel {
    fn cluster(&self) -> &ClusterSpec {
        self.base.cluster()
    }

    fn duration(&self, task: &Task, units: u64) -> Seconds {
        match task.work {
            Work::LinkBytes { bytes, dst_rank } => {
                let cluster = self.base.cluster();
                let class = cluster.link_class(task.rank, dst_rank);
                let peak = cluster.link_bytes_per_s(task.rank, dst_rank);
                match self.calibration.bucket(class, bytes) {
                    Some(b) => {
                        let share = cost::link_share(task, units);
                        b.alpha_s() + bytes / (peak * b.achieved_frac * share)
                    }
                    None => self.base.duration(task, units),
                }
            }
            _ => self.base.duration(task, units),
        }
    }

    fn gemm_seconds(
        &self,
        m: usize,
        n: usize,
        k: usize,
        tile_m: usize,
        tile_n: usize,
        sms: u64,
    ) -> Seconds {
        self.base.gemm_seconds(m, n, k, tile_m, tile_n, sms)
    }

    fn link_seconds(&self, src: usize, dst: usize, bytes: f64) -> Seconds {
        let cluster = self.base.cluster();
        let class = cluster.link_class(src, dst);
        let peak = cluster.link_bytes_per_s(src, dst);
        self.calibration
            .transfer_seconds(class, peak, bytes)
            .unwrap_or_else(|| self.base.link_seconds(src, dst, bytes))
    }

    fn revision(&self) -> String {
        format!("calibrated-{:016x}", self.calibration.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResourceKind;

    fn calibrated() -> CalibratedCostModel {
        CalibratedCostModel::h800_defaults(ClusterSpec::h800_multi_node(2))
    }

    fn link_task(bytes: f64, dst: usize) -> Task {
        Task::new(
            "c",
            0,
            ResourceKind::DmaEngine,
            1,
            Work::LinkBytes {
                bytes,
                dst_rank: dst,
            },
        )
    }

    #[test]
    fn small_messages_cost_strictly_more_than_zero() {
        let m = calibrated();
        for dst in [0usize, 1, 8] {
            for bytes in [0.0, 1.0, 512.0] {
                let t = m.duration(&link_task(bytes, dst), 1);
                assert!(t > 0.0, "dst {dst} bytes {bytes}: {t}");
            }
        }
    }

    #[test]
    fn small_messages_are_latency_bound_and_slower_than_analytic() {
        let m = calibrated();
        let analytic = CostModel::new(ClusterSpec::h800_multi_node(2));
        let t = link_task(4096.0, 1);
        let calibrated_s = CostProvider::duration(&m, &t, 1);
        let analytic_s = analytic.duration(&t, 1);
        // 4 KB over NVLink: α ≈ 1.2 µs dominates; the analytic α floor is 0.5 µs.
        assert!(calibrated_s > analytic_s, "{calibrated_s} vs {analytic_s}");
        assert!(calibrated_s > 1.2e-6);
    }

    #[test]
    fn large_messages_approach_peak_bandwidth() {
        let m = calibrated();
        let bytes = 256e6;
        let t = CostProvider::duration(&m, &link_task(bytes, 1), 1);
        let at_peak = bytes / m.cluster().gpu.nvlink_bytes_per_s();
        assert!(t < at_peak / 0.9, "{t} vs {at_peak}");
        assert!(t > at_peak, "achieved bandwidth can never beat peak");
    }

    #[test]
    fn achieved_bandwidth_is_monotone_in_message_size() {
        let m = calibrated();
        let sizes = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8];
        let mut last = 0.0;
        for &bytes in &sizes {
            let t = CostProvider::duration(&m, &link_task(bytes, 1), 1);
            let achieved = bytes / t;
            assert!(achieved > last, "bandwidth dips at {bytes} B");
            last = achieved;
        }
    }

    #[test]
    fn non_link_work_is_priced_by_the_analytic_base() {
        let m = calibrated();
        let analytic = CostModel::new(ClusterSpec::h800_multi_node(2));
        let gemm = Task::new(
            "g",
            0,
            ResourceKind::Sm,
            132,
            Work::MatmulFlops {
                flops: 1e12,
                efficiency: 0.8,
            },
        );
        assert_eq!(
            CostProvider::duration(&m, &gemm, 132),
            analytic.duration(&gemm, 132)
        );
        let hbm = Task::new("h", 0, ResourceKind::Sm, 132, Work::HbmBytes { bytes: 1e9 });
        assert_eq!(
            CostProvider::duration(&m, &hbm, 132),
            analytic.duration(&hbm, 132)
        );
    }

    #[test]
    fn tsv_round_trip_preserves_table_and_fingerprint() {
        let table = LinkCalibration::h800_defaults();
        let reparsed = LinkCalibration::from_tsv(&table.to_tsv()).unwrap();
        assert_eq!(table, reparsed);
        assert_eq!(table.fingerprint(), reparsed.fingerprint());
    }

    #[test]
    fn different_tables_have_different_fingerprints() {
        let a = LinkCalibration::h800_defaults();
        let mut b = a.clone();
        b.set_class(LinkClass::IntraNode, vec![bucket(f64::INFINITY, 2.0, 0.5)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let ma = CalibratedCostModel::new(ClusterSpec::default(), a);
        let mb = CalibratedCostModel::new(ClusterSpec::default(), b);
        assert_ne!(ma.revision(), mb.revision());
    }

    #[test]
    fn malformed_tables_are_rejected_with_line_numbers() {
        for (text, needle) in [
            ("nvlink\t100", "expected 4 fields"),
            ("warp\t100\t1.0\t0.5", "unknown link class"),
            ("nvlink\tabc\t1.0\t0.5", "bad max_bytes"),
            ("nvlink\t100\t-1.0\t0.5", "alpha_us must be >= 0"),
            ("nvlink\t100\t1.0\t1.5", "achieved_frac must be in (0, 1]"),
            ("nvlink\t100\t1.0\t0.0", "achieved_frac must be in (0, 1]"),
            ("nvlink\t-5\t1.0\t0.5", "max_bytes must be positive"),
            ("nvlink\t4096\t1.2\t0.05", "no `inf` bucket"),
            ("# only a comment\n", "no buckets"),
        ] {
            let err = LinkCalibration::from_tsv(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{text:?}: {err} missing {needle:?}"
            );
        }
    }

    #[test]
    fn shipped_calibration_tsv_round_trips_to_the_builtin_defaults() {
        // The repository ships data/h800-calibration.tsv as the worked example
        // of the TSV format; it must stay loadable and exactly equal to the
        // built-in defaults (same buckets, same fingerprint, same revision),
        // so `--cost-model calibrated` and `--cost-model calibrated:<path>`
        // price identically out of the box.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../data/h800-calibration.tsv"
        );
        let shipped = LinkCalibration::load(path).unwrap();
        let builtin = LinkCalibration::h800_defaults();
        assert_eq!(shipped, builtin);
        assert_eq!(shipped.fingerprint(), builtin.fingerprint());
        let cluster = ClusterSpec::h800_node(8);
        assert_eq!(
            CalibratedCostModel::new(cluster.clone(), shipped.clone()).revision(),
            CalibratedCostModel::new(cluster, builtin).revision()
        );
        // And the canonical serialisation round-trips the shipped table.
        let reparsed = LinkCalibration::from_tsv(&shipped.to_tsv()).unwrap();
        assert_eq!(shipped, reparsed);
    }

    #[test]
    fn loader_failure_modes_produce_distinct_errors() {
        // Each malformed table must fail with its own diagnosable message:
        // a missing `inf` bucket, non-monotone bucket edges and an unknown
        // link class are different authoring mistakes.
        let missing_inf = LinkCalibration::from_tsv("nvlink\t4096\t1.2\t0.05")
            .unwrap_err()
            .to_string();
        let non_monotone = LinkCalibration::from_tsv(
            "nvlink\t65536\t1.2\t0.35\nnvlink\t4096\t1.2\t0.05\nnvlink\tinf\t1.2\t0.95",
        )
        .unwrap_err()
        .to_string();
        let duplicate_edge = LinkCalibration::from_tsv(
            "nvlink\t4096\t1.2\t0.05\nnvlink\t4096\t1.2\t0.35\nnvlink\tinf\t1.2\t0.95",
        )
        .unwrap_err()
        .to_string();
        let bad_class = LinkCalibration::from_tsv("pcie\tinf\t1.2\t0.5")
            .unwrap_err()
            .to_string();
        assert!(missing_inf.contains("no `inf` bucket"), "{missing_inf}");
        assert!(
            non_monotone.contains("strictly increasing"),
            "{non_monotone}"
        );
        assert!(
            duplicate_edge.contains("strictly increasing"),
            "{duplicate_edge}"
        );
        assert!(bad_class.contains("unknown link class"), "{bad_class}");
        for (a, b) in [
            (&missing_inf, &non_monotone),
            (&missing_inf, &bad_class),
            (&non_monotone, &bad_class),
        ] {
            assert_ne!(a, b, "failure modes must be distinguishable");
        }
    }

    #[test]
    fn missing_class_falls_back_to_analytic() {
        let table = LinkCalibration::from_tsv("nvlink\tinf\t1.0\t0.9").unwrap();
        let cluster = ClusterSpec::h800_multi_node(2);
        let m = CalibratedCostModel::new(cluster.clone(), table);
        let analytic = CostModel::new(cluster);
        // IB is uncalibrated here: identical to the analytic model.
        let inter = link_task(1e8, 8);
        assert_eq!(
            CostProvider::duration(&m, &inter, 1),
            analytic.duration(&inter, 1)
        );
        assert_eq!(m.link_seconds(0, 8, 1e8), analytic.link_seconds(0, 8, 1e8));
        // NVLink is calibrated: slower than the pure-bandwidth analytic price.
        let intra = link_task(1e8, 1);
        assert!(CostProvider::duration(&m, &intra, 1) > analytic.duration(&intra, 1));
    }

    #[test]
    fn load_surfaces_io_errors_with_the_path() {
        let err = LinkCalibration::load("/nonexistent/calibration.tsv").unwrap_err();
        assert!(err.to_string().contains("/nonexistent/calibration.tsv"));
    }
}
