//! The cost-provider abstraction: anything that can price simulated work.
//!
//! The engine, the timed executor and the autotuner used to hard-wire the
//! analytic [`CostModel`]; this module turns the cost model into a trait
//! boundary so alternative providers (e.g. the measured
//! [`crate::CalibratedCostModel`]) can be threaded through every consumer
//! without touching the scheduler.
//!
//! Each provider exposes a [`CostProvider::revision`] fingerprint. Consumers
//! that cache derived results (the `tilelink-tune` persistent tuning cache)
//! fold the revision into their keys, so caches self-invalidate whenever the
//! cost model changes.

use std::path::PathBuf;
use std::str::FromStr;
use std::sync::Arc;

use crate::{CalibratedCostModel, ClusterSpec, CostModel, Result, Seconds, SimError, Task};

/// Converts simulated work into durations for one cluster.
///
/// The trait carries both the per-task pricing used by the discrete-event
/// engine ([`CostProvider::duration`]) and the closed-form helpers the
/// analytic baselines are built from, so a provider swap changes *every*
/// consumer consistently: the simulator, the timed executor, the resource
/// pass, the workload baselines and the tuner oracles.
pub trait CostProvider: std::fmt::Debug + Send + Sync {
    /// The cluster this provider prices work for.
    fn cluster(&self) -> &ClusterSpec;

    /// Duration of `task` when granted `units` of its resource.
    fn duration(&self, task: &Task, units: u64) -> Seconds;

    /// Stable fingerprint of the provider's formulas, constants and any
    /// loaded calibration data.
    ///
    /// Two providers that can return different durations for some task must
    /// return different revisions; the tuning cache relies on this to
    /// invalidate stale entries.
    fn revision(&self) -> String;

    /// Achieved fraction of peak for a GEMM tiled as `tile_m × tile_n` over
    /// `k` reduction steps (see [`CostModel::gemm_tile_efficiency`]).
    fn gemm_tile_efficiency(&self, tile_m: usize, tile_n: usize, k: usize) -> f64 {
        CostModel::gemm_tile_efficiency(tile_m, tile_n, k)
    }

    /// Seconds needed to run an `m × n × k` GEMM on `sms` SMs with the given
    /// tiling.
    ///
    /// The default delegates to [`CostModel::gemm_seconds`] so the analytic
    /// formula has a single home: editing the inherent method automatically
    /// changes every provider that has not overridden this.
    fn gemm_seconds(
        &self,
        m: usize,
        n: usize,
        k: usize,
        tile_m: usize,
        tile_n: usize,
        sms: u64,
    ) -> Seconds {
        CostModel::new(self.cluster().clone()).gemm_seconds(m, n, k, tile_m, tile_n, sms)
    }

    /// Seconds to stream `bytes` through HBM at full bandwidth.
    fn hbm_seconds(&self, bytes: f64) -> Seconds {
        bytes / self.cluster().gpu.hbm_bytes_per_s()
    }

    /// Seconds to move `bytes` from `src` to `dst` at full port bandwidth,
    /// floored at the link class's per-message α (see
    /// [`CostModel::link_seconds`]).
    fn link_seconds(&self, src: usize, dst: usize, bytes: f64) -> Seconds {
        let cluster = self.cluster();
        let alpha = crate::link_alpha_s(cluster.link_class(src, dst));
        (bytes / cluster.link_bytes_per_s(src, dst)).max(alpha)
    }
}

/// A shareable, thread-safe cost provider (the form every consumer threads).
pub type SharedCost = Arc<dyn CostProvider>;

/// The default provider: the analytic [`CostModel`] for `cluster`.
pub fn analytic_cost(cluster: &ClusterSpec) -> SharedCost {
    Arc::new(CostModel::new(cluster.clone()))
}

impl CostProvider for CostModel {
    fn cluster(&self) -> &ClusterSpec {
        self.cluster()
    }

    fn duration(&self, task: &Task, units: u64) -> Seconds {
        self.duration(task, units)
    }

    fn revision(&self) -> String {
        Self::REVISION.to_string()
    }

    fn gemm_seconds(
        &self,
        m: usize,
        n: usize,
        k: usize,
        tile_m: usize,
        tile_n: usize,
        sms: u64,
    ) -> Seconds {
        self.gemm_seconds(m, n, k, tile_m, tile_n, sms)
    }

    fn hbm_seconds(&self, bytes: f64) -> Seconds {
        self.hbm_seconds(bytes)
    }

    fn link_seconds(&self, src: usize, dst: usize, bytes: f64) -> Seconds {
        self.link_seconds(src, dst, bytes)
    }
}

/// Which cost model to simulate with, as selected on a command line.
///
/// The string form accepted by [`CostModelSpec::from_str`] is the value of the
/// `--cost-model` flag of the `reproduce` binary and the `autotune` example:
/// `analytic`, `calibrated` (built-in H800 table) or `calibrated:<path>` (a
/// calibration TSV, see [`crate::LinkCalibration`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CostModelSpec {
    /// The analytic [`CostModel`] (the default; matches historical results).
    #[default]
    Analytic,
    /// The α/β + bucketed-bandwidth [`CalibratedCostModel`].
    Calibrated {
        /// Calibration TSV to load; `None` uses the built-in H800 defaults.
        path: Option<PathBuf>,
    },
}

impl CostModelSpec {
    /// Builds the provider this spec describes for `cluster`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Calibration`] if a calibration file cannot be read
    /// or parsed.
    pub fn build(&self, cluster: &ClusterSpec) -> Result<SharedCost> {
        match self {
            CostModelSpec::Analytic => Ok(analytic_cost(cluster)),
            CostModelSpec::Calibrated { path: None } => Ok(Arc::new(
                CalibratedCostModel::h800_defaults(cluster.clone()),
            )),
            CostModelSpec::Calibrated { path: Some(path) } => Ok(Arc::new(
                CalibratedCostModel::from_tsv_file(cluster.clone(), path)?,
            )),
        }
    }

    /// Extracts a `--cost-model VALUE` / `--cost-model=VALUE` selector from a
    /// command line (shared by the `reproduce` binary and the examples so the
    /// flag's syntax cannot drift between them). No flag means
    /// [`CostModelSpec::Analytic`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Calibration`] if the flag is present without a
    /// value or the value does not parse.
    pub fn from_args(args: &[String]) -> Result<Self> {
        if let Some(i) = args.iter().position(|a| a == "--cost-model") {
            let Some(value) = args.get(i + 1) else {
                return Err(SimError::Calibration {
                    message:
                        "--cost-model requires a value (analytic, calibrated or calibrated:<path>)"
                            .to_string(),
                });
            };
            return value.parse();
        }
        match args.iter().find_map(|a| a.strip_prefix("--cost-model=")) {
            Some(value) => value.parse(),
            None => Ok(CostModelSpec::Analytic),
        }
    }
}

impl FromStr for CostModelSpec {
    type Err = SimError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "analytic" => Ok(CostModelSpec::Analytic),
            "calibrated" => Ok(CostModelSpec::Calibrated { path: None }),
            _ => match s.strip_prefix("calibrated:") {
                Some(path) if !path.is_empty() => Ok(CostModelSpec::Calibrated {
                    path: Some(PathBuf::from(path)),
                }),
                _ => Err(SimError::Calibration {
                    message: format!(
                        "unknown cost model {s:?} (expected analytic, calibrated or calibrated:<path>)"
                    ),
                }),
            },
        }
    }
}

impl std::fmt::Display for CostModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostModelSpec::Analytic => write!(f, "analytic"),
            CostModelSpec::Calibrated { path: None } => write!(f, "calibrated"),
            CostModelSpec::Calibrated { path: Some(p) } => {
                write!(f, "calibrated:{}", p.display())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ResourceKind, Work};

    #[test]
    fn analytic_provider_matches_the_concrete_model() {
        let cluster = ClusterSpec::h800_node(8);
        let model = CostModel::new(cluster.clone());
        let provider = analytic_cost(&cluster);
        let task = Task::new(
            "g",
            0,
            ResourceKind::Sm,
            132,
            Work::MatmulFlops {
                flops: 1e12,
                efficiency: 0.8,
            },
        );
        assert_eq!(provider.duration(&task, 132), model.duration(&task, 132));
        assert_eq!(
            provider.gemm_seconds(4096, 4096, 4096, 128, 128, 132),
            model.gemm_seconds(4096, 4096, 4096, 128, 128, 132)
        );
        assert_eq!(provider.hbm_seconds(1e9), model.hbm_seconds(1e9));
        assert_eq!(
            provider.link_seconds(0, 1, 1e9),
            model.link_seconds(0, 1, 1e9)
        );
        assert_eq!(provider.revision(), CostModel::REVISION);
        assert_eq!(
            provider.gemm_tile_efficiency(128, 256, 4096),
            CostModel::gemm_tile_efficiency(128, 256, 4096)
        );
    }

    #[test]
    fn spec_round_trips_through_strings() {
        for text in ["analytic", "calibrated", "calibrated:/tmp/table.tsv"] {
            let spec: CostModelSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
        }
        assert!("bogus".parse::<CostModelSpec>().is_err());
        assert!("calibrated:".parse::<CostModelSpec>().is_err());
        assert_eq!(CostModelSpec::default(), CostModelSpec::Analytic);
    }

    #[test]
    fn spec_from_args_handles_both_flag_forms_and_errors() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            CostModelSpec::from_args(&args(&["--fig8"])).unwrap(),
            CostModelSpec::Analytic
        );
        assert_eq!(
            CostModelSpec::from_args(&args(&["--cost-model", "calibrated"])).unwrap(),
            CostModelSpec::Calibrated { path: None }
        );
        assert_eq!(
            CostModelSpec::from_args(&args(&["--cost-model=calibrated:/t.tsv"])).unwrap(),
            CostModelSpec::Calibrated {
                path: Some(PathBuf::from("/t.tsv"))
            }
        );
        // A trailing flag without a value is an error, not a silent default.
        assert!(CostModelSpec::from_args(&args(&["--fig8", "--cost-model"])).is_err());
        assert!(CostModelSpec::from_args(&args(&["--cost-model", "bogus"])).is_err());
    }

    #[test]
    fn spec_builds_distinct_revisions() {
        let cluster = ClusterSpec::h800_node(8);
        let analytic = CostModelSpec::Analytic.build(&cluster).unwrap();
        let calibrated = CostModelSpec::Calibrated { path: None }
            .build(&cluster)
            .unwrap();
        assert_ne!(analytic.revision(), calibrated.revision());
        assert!(calibrated.revision().starts_with("calibrated-"));
    }
}
