//! Tasks: the unit of simulated work.

use std::sync::Arc;

/// Identifier of a task inside one [`crate::TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// The hardware resource a task occupies while it runs.
///
/// Every resource is per-rank. Capacities are set by the [`crate::Engine`] from
/// the [`crate::GpuSpec`]:
///
/// | kind | capacity | unit meaning |
/// |---|---|---|
/// | `Sm` | `sm_count` | one streaming multiprocessor |
/// | `DmaEngine` | `dma_engines` | one copy engine |
/// | `LinkOut` / `LinkIn` | 100 | percent of the port's per-direction bandwidth |
/// | `Host` | 1 | the (single) host thread driving this rank |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Streaming multiprocessors of the task's rank.
    Sm,
    /// Asynchronous DMA copy engines of the task's rank.
    DmaEngine,
    /// Egress interconnect bandwidth of the task's rank.
    LinkOut,
    /// Ingress interconnect bandwidth of the task's rank.
    LinkIn,
    /// The host CPU thread driving the task's rank.
    Host,
}

impl ResourceKind {
    /// All resource kinds, in a stable order (useful for utilisation reports).
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::Sm,
        ResourceKind::DmaEngine,
        ResourceKind::LinkOut,
        ResourceKind::LinkIn,
        ResourceKind::Host,
    ];

    /// Number of resource kinds (the stride of flat per-rank resource tables).
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index of this kind in [`ResourceKind::ALL`] order, used to
    /// address flat `rank * COUNT + index` tables in the scheduler hot path.
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Sm => 0,
            ResourceKind::DmaEngine => 1,
            ResourceKind::LinkOut => 2,
            ResourceKind::LinkIn => 3,
            ResourceKind::Host => 4,
        }
    }
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ResourceKind::Sm => "sm",
            ResourceKind::DmaEngine => "dma",
            ResourceKind::LinkOut => "link_out",
            ResourceKind::LinkIn => "link_in",
            ResourceKind::Host => "host",
        };
        f.write_str(s)
    }
}

/// The amount and kind of work a task performs.
///
/// The engine converts `Work` into a duration when the task starts, taking into
/// account how many resource units the task was granted (see
/// [`crate::CostModel::duration`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Work {
    /// Dense tensor-core math (GEMM-like).
    ///
    /// Duration = `flops / (peak_flops * granted_sms / sm_count * efficiency)`.
    MatmulFlops {
        /// Total floating-point operations.
        flops: f64,
        /// Achieved fraction of peak on the granted SMs (0, 1].
        efficiency: f64,
    },
    /// Memory-bandwidth-bound work on local HBM (elementwise ops, reductions,
    /// softmax, gather/scatter...).
    ///
    /// Duration = `bytes / (hbm_bandwidth * granted_sms / sm_count)`.
    HbmBytes {
        /// Total bytes moved to/from HBM.
        bytes: f64,
    },
    /// A data transfer to another rank.
    ///
    /// Duration = `bytes / (link_bandwidth(src, dst) * granted_percent / 100)`.
    /// The engine automatically co-occupies the destination rank's `LinkIn`
    /// resource for the same duration.
    LinkBytes {
        /// Total bytes transferred.
        bytes: f64,
        /// Destination rank.
        dst_rank: usize,
    },
    /// A fixed latency (kernel launch, host synchronisation, barrier...).
    Latency {
        /// Duration in seconds.
        seconds: f64,
    },
}

/// A task's trace label.
///
/// Makespan-only graphs are rebuilt thousands of times per tuning run and
/// never read their labels, so the fast path constructs tasks as
/// [`TaskLabel::Unlabeled`]: creating and dropping one is free, where even a
/// shared `Arc<str>` pays two atomic reference-count updates per task per
/// rebuild. The trace path uses [`TaskLabel::Named`], which shares its
/// allocation with the trace entries that reference it.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TaskLabel {
    /// No label (makespan-only graphs).
    #[default]
    Unlabeled,
    /// A human-readable trace label.
    Named(Arc<str>),
}

impl TaskLabel {
    /// The label text (empty for [`TaskLabel::Unlabeled`]).
    pub fn as_str(&self) -> &str {
        match self {
            TaskLabel::Unlabeled => "",
            TaskLabel::Named(s) => s,
        }
    }

    /// The label as a shareable `Arc<str>` (an empty shared `Arc` when
    /// unlabeled; only the trace path calls this).
    pub fn to_arc(&self) -> Arc<str> {
        match self {
            TaskLabel::Unlabeled => {
                static EMPTY: std::sync::OnceLock<Arc<str>> = std::sync::OnceLock::new();
                Arc::clone(EMPTY.get_or_init(|| Arc::from("")))
            }
            TaskLabel::Named(s) => Arc::clone(s),
        }
    }
}

impl std::ops::Deref for TaskLabel {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for TaskLabel {
    fn from(s: &str) -> Self {
        TaskLabel::Named(Arc::from(s))
    }
}

impl From<String> for TaskLabel {
    fn from(s: String) -> Self {
        TaskLabel::Named(Arc::from(s))
    }
}

impl From<Arc<str>> for TaskLabel {
    fn from(s: Arc<str>) -> Self {
        TaskLabel::Named(s)
    }
}

/// One node of the simulated task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Trace label; [`TaskLabel::Unlabeled`] on the makespan fast path.
    pub name: TaskLabel,
    /// Rank (GPU index) the task runs on.
    pub rank: usize,
    /// Resource kind the task occupies.
    pub resource: ResourceKind,
    /// Number of resource units requested.
    pub units: u64,
    /// Work performed.
    pub work: Work,
}

impl Task {
    /// Creates a task description.
    pub fn new(
        name: impl Into<TaskLabel>,
        rank: usize,
        resource: ResourceKind,
        units: u64,
        work: Work,
    ) -> Self {
        Self {
            name: name.into(),
            rank,
            resource,
            units,
            work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_kind_display_and_all() {
        let names: Vec<String> = ResourceKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(names, vec!["sm", "dma", "link_out", "link_in", "host"]);
    }

    #[test]
    fn resource_kind_indices_match_all_order() {
        assert_eq!(ResourceKind::COUNT, 5);
        for (i, kind) in ResourceKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn task_constructor_stores_fields() {
        let t = Task::new("t", 3, ResourceKind::Sm, 16, Work::HbmBytes { bytes: 1.0 });
        assert_eq!(t.rank, 3);
        assert_eq!(t.units, 16);
        assert_eq!(&*t.name, "t");
    }

    #[test]
    fn task_id_is_ordered() {
        assert!(TaskId(1) < TaskId(2));
    }
}
