//! Execution traces: per-task timing, makespan and utilisation.

use std::collections::HashMap;
use std::sync::Arc;

use crate::{ClusterSpec, ResourceKind, Seconds, TaskId};

/// Timing of one executed task.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Task id within the graph.
    pub task: TaskId,
    /// Task name (shares the interned allocation of [`crate::Task::name`]).
    pub name: Arc<str>,
    /// Rank the task ran on.
    pub rank: usize,
    /// Resource kind the task occupied.
    pub resource: ResourceKind,
    /// Units of the resource held.
    pub units: u64,
    /// Start time in seconds.
    pub start: Seconds,
    /// End time in seconds.
    pub end: Seconds,
}

impl TraceEntry {
    /// Duration of the task in seconds.
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }
}

/// The result of running a [`crate::TaskGraph`] on the [`crate::Engine`].
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    cluster: ClusterSpec,
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Builds a trace from entries (used by the engine).
    pub fn new(cluster: ClusterSpec, entries: Vec<TraceEntry>) -> Self {
        Self { cluster, entries }
    }

    /// All trace entries in task-id order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// The entry for one task, if it executed.
    pub fn entry(&self, id: TaskId) -> Option<&TraceEntry> {
        self.entries.iter().find(|e| e.task == id)
    }

    /// Total simulated wall-clock time (seconds).
    pub fn makespan(&self) -> Seconds {
        self.entries.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Total simulated wall-clock time in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan() * 1e3
    }

    /// Sum of `duration × occupied-fraction` for one resource on one rank,
    /// normalised by the makespan: 1.0 means the resource was fully busy.
    pub fn utilization(&self, rank: usize, resource: ResourceKind) -> f64 {
        let capacity = self.cluster.resource_capacity(resource) as f64;
        let makespan = self.makespan();
        if makespan == 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .entries
            .iter()
            .filter(|e| e.rank == rank && e.resource == resource)
            .map(|e| e.duration() * e.units as f64 / capacity)
            .sum();
        busy / makespan
    }

    /// Sum of the durations of every entry whose name contains `needle`.
    ///
    /// Useful to separate "communication time" from "computation time" when
    /// computing the paper's overlap ratio (Section 7.2).
    pub fn total_time_of(&self, needle: &str) -> Seconds {
        self.entries
            .iter()
            .filter(|e| e.name.contains(needle))
            .map(|e| e.duration())
            .sum()
    }

    /// Earliest start time across all entries (0.0 for an empty trace).
    pub fn first_start(&self) -> Seconds {
        self.entries
            .iter()
            .map(|e| e.start)
            .fold(f64::INFINITY, f64::min)
            .min(self.makespan())
    }

    /// Per-rank busy time of one resource kind, in seconds.
    pub fn busy_seconds(&self) -> HashMap<(usize, ResourceKind), Seconds> {
        let mut map = HashMap::new();
        for e in &self.entries {
            *map.entry((e.rank, e.resource)).or_insert(0.0) += e.duration();
        }
        map
    }

    /// Serialises the trace in the Chrome `trace_event` JSON array format.
    ///
    /// Ranks map to processes (`pid`), resource kinds to thread lanes (`tid`
    /// = [`ResourceKind::index`], with `thread_name`/`thread_sort_index`
    /// metadata so lanes are labelled and stably ordered). Times are emitted
    /// in microseconds as the format requires. The output loads in
    /// `chrome://tracing` or Perfetto to inspect the overlap visually.
    pub fn to_chrome_json(&self) -> String {
        let mut trace = tilelink_probe::ChromeTrace::new();
        let mut ranks: Vec<usize> = self.entries.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        for &rank in &ranks {
            trace.process_name(rank as u64, &format!("rank {rank}"));
            for kind in ResourceKind::ALL {
                if self
                    .entries
                    .iter()
                    .any(|e| e.rank == rank && e.resource == kind)
                {
                    let tid = kind.index() as u64;
                    trace.thread_name(rank as u64, tid, &kind.to_string());
                    trace.thread_sort_index(rank as u64, tid, tid);
                }
            }
        }
        for e in &self.entries {
            let category = match e.resource {
                ResourceKind::Sm => "compute",
                ResourceKind::Host => "host",
                _ => "comm",
            };
            trace.complete_event(
                &e.name,
                category,
                e.rank as u64,
                e.resource.index() as u64,
                e.start * 1e6,
                e.duration() * 1e6,
            );
        }
        trace.to_json()
    }

    /// Aggregates the trace into a per-rank × per-resource busy-time and
    /// utilisation table plus a comm-vs-compute overlap ratio.
    ///
    /// The overlap ratio mirrors the paper's Section 7.2 definition (the
    /// fraction of communication hidden behind computation): with `comm` and
    /// `comp` the summed busy time of `comm_*` / `compute_*` tasks (via
    /// [`Trace::total_time_of`]), it is `(comm + comp - makespan) / comm`
    /// clamped to `[0, 1]`.
    pub fn summary(&self) -> TraceSummary {
        let busy = self.busy_seconds();
        let makespan = self.makespan();
        let mut rows = Vec::new();
        let mut ranks: Vec<usize> = busy.keys().map(|&(rank, _)| rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        for rank in ranks {
            for resource in ResourceKind::ALL {
                if let Some(&busy_s) = busy.get(&(rank, resource)) {
                    rows.push(SummaryRow {
                        rank,
                        resource,
                        busy_s,
                        utilization: self.utilization(rank, resource),
                    });
                }
            }
        }
        let comm_busy_s = self.total_time_of("comm_");
        let compute_busy_s = self.total_time_of("compute_");
        let overlap_ratio = if comm_busy_s > 0.0 {
            ((comm_busy_s + compute_busy_s - makespan) / comm_busy_s).clamp(0.0, 1.0)
        } else {
            0.0
        };
        TraceSummary {
            rows,
            makespan_s: makespan,
            comm_busy_s,
            compute_busy_s,
            overlap_ratio,
        }
    }
}

/// One row of a [`TraceSummary`]: one resource kind on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Rank the resource belongs to.
    pub rank: usize,
    /// Resource kind.
    pub resource: ResourceKind,
    /// Summed busy time of the resource in seconds.
    pub busy_s: Seconds,
    /// Capacity-weighted busy fraction of the makespan (see
    /// [`Trace::utilization`]).
    pub utilization: f64,
}

/// Per-rank × per-resource utilisation summary of a [`Trace`], produced by
/// [`Trace::summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Rows sorted by rank then resource lane order, only for resources that
    /// actually ran work.
    pub rows: Vec<SummaryRow>,
    /// Makespan of the trace in seconds.
    pub makespan_s: Seconds,
    /// Summed busy time of `comm_*` tasks in seconds.
    pub comm_busy_s: Seconds,
    /// Summed busy time of `compute_*` tasks in seconds.
    pub compute_busy_s: Seconds,
    /// Fraction of communication hidden behind computation, in `[0, 1]`.
    pub overlap_ratio: f64,
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>5} {:>9} {:>12} {:>6}",
            "rank", "resource", "busy ms", "util"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>5} {:>9} {:>12.4} {:>5.1}%",
                row.rank,
                row.resource.to_string(),
                row.busy_s * 1e3,
                row.utilization * 100.0
            )?;
        }
        writeln!(
            f,
            "makespan {:.4} ms | comm busy {:.4} ms | compute busy {:.4} ms | overlap {:.1}%",
            self.makespan_s * 1e3,
            self.comm_busy_s * 1e3,
            self.compute_busy_s * 1e3,
            self.overlap_ratio * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, TaskGraph, Work};

    fn simple_trace() -> Trace {
        let mut g = TaskGraph::new();
        let a = g.add_task(
            "comm_copy",
            0,
            ResourceKind::LinkOut,
            100,
            Work::Latency { seconds: 1.0 },
        );
        let b = g.add_task(
            "compute_gemm",
            0,
            ResourceKind::Sm,
            66,
            Work::Latency { seconds: 2.0 },
        );
        g.add_dep(a, b);
        Engine::new(ClusterSpec::h800_node(2)).run(&g).unwrap()
    }

    #[test]
    fn makespan_and_entries() {
        let t = simple_trace();
        assert!((t.makespan() - 3.0).abs() < 1e-9);
        assert!((t.makespan_ms() - 3000.0).abs() < 1e-6);
        assert_eq!(t.entries().len(), 2);
        assert!(t.entry(TaskId(0)).is_some());
        assert!(t.entry(TaskId(9)).is_none());
    }

    #[test]
    fn utilization_accounts_for_partial_occupancy() {
        let t = simple_trace();
        // GEMM holds 66/132 SMs for 2 of the 3 seconds → 1/3 utilisation.
        let sm = t.utilization(0, ResourceKind::Sm);
        assert!((sm - 2.0 / 3.0 * 0.5).abs() < 1e-9);
        // Nothing ran on rank 1.
        assert_eq!(t.utilization(1, ResourceKind::Sm), 0.0);
    }

    #[test]
    fn total_time_of_filters_by_name() {
        let t = simple_trace();
        assert!((t.total_time_of("comm") - 1.0).abs() < 1e-9);
        assert!((t.total_time_of("compute") - 2.0).abs() < 1e-9);
        assert_eq!(t.total_time_of("nonexistent"), 0.0);
    }

    #[test]
    fn busy_seconds_by_rank_and_kind() {
        let t = simple_trace();
        let busy = t.busy_seconds();
        assert!((busy[&(0, ResourceKind::Sm)] - 2.0).abs() < 1e-9);
        assert!((busy[&(0, ResourceKind::LinkOut)] - 1.0).abs() < 1e-9);
    }

    /// A deterministic two-rank trace with hand-computable numbers:
    /// rank 0 runs comm (2 s) → compute (1 s) serially, rank 1 runs the same
    /// pair fully in parallel.
    fn two_rank_trace() -> Trace {
        let mut g = TaskGraph::new();
        let a = g.add_task(
            "comm_copy/r0",
            0,
            ResourceKind::LinkOut,
            100,
            Work::Latency { seconds: 2.0 },
        );
        let b = g.add_task(
            "compute_gemm/r0",
            0,
            ResourceKind::Sm,
            66,
            Work::Latency { seconds: 1.0 },
        );
        g.add_dep(a, b);
        g.add_task(
            "comm_copy/r1",
            1,
            ResourceKind::LinkOut,
            100,
            Work::Latency { seconds: 2.0 },
        );
        g.add_task(
            "compute_gemm/r1",
            1,
            ResourceKind::Sm,
            66,
            Work::Latency { seconds: 1.0 },
        );
        Engine::new(ClusterSpec::h800_node(2)).run(&g).unwrap()
    }

    #[test]
    fn chrome_json_is_validator_grade() {
        let t = simple_trace();
        let json = t.to_chrome_json();
        let parsed = tilelink_probe::parse_json(&json).expect("chrome trace must be valid JSON");
        let events = parsed.as_array().expect("trace_event array format");
        // 2 task events + process/thread metadata for the one active rank.
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(tilelink_probe::JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        for ev in &complete {
            // Rank → process, resource lane → thread.
            let pid = ev
                .get("pid")
                .and_then(tilelink_probe::JsonValue::as_f64)
                .unwrap();
            let tid = ev
                .get("tid")
                .and_then(tilelink_probe::JsonValue::as_f64)
                .unwrap();
            assert_eq!(pid, 0.0);
            assert!(tid < ResourceKind::COUNT as f64);
            // ts and dur are non-negative microseconds within the makespan.
            let ts = ev
                .get("ts")
                .and_then(tilelink_probe::JsonValue::as_f64)
                .unwrap();
            let dur = ev
                .get("dur")
                .and_then(tilelink_probe::JsonValue::as_f64)
                .unwrap();
            assert!(ts >= 0.0 && dur >= 0.0);
            assert!(ts + dur <= t.makespan() * 1e6 + 1e-3);
        }
        // The copy ran on the link lane, the GEMM on the SM lane.
        let lane_of = |needle: &str| {
            complete
                .iter()
                .find(|e| {
                    e.get("name")
                        .and_then(tilelink_probe::JsonValue::as_str)
                        .is_some_and(|n| n.contains(needle))
                })
                .and_then(|e| e.get("tid"))
                .and_then(tilelink_probe::JsonValue::as_f64)
                .unwrap()
        };
        assert_eq!(lane_of("comm_copy"), ResourceKind::LinkOut.index() as f64);
        assert_eq!(lane_of("compute_gemm"), ResourceKind::Sm.index() as f64);
        // Metadata names the process after its rank.
        assert!(events.iter().any(|e| {
            e.get("name").and_then(tilelink_probe::JsonValue::as_str) == Some("process_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(tilelink_probe::JsonValue::as_str)
                    == Some("rank 0")
        }));
    }

    #[test]
    fn summary_on_a_known_two_rank_graph() {
        let t = two_rank_trace();
        let s = t.summary();
        assert!((s.makespan_s - 3.0).abs() < 1e-9);
        // comm: 2 s on each rank; compute: 1 s on each rank.
        assert!((s.comm_busy_s - 4.0).abs() < 1e-9);
        assert!((s.compute_busy_s - 2.0).abs() < 1e-9);
        // overlap = (comm + comp - makespan) / comm = (4 + 2 - 3) / 4.
        assert!((s.overlap_ratio - 0.75).abs() < 1e-9);
        // One link row and one SM row per rank, sorted by rank then lane.
        assert_eq!(s.rows.len(), 4);
        assert_eq!(s.rows[0].rank, 0);
        assert_eq!(s.rows[0].resource, ResourceKind::Sm);
        assert_eq!(s.rows[1].resource, ResourceKind::LinkOut);
        // Rank 0's SM: 1 s × 66/132 SMs over a 3 s makespan.
        assert!((s.rows[0].busy_s - 1.0).abs() < 1e-9);
        assert!((s.rows[0].utilization - 1.0 / 3.0 * 0.5).abs() < 1e-9);
        // The rendered table carries the headline numbers.
        let text = s.to_string();
        assert!(text.contains("rank"));
        assert!(text.contains("overlap 75.0%"));
    }

    #[test]
    fn empty_trace_metrics() {
        let t = Trace::new(ClusterSpec::h800_node(1), Vec::new());
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.utilization(0, ResourceKind::Sm), 0.0);
        assert_eq!(t.first_start(), 0.0);
    }
}
