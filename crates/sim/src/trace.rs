//! Execution traces: per-task timing, makespan and utilisation.

use std::collections::HashMap;
use std::sync::Arc;

use crate::{ClusterSpec, ResourceKind, Seconds, TaskId};

/// Timing of one executed task.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Task id within the graph.
    pub task: TaskId,
    /// Task name (shares the interned allocation of [`crate::Task::name`]).
    pub name: Arc<str>,
    /// Rank the task ran on.
    pub rank: usize,
    /// Resource kind the task occupied.
    pub resource: ResourceKind,
    /// Units of the resource held.
    pub units: u64,
    /// Start time in seconds.
    pub start: Seconds,
    /// End time in seconds.
    pub end: Seconds,
}

impl TraceEntry {
    /// Duration of the task in seconds.
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }
}

/// The result of running a [`crate::TaskGraph`] on the [`crate::Engine`].
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    cluster: ClusterSpec,
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Builds a trace from entries (used by the engine).
    pub fn new(cluster: ClusterSpec, entries: Vec<TraceEntry>) -> Self {
        Self { cluster, entries }
    }

    /// All trace entries in task-id order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// The entry for one task, if it executed.
    pub fn entry(&self, id: TaskId) -> Option<&TraceEntry> {
        self.entries.iter().find(|e| e.task == id)
    }

    /// Total simulated wall-clock time (seconds).
    pub fn makespan(&self) -> Seconds {
        self.entries.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Total simulated wall-clock time in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan() * 1e3
    }

    /// Sum of `duration × occupied-fraction` for one resource on one rank,
    /// normalised by the makespan: 1.0 means the resource was fully busy.
    pub fn utilization(&self, rank: usize, resource: ResourceKind) -> f64 {
        let capacity = self.cluster.resource_capacity(resource) as f64;
        let makespan = self.makespan();
        if makespan == 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .entries
            .iter()
            .filter(|e| e.rank == rank && e.resource == resource)
            .map(|e| e.duration() * e.units as f64 / capacity)
            .sum();
        busy / makespan
    }

    /// Sum of the durations of every entry whose name contains `needle`.
    ///
    /// Useful to separate "communication time" from "computation time" when
    /// computing the paper's overlap ratio (Section 7.2).
    pub fn total_time_of(&self, needle: &str) -> Seconds {
        self.entries
            .iter()
            .filter(|e| e.name.contains(needle))
            .map(|e| e.duration())
            .sum()
    }

    /// Earliest start time across all entries (0.0 for an empty trace).
    pub fn first_start(&self) -> Seconds {
        self.entries
            .iter()
            .map(|e| e.start)
            .fold(f64::INFINITY, f64::min)
            .min(self.makespan())
    }

    /// Per-rank busy time of one resource kind, in seconds.
    pub fn busy_seconds(&self) -> HashMap<(usize, ResourceKind), Seconds> {
        let mut map = HashMap::new();
        for e in &self.entries {
            *map.entry((e.rank, e.resource)).or_insert(0.0) += e.duration();
        }
        map
    }

    /// Serialises the trace in the Chrome `about:tracing` JSON array format.
    ///
    /// The output can be loaded in `chrome://tracing` or Perfetto to inspect
    /// the overlap visually. Times are emitted in microseconds as the format
    /// requires.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!(
                concat!(
                    "  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": {}, \"tid\": \"{}\", ",
                    "\"ts\": {:.3}, \"dur\": {:.3}}}{}\n"
                ),
                e.name.replace('"', "'"),
                e.rank,
                e.resource,
                e.start * 1e6,
                e.duration() * 1e6,
                comma
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, TaskGraph, Work};

    fn simple_trace() -> Trace {
        let mut g = TaskGraph::new();
        let a = g.add_task(
            "comm_copy",
            0,
            ResourceKind::LinkOut,
            100,
            Work::Latency { seconds: 1.0 },
        );
        let b = g.add_task(
            "compute_gemm",
            0,
            ResourceKind::Sm,
            66,
            Work::Latency { seconds: 2.0 },
        );
        g.add_dep(a, b);
        Engine::new(ClusterSpec::h800_node(2)).run(&g).unwrap()
    }

    #[test]
    fn makespan_and_entries() {
        let t = simple_trace();
        assert!((t.makespan() - 3.0).abs() < 1e-9);
        assert!((t.makespan_ms() - 3000.0).abs() < 1e-6);
        assert_eq!(t.entries().len(), 2);
        assert!(t.entry(TaskId(0)).is_some());
        assert!(t.entry(TaskId(9)).is_none());
    }

    #[test]
    fn utilization_accounts_for_partial_occupancy() {
        let t = simple_trace();
        // GEMM holds 66/132 SMs for 2 of the 3 seconds → 1/3 utilisation.
        let sm = t.utilization(0, ResourceKind::Sm);
        assert!((sm - 2.0 / 3.0 * 0.5).abs() < 1e-9);
        // Nothing ran on rank 1.
        assert_eq!(t.utilization(1, ResourceKind::Sm), 0.0);
    }

    #[test]
    fn total_time_of_filters_by_name() {
        let t = simple_trace();
        assert!((t.total_time_of("comm") - 1.0).abs() < 1e-9);
        assert!((t.total_time_of("compute") - 2.0).abs() < 1e-9);
        assert_eq!(t.total_time_of("nonexistent"), 0.0);
    }

    #[test]
    fn busy_seconds_by_rank_and_kind() {
        let t = simple_trace();
        let busy = t.busy_seconds();
        assert!((busy[&(0, ResourceKind::Sm)] - 2.0).abs() < 1e-9);
        assert!((busy[&(0, ResourceKind::LinkOut)] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chrome_json_is_wellformed_enough() {
        let t = simple_trace();
        let json = t.to_chrome_json();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 2);
    }

    #[test]
    fn empty_trace_metrics() {
        let t = Trace::new(ClusterSpec::h800_node(1), Vec::new());
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.utilization(0, ResourceKind::Sm), 0.0);
        assert_eq!(t.first_start(), 0.0);
    }
}
