//! Cluster topology: nodes × GPUs.

use crate::{GpuSpec, ResourceKind};

/// The class of link a (source, destination) rank pair communicates over.
///
/// Cost models price transfers per class: a self-copy moves through HBM, an
/// intra-node transfer rides NVLink and an inter-node transfer crosses the
/// InfiniBand fabric, each with its own latency and achieved-bandwidth curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Source and destination are the same rank (HBM-to-HBM copy).
    SelfCopy,
    /// Both ranks share a node (NVLink).
    IntraNode,
    /// The ranks live on different nodes (InfiniBand).
    InterNode,
}

impl LinkClass {
    /// All classes, in calibration-table order.
    pub const ALL: [LinkClass; 3] = [
        LinkClass::SelfCopy,
        LinkClass::IntraNode,
        LinkClass::InterNode,
    ];

    /// Stable tag used in calibration TSV files (`self`, `nvlink`, `ib`).
    pub fn tag(&self) -> &'static str {
        match self {
            LinkClass::SelfCopy => "self",
            LinkClass::IntraNode => "nvlink",
            LinkClass::InterNode => "ib",
        }
    }

    /// Parses a calibration-table tag back into a class.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "self" => Some(LinkClass::SelfCopy),
            "nvlink" => Some(LinkClass::IntraNode),
            "ib" => Some(LinkClass::InterNode),
            _ => None,
        }
    }
}

/// A homogeneous cluster of `nodes` machines with `gpus_per_node` GPUs each.
///
/// The paper evaluates on one node of 8×H800 (Figures 8–10, left of Figure 11)
/// and two nodes of 8×H800 (right of Figure 11). Intra-node traffic travels
/// over NVLink, inter-node traffic over InfiniBand; [`ClusterSpec::link_bytes_per_s`]
/// picks the correct bandwidth for a (source, destination) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Per-GPU hardware description.
    pub gpu: GpuSpec,
    /// Number of GPUs per node.
    pub gpus_per_node: usize,
    /// Number of nodes.
    pub nodes: usize,
}

impl ClusterSpec {
    /// Creates a cluster specification.
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_node` or `nodes` is zero.
    pub fn new(gpu: GpuSpec, gpus_per_node: usize, nodes: usize) -> Self {
        assert!(gpus_per_node > 0, "gpus_per_node must be positive");
        assert!(nodes > 0, "nodes must be positive");
        Self {
            gpu,
            gpus_per_node,
            nodes,
        }
    }

    /// A single node of `gpus` H800 GPUs (the paper's main platform).
    pub fn h800_node(gpus: usize) -> Self {
        Self::new(GpuSpec::h800(), gpus, 1)
    }

    /// `nodes` nodes of 8×H800 each (the paper's multi-node platform).
    pub fn h800_multi_node(nodes: usize) -> Self {
        Self::new(GpuSpec::h800(), 8, nodes)
    }

    /// Total number of GPUs (ranks).
    pub fn world_size(&self) -> usize {
        self.gpus_per_node * self.nodes
    }

    /// Node index of a rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn node_of(&self, rank: usize) -> usize {
        assert!(rank < self.world_size(), "rank out of range");
        rank / self.gpus_per_node
    }

    /// Returns `true` if two ranks share a node (and therefore NVLink).
    ///
    /// # Panics
    ///
    /// Panics if either rank is out of range.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Point-to-point bandwidth between two ranks in bytes/s.
    ///
    /// Returns HBM bandwidth for a self-copy, NVLink bandwidth within a node and
    /// InfiniBand bandwidth across nodes.
    ///
    /// # Panics
    ///
    /// Panics if either rank is out of range.
    pub fn link_bytes_per_s(&self, src: usize, dst: usize) -> f64 {
        match self.link_class(src, dst) {
            LinkClass::SelfCopy => self.gpu.hbm_bytes_per_s(),
            LinkClass::IntraNode => self.gpu.nvlink_bytes_per_s(),
            LinkClass::InterNode => self.gpu.ib_bytes_per_s(),
        }
    }

    /// Capacity of one resource kind on every rank of this cluster (the
    /// simulator models homogeneous clusters, so capacities are per-kind).
    ///
    /// This is the single source of truth shared by the scheduler's resource
    /// tables and the trace utilisation report.
    pub fn resource_capacity(&self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::Sm => self.gpu.sm_count,
            ResourceKind::DmaEngine => self.gpu.dma_engines,
            ResourceKind::LinkOut | ResourceKind::LinkIn => GpuSpec::LINK_PORT_SHARES,
            ResourceKind::Host => 1,
        }
    }

    /// Link class of a (source, destination) rank pair.
    ///
    /// # Panics
    ///
    /// Panics if either rank is out of range.
    pub fn link_class(&self, src: usize, dst: usize) -> LinkClass {
        if src == dst {
            LinkClass::SelfCopy
        } else if self.same_node(src, dst) {
            LinkClass::IntraNode
        } else {
            LinkClass::InterNode
        }
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::h800_node(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_size_and_nodes() {
        let c = ClusterSpec::h800_multi_node(2);
        assert_eq!(c.world_size(), 16);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(8), 1);
        assert!(c.same_node(0, 7));
        assert!(!c.same_node(7, 8));
    }

    #[test]
    fn link_bandwidth_depends_on_locality() {
        let c = ClusterSpec::h800_multi_node(2);
        let local = c.link_bytes_per_s(0, 0);
        let nvlink = c.link_bytes_per_s(0, 1);
        let ib = c.link_bytes_per_s(0, 8);
        assert!(local > nvlink);
        assert!(nvlink > ib);
    }

    #[test]
    fn link_class_matches_topology() {
        let c = ClusterSpec::h800_multi_node(2);
        assert_eq!(c.link_class(3, 3), LinkClass::SelfCopy);
        assert_eq!(c.link_class(0, 7), LinkClass::IntraNode);
        assert_eq!(c.link_class(0, 8), LinkClass::InterNode);
        for class in LinkClass::ALL {
            assert_eq!(LinkClass::from_tag(class.tag()), Some(class));
        }
        assert_eq!(LinkClass::from_tag("bogus"), None);
    }

    #[test]
    fn default_is_8_gpu_node() {
        assert_eq!(ClusterSpec::default().world_size(), 8);
    }

    #[test]
    fn resource_capacities_come_from_the_gpu_spec() {
        let c = ClusterSpec::h800_node(2);
        assert_eq!(c.resource_capacity(ResourceKind::Sm), c.gpu.sm_count);
        assert_eq!(
            c.resource_capacity(ResourceKind::DmaEngine),
            c.gpu.dma_engines
        );
        assert_eq!(
            c.resource_capacity(ResourceKind::LinkOut),
            GpuSpec::LINK_PORT_SHARES
        );
        assert_eq!(
            c.resource_capacity(ResourceKind::LinkIn),
            GpuSpec::LINK_PORT_SHARES
        );
        assert_eq!(c.resource_capacity(ResourceKind::Host), 1);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn node_of_out_of_range_panics() {
        ClusterSpec::h800_node(2).node_of(5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_gpus_panics() {
        ClusterSpec::new(GpuSpec::h800(), 0, 1);
    }
}
