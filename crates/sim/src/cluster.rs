//! Cluster topology: nodes × GPUs.

use crate::GpuSpec;

/// A homogeneous cluster of `nodes` machines with `gpus_per_node` GPUs each.
///
/// The paper evaluates on one node of 8×H800 (Figures 8–10, left of Figure 11)
/// and two nodes of 8×H800 (right of Figure 11). Intra-node traffic travels
/// over NVLink, inter-node traffic over InfiniBand; [`ClusterSpec::link_bytes_per_s`]
/// picks the correct bandwidth for a (source, destination) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Per-GPU hardware description.
    pub gpu: GpuSpec,
    /// Number of GPUs per node.
    pub gpus_per_node: usize,
    /// Number of nodes.
    pub nodes: usize,
}

impl ClusterSpec {
    /// Creates a cluster specification.
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_node` or `nodes` is zero.
    pub fn new(gpu: GpuSpec, gpus_per_node: usize, nodes: usize) -> Self {
        assert!(gpus_per_node > 0, "gpus_per_node must be positive");
        assert!(nodes > 0, "nodes must be positive");
        Self {
            gpu,
            gpus_per_node,
            nodes,
        }
    }

    /// A single node of `gpus` H800 GPUs (the paper's main platform).
    pub fn h800_node(gpus: usize) -> Self {
        Self::new(GpuSpec::h800(), gpus, 1)
    }

    /// `nodes` nodes of 8×H800 each (the paper's multi-node platform).
    pub fn h800_multi_node(nodes: usize) -> Self {
        Self::new(GpuSpec::h800(), 8, nodes)
    }

    /// Total number of GPUs (ranks).
    pub fn world_size(&self) -> usize {
        self.gpus_per_node * self.nodes
    }

    /// Node index of a rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn node_of(&self, rank: usize) -> usize {
        assert!(rank < self.world_size(), "rank out of range");
        rank / self.gpus_per_node
    }

    /// Returns `true` if two ranks share a node (and therefore NVLink).
    ///
    /// # Panics
    ///
    /// Panics if either rank is out of range.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Point-to-point bandwidth between two ranks in bytes/s.
    ///
    /// Returns HBM bandwidth for a self-copy, NVLink bandwidth within a node and
    /// InfiniBand bandwidth across nodes.
    ///
    /// # Panics
    ///
    /// Panics if either rank is out of range.
    pub fn link_bytes_per_s(&self, src: usize, dst: usize) -> f64 {
        if src == dst {
            self.gpu.hbm_bytes_per_s()
        } else if self.same_node(src, dst) {
            self.gpu.nvlink_bytes_per_s()
        } else {
            self.gpu.ib_bytes_per_s()
        }
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::h800_node(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_size_and_nodes() {
        let c = ClusterSpec::h800_multi_node(2);
        assert_eq!(c.world_size(), 16);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(8), 1);
        assert!(c.same_node(0, 7));
        assert!(!c.same_node(7, 8));
    }

    #[test]
    fn link_bandwidth_depends_on_locality() {
        let c = ClusterSpec::h800_multi_node(2);
        let local = c.link_bytes_per_s(0, 0);
        let nvlink = c.link_bytes_per_s(0, 1);
        let ib = c.link_bytes_per_s(0, 8);
        assert!(local > nvlink);
        assert!(nvlink > ib);
    }

    #[test]
    fn default_is_8_gpu_node() {
        assert_eq!(ClusterSpec::default().world_size(), 8);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn node_of_out_of_range_panics() {
        ClusterSpec::h800_node(2).node_of(5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_gpus_panics() {
        ClusterSpec::new(GpuSpec::h800(), 0, 1);
    }
}
