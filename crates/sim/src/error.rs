//! Error type for the cluster simulator.

use std::fmt;

use crate::TaskId;

/// Errors produced while building or executing a simulated task graph.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A dependency edge referenced a task id that does not exist.
    UnknownTask {
        /// The offending task id.
        task: TaskId,
    },
    /// A task requested more resource units than the rank's capacity.
    InsufficientCapacity {
        /// The offending task id.
        task: TaskId,
        /// Units requested.
        requested: u64,
        /// Capacity of the resource on that rank.
        capacity: u64,
    },
    /// A task referenced a rank outside the cluster.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// World size of the cluster.
        world_size: usize,
    },
    /// The dependency graph contains a cycle, so it can never complete.
    DependencyCycle {
        /// Number of tasks that could not be scheduled.
        stuck: usize,
    },
    /// A cost-model calibration table could not be read or parsed, or a
    /// cost-model selector string was malformed.
    Calibration {
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTask { task } => write!(f, "unknown task id {task:?}"),
            SimError::InsufficientCapacity {
                task,
                requested,
                capacity,
            } => write!(
                f,
                "task {task:?} requested {requested} resource units but only {capacity} exist"
            ),
            SimError::InvalidRank { rank, world_size } => {
                write!(
                    f,
                    "rank {rank} is invalid for a cluster of {world_size} GPUs"
                )
            }
            SimError::DependencyCycle { stuck } => {
                write!(
                    f,
                    "dependency cycle detected: {stuck} tasks can never start"
                )
            }
            SimError::Calibration { message } => {
                write!(f, "cost-model calibration error: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let errs = [
            SimError::UnknownTask { task: TaskId(3) },
            SimError::InsufficientCapacity {
                task: TaskId(0),
                requested: 200,
                capacity: 132,
            },
            SimError::InvalidRank {
                rank: 9,
                world_size: 8,
            },
            SimError::DependencyCycle { stuck: 2 },
            SimError::Calibration {
                message: "bad table".to_string(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
