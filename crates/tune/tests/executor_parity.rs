//! Shared-executor bit-identity over the standard search space.
//!
//! The serving daemon evaluates cold searches on a process-shared
//! [`SearchExecutor`] instead of a private scoped pool. The executor contract
//! is that this is *unobservable* in the search outcome: results land in a
//! slot per candidate and merge in candidate order either way, so the same
//! oracle + space + strategy must produce a bit-identical ranking — same
//! configs in the same order with the same reports — regardless of which pool
//! evaluated them, how many sessions shared it, or how its threads were
//! scheduled.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use tilelink::{OverlapConfig, OverlapReport, TileShape};
use tilelink_sim::ClusterSpec;
use tilelink_tune::{CostOracle, FnOracle, SearchExecutor, SearchSpace, Strategy, Tuner};

fn analytic(counter: &AtomicUsize) -> impl CostOracle + '_ {
    FnOracle::new("parity", ClusterSpec::h800_node(8), move |cfg| {
        counter.fetch_add(1, Ordering::SeqCst);
        let tile = cfg.compute_tile.numel() as f64;
        let order = match cfg.order {
            tilelink::TileOrder::Ring => 0.9,
            tilelink::TileOrder::AllToAll => 1.0,
        };
        let sms = cfg.comm_mapping.comm_sms() as f64;
        let t = (1e9 / tile) * order + sms * 1e-3 + cfg.num_stages as f64 * 1e-4;
        Ok(OverlapReport::new(t, t / 3.0, 2.0 * t / 3.0))
    })
}

fn space() -> SearchSpace {
    SearchSpace::standard()
        .with_comm_tiles([TileShape::new(128, 128)])
        .with_channels([4])
}

fn assert_bit_identical(a: &tilelink_tune::TuneReport, b: &tilelink_tune::TuneReport, label: &str) {
    assert_eq!(a.best.config, b.best.config, "{label}: best config differs");
    assert_eq!(
        a.ranked.len(),
        b.ranked.len(),
        "{label}: ranking length differs"
    );
    for (i, (x, y)) in a.ranked.iter().zip(&b.ranked).enumerate() {
        assert_eq!(x.config, y.config, "{label}: rank {i} config differs");
        assert_eq!(
            x.report.total_s.to_bits(),
            y.report.total_s.to_bits(),
            "{label}: rank {i} total_s not bit-identical"
        );
        assert_eq!(
            x.report.comm_only_s.to_bits(),
            y.report.comm_only_s.to_bits(),
            "{label}: rank {i} comm_only_s not bit-identical"
        );
        assert_eq!(
            x.report.comp_only_s.to_bits(),
            y.report.comp_only_s.to_bits(),
            "{label}: rank {i} comp_only_s not bit-identical"
        );
    }
    assert_eq!(a.evaluations, b.evaluations, "{label}: evaluation counts");
}

#[test]
fn shared_executor_matches_private_pool_bit_for_bit() {
    for strategy in [
        Strategy::Exhaustive,
        Strategy::Beam {
            width: 2,
            sweeps: 3,
        },
    ] {
        let c_pool = AtomicUsize::new(0);
        let private = Tuner::new(strategy)
            .with_threads(8)
            .tune(&analytic(&c_pool), &space())
            .unwrap();

        let c_exec = AtomicUsize::new(0);
        let shared = Tuner::new(strategy)
            .with_executor(Arc::new(SearchExecutor::with_threads(8)))
            .tune(&analytic(&c_exec), &space())
            .unwrap();

        assert_bit_identical(&private, &shared, &format!("{strategy:?}"));
    }
}

#[test]
fn executor_results_are_stable_across_reuse_and_thread_counts() {
    // One executor, three back-to-back runs (so runs 2 and 3 hit the warm
    // pool), plus a single-threaded executor: all four outcomes identical.
    let exec = Arc::new(SearchExecutor::with_threads(8));
    let mut reports = Vec::new();
    for _ in 0..3 {
        let calls = AtomicUsize::new(0);
        reports.push(
            Tuner::new(Strategy::Beam {
                width: 2,
                sweeps: 3,
            })
            .with_executor(Arc::clone(&exec))
            .tune(&analytic(&calls), &space())
            .unwrap(),
        );
    }
    let calls = AtomicUsize::new(0);
    reports.push(
        Tuner::new(Strategy::Beam {
            width: 2,
            sweeps: 3,
        })
        .with_executor(Arc::new(SearchExecutor::with_threads(1)))
        .tune(&analytic(&calls), &space())
        .unwrap(),
    );
    for (i, r) in reports[1..].iter().enumerate() {
        assert_bit_identical(&reports[0], r, &format!("run {}", i + 1));
    }
}

#[test]
fn concurrent_sessions_interleave_without_cross_talk() {
    // Four different searches race on one shared executor with a session
    // bound of 2; each must produce exactly the result it would have alone.
    let exec = Arc::new(SearchExecutor::with_threads(4).with_max_sessions(2));
    let mut handles = Vec::new();
    for stage_bias in 0..4usize {
        let exec = Arc::clone(&exec);
        handles.push(std::thread::spawn(move || {
            let oracle = FnOracle::new("race", ClusterSpec::h800_node(8), move |cfg| {
                let t = cfg.num_stages as f64 + stage_bias as f64 * 0.1;
                Ok(OverlapReport::new(t, t / 2.0, t / 2.0))
            });
            let space = SearchSpace::new().with_stages([2, 3, 4]);
            let report = Tuner::new(Strategy::Exhaustive)
                .with_executor(exec)
                .tune(&oracle, &space)
                .unwrap();
            (stage_bias, report)
        }));
    }
    for handle in handles {
        let (stage_bias, report) = handle.join().unwrap();
        assert_eq!(report.best.config.num_stages, 2);
        let expected = 2.0 + stage_bias as f64 * 0.1;
        assert_eq!(
            report.best.report.total_s, expected,
            "session {stage_bias} must see only its own oracle's timings"
        );
        assert_eq!(report.ranked.len(), 3);
    }
}

#[test]
fn default_config_seed_survives_executor_path() {
    // The beam guarantee (never worse than the seed) must hold through the
    // shared executor exactly as it does on the private pool.
    let calls = AtomicUsize::new(0);
    let report = Tuner::new(Strategy::Beam {
        width: 2,
        sweeps: 2,
    })
    .with_executor(Arc::new(SearchExecutor::with_threads(4)))
    .tune(&analytic(&calls), &space())
    .unwrap();
    let seed_cost = {
        let calls = AtomicUsize::new(0);
        let oracle = analytic(&calls);
        oracle.evaluate(&OverlapConfig::default()).unwrap().total_s
    };
    assert!(report.best.report.total_s <= seed_cost);
}
