//! Crash- and multi-process regression tests for [`TuneCache`] persistence.
//!
//! These tests re-execute this test binary as a child process (the classic
//! self-exec pattern): the child runs one of the `child_*` tests below, which
//! are no-ops unless the coordinating environment variable is set. The
//! torn-write tests additionally arm the `TILELINK_TUNE_CACHE_FLUSH_ABORT`
//! crash-injection hook so the child aborts in the middle of a flush, and the
//! parent then proves the original file survived intact. Before the atomic
//! tmp+rename fix the flush wrote straight into the destination and these
//! tests observed a truncated — often empty — cache.

use std::path::PathBuf;
use std::process::Command;

use tilelink::OverlapReport;
use tilelink_tune::{cache::FLUSH_ABORT_ENV, TuneCache};

/// Tells a child invocation which cache file to operate on. The child tests
/// are inert when this is unset, so a plain `cargo test` never runs them.
const CHILD_PATH_ENV: &str = "TILELINK_CACHE_TEST_CHILD_PATH";

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tilelink-cache-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Runs `child_test` in a fresh process of this same test binary.
fn run_child(child_test: &str, cache_path: &std::path::Path, abort_point: Option<&str>) -> bool {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(exe);
    cmd.args([child_test, "--exact", "--nocapture", "--test-threads=1"])
        .env(CHILD_PATH_ENV, cache_path);
    match abort_point {
        Some(point) => cmd.env(FLUSH_ABORT_ENV, point),
        None => cmd.env_remove(FLUSH_ABORT_ENV),
    };
    cmd.status().unwrap().success()
}

/// Child body: open the cache, insert a batch of entries, flush. With the
/// abort hook armed the flush never returns.
#[test]
fn child_insert_and_flush() {
    let Some(path) = std::env::var_os(CHILD_PATH_ENV) else {
        return;
    };
    let mut cache = TuneCache::open(PathBuf::from(path)).unwrap();
    for i in 0..64 {
        cache.insert(
            format!("child-key-{i:03}"),
            OverlapReport::new(2.0 + i as f64, 1.0, 1.5),
        );
    }
    cache.flush().unwrap();
}

fn seed_cache(path: &std::path::Path, n: usize) -> TuneCache {
    let _ = std::fs::remove_file(path);
    let mut cache = TuneCache::open(path).unwrap();
    for i in 0..n {
        cache.insert(
            format!("seed-key-{i:03}"),
            OverlapReport::new(1.0 + i as f64, 0.5, 0.75),
        );
    }
    cache.flush().unwrap();
    cache
}

fn assert_seed_intact(path: &std::path::Path, n: usize) {
    let reloaded = TuneCache::open(path).unwrap();
    for i in 0..n {
        assert!(
            reloaded.get(&format!("seed-key-{i:03}")).is_some(),
            "seed entry {i} lost after interrupted flush"
        );
    }
}

#[test]
fn flush_killed_mid_write_leaves_old_file_intact() {
    let path = tmp("torn-mid-write.tsv");
    seed_cache(&path, 32);
    let ok = run_child("child_insert_and_flush", &path, Some("mid-write"));
    assert!(
        !ok,
        "child armed with mid-write abort must die, not succeed"
    );
    // The whole point of the atomic flush: a crash halfway through writing
    // must leave the previous complete file, not a truncated one.
    assert_seed_intact(&path, 32);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flush_killed_before_rename_leaves_old_file_intact() {
    let path = tmp("torn-pre-rename.tsv");
    seed_cache(&path, 32);
    let ok = run_child("child_insert_and_flush", &path, Some("pre-rename"));
    assert!(
        !ok,
        "child armed with pre-rename abort must die, not succeed"
    );
    assert_seed_intact(&path, 32);
    let _ = std::fs::remove_file(&path);
}

/// Two **processes** sharing one cache file — the exact shape of CI's shared
/// `TILELINK_TUNE_CACHE` across smoke steps. The parent opens the cache
/// first (so its view predates the child's entries), the child then writes
/// and flushes its own entries and exits cleanly, and finally the parent
/// flushes. Before merge-on-flush the parent's rewrite clobbered everything
/// the child had persisted.
#[test]
fn concurrent_tuner_process_entries_survive_parent_flush() {
    let path = tmp("two-process.tsv");
    let _ = std::fs::remove_file(&path);

    let mut parent = TuneCache::open(&path).unwrap();
    parent.insert("parent-key".into(), OverlapReport::new(9.0, 4.0, 7.0));

    let ok = run_child("child_insert_and_flush", &path, None);
    assert!(ok, "clean child flush must succeed");

    parent.flush().unwrap();

    let merged = TuneCache::open(&path).unwrap();
    assert!(merged.get("parent-key").is_some());
    for i in 0..64 {
        assert!(
            merged.get(&format!("child-key-{i:03}")).is_some(),
            "entry {i} written by the concurrent tuner process was clobbered"
        );
    }
    let _ = std::fs::remove_file(&path);
}
