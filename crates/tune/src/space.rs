//! The design-space description: per-axis candidate values with pruning.

use tilelink::{CommMapping, OverlapConfig, TileOrder, TileShape, TransferMode};

use crate::CostOracle;

/// A named cross-axis validity constraint (see [`SearchSpace::with_constraint`]).
///
/// The predicate is a plain `fn` pointer so spaces stay `Clone`/`PartialEq`
/// and searches stay deterministic. Equality compares the *name* only
/// (function-pointer comparison is not meaningful), so give distinct
/// constraints distinct names.
#[derive(Debug, Clone, Copy)]
pub struct AxisConstraint {
    /// Human-readable name, e.g. `"ring-requires-push"`.
    pub name: &'static str,
    /// Returns `true` if the configuration satisfies the constraint.
    pub pred: fn(&OverlapConfig) -> bool,
}

impl PartialEq for AxisConstraint {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

/// Built-in constraint: [`TileOrder::Ring`] only combines with
/// [`TransferMode::Push`] (ring schedules forward partial results to a
/// neighbour, which is inherently a push; a pull-mode ring would deadlock on
/// real hardware and only "works" in the simulator by accident).
pub const RING_REQUIRES_PUSH: AxisConstraint = AxisConstraint {
    name: "ring-requires-push",
    pred: |cfg| cfg.order != TileOrder::Ring || cfg.mode == TransferMode::Push,
};

/// A builder over the seven axes of the overlap design space.
///
/// Every axis starts from the corresponding [`OverlapConfig::default`] value;
/// builder methods replace one axis with a list of candidates. The full space
/// is the cartesian product of the axes, enumerated in a fixed nested-loop
/// order (so searches are deterministic), with invalid combinations pruned by
/// [`OverlapConfig::validate`], the space's own cross-axis constraints
/// ([`SearchSpace::with_constraint`]) and the oracle's
/// [`CostOracle::is_supported`][crate::CostOracle::is_supported] predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    comm_tiles: Vec<TileShape>,
    compute_tiles: Vec<TileShape>,
    orders: Vec<TileOrder>,
    modes: Vec<TransferMode>,
    mappings: Vec<CommMapping>,
    channels: Vec<usize>,
    stages: Vec<usize>,
    constraints: Vec<AxisConstraint>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        let d = OverlapConfig::default();
        Self {
            comm_tiles: vec![d.comm_tile],
            compute_tiles: vec![d.compute_tile],
            orders: vec![d.order],
            modes: vec![d.mode],
            mappings: vec![d.comm_mapping],
            channels: vec![d.channels_per_rank],
            stages: vec![d.num_stages],
            constraints: Vec::new(),
        }
    }
}

impl SearchSpace {
    /// A space holding only the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard space used by the `tuned_*` workload constructors: the
    /// tile shapes, orders, transfer modes and resource mappings the paper
    /// sweeps in its evaluation (Sections 3.1 and 7), 648 combinations before
    /// pruning. Carries [`RING_REQUIRES_PUSH`], so the pull-mode ring
    /// combinations (which would deadlock on real hardware) are excluded
    /// up front instead of wasting simulation budget.
    pub fn standard() -> Self {
        Self::new()
            .with_comm_tiles([
                TileShape::new(64, 64),
                TileShape::new(128, 128),
                TileShape::new(256, 128),
            ])
            .with_compute_tiles([
                TileShape::new(64, 128),
                TileShape::new(128, 128),
                TileShape::new(128, 256),
            ])
            .with_orders([TileOrder::AllToAll, TileOrder::Ring])
            .with_modes([TransferMode::Pull, TransferMode::Push])
            .with_mappings([
                CommMapping::CopyEngine,
                CommMapping::Sm { sms: 8 },
                CommMapping::Sm { sms: 20 },
                CommMapping::Sm { sms: 40 },
                CommMapping::Hybrid { sms: 8 },
                CommMapping::Hybrid { sms: 20 },
            ])
            .with_channels([4])
            .with_stages([2, 3, 4])
            .with_constraint(RING_REQUIRES_PUSH)
    }

    /// Replaces the communication-tile axis.
    pub fn with_comm_tiles(mut self, tiles: impl IntoIterator<Item = TileShape>) -> Self {
        self.comm_tiles = tiles.into_iter().collect();
        self
    }

    /// Replaces the computation-tile axis.
    pub fn with_compute_tiles(mut self, tiles: impl IntoIterator<Item = TileShape>) -> Self {
        self.compute_tiles = tiles.into_iter().collect();
        self
    }

    /// Replaces the tile-order axis.
    pub fn with_orders(mut self, orders: impl IntoIterator<Item = TileOrder>) -> Self {
        self.orders = orders.into_iter().collect();
        self
    }

    /// Replaces the transfer-mode axis.
    pub fn with_modes(mut self, modes: impl IntoIterator<Item = TransferMode>) -> Self {
        self.modes = modes.into_iter().collect();
        self
    }

    /// Replaces the resource-mapping axis.
    pub fn with_mappings(mut self, mappings: impl IntoIterator<Item = CommMapping>) -> Self {
        self.mappings = mappings.into_iter().collect();
        self
    }

    /// Replaces the channels-per-rank axis.
    pub fn with_channels(mut self, channels: impl IntoIterator<Item = usize>) -> Self {
        self.channels = channels.into_iter().collect();
        self
    }

    /// Replaces the pipeline-stage axis.
    pub fn with_stages(mut self, stages: impl IntoIterator<Item = usize>) -> Self {
        self.stages = stages.into_iter().collect();
        self
    }

    /// Adds a cross-axis validity constraint; configurations violating it are
    /// pruned at enumeration time, before any compile or simulation attempt.
    ///
    /// Use this for axis pairs that can never combine (e.g.
    /// [`RING_REQUIRES_PUSH`]): pruning up front keeps them out of oracle
    /// calls entirely, instead of relying on per-candidate compile failures.
    ///
    /// ```
    /// use tilelink_tune::{SearchSpace, RING_REQUIRES_PUSH};
    /// use tilelink::{OverlapConfig, TileOrder};
    ///
    /// let space = SearchSpace::new().with_constraint(RING_REQUIRES_PUSH);
    /// let ring_pull = OverlapConfig::default().with_order(TileOrder::Ring);
    /// assert!(!space.allows(&ring_pull));
    /// ```
    pub fn with_constraint(mut self, constraint: AxisConstraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// The cross-axis constraints of this space.
    pub fn constraints(&self) -> &[AxisConstraint] {
        &self.constraints
    }

    /// Returns `true` if `cfg` satisfies every cross-axis constraint.
    pub fn allows(&self, cfg: &OverlapConfig) -> bool {
        self.constraints.iter().all(|c| (c.pred)(cfg))
    }

    /// Number of combinations before pruning.
    pub fn len_unpruned(&self) -> usize {
        self.comm_tiles.len()
            * self.compute_tiles.len()
            * self.orders.len()
            * self.modes.len()
            * self.mappings.len()
            * self.channels.len()
            * self.stages.len()
    }

    /// Candidate values of one axis applied to a base config, in axis order.
    ///
    /// This is what the beam strategy sweeps: axis index `i` (0..7) yields one
    /// variant per candidate value of that axis, all other axes held at
    /// `base`'s values.
    pub(crate) fn axis_variants(&self, axis: usize, base: &OverlapConfig) -> Vec<OverlapConfig> {
        match axis {
            0 => self
                .comm_tiles
                .iter()
                .map(|&t| base.with_comm_tile(t))
                .collect(),
            1 => self
                .compute_tiles
                .iter()
                .map(|&t| base.with_compute_tile(t))
                .collect(),
            2 => self.orders.iter().map(|&o| base.with_order(o)).collect(),
            3 => self.modes.iter().map(|&m| base.with_mode(m)).collect(),
            4 => self
                .mappings
                .iter()
                .map(|&m| base.with_comm_mapping(m))
                .collect(),
            5 => self
                .channels
                .iter()
                .map(|&c| {
                    let mut cfg = *base;
                    cfg.channels_per_rank = c;
                    cfg
                })
                .collect(),
            6 => self
                .stages
                .iter()
                .map(|&s| {
                    let mut cfg = *base;
                    cfg.num_stages = s;
                    cfg
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Number of axes (for the beam sweep).
    pub(crate) const NUM_AXES: usize = 7;

    /// A representative seed config: the first value of every axis.
    pub(crate) fn seed(&self) -> OverlapConfig {
        OverlapConfig {
            comm_tile: self.comm_tiles[0],
            compute_tile: self.compute_tiles[0],
            order: self.orders[0],
            mode: self.modes[0],
            comm_mapping: self.mappings[0],
            channels_per_rank: self.channels[0],
            num_stages: self.stages[0],
        }
    }

    /// Enumerates every valid candidate for `oracle`, in deterministic order.
    ///
    /// A candidate is valid when [`OverlapConfig::validate`] accepts it for the
    /// oracle's GPU, every cross-axis constraint of the space allows it, and
    /// the oracle's `is_supported` predicate holds.
    pub fn candidates(&self, oracle: &dyn CostOracle) -> Vec<OverlapConfig> {
        self.candidates_counted(oracle).0
    }

    /// Like [`SearchSpace::candidates`], but also reports how many
    /// combinations each pruning stage rejected, so tuning reports can
    /// attribute the gap between [`SearchSpace::len_unpruned`] and the
    /// evaluated count.
    pub fn candidates_counted(&self, oracle: &dyn CostOracle) -> (Vec<OverlapConfig>, PruneCounts) {
        let sm_count = oracle.cluster().gpu.sm_count;
        let mut out = Vec::new();
        let mut counts = PruneCounts::default();
        for &comm_tile in &self.comm_tiles {
            for &compute_tile in &self.compute_tiles {
                for &order in &self.orders {
                    for &mode in &self.modes {
                        for &comm_mapping in &self.mappings {
                            for &channels_per_rank in &self.channels {
                                for &num_stages in &self.stages {
                                    let cfg = OverlapConfig {
                                        comm_tile,
                                        compute_tile,
                                        order,
                                        mode,
                                        comm_mapping,
                                        channels_per_rank,
                                        num_stages,
                                    };
                                    if cfg.validate(sm_count).is_err() {
                                        counts.validate_rejected += 1;
                                    } else if !self.allows(&cfg) || !oracle.is_supported(&cfg) {
                                        counts.constraint_pruned += 1;
                                    } else {
                                        out.push(cfg);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        (out, counts)
    }
}

/// How many combinations each pruning stage of one enumeration rejected
/// (see [`SearchSpace::candidates_counted`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PruneCounts {
    /// Rejected by [`OverlapConfig::validate`] (physically impossible on the
    /// oracle's GPU, e.g. more communication SMs than the chip has).
    pub validate_rejected: usize,
    /// Rejected by a cross-axis constraint of the space or by the oracle's
    /// [`CostOracle::is_supported`] predicate.
    pub constraint_pruned: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnOracle;
    use tilelink::OverlapReport;
    use tilelink_sim::ClusterSpec;

    fn unit_oracle() -> impl CostOracle {
        FnOracle::new("t", ClusterSpec::h800_node(8), |_| {
            Ok(OverlapReport::new(1.0, 0.5, 0.5))
        })
    }

    #[test]
    fn default_space_is_the_default_config() {
        let space = SearchSpace::new();
        assert_eq!(space.len_unpruned(), 1);
        let cands = space.candidates(&unit_oracle());
        assert_eq!(cands, vec![OverlapConfig::default()]);
        assert_eq!(space.seed(), OverlapConfig::default());
    }

    #[test]
    fn standard_space_has_documented_size() {
        let space = SearchSpace::standard();
        assert_eq!(space.len_unpruned(), (3 * 3 * 2 * 2 * 6) * 3);
    }

    #[test]
    fn invalid_configs_are_pruned_by_validate() {
        // 200 comm SMs exceed the 132 SMs of an H800: those candidates vanish.
        let space = SearchSpace::new()
            .with_mappings([CommMapping::Sm { sms: 20 }, CommMapping::Sm { sms: 200 }]);
        let cands = space.candidates(&unit_oracle());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].comm_mapping, CommMapping::Sm { sms: 20 });
    }

    #[test]
    fn unsupported_configs_are_pruned_by_the_oracle() {
        let oracle = FnOracle::new("t", ClusterSpec::h800_node(8), |_| {
            Ok(OverlapReport::new(1.0, 0.5, 0.5))
        })
        .with_support(|cfg: &OverlapConfig| cfg.num_stages != 3);
        let space = SearchSpace::new().with_stages([2, 3, 4]);
        let stages: Vec<usize> = space
            .candidates(&oracle)
            .iter()
            .map(|c| c.num_stages)
            .collect();
        assert_eq!(stages, vec![2, 4]);
    }

    #[test]
    fn counted_enumeration_attributes_every_rejection() {
        use tilelink::{TileOrder, TransferMode};
        // 2 mappings × 2 orders × 2 modes = 8 combos: 4 fail validate
        // (Sm{200} > 132 SMs), ring+pull of the valid mapping is pruned by the
        // constraint, 3 survive.
        let space = SearchSpace::new()
            .with_mappings([CommMapping::Sm { sms: 20 }, CommMapping::Sm { sms: 200 }])
            .with_orders([TileOrder::AllToAll, TileOrder::Ring])
            .with_modes([TransferMode::Pull, TransferMode::Push])
            .with_constraint(crate::RING_REQUIRES_PUSH);
        let (cands, counts) = space.candidates_counted(&unit_oracle());
        assert_eq!(cands.len(), 3);
        assert_eq!(counts.validate_rejected, 4);
        assert_eq!(counts.constraint_pruned, 1);
        assert_eq!(
            cands.len() + counts.validate_rejected + counts.constraint_pruned,
            space.len_unpruned()
        );
        assert_eq!(cands, space.candidates(&unit_oracle()));
    }

    #[test]
    fn cross_axis_constraints_prune_at_enumeration_time() {
        use tilelink::{TileOrder, TransferMode};
        let space = SearchSpace::new()
            .with_orders([TileOrder::AllToAll, TileOrder::Ring])
            .with_modes([TransferMode::Pull, TransferMode::Push]);
        // Without the constraint all four pairs enumerate.
        assert_eq!(space.candidates(&unit_oracle()).len(), 4);
        let constrained = space.with_constraint(crate::RING_REQUIRES_PUSH);
        let cands = constrained.candidates(&unit_oracle());
        assert_eq!(cands.len(), 3, "ring+pull must be pruned");
        assert!(cands
            .iter()
            .all(|c| c.order != TileOrder::Ring || c.mode == TransferMode::Push));
        assert!(!constrained.allows(&OverlapConfig::default().with_order(TileOrder::Ring)));
        assert_eq!(constrained.constraints().len(), 1);
        assert_eq!(constrained.constraints()[0].name, "ring-requires-push");
    }

    #[test]
    fn constraints_compose() {
        let space = SearchSpace::new()
            .with_stages([2, 3, 4])
            .with_constraint(AxisConstraint {
                name: "even-stages",
                pred: |cfg| cfg.num_stages % 2 == 0,
            })
            .with_constraint(AxisConstraint {
                name: "shallow",
                pred: |cfg| cfg.num_stages < 4,
            });
        let stages: Vec<usize> = space
            .candidates(&unit_oracle())
            .iter()
            .map(|c| c.num_stages)
            .collect();
        assert_eq!(stages, vec![2]);
    }

    #[test]
    fn enumeration_order_is_deterministic() {
        let space = SearchSpace::standard();
        let a = space.candidates(&unit_oracle());
        let b = space.candidates(&unit_oracle());
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn axis_variants_cover_each_axis() {
        let space = SearchSpace::standard();
        let base = OverlapConfig::default();
        let mut total = 0;
        for axis in 0..SearchSpace::NUM_AXES {
            let variants = space.axis_variants(axis, &base);
            assert!(!variants.is_empty());
            total += variants.len();
        }
        assert_eq!(total, 3 + 3 + 2 + 2 + 6 + 1 + 3);
        assert!(space.axis_variants(99, &base).is_empty());
    }
}
