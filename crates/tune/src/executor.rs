//! A reusable, process-owned candidate-evaluation pool.
//!
//! [`Tuner::tune`](crate::Tuner::tune) historically spawned a fresh scoped
//! worker pool per call. That is fine for one-shot CLI tuning, but a serving
//! daemon runs many searches over its lifetime — often several at once for
//! *different* cache keys — and per-call pools both pay a thread-spawn tax on
//! every request and oversubscribe the machine under concurrent cold misses
//! (N searches × min(cores, 16) threads each).
//!
//! [`SearchExecutor`] is the long-lived replacement: one warm worker pool
//! owned by the process, shared by every search wired to it (the
//! `tilelink-serve` daemon, `reproduce --tune`, the load generator). Searches
//! are admitted through a bounded session queue
//! ([`SearchExecutor::session`]), and their evaluation batches interleave
//! job-by-job on the same workers, so concurrent cold searches share one
//! pool's worth of threads instead of stacking pools.
//!
//! # Determinism
//!
//! The executor changes *where* candidates are evaluated, never *what* the
//! search observes: results land in a slot per candidate exactly like the
//! scoped pool, and the tuner merges them in candidate order. A search run
//! through a shared executor is bit-identical to the same search run on a
//! private pool (see the `executor_parity` integration test).
//!
//! # Safety
//!
//! Worker threads outlive any single `tune()` call, so jobs cannot borrow the
//! caller's oracle through safe lifetimes. Instead [`SearchExecutor::run_batch`]
//! erases the oracle borrow to a raw pointer and enforces the lifetime
//! dynamically: it does not return until every job of the batch has completed,
//! and a job's completion is signalled only after its last use of the oracle.
//! Jobs never migrate between batches, so no worker can touch the pointer
//! after `run_batch` returns and the borrow ends.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use tilelink::{OverlapConfig, TileLinkError};
use tilelink_probe::metrics::{TUNE_EXECUTOR_QUEUE_DEPTH, TUNE_EXECUTOR_REUSES};

use crate::search::timed_eval;
use crate::{BoundedEval, CostOracle};

/// Default cap on concurrently admitted search sessions.
const DEFAULT_MAX_SESSIONS: usize = 4;

/// A lifetime-erased `&dyn CostOracle`. See the module-level safety notes:
/// the pointee is guaranteed live for as long as any job holding this pointer
/// exists, because [`SearchExecutor::run_batch`] blocks until the batch
/// drains.
#[derive(Clone, Copy)]
struct OraclePtr(*const (dyn CostOracle + 'static));

// The pointer is only ever dereferenced to a `&dyn CostOracle`, and
// `CostOracle: Sync` guarantees shared references are usable from any thread.
unsafe impl Send for OraclePtr {}
unsafe impl Sync for OraclePtr {}

impl OraclePtr {
    fn erase(oracle: &dyn CostOracle) -> Self {
        // SAFETY: lifetime erasure only — the batch barrier in `run_batch`
        // guarantees no job outlives the borrow this pointer was made from.
        Self(unsafe {
            std::mem::transmute::<*const (dyn CostOracle + '_), *const (dyn CostOracle + 'static)>(
                oracle as *const dyn CostOracle,
            )
        })
    }
}

/// One queued candidate evaluation.
struct Job {
    batch: Arc<Batch>,
    idx: usize,
    cfg: OverlapConfig,
    oracle: OraclePtr,
}

/// Completion state of one [`SearchExecutor::run_batch`] call.
struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
    /// The submitting search's incumbent-best cutoff as `f64` bits, loaded
    /// per job. The tuner only updates it between batches (single-threaded
    /// merge), so every job of one batch observes the same value — and
    /// batches from concurrently admitted sessions each carry their own.
    cutoff: Arc<AtomicU64>,
}

struct BatchState {
    results: Vec<Option<tilelink::Result<BoundedEval>>>,
    outstanding: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Worker threads spawned so far (0 until the first session arrives).
    spawned: bool,
    sessions_active: usize,
    shutdown: bool,
}

struct Inner {
    queue: Mutex<QueueState>,
    /// Workers park here between jobs.
    work: Condvar,
    /// Sessions park here while the admission bound is saturated.
    admission: Condvar,
}

/// A persistent evaluation worker pool shared across tuning runs.
///
/// Construct one with [`SearchExecutor::new`] (or take the process-wide
/// [`SearchExecutor::global`]) and hand it to
/// [`Tuner::with_executor`](crate::Tuner::with_executor). Workers are spawned
/// lazily on the first admitted session and reused by every later one — the
/// `tune.executor.reuses` counter tracks exactly that.
pub struct SearchExecutor {
    threads: usize,
    max_sessions: usize,
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for SearchExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchExecutor")
            .field("threads", &self.threads)
            .field("max_sessions", &self.max_sessions)
            .finish()
    }
}

impl Default for SearchExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchExecutor {
    /// Creates an executor with one worker per available CPU (capped at 16)
    /// and the default concurrent-session bound. No threads are spawned until
    /// the first search is admitted.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16);
        Self::with_threads(threads)
    }

    /// Creates an executor with exactly `threads` workers (minimum 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            max_sessions: DEFAULT_MAX_SESSIONS,
            inner: Arc::new(Inner {
                queue: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    spawned: false,
                    sessions_active: 0,
                    shutdown: false,
                }),
                work: Condvar::new(),
                admission: Condvar::new(),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Replaces the concurrent-session bound (minimum 1): how many tuning
    /// runs may interleave their batches on the pool at once. Sessions beyond
    /// the bound queue in [`SearchExecutor::session`].
    #[must_use]
    pub fn with_max_sessions(mut self, max_sessions: usize) -> Self {
        self.max_sessions = max_sessions.max(1);
        self
    }

    /// The process-wide executor shared by the serve daemon, the load
    /// generator and `reproduce --tune`.
    pub fn global() -> Arc<SearchExecutor> {
        static GLOBAL: OnceLock<Arc<SearchExecutor>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| Arc::new(SearchExecutor::new()))
            .clone()
    }

    /// Number of worker threads this executor runs once warm.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Admits one tuning run, blocking while `max_sessions` runs are already
    /// active. The returned guard releases the slot on drop.
    ///
    /// The first session spawns the worker pool; every later one reuses it
    /// and increments `tune.executor.reuses`.
    pub fn session(&self) -> ExecutorSession<'_> {
        let mut st = self.inner.queue.lock().expect("executor queue poisoned");
        if st.spawned {
            TUNE_EXECUTOR_REUSES.inc();
        } else {
            st.spawned = true;
            let mut handles = self.handles.lock().expect("executor handles poisoned");
            for _ in 0..self.threads {
                let inner = Arc::clone(&self.inner);
                handles.push(
                    std::thread::Builder::new()
                        .name("tune-executor".to_string())
                        .spawn(move || worker(&inner))
                        .expect("spawn executor worker"),
                );
            }
        }
        while st.sessions_active >= self.max_sessions {
            st = self
                .inner
                .admission
                .wait(st)
                .expect("executor queue poisoned");
        }
        st.sessions_active += 1;
        ExecutorSession { executor: self }
    }

    /// Evaluates `misses` on the shared workers, blocking until every slot is
    /// filled, and returns the results in candidate order. Batches from
    /// concurrently admitted sessions interleave job-by-job (FIFO).
    pub(crate) fn run_batch(
        &self,
        oracle: &dyn CostOracle,
        misses: &[&OverlapConfig],
        cutoff: Arc<AtomicU64>,
    ) -> Vec<Option<tilelink::Result<BoundedEval>>> {
        if misses.is_empty() {
            return Vec::new();
        }
        let batch = Arc::new(Batch {
            state: Mutex::new(BatchState {
                results: vec![None; misses.len()],
                outstanding: misses.len(),
            }),
            done: Condvar::new(),
            cutoff,
        });
        let oracle = OraclePtr::erase(oracle);
        {
            let mut st = self.inner.queue.lock().expect("executor queue poisoned");
            for (idx, &cfg) in misses.iter().enumerate() {
                st.jobs.push_back(Job {
                    batch: Arc::clone(&batch),
                    idx,
                    cfg: *cfg,
                    oracle,
                });
            }
            TUNE_EXECUTOR_QUEUE_DEPTH.set(st.jobs.len() as i64);
        }
        self.inner.work.notify_all();

        // The barrier that makes `OraclePtr` sound: do not return (ending the
        // oracle borrow) until every job of this batch has completed.
        let mut bs = batch.state.lock().expect("executor batch poisoned");
        while bs.outstanding > 0 {
            bs = batch.done.wait(bs).expect("executor batch poisoned");
        }
        std::mem::take(&mut bs.results)
    }
}

impl Drop for SearchExecutor {
    fn drop(&mut self) {
        {
            let mut st = self.inner.queue.lock().expect("executor queue poisoned");
            st.shutdown = true;
        }
        self.inner.work.notify_all();
        for handle in self
            .handles
            .lock()
            .expect("executor handles poisoned")
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

/// Admission guard returned by [`SearchExecutor::session`]; releases the
/// session slot (and wakes one queued session) on drop.
pub struct ExecutorSession<'e> {
    executor: &'e SearchExecutor,
}

impl Drop for ExecutorSession<'_> {
    fn drop(&mut self) {
        let mut st = self
            .executor
            .inner
            .queue
            .lock()
            .expect("executor queue poisoned");
        st.sessions_active -= 1;
        drop(st);
        self.executor.inner.admission.notify_one();
    }
}

fn worker(inner: &Inner) {
    loop {
        let job = {
            let mut st = inner.queue.lock().expect("executor queue poisoned");
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    TUNE_EXECUTOR_QUEUE_DEPTH.set(st.jobs.len() as i64);
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = inner.work.wait(st).expect("executor queue poisoned");
            }
        };
        // SAFETY: see `OraclePtr` — the submitting `run_batch` is still
        // blocked on this batch, so the oracle it borrowed is live.
        let oracle: &dyn CostOracle = unsafe { &*job.oracle.0 };
        // A panicking oracle must not kill a shared worker (the pool would
        // silently shrink for every later search) nor wedge the batch
        // barrier: surface it as a failed candidate instead.
        let cutoff = f64::from_bits(job.batch.cutoff.load(Ordering::Relaxed));
        let result = catch_unwind(AssertUnwindSafe(|| timed_eval(oracle, &job.cfg, cutoff)))
            .unwrap_or_else(|_| {
                Err(TileLinkError::InvalidConfig {
                    reason: "oracle panicked during evaluation".to_string(),
                })
            });
        let mut bs = job.batch.state.lock().expect("executor batch poisoned");
        bs.results[job.idx] = Some(result);
        bs.outstanding -= 1;
        if bs.outstanding == 0 {
            job.batch.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnOracle;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tilelink::OverlapReport;
    use tilelink_sim::ClusterSpec;

    fn no_cutoff() -> Arc<AtomicU64> {
        Arc::new(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    fn counting_oracle(counter: &AtomicUsize) -> impl CostOracle + '_ {
        FnOracle::new("exec", ClusterSpec::h800_node(8), move |cfg| {
            counter.fetch_add(1, Ordering::SeqCst);
            let t = cfg.num_stages as f64;
            Ok(OverlapReport::new(t, t / 2.0, t / 2.0))
        })
    }

    #[test]
    fn batches_fill_every_slot_in_candidate_order() {
        let exec = SearchExecutor::with_threads(4);
        let calls = AtomicUsize::new(0);
        let oracle = counting_oracle(&calls);
        let _session = exec.session();
        let configs: Vec<OverlapConfig> = [2usize, 3, 4]
            .iter()
            .map(|&s| OverlapConfig {
                num_stages: s,
                ..Default::default()
            })
            .collect();
        let refs: Vec<&OverlapConfig> = configs.iter().collect();
        let results = exec.run_batch(&oracle, &refs, no_cutoff());
        assert_eq!(results.len(), 3);
        for (i, r) in results.iter().enumerate() {
            let eval = r.as_ref().expect("slot filled").as_ref().expect("ok");
            let BoundedEval::Report(report) = eval else {
                panic!("infinite cutoff must never abort");
            };
            assert_eq!(report.total_s, configs[i].num_stages as f64);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn second_session_reuses_the_warm_pool() {
        let exec = SearchExecutor::with_threads(2);
        let before = TUNE_EXECUTOR_REUSES.get();
        drop(exec.session());
        drop(exec.session());
        assert!(
            TUNE_EXECUTOR_REUSES.get() > before,
            "the second session must count as a pool reuse"
        );
    }

    #[test]
    fn a_panicking_oracle_fails_the_candidate_not_the_pool() {
        let exec = SearchExecutor::with_threads(2);
        let panicky = FnOracle::new(
            "boom",
            ClusterSpec::h800_node(8),
            |_| -> tilelink::Result<OverlapReport> { panic!("synthetic oracle panic") },
        );
        let _session = exec.session();
        let cfg = OverlapConfig::default();
        let results = exec.run_batch(&panicky, &[&cfg], no_cutoff());
        assert!(matches!(
            results[0],
            Some(Err(TileLinkError::InvalidConfig { .. }))
        ));
        // And the pool still works afterwards.
        let calls = AtomicUsize::new(0);
        let oracle = counting_oracle(&calls);
        let results = exec.run_batch(&oracle, &[&cfg], no_cutoff());
        assert!(results[0].as_ref().unwrap().is_ok());
    }

    #[test]
    fn admission_bound_limits_concurrent_sessions() {
        let exec = Arc::new(SearchExecutor::with_threads(1).with_max_sessions(1));
        let first = exec.session();
        let exec2 = Arc::clone(&exec);
        let waited = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let waited2 = Arc::clone(&waited);
        let handle = std::thread::spawn(move || {
            let _session = exec2.session();
            waited2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert!(
            !waited.load(Ordering::SeqCst),
            "second session must block while the first is active"
        );
        drop(first);
        handle.join().unwrap();
        assert!(waited.load(Ordering::SeqCst));
    }
}
