//! Search strategies and the multi-threaded tuner driver.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use tilelink::{OverlapConfig, OverlapReport, TileLinkError};
use tilelink_probe::metrics::{
    TUNE_CACHE_HITS, TUNE_CACHE_MISSES, TUNE_CACHE_REVISION_INVALIDATIONS, TUNE_CANDIDATES_CACHED,
    TUNE_CANDIDATES_FAILED_SIM, TUNE_CANDIDATES_PRUNED_BOUND, TUNE_CANDIDATES_PRUNED_CONSTRAINT,
    TUNE_CANDIDATES_PRUNED_VALIDATE, TUNE_CANDIDATES_SIMULATED, TUNE_COMPILE_FULL_REBUILDS,
    TUNE_COMPILE_PATCHED, TUNE_EVAL_US, TUNE_SPACE_SIZE,
};

use crate::executor::SearchExecutor;
use crate::oracle::{cluster_key, BoundedEval};
use crate::space::{PruneCounts, SearchSpace};
use crate::{CostOracle, Result, TuneCache, TuneError};

/// Candidates per branch-and-bound chunk: the incumbent cutoff is refreshed
/// between chunks (in the single-threaded merge) and frozen within one, so
/// the prune/abort decisions are a pure function of candidate order —
/// independent of thread count or scheduling. 32 keeps every worker of the
/// largest pool (16 threads) busy while still tightening the cutoff at a
/// useful cadence on big exhaustive batches.
const PRUNE_CHUNK: usize = 32;

/// Chunk width used while the incumbent is still infinite (nothing ranked or
/// cached yet): just enough parallelism to price a handful of candidates and
/// put a real cutoff in place before the wide chunks stream through. See
/// [`Tuner::evaluate_batch`].
const PRUNE_SEED_CHUNK: usize = 4;

/// How the tuner explores the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Evaluate every valid candidate of the space (grid search).
    Exhaustive,
    /// Coordinate-descent beam search: sweep one axis at a time, keeping the
    /// `width` best configurations, for at most `sweeps` rounds (stopping
    /// early when a full sweep yields no improvement). Visits a tiny fraction
    /// of large spaces and, because the seed configurations stay in the pool,
    /// never returns a result worse than the best seed.
    Beam {
        /// Number of configurations kept between axis sweeps.
        width: usize,
        /// Maximum number of full passes over the axes.
        sweeps: usize,
    },
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::Beam {
            width: 4,
            sweeps: 3,
        }
    }
}

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The configuration.
    pub config: OverlapConfig,
    /// Its simulated timing.
    pub report: OverlapReport,
    /// Whether the timing came from the persistent cache (no oracle call).
    pub from_cache: bool,
}

/// Why candidates dropped out of a tuning run, by pruning stage.
///
/// The four counters partition the configurations that were considered but
/// never ranked: `validate_rejected` and `constraint_pruned` never reached the
/// oracle (free, counted during enumeration — see
/// [`SearchSpace::candidates_counted`]), `bound_pruned` candidates were
/// disposed of by branch-and-bound (an admissible lower bound at or above the
/// incumbent, or a bounded simulation that aborted past it), and
/// `simulation_error` candidates cost a full compile or simulation attempt
/// before failing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FailedBreakdown {
    /// Rejected by [`OverlapConfig::validate`] (impossible on the GPU).
    pub validate_rejected: usize,
    /// Rejected by a cross-axis space constraint or the oracle's
    /// [`CostOracle::is_supported`] predicate.
    pub constraint_pruned: usize,
    /// Disposed of by branch-and-bound: skipped outright because the
    /// admissible lower bound reached the incumbent, or abort-shortened by
    /// the incumbent-bounded simulation. These candidates provably cannot
    /// win, so dropping them never changes the ranking's top.
    pub bound_pruned: usize,
    /// Reached the oracle but errored while compiling or simulating.
    pub simulation_error: usize,
}

impl FailedBreakdown {
    /// Total candidates lost across all four stages.
    pub fn total(&self) -> usize {
        self.validate_rejected + self.constraint_pruned + self.bound_pruned + self.simulation_error
    }
}

impl std::fmt::Display for FailedBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} validate-rejected, {} constraint-pruned, {} bound-pruned, {} simulation errors",
            self.validate_rejected,
            self.constraint_pruned,
            self.bound_pruned,
            self.simulation_error
        )
    }
}

/// Progress of one beam-search round (one full pass over the axes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundProgress {
    /// Round number, starting at 1 (round 0 is the seed evaluation).
    pub round: usize,
    /// Best simulated makespan after the round, in seconds.
    pub best_total_s: f64,
    /// Cumulative oracle evaluations after the round.
    pub evaluations: usize,
    /// Cumulative cache hits after the round.
    pub cache_hits: usize,
}

/// The outcome of one tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// The best configuration found.
    pub best: Candidate,
    /// Every evaluated candidate, fastest first (ties broken by first
    /// evaluation order, so reports are deterministic).
    pub ranked: Vec<Candidate>,
    /// Oracle calls performed (simulator evaluations).
    pub evaluations: usize,
    /// Lookups served by the cache instead of the oracle.
    pub cache_hits: usize,
    /// Candidates lost per pruning stage (never ranked).
    pub failed: FailedBreakdown,
    /// How many of [`FailedBreakdown::bound_pruned`] were abort-shortened
    /// simulations ([`crate::BoundedEval::Exceeded`]) rather than skipped
    /// outright on their lower bound; see [`TuneReport::pruned_bound`] for
    /// the complementary count.
    pub bounded_aborts: usize,
    /// Per-round progress of a beam search (empty for [`Strategy::Exhaustive`]).
    pub rounds: Vec<RoundProgress>,
    /// Candidate compiles served by patching a cached lowered program during
    /// this run (delta of `tune.compile.patched`; includes any concurrent
    /// tuning on other threads of this process).
    pub compile_patched: u64,
    /// Candidate compiles that rebuilt the program from the frontend during
    /// this run (delta of `tune.compile.full_rebuilds`).
    pub compile_full_rebuilds: u64,
}

impl TuneReport {
    /// Best simulated makespan, in milliseconds.
    pub fn best_ms(&self) -> f64 {
        self.best.report.total_ms()
    }

    /// Candidates skipped without compiling or simulating because their
    /// admissible lower bound already met the incumbent (the remainder of
    /// [`FailedBreakdown::bound_pruned`] after [`TuneReport::bounded_aborts`]).
    pub fn pruned_bound(&self) -> usize {
        self.failed.bound_pruned - self.bounded_aborts
    }

    /// Fraction of candidate compiles served by the incremental patch path
    /// rather than a full frontend rebuild (0.0 when nothing compiled).
    pub fn compile_patch_rate(&self) -> f64 {
        let total = self.compile_patched + self.compile_full_rebuilds;
        if total == 0 {
            0.0
        } else {
            self.compile_patched as f64 / total as f64
        }
    }

    /// A short human-readable table of the `n` best candidates.
    pub fn summary(&self, n: usize) -> String {
        let mut out = format!(
            "{} candidates evaluated ({} simulated, {} cached; {})\n",
            self.ranked.len(),
            self.evaluations,
            self.cache_hits,
            self.failed
        );
        out.push_str(&format!(
            "compiles: {} patched, {} full rebuilds ({:.0}% patch rate)\n",
            self.compile_patched,
            self.compile_full_rebuilds,
            self.compile_patch_rate() * 100.0
        ));
        for (i, c) in self.ranked.iter().take(n).enumerate() {
            out.push_str(&format!(
                "  #{:<2} {:>9.4} ms  overlap {:>5.1}%  {}\n",
                i + 1,
                c.report.total_ms(),
                c.report.overlap_ratio() * 100.0,
                c.config.cache_key()
            ));
        }
        out
    }
}

/// Drives a [`Strategy`] over a [`SearchSpace`] against a [`CostOracle`].
///
/// Candidate evaluations run concurrently on `threads` OS threads (the
/// simulator is pure, so replicas are independent); results are merged in
/// candidate order, so the search is deterministic regardless of thread
/// scheduling.
#[derive(Debug)]
pub struct Tuner {
    strategy: Strategy,
    threads: usize,
    verbose: bool,
    cache: Mutex<TuneCache>,
    executor: Option<Arc<SearchExecutor>>,
    sweep_stale: bool,
    pruning: bool,
}

struct BatchStats {
    evaluations: usize,
    cache_hits: usize,
    failed: usize,
    /// Candidates skipped on their admissible lower bound (no oracle call).
    bound_pruned: usize,
    /// Oracle evaluations that abort-shortened past the incumbent cutoff.
    bounded_aborts: usize,
    last_error: Option<TileLinkError>,
}

/// The branch-and-bound incumbent: the `width` best objective values ranked
/// so far, publishing the `width`-th best as the shared prune/abort cutoff.
///
/// Exhaustive search prunes against the single best (`width == 1`); beam
/// search must keep its top-`width` frontier bit-identical to the unbounded
/// run, so it prunes against the `width`-th best instead — a candidate at or
/// above that value is provably outranked by `width` earlier candidates and
/// can never enter the beam (ties lose to the earlier candidate under the
/// stable ranking sort), let alone win.
///
/// Only the single-threaded merge pass mutates the incumbent; worker threads
/// share the cutoff read-only through `bits` (an `f64`-bits `AtomicU64`).
/// Combined with the fixed [`PRUNE_CHUNK`] cadence this keeps every prune and
/// abort decision deterministic regardless of thread count.
struct Incumbent {
    /// Cutoff as `f64` bits, read by pool / executor workers.
    bits: Arc<AtomicU64>,
    /// Ascending best objective values, at most `width` of them.
    tops: Vec<f64>,
    width: usize,
    enabled: bool,
}

impl Incumbent {
    fn new(width: usize, enabled: bool) -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(f64::INFINITY.to_bits())),
            tops: Vec::with_capacity(width),
            width: width.max(1),
            enabled,
        }
    }

    /// The current prune/abort cutoff (`f64::INFINITY` until `width`
    /// candidates have been observed, or always when pruning is disabled).
    fn cutoff(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Folds one ranked candidate's objective value into the incumbent. Must
    /// be called exactly once per ranked candidate (cache hits included).
    fn observe(&mut self, total: f64) {
        if !self.enabled || !total.is_finite() {
            return;
        }
        if self.tops.len() < self.width || total < self.tops[self.width - 1] {
            let idx = self.tops.partition_point(|&t| t <= total);
            self.tops.insert(idx, total);
            self.tops.truncate(self.width);
            if self.tops.len() == self.width {
                self.bits
                    .store(self.tops[self.width - 1].to_bits(), Ordering::Relaxed);
            }
        }
    }
}

/// Shared state of the per-tune evaluation pool.
///
/// Workers are spawned once per [`Tuner::tune`] call and stay alive across
/// every beam batch: per-thread compile/graph/simulate scratch stays warm, and
/// small frontier batches stop paying an OS-thread spawn per batch (the
/// pre-pool behaviour, which dominated quick-search wall time).
struct EvalPool {
    state: Mutex<PoolState>,
    /// Workers park here between batches.
    work: Condvar,
    /// The batch submitter parks here until `outstanding` drains.
    done: Condvar,
    /// Incumbent cutoff as `f64` bits, loaded per job. The merge thread only
    /// updates it between batches, so every job of one batch sees one value.
    cutoff: Arc<AtomicU64>,
}

#[derive(Default)]
struct PoolState {
    /// Pending (result slot, config) jobs of the current batch.
    jobs: Vec<(usize, OverlapConfig)>,
    results: Vec<Option<tilelink::Result<BoundedEval>>>,
    outstanding: usize,
    shutdown: bool,
}

impl EvalPool {
    fn new(cutoff: Arc<AtomicU64>) -> Self {
        Self {
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            cutoff,
        }
    }

    /// Evaluates `misses` on the pool's workers (each worker holds the oracle
    /// from its spawn closure); blocks until every slot is filled and returns
    /// the results in candidate order.
    fn run(&self, misses: &[&OverlapConfig]) -> Vec<Option<tilelink::Result<BoundedEval>>> {
        {
            let mut st = self.state.lock().expect("eval pool poisoned");
            st.results.clear();
            st.results.resize_with(misses.len(), || None);
            // Reversed so `pop` hands jobs out in candidate order.
            st.jobs.clear();
            st.jobs
                .extend(misses.iter().enumerate().map(|(i, &cfg)| (i, *cfg)).rev());
            st.outstanding = misses.len();
        }
        self.work.notify_all();
        let mut st = self.state.lock().expect("eval pool poisoned");
        while st.outstanding > 0 {
            st = self.done.wait(st).expect("eval pool poisoned");
        }
        std::mem::take(&mut st.results)
    }

    fn shutdown(&self) {
        self.state.lock().expect("eval pool poisoned").shutdown = true;
        self.work.notify_all();
    }

    fn worker(&self, oracle: &dyn CostOracle) {
        loop {
            let (idx, cfg) = {
                let mut st = self.state.lock().expect("eval pool poisoned");
                loop {
                    if let Some(job) = st.jobs.pop() {
                        break job;
                    }
                    if st.shutdown {
                        return;
                    }
                    st = self.work.wait(st).expect("eval pool poisoned");
                }
            };
            let cutoff = f64::from_bits(self.cutoff.load(Ordering::Relaxed));
            let r = timed_eval(oracle, &cfg, cutoff);
            let mut st = self.state.lock().expect("eval pool poisoned");
            st.results[idx] = Some(r);
            st.outstanding -= 1;
            if st.outstanding == 0 {
                self.done.notify_all();
            }
        }
    }
}

/// How a batch of cache misses reaches the oracle: the per-run scoped pool,
/// or a shared [`SearchExecutor`] whose workers outlive this run. Either way
/// results land in a slot per candidate and are merged in candidate order, so
/// the choice is unobservable in the ranking.
enum Eval<'a> {
    /// Scoped per-run pool; the `usize` is the run's thread count.
    Pool(&'a EvalPool, usize),
    /// Process-shared warm pool; carries the run's incumbent-cutoff bits for
    /// the executor's workers to read per job.
    Shared(&'a SearchExecutor, Arc<AtomicU64>),
}

impl Eval<'_> {
    fn parallelism(&self) -> usize {
        match self {
            Eval::Pool(_, threads) => *threads,
            Eval::Shared(exec, _) => exec.threads(),
        }
    }

    fn run(
        &self,
        oracle: &dyn CostOracle,
        misses: &[&OverlapConfig],
    ) -> Vec<Option<tilelink::Result<BoundedEval>>> {
        match self {
            Eval::Pool(pool, _) => pool.run(misses),
            Eval::Shared(exec, cutoff) => exec.run_batch(oracle, misses, Arc::clone(cutoff)),
        }
    }
}

/// One timed, profiled oracle call with the incumbent cutoff. The span lands
/// on whichever worker thread ran it (the profiler keeps per-thread stacks).
pub(crate) fn timed_eval(
    oracle: &dyn CostOracle,
    cfg: &OverlapConfig,
    cutoff: f64,
) -> tilelink::Result<BoundedEval> {
    let _span = tilelink_probe::span("tune.candidate");
    let t0 = Instant::now();
    let r = oracle.evaluate_bounded(cfg, cutoff);
    TUNE_EVAL_US.record(t0.elapsed().as_micros() as u64);
    r
}

impl Tuner {
    /// Creates a tuner with an in-memory cache and one thread per available
    /// CPU (capped at 16).
    pub fn new(strategy: Strategy) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16);
        Self {
            strategy,
            threads,
            verbose: false,
            cache: Mutex::new(TuneCache::in_memory()),
            executor: None,
            sweep_stale: false,
            pruning: true,
        }
    }

    /// Enables or disables branch-and-bound pruning (on by default).
    ///
    /// Pruning is admissible — winners are bit-identical either way — so the
    /// switch exists for A/B measurement and for the admissibility test
    /// suite, not correctness.
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.pruning = pruning;
        self
    }

    /// Replaces the evaluation thread count (minimum 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Evaluates candidates on a shared [`SearchExecutor`] instead of
    /// spawning a private scoped pool for this run. The executor's thread
    /// count governs parallelism; results are bit-identical either way (slot
    /// per candidate, merged in candidate order).
    pub fn with_executor(mut self, executor: Arc<SearchExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Physically removes stale same-scope cache entries (other cost-model
    /// revision or objective) at the start of the run instead of merely
    /// counting them, and drops them from the backing file on the next flush.
    ///
    /// Off by default: a CLI alternating between cost models benefits from
    /// keeping both revisions' entries. The long-running serve daemon turns
    /// this on so its write-behind cache file and memory stay bounded.
    pub fn with_stale_sweep(mut self, sweep: bool) -> Self {
        self.sweep_stale = sweep;
        self
    }

    /// Prints per-beam-round progress (round, best-so-far, evaluations) to
    /// stderr while the search runs. Off by default; the same numbers are
    /// always available afterwards in [`TuneReport::rounds`].
    pub fn with_verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// Replaces the cache (use [`TuneCache::open`] for a persistent one).
    pub fn with_cache(mut self, cache: TuneCache) -> Self {
        self.cache = Mutex::new(cache);
        self
    }

    /// The configured strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Runs the search and returns the ranked outcome.
    ///
    /// # Errors
    ///
    /// Returns [`TuneError::EmptySpace`] if pruning leaves no candidate,
    /// [`TuneError::AllCandidatesFailed`] if every candidate errors in the
    /// oracle, and [`TuneError::CacheIo`] if the persistent cache cannot be
    /// written.
    pub fn tune(&self, oracle: &dyn CostOracle, space: &SearchSpace) -> Result<TuneReport> {
        // The workload / cluster / revision / objective parts of the cache
        // key are fixed for this whole run, and the oracle accessors allocate
        // a String per call: memoize the joined prefix once instead of
        // re-assembling it for every candidate probe.
        let prefix = TuneCache::key_prefix(
            &oracle.workload_key(),
            &cluster_key(oracle.cluster()),
            &oracle.cost_revision(),
            &oracle.objective().key(),
        );
        TUNE_SPACE_SIZE.set(space.len_unpruned() as i64);
        {
            // Entries for this workload+cluster recorded under another cost
            // revision or objective will self-invalidate (miss) this run;
            // surface how many in the metrics registry. With the stale sweep
            // enabled they are removed outright (memory and, on the next
            // flush, the backing file) instead of counted in place.
            let scope = format!(
                "{}|{}|",
                oracle.workload_key(),
                cluster_key(oracle.cluster())
            );
            let mut cache = self.cache.lock().expect("tune cache lock poisoned");
            let stale = if self.sweep_stale {
                cache.sweep_stale(&scope, &prefix)
            } else {
                cache.count_stale(&scope, &prefix)
            };
            TUNE_CACHE_REVISION_INVALIDATIONS.add(stale as u64);
        }
        let mut stats = BatchStats {
            evaluations: 0,
            cache_hits: 0,
            failed: 0,
            bound_pruned: 0,
            bounded_aborts: 0,
            last_error: None,
        };
        let patched_start = TUNE_COMPILE_PATCHED.get();
        let rebuilds_start = TUNE_COMPILE_FULL_REBUILDS.get();
        let mut pruned = PruneCounts::default();
        let mut rounds: Vec<RoundProgress> = Vec::new();

        // (config, report, from_cache) in first-evaluation order.
        let mut evaluated: Vec<Candidate> = Vec::new();
        let mut seen: HashMap<OverlapConfig, usize> = HashMap::new();
        // Configs disposed of by branch-and-bound (lower-bound skip or
        // bounded-simulation abort): provably unable to enter the top of the
        // ranking, never re-dispatched, counted once.
        let mut dominated: HashSet<OverlapConfig> = HashSet::new();
        // Exhaustive search only needs the winner intact, so it prunes
        // against the global best; beam search keeps its `width`-wide
        // frontier bit-identical by pruning against the width-th best.
        let prune_width = match self.strategy {
            Strategy::Exhaustive => 1,
            Strategy::Beam { width, .. } => width.max(1),
        };
        let mut incumbent = Incumbent::new(prune_width, self.pruning);
        let cutoff_bits = Arc::clone(&incumbent.bits);

        let mut run_strategy = |eval: &Eval| -> std::result::Result<(), TuneError> {
            {
                match self.strategy {
                    Strategy::Exhaustive => {
                        let (candidates, counts) = space.candidates_counted(oracle);
                        pruned = counts;
                        if candidates.is_empty() {
                            return Err(TuneError::EmptySpace {
                                unpruned: space.len_unpruned(),
                            });
                        }
                        self.evaluate_batch(
                            oracle,
                            eval,
                            &prefix,
                            &candidates,
                            &mut stats,
                            &mut evaluated,
                            &mut seen,
                            &mut incumbent,
                            &mut dominated,
                        );
                    }
                    Strategy::Beam { width, sweeps } => {
                        let width = width.max(1);
                        let sm_count = oracle.cluster().gpu.sm_count;
                        // Per-stage rejection tallies for every config the sweep
                        // considers (Cells because `valid` is shared immutably).
                        let validate_rejected = Cell::new(0usize);
                        let constraint_pruned = Cell::new(0usize);
                        let valid = |cfg: &OverlapConfig| {
                            if cfg.validate(sm_count).is_err() {
                                validate_rejected.set(validate_rejected.get() + 1);
                                return false;
                            }
                            if !space.allows(cfg) || !oracle.is_supported(cfg) {
                                constraint_pruned.set(constraint_pruned.get() + 1);
                                return false;
                            }
                            true
                        };
                        // Seeds: the library default and the space's own first-corner
                        // config. Keeping them in the pool guarantees the final result
                        // is never worse than either seed.
                        let mut seeds: Vec<OverlapConfig> = Vec::new();
                        for seed in [OverlapConfig::default(), space.seed()] {
                            if valid(&seed) && !seeds.contains(&seed) {
                                seeds.push(seed);
                            }
                        }
                        if seeds.is_empty() {
                            // Neither seed is valid for this workload: fall back to the
                            // pruned enumeration for a starting pool.
                            seeds = space.candidates(oracle);
                            seeds.truncate(width);
                        }
                        if seeds.is_empty() {
                            return Err(TuneError::EmptySpace {
                                unpruned: space.len_unpruned(),
                            });
                        }
                        self.evaluate_batch(
                            oracle,
                            eval,
                            &prefix,
                            &seeds,
                            &mut stats,
                            &mut evaluated,
                            &mut seen,
                            &mut incumbent,
                            &mut dominated,
                        );
                        // Both seeds may pass validation yet fail in the oracle (e.g.
                        // a compile error for an unsupported axis pair). Walk the
                        // pruned enumeration in chunks until something evaluates, so
                        // the beam has a starting pool whenever Exhaustive would have
                        // found one.
                        if evaluated.is_empty() {
                            for chunk in space.candidates(oracle).chunks(16) {
                                self.evaluate_batch(
                                    oracle,
                                    eval,
                                    &prefix,
                                    chunk,
                                    &mut stats,
                                    &mut evaluated,
                                    &mut seen,
                                    &mut incumbent,
                                    &mut dominated,
                                );
                                if !evaluated.is_empty() {
                                    break;
                                }
                            }
                        }
                        let mut beam = Self::top(&evaluated, width);
                        let mut best = beam
                            .first()
                            .and_then(|c| seen.get(c))
                            .map(|&i| evaluated[i].report.total_s);
                        for round in 1..=sweeps.max(1) {
                            let _round_span = tilelink_probe::span("tune.beam_round");
                            let mut improved = false;
                            for axis in 0..SearchSpace::NUM_AXES {
                                let mut frontier: Vec<OverlapConfig> = Vec::new();
                                for base in &beam {
                                    for cfg in space.axis_variants(axis, base) {
                                        if valid(&cfg)
                                            && !seen.contains_key(&cfg)
                                            && !frontier.contains(&cfg)
                                        {
                                            frontier.push(cfg);
                                        }
                                    }
                                }
                                self.evaluate_batch(
                                    oracle,
                                    eval,
                                    &prefix,
                                    &frontier,
                                    &mut stats,
                                    &mut evaluated,
                                    &mut seen,
                                    &mut incumbent,
                                    &mut dominated,
                                );
                                beam = Self::top(&evaluated, width);
                                let new_best = beam
                                    .first()
                                    .and_then(|c| seen.get(c))
                                    .map(|&i| evaluated[i].report.total_s);
                                if new_best < best || best.is_none() {
                                    best = new_best;
                                    improved = true;
                                }
                            }
                            let progress = RoundProgress {
                                round,
                                best_total_s: best.unwrap_or(f64::INFINITY),
                                evaluations: stats.evaluations,
                                cache_hits: stats.cache_hits,
                            };
                            if self.verbose {
                                let patched =
                                    TUNE_COMPILE_PATCHED.get().saturating_sub(patched_start);
                                let rebuilds = TUNE_COMPILE_FULL_REBUILDS
                                    .get()
                                    .saturating_sub(rebuilds_start);
                                let compiles = (patched + rebuilds).max(1);
                                eprintln!(
                            "[tune] round {}: best {:.4} ms | {} full sims, {} cache hits, {} failed, {} bound-pruned, {} aborted, {:.0}% patched compiles",
                            progress.round,
                            progress.best_total_s * 1e3,
                            progress.evaluations,
                            progress.cache_hits,
                            stats.failed,
                            stats.bound_pruned,
                            stats.bounded_aborts,
                            patched as f64 / compiles as f64 * 100.0
                        );
                            }
                            rounds.push(progress);
                            if !improved {
                                break;
                            }
                        }
                        pruned.validate_rejected = validate_rejected.get();
                        pruned.constraint_pruned = constraint_pruned.get();
                    }
                }
                Ok(())
            }
        };
        let strategy_result: std::result::Result<(), TuneError> = match &self.executor {
            Some(exec) => {
                // Shared warm pool: admission is bounded, so concurrent runs
                // interleave their batches instead of stacking private pools.
                let _session = exec.session();
                run_strategy(&Eval::Shared(exec, cutoff_bits))
            }
            None => {
                // One scoped worker pool for the whole search: threads (and
                // their warm per-thread scratch) survive across beam batches.
                let pool = EvalPool::new(cutoff_bits);
                std::thread::scope(|scope| {
                    for _ in 0..self.threads.max(1) {
                        scope.spawn(|| pool.worker(oracle));
                    }
                    let out = run_strategy(&Eval::Pool(&pool, self.threads));
                    pool.shutdown();
                    out
                })
            }
        };
        strategy_result?;

        self.cache
            .lock()
            .expect("tune cache lock poisoned")
            .flush()?;

        if evaluated.is_empty() {
            return Err(TuneError::AllCandidatesFailed {
                attempted: stats.evaluations + stats.failed,
                last: stats.last_error.unwrap_or(TileLinkError::InvalidConfig {
                    reason: "no candidate could be evaluated".to_string(),
                }),
            });
        }

        TUNE_CANDIDATES_PRUNED_VALIDATE.add(pruned.validate_rejected as u64);
        TUNE_CANDIDATES_PRUNED_CONSTRAINT.add(pruned.constraint_pruned as u64);

        let mut ranked = evaluated;
        ranked.sort_by(|a, b| a.report.total_s.total_cmp(&b.report.total_s));
        Ok(TuneReport {
            best: ranked[0].clone(),
            ranked,
            evaluations: stats.evaluations,
            cache_hits: stats.cache_hits,
            failed: FailedBreakdown {
                validate_rejected: pruned.validate_rejected,
                constraint_pruned: pruned.constraint_pruned,
                bound_pruned: stats.bound_pruned + stats.bounded_aborts,
                simulation_error: stats.failed,
            },
            bounded_aborts: stats.bounded_aborts,
            rounds,
            compile_patched: TUNE_COMPILE_PATCHED.get().saturating_sub(patched_start),
            compile_full_rebuilds: TUNE_COMPILE_FULL_REBUILDS
                .get()
                .saturating_sub(rebuilds_start),
        })
    }

    /// The `width` fastest configs in `evaluated` (stable order).
    fn top(evaluated: &[Candidate], width: usize) -> Vec<OverlapConfig> {
        let mut sorted: Vec<&Candidate> = evaluated.iter().collect();
        sorted.sort_by(|a, b| a.report.total_s.total_cmp(&b.report.total_s));
        sorted.into_iter().take(width).map(|c| c.config).collect()
    }

    /// Evaluates `configs` (cache first, then the branch-and-bound prune,
    /// then the oracle in parallel), appending successes to `evaluated` in
    /// candidate order. `prefix` is the memoized [`TuneCache::key_prefix`] of
    /// this tuning run.
    ///
    /// The batch is processed in [`PRUNE_CHUNK`]-sized chunks so the
    /// incumbent tightens as results merge: workers see one frozen cutoff
    /// per chunk, updated only here on the driver thread.
    ///
    /// While no incumbent exists yet (the cutoff is still infinite) the
    /// chunks ramp up from [`PRUNE_SEED_CHUNK`]: a large opening chunk would
    /// full-simulate every candidate in it with nothing to prune against,
    /// so the batch starts small to put a cutoff in place, then widens to
    /// the steady-state chunk for parallel throughput. Candidate order is
    /// unchanged — chunk boundaries only decide how often the incumbent
    /// refreshes — so rankings (first-evaluation order) stay deterministic
    /// and, because pruning is admissible, identical to the unramped ones.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_batch(
        &self,
        oracle: &dyn CostOracle,
        eval: &Eval,
        prefix: &str,
        configs: &[OverlapConfig],
        stats: &mut BatchStats,
        evaluated: &mut Vec<Candidate>,
        seen: &mut HashMap<OverlapConfig, usize>,
        incumbent: &mut Incumbent,
        dominated: &mut HashSet<OverlapConfig>,
    ) {
        let mut rest = configs;
        while !rest.is_empty() {
            let width = if incumbent.enabled && !incumbent.cutoff().is_finite() {
                PRUNE_SEED_CHUNK
            } else {
                PRUNE_CHUNK
            };
            let (chunk, tail) = rest.split_at(width.min(rest.len()));
            rest = tail;
            self.evaluate_chunk(
                oracle, eval, prefix, chunk, stats, evaluated, seen, incumbent, dominated,
            );
        }
    }

    /// One [`PRUNE_CHUNK`] of [`Tuner::evaluate_batch`].
    #[allow(clippy::too_many_arguments)]
    fn evaluate_chunk(
        &self,
        oracle: &dyn CostOracle,
        eval: &Eval,
        prefix: &str,
        configs: &[OverlapConfig],
        stats: &mut BatchStats,
        evaluated: &mut Vec<Candidate>,
        seen: &mut HashMap<OverlapConfig, usize>,
        incumbent: &mut Incumbent,
        dominated: &mut HashSet<OverlapConfig>,
    ) {
        // Cache pass (also dedups configs revisited across beam sweeps, and
        // configs branch-and-bound already disposed of). Cached totals fold
        // into the incumbent right away so they sharpen this very chunk's
        // lower-bound pruning.
        let mut misses: Vec<&OverlapConfig> = Vec::new();
        let mut hit_or_miss: Vec<Option<OverlapReport>> = Vec::with_capacity(configs.len());
        {
            let _span = tilelink_probe::span("tune.cache_lookup");
            let cache = self.cache.lock().expect("tune cache lock poisoned");
            for cfg in configs {
                if seen.contains_key(cfg) || dominated.contains(cfg) {
                    hit_or_miss.push(None); // already ranked or disposed of
                    continue;
                }
                let key = TuneCache::key_in(prefix, cfg);
                match cache.get(&key) {
                    Some(report) => {
                        stats.cache_hits += 1;
                        TUNE_CACHE_HITS.inc();
                        incumbent.observe(report.total_s);
                        hit_or_miss.push(Some(report));
                    }
                    None => {
                        TUNE_CACHE_MISSES.inc();
                        misses.push(cfg);
                        hit_or_miss.push(None);
                    }
                }
            }
        }

        // Bound pass: skip misses whose admissible lower bound already
        // reaches the incumbent — they provably cannot enter the top of the
        // ranking (on a tie the earlier incumbent wins the stable sort), so
        // neither compile nor simulation is owed. The cutoff is frozen for
        // the rest of this chunk.
        let cutoff = incumbent.cutoff();
        if incumbent.enabled && cutoff.is_finite() {
            misses.retain(|cfg| match oracle.lower_bound(cfg) {
                Some(lb) if lb >= cutoff => {
                    stats.bound_pruned += 1;
                    TUNE_CANDIDATES_PRUNED_BOUND.inc();
                    dominated.insert(**cfg);
                    false
                }
                _ => true,
            });
        }

        // Oracle pass: fan the misses out over worker threads. Results land in
        // a slot per candidate, so completion order never affects ranking.
        let mut results: Vec<Option<tilelink::Result<BoundedEval>>> = vec![None; misses.len()];
        if !misses.is_empty() {
            if eval.parallelism().min(misses.len()) <= 1 {
                // Evaluate on this thread (its scratch is warm too) rather
                // than paying a pool round-trip for a single candidate.
                for (slot, cfg) in results.iter_mut().zip(&misses) {
                    *slot = Some(timed_eval(oracle, cfg, cutoff));
                }
            } else {
                results = eval.run(oracle, &misses);
            }
        }

        // Merge, in candidate order.
        let mut cache = self.cache.lock().expect("tune cache lock poisoned");
        let mut miss_idx = 0usize;
        for (cfg, cached) in configs.iter().zip(hit_or_miss) {
            if seen.contains_key(cfg) || dominated.contains(cfg) {
                continue;
            }
            let (report, from_cache) = match cached {
                Some(report) => {
                    TUNE_CANDIDATES_CACHED.inc();
                    (report, true)
                }
                None => {
                    let result = results[miss_idx].take().expect("evaluated slot");
                    miss_idx += 1;
                    match result {
                        Ok(BoundedEval::Report(report)) => {
                            stats.evaluations += 1;
                            TUNE_CANDIDATES_SIMULATED.inc();
                            incumbent.observe(report.total_s);
                            let key = TuneCache::key_in(prefix, cfg);
                            cache.insert(key, report);
                            (report, false)
                        }
                        Ok(BoundedEval::Exceeded(_)) => {
                            // The objective value provably exceeds the
                            // incumbent: not ranked, not cached (the exact
                            // value is unknown), never re-dispatched.
                            stats.bounded_aborts += 1;
                            dominated.insert(*cfg);
                            continue;
                        }
                        Err(e) => {
                            stats.failed += 1;
                            TUNE_CANDIDATES_FAILED_SIM.inc();
                            stats.last_error = Some(e);
                            continue;
                        }
                    }
                }
            };
            seen.insert(*cfg, evaluated.len());
            evaluated.push(Candidate {
                config: *cfg,
                report,
                from_cache,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnOracle;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tilelink::{CommMapping, TileShape};
    use tilelink_sim::ClusterSpec;

    /// Analytic cost: favours big compute tiles, ring order, hybrid mapping
    /// with few SMs. Counts oracle calls.
    fn analytic(counter: &AtomicUsize) -> impl CostOracle + '_ {
        FnOracle::new("analytic", ClusterSpec::h800_node(8), move |cfg| {
            counter.fetch_add(1, Ordering::SeqCst);
            let tile = cfg.compute_tile.numel() as f64;
            let order = match cfg.order {
                tilelink::TileOrder::Ring => 0.9,
                tilelink::TileOrder::AllToAll => 1.0,
            };
            let sms = cfg.comm_mapping.comm_sms() as f64;
            let t = (1e9 / tile) * order + sms * 1e-3 + cfg.num_stages as f64 * 1e-4;
            Ok(OverlapReport::new(t, t / 3.0, 2.0 * t / 3.0))
        })
    }

    fn space() -> SearchSpace {
        SearchSpace::standard()
            .with_comm_tiles([TileShape::new(128, 128)])
            .with_channels([4])
    }

    /// The analytic cost formula as a standalone function, so pruning tests
    /// can reuse it as an exact (hence admissible) lower bound.
    fn toy_cost(cfg: &OverlapConfig) -> f64 {
        let tile = cfg.compute_tile.numel() as f64;
        let order = match cfg.order {
            tilelink::TileOrder::Ring => 0.9,
            tilelink::TileOrder::AllToAll => 1.0,
        };
        let sms = cfg.comm_mapping.comm_sms() as f64;
        (1e9 / tile) * order + sms * 1e-3 + cfg.num_stages as f64 * 1e-4
    }

    /// Call-counting oracle whose lower bound is the exact cost.
    fn lb_oracle(counter: &AtomicUsize) -> impl CostOracle + '_ {
        FnOracle::new("lb", ClusterSpec::h800_node(8), move |cfg| {
            counter.fetch_add(1, Ordering::SeqCst);
            let t = toy_cost(cfg);
            Ok(OverlapReport::new(t, t / 3.0, 2.0 * t / 3.0))
        })
        .with_lower_bound(|cfg| Some(toy_cost(cfg)))
    }

    /// Oracle whose `evaluate_bounded` aborts as soon as the cost exceeds the
    /// cutoff, mirroring `Engine::makespan_bounded`.
    struct AbortingOracle {
        cluster: ClusterSpec,
        aborts: AtomicUsize,
    }

    impl CostOracle for AbortingOracle {
        fn workload_key(&self) -> String {
            "abort".to_string()
        }

        fn cluster(&self) -> &ClusterSpec {
            &self.cluster
        }

        fn evaluate(&self, cfg: &OverlapConfig) -> tilelink::Result<OverlapReport> {
            let t = toy_cost(cfg);
            Ok(OverlapReport::new(t, t / 3.0, 2.0 * t / 3.0))
        }

        fn evaluate_bounded(
            &self,
            cfg: &OverlapConfig,
            cutoff: f64,
        ) -> tilelink::Result<BoundedEval> {
            let t = toy_cost(cfg);
            if t > cutoff {
                self.aborts.fetch_add(1, Ordering::SeqCst);
                return Ok(BoundedEval::Exceeded(t));
            }
            self.evaluate(cfg).map(BoundedEval::Report)
        }
    }

    #[test]
    fn lower_bound_pruning_skips_candidates_and_keeps_the_winner() {
        let space = space();
        let pruned_calls = AtomicUsize::new(0);
        let pruned = Tuner::new(Strategy::Exhaustive)
            .tune(&lb_oracle(&pruned_calls), &space)
            .unwrap();
        let full_calls = AtomicUsize::new(0);
        let full = Tuner::new(Strategy::Exhaustive)
            .with_pruning(false)
            .tune(&lb_oracle(&full_calls), &space)
            .unwrap();
        // Winners are bit-identical; pruning only skips provably worse configs.
        assert_eq!(pruned.best.config, full.best.config);
        assert_eq!(
            pruned.best.report.total_s.to_bits(),
            full.best.report.total_s.to_bits()
        );
        // The exact bound prunes everything past the incumbent after the
        // first chunk, so the oracle runs far fewer simulations.
        assert!(pruned.pruned_bound() > 0, "{pruned:?}");
        assert_eq!(pruned.bounded_aborts, 0);
        assert!(pruned_calls.load(Ordering::SeqCst) < full_calls.load(Ordering::SeqCst));
        assert_eq!(full.failed.bound_pruned, 0);
        // Attribution still sums to the space size: every candidate is ranked
        // or accounted to exactly one pruning stage.
        assert_eq!(
            pruned.ranked.len() + pruned.failed.total(),
            space.len_unpruned()
        );
        assert_eq!(
            full.ranked.len() + full.failed.total(),
            space.len_unpruned()
        );
    }

    #[test]
    fn bounded_aborts_are_counted_and_keep_the_winner() {
        let space = space();
        let oracle = AbortingOracle {
            cluster: ClusterSpec::h800_node(8),
            aborts: AtomicUsize::new(0),
        };
        let report = Tuner::new(Strategy::Exhaustive)
            .tune(&oracle, &space)
            .unwrap();
        assert!(report.bounded_aborts > 0);
        assert_eq!(report.bounded_aborts, oracle.aborts.load(Ordering::SeqCst));
        // No lower bound on this oracle: everything bound-pruned was an abort.
        assert_eq!(report.pruned_bound(), 0);
        assert_eq!(
            report.ranked.len() + report.failed.total(),
            space.len_unpruned()
        );
        let full = Tuner::new(Strategy::Exhaustive)
            .with_pruning(false)
            .tune(&oracle, &space)
            .unwrap();
        assert_eq!(report.best.config, full.best.config);
        assert_eq!(
            report.best.report.total_s.to_bits(),
            full.best.report.total_s.to_bits()
        );
    }

    #[test]
    fn beam_with_pruning_matches_the_unbounded_beam_bit_for_bit() {
        let space = space();
        let strategy = Strategy::Beam {
            width: 2,
            sweeps: 3,
        };
        let c1 = AtomicUsize::new(0);
        let pruned = Tuner::new(strategy).tune(&lb_oracle(&c1), &space).unwrap();
        let c2 = AtomicUsize::new(0);
        let full = Tuner::new(strategy)
            .with_pruning(false)
            .tune(&lb_oracle(&c2), &space)
            .unwrap();
        // Pruning against the width-th-best incumbent keeps the frontier, the
        // round count and the winner bit-identical to the unbounded beam.
        assert_eq!(pruned.best.config, full.best.config);
        assert_eq!(
            pruned.best.report.total_s.to_bits(),
            full.best.report.total_s.to_bits()
        );
        assert_eq!(pruned.rounds.len(), full.rounds.len());
        assert!(c1.load(Ordering::SeqCst) <= c2.load(Ordering::SeqCst));
    }

    #[test]
    fn exhaustive_finds_the_analytic_optimum() {
        let calls = AtomicUsize::new(0);
        let report = Tuner::new(Strategy::Exhaustive)
            .with_threads(4)
            .tune(&analytic(&calls), &space())
            .unwrap();
        // Optimum of the analytic model: largest compute tile, ring order,
        // copy-engine mapping (0 SMs), fewest stages.
        assert_eq!(report.best.config.compute_tile, TileShape::new(128, 256));
        assert_eq!(report.best.config.order, tilelink::TileOrder::Ring);
        assert_eq!(report.best.config.comm_mapping, CommMapping::CopyEngine);
        assert_eq!(report.best.config.num_stages, 2);
        assert_eq!(report.evaluations, calls.load(Ordering::SeqCst));
        assert_eq!(report.failed.simulation_error, 0);
        assert!(report.rounds.is_empty(), "exhaustive search has no rounds");
        // Ranking is fastest-first.
        for w in report.ranked.windows(2) {
            assert!(w[0].report.total_s <= w[1].report.total_s);
        }
    }

    #[test]
    fn beam_matches_exhaustive_on_a_separable_objective() {
        let calls_a = AtomicUsize::new(0);
        let calls_b = AtomicUsize::new(0);
        let exhaustive = Tuner::new(Strategy::Exhaustive)
            .tune(&analytic(&calls_a), &space())
            .unwrap();
        let beam = Tuner::new(Strategy::Beam {
            width: 3,
            sweeps: 4,
        })
        .tune(&analytic(&calls_b), &space())
        .unwrap();
        assert_eq!(beam.best.config, exhaustive.best.config);
        // ...while evaluating fewer candidates.
        assert!(calls_b.load(Ordering::SeqCst) < calls_a.load(Ordering::SeqCst));
    }

    #[test]
    fn search_is_deterministic() {
        let c1 = AtomicUsize::new(0);
        let c2 = AtomicUsize::new(0);
        let r1 = Tuner::new(Strategy::Beam {
            width: 2,
            sweeps: 3,
        })
        .with_threads(8)
        .tune(&analytic(&c1), &space())
        .unwrap();
        let r2 = Tuner::new(Strategy::Beam {
            width: 2,
            sweeps: 3,
        })
        .with_threads(1)
        .tune(&analytic(&c2), &space())
        .unwrap();
        assert_eq!(r1.best.config, r2.best.config);
        let order1: Vec<&OverlapConfig> = r1.ranked.iter().map(|c| &c.config).collect();
        let order2: Vec<&OverlapConfig> = r2.ranked.iter().map(|c| &c.config).collect();
        assert_eq!(order1, order2);
    }

    #[test]
    fn failing_candidates_are_skipped_not_fatal() {
        let oracle = FnOracle::new("flaky", ClusterSpec::h800_node(8), |cfg| {
            if cfg.num_stages == 3 {
                Err(tilelink::TileLinkError::InvalidConfig {
                    reason: "synthetic".to_string(),
                })
            } else {
                Ok(OverlapReport::new(cfg.num_stages as f64, 0.1, 0.9))
            }
        });
        let space = SearchSpace::new().with_stages([2, 3, 4]);
        let report = Tuner::new(Strategy::Exhaustive)
            .tune(&oracle, &space)
            .unwrap();
        assert_eq!(report.failed.simulation_error, 1);
        assert_eq!(report.failed.validate_rejected, 0);
        assert_eq!(report.failed.constraint_pruned, 0);
        assert_eq!(report.failed.total(), 1);
        assert_eq!(report.ranked.len(), 2);
        assert_eq!(report.best.config.num_stages, 2);
    }

    #[test]
    fn failure_breakdown_separates_the_four_pruning_stages() {
        // 200 comm SMs fail validate on an H800; stage 3 is unsupported by the
        // oracle (constraint); stage 4 errors in the oracle (simulation).
        let oracle = FnOracle::new("stages", ClusterSpec::h800_node(8), |cfg| {
            if cfg.num_stages == 4 {
                Err(tilelink::TileLinkError::InvalidConfig {
                    reason: "synthetic".to_string(),
                })
            } else {
                Ok(OverlapReport::new(cfg.num_stages as f64, 0.1, 0.9))
            }
        })
        .with_support(|cfg: &OverlapConfig| cfg.num_stages != 3);
        let space = SearchSpace::new()
            .with_mappings([CommMapping::CopyEngine, CommMapping::Sm { sms: 200 }])
            .with_stages([2, 3, 4]);
        let report = Tuner::new(Strategy::Exhaustive)
            .tune(&oracle, &space)
            .unwrap();
        // Sm{200} is validate-rejected for all 3 stages; stage 3 of the valid
        // mapping is constraint-pruned; stage 4 errors in the oracle.
        assert_eq!(report.failed.validate_rejected, 3);
        assert_eq!(report.failed.constraint_pruned, 1);
        // The oracle has no lower bound and never aborts, so the fourth
        // stage stays empty here (exercised by the pruning tests below).
        assert_eq!(report.failed.bound_pruned, 0);
        assert_eq!(report.failed.simulation_error, 1);
        assert_eq!(report.failed.total(), 5);
        assert_eq!(report.ranked.len(), 1);
        let text = report.summary(1);
        assert!(text.contains("3 validate-rejected"), "{text}");
        assert!(text.contains("1 constraint-pruned"), "{text}");
        assert!(text.contains("0 bound-pruned"), "{text}");
        assert!(text.contains("1 simulation errors"), "{text}");
    }

    #[test]
    fn beam_reports_per_round_progress() {
        let calls = AtomicUsize::new(0);
        let report = Tuner::new(Strategy::Beam {
            width: 2,
            sweeps: 3,
        })
        .tune(&analytic(&calls), &space())
        .unwrap();
        assert!(!report.rounds.is_empty());
        assert!(report.rounds.len() <= 3);
        for (i, round) in report.rounds.iter().enumerate() {
            assert_eq!(round.round, i + 1);
            assert!(round.best_total_s.is_finite());
        }
        // Best-so-far never regresses and cumulative counters never shrink.
        for w in report.rounds.windows(2) {
            assert!(w[1].best_total_s <= w[0].best_total_s);
            assert!(w[1].evaluations >= w[0].evaluations);
            assert!(w[1].cache_hits >= w[0].cache_hits);
        }
        let last = report.rounds.last().unwrap();
        assert_eq!(last.best_total_s, report.best.report.total_s);
        assert_eq!(last.evaluations, report.evaluations);
    }

    #[test]
    fn beam_recovers_when_every_seed_fails_evaluation() {
        // Both beam seeds (the default config and the space's first corner)
        // have num_stages == 3 here and fail in the oracle; the beam must fall
        // back to the pruned enumeration instead of reporting total failure.
        let oracle = FnOracle::new("seedfail", ClusterSpec::h800_node(8), |cfg| {
            if cfg.num_stages == 3 {
                Err(tilelink::TileLinkError::InvalidConfig {
                    reason: "synthetic compile failure".to_string(),
                })
            } else {
                Ok(OverlapReport::new(cfg.num_stages as f64, 0.1, 0.9))
            }
        });
        let space = SearchSpace::new().with_stages([3, 4]);
        let report = Tuner::new(Strategy::Beam {
            width: 2,
            sweeps: 2,
        })
        .tune(&oracle, &space)
        .unwrap();
        assert_eq!(report.best.config.num_stages, 4);
        assert!(report.failed.simulation_error >= 1);
    }

    #[test]
    fn all_failures_surface_as_error() {
        let oracle = FnOracle::new("dead", ClusterSpec::h800_node(8), |_| {
            Err(tilelink::TileLinkError::InvalidConfig {
                reason: "always".to_string(),
            })
        });
        let err = Tuner::new(Strategy::Exhaustive)
            .tune(&oracle, &SearchSpace::new())
            .unwrap_err();
        assert!(matches!(err, TuneError::AllCandidatesFailed { .. }));
    }

    #[test]
    fn empty_space_surfaces_as_error() {
        let oracle = FnOracle::new("t", ClusterSpec::h800_node(8), |_| {
            Ok(OverlapReport::new(1.0, 0.5, 0.5))
        })
        .with_support(|_: &OverlapConfig| false);
        let err = Tuner::new(Strategy::Exhaustive)
            .tune(&oracle, &SearchSpace::new())
            .unwrap_err();
        assert!(matches!(err, TuneError::EmptySpace { .. }));
    }

    #[test]
    fn persistent_cache_short_circuits_the_second_search() {
        let dir = std::env::temp_dir().join(format!("tilelink-tune-sc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tsv");
        let _ = std::fs::remove_file(&path);

        let calls = AtomicUsize::new(0);
        let first = Tuner::new(Strategy::Exhaustive)
            .with_cache(TuneCache::open(&path).unwrap())
            .tune(&analytic(&calls), &space())
            .unwrap();
        assert!(calls.load(Ordering::SeqCst) > 0);
        assert_eq!(first.cache_hits, 0);

        calls.store(0, Ordering::SeqCst);
        let second = Tuner::new(Strategy::Exhaustive)
            .with_cache(TuneCache::open(&path).unwrap())
            .tune(&analytic(&calls), &space())
            .unwrap();
        assert_eq!(
            calls.load(Ordering::SeqCst),
            0,
            "second search must be free"
        );
        assert_eq!(second.evaluations, 0);
        assert_eq!(second.cache_hits, first.ranked.len());
        assert_eq!(second.best.config, first.best.config);
        assert!(second.best.from_cache);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_entries_miss_under_a_different_cost_revision_and_hit_again() {
        let dir = std::env::temp_dir().join(format!("tilelink-tune-rev-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tsv");
        let _ = std::fs::remove_file(&path);

        let oracle_with = |counter: &'static AtomicUsize, revision: &str| {
            FnOracle::new("rev", ClusterSpec::h800_node(8), move |cfg| {
                counter.fetch_add(1, Ordering::SeqCst);
                let t = cfg.num_stages as f64;
                Ok(OverlapReport::new(t, t / 2.0, t / 2.0))
            })
            .with_revision(revision)
        };
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let space = SearchSpace::new().with_stages([2, 3]);
        let run = |revision: &str| {
            Tuner::new(Strategy::Exhaustive)
                .with_cache(TuneCache::open(&path).unwrap())
                .tune(&oracle_with(&CALLS, revision), &space)
                .unwrap()
        };

        let first = run("analytic-v2");
        assert_eq!(first.evaluations, 2);
        // A different cost-model revision must not be served stale timings.
        let other = run("calibrated-deadbeef");
        assert_eq!(
            other.evaluations, 2,
            "revision change must force re-evaluation"
        );
        assert_eq!(other.cache_hits, 0);
        // Returning to the original revision hits the original entries again.
        let back = run("analytic-v2");
        assert_eq!(back.evaluations, 0);
        assert_eq!(back.cache_hits, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn beam_respects_cross_axis_constraints() {
        use tilelink::{TileOrder, TransferMode};
        let seen_ring_pull = std::sync::atomic::AtomicBool::new(false);
        let oracle = FnOracle::new("c", ClusterSpec::h800_node(8), |cfg| {
            if cfg.order == TileOrder::Ring && cfg.mode == TransferMode::Pull {
                seen_ring_pull.store(true, Ordering::SeqCst);
            }
            Ok(OverlapReport::new(1.0, 0.5, 0.5))
        });
        let space = SearchSpace::new()
            .with_orders([TileOrder::AllToAll, TileOrder::Ring])
            .with_modes([TransferMode::Pull, TransferMode::Push])
            .with_constraint(crate::RING_REQUIRES_PUSH);
        Tuner::new(Strategy::Beam {
            width: 4,
            sweeps: 2,
        })
        .tune(&oracle, &space)
        .unwrap();
        assert!(
            !seen_ring_pull.load(Ordering::SeqCst),
            "constrained pair must never reach the oracle"
        );
    }

    #[test]
    fn report_summary_mentions_the_best_candidate() {
        let calls = AtomicUsize::new(0);
        let report = Tuner::new(Strategy::Exhaustive)
            .tune(&analytic(&calls), &space())
            .unwrap();
        let text = report.summary(3);
        assert!(text.contains("#1"));
        assert!(text.contains(&report.best.config.cache_key()));
        assert!(report.best_ms() > 0.0);
    }
}
