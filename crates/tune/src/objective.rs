//! The tuning objective: how per-sample makespans fold into one score.
//!
//! The tuner historically minimised the single deterministic makespan of each
//! candidate. Workloads with runtime-dependent behaviour — MoE layers whose
//! tile mapping is decided by the routing — are better tuned against a
//! *distribution* of executions: FLUX and the fused-MoE line of work both
//! observe that expert skew, not the mean, determines achievable overlap. An
//! [`Objective`] picks the statistic of the sampled makespans the search
//! minimises, and is folded into the persistent tuning-cache key so
//! mean-tuned and tail-tuned entries never alias.

use std::fmt;
use std::str::FromStr;

use tilelink::OverlapReport;

/// Statistic of the per-sample makespans that a [`crate::CostOracle`]
/// minimises.
///
/// Oracles that evaluate a single deterministic execution report
/// [`Objective::Mean`]; sampling oracles fold their per-sample reports with
/// [`Objective::fold_reports`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Arithmetic mean over the samples (the historical behaviour; identical
    /// to the single evaluation for deterministic oracles).
    #[default]
    Mean,
    /// Nearest-rank percentile of the sampled makespans (1..=99). `p50` tunes
    /// the median, `p95`/`p99` tune the tail.
    Percentile(u8),
    /// The slowest sample (the `p100` limit): tune for the worst routing seen.
    WorstCase,
}

impl Objective {
    /// Stable identifier used in tuning-cache keys (`mean`, `p95`, `worst`).
    ///
    /// Folded into [`crate::TuneCache::key`] alongside the cost-model
    /// revision, so entries tuned under different objectives never collide.
    pub fn key(&self) -> String {
        match self {
            Objective::Mean => "mean".to_string(),
            Objective::Percentile(p) => format!("p{p}"),
            Objective::WorstCase => "worst".to_string(),
        }
    }

    /// Folds sampled makespans (seconds) into the objective's scalar.
    ///
    /// Percentiles use the nearest-rank method on a sorted copy, so the result
    /// is always one of the input values (no interpolation — the folded value
    /// corresponds to a routing that was actually priced).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fold(&self, samples: &[f64]) -> f64 {
        assert!(!samples.is_empty(), "cannot fold zero samples");
        match self {
            Objective::Mean => samples.iter().sum::<f64>() / samples.len() as f64,
            Objective::Percentile(_) | Objective::WorstCase => {
                let mut sorted = samples.to_vec();
                sorted.sort_by(f64::total_cmp);
                sorted[self.pick_index(sorted.len())]
            }
        }
    }

    /// Folds per-sample reports into one report.
    ///
    /// [`Objective::Mean`] averages every field; the percentile and worst-case
    /// objectives return the report of the sample whose *total* the objective
    /// selects, so the comm/comp split stays internally consistent.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn fold_reports(&self, reports: &[OverlapReport]) -> OverlapReport {
        assert!(!reports.is_empty(), "cannot fold zero reports");
        match self {
            Objective::Mean => {
                let n = reports.len() as f64;
                OverlapReport::new(
                    reports.iter().map(|r| r.total_s).sum::<f64>() / n,
                    reports.iter().map(|r| r.comm_only_s).sum::<f64>() / n,
                    reports.iter().map(|r| r.comp_only_s).sum::<f64>() / n,
                )
            }
            Objective::Percentile(_) | Objective::WorstCase => {
                let mut order: Vec<usize> = (0..reports.len()).collect();
                order.sort_by(|&a, &b| reports[a].total_s.total_cmp(&reports[b].total_s));
                reports[order[self.pick_index(reports.len())]]
            }
        }
    }

    /// Index into an ascending-sorted sample list of length `n` that this
    /// objective selects (nearest-rank), or `None` for [`Objective::Mean`],
    /// which averages instead of picking.
    ///
    /// Exposed so cutoff-bounded oracle evaluations can reason about the
    /// order statistic: with `i = sorted_pick_index(n)`, up to `n - 1 - i`
    /// samples may abort above the cutoff before the folded value itself
    /// provably exceeds it.
    pub fn sorted_pick_index(&self, n: usize) -> Option<usize> {
        match self {
            Objective::Mean => None,
            Objective::Percentile(p) => {
                let rank = (*p as f64 / 100.0 * n as f64).ceil() as usize;
                Some(rank.clamp(1, n) - 1)
            }
            Objective::WorstCase => Some(n - 1),
        }
    }

    /// Index into an ascending-sorted sample list of length `n` (nearest-rank).
    fn pick_index(&self, n: usize) -> usize {
        self.sorted_pick_index(n)
            .expect("mean does not pick a sample")
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

impl FromStr for Objective {
    type Err = String;

    /// Parses the `--objective` flag values: `mean`, `worst` or `p<1-99>`
    /// (e.g. `p50`, `p95`).
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "mean" => Ok(Objective::Mean),
            "worst" => Ok(Objective::WorstCase),
            _ => match s.strip_prefix('p').map(str::parse::<u8>) {
                Some(Ok(p)) if (1..=99).contains(&p) => Ok(Objective::Percentile(p)),
                _ => Err(format!(
                    "unknown objective {s:?} (expected mean, p<1-99> or worst)"
                )),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinct() {
        assert_eq!(Objective::Mean.key(), "mean");
        assert_eq!(Objective::Percentile(95).key(), "p95");
        assert_eq!(Objective::WorstCase.key(), "worst");
        assert_eq!(Objective::default(), Objective::Mean);
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        for text in ["mean", "p50", "p95", "p1", "p99", "worst"] {
            let obj: Objective = text.parse().unwrap();
            assert_eq!(obj.to_string(), text);
        }
        for bad in ["p0", "p100", "median", "", "p", "p-5"] {
            assert!(bad.parse::<Objective>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn fold_computes_the_right_statistic() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        assert!((Objective::Mean.fold(&samples) - 3.9).abs() < 1e-12);
        assert_eq!(Objective::WorstCase.fold(&samples), 9.0);
        // sorted: 1 1 2 3 3 4 5 5 6 9; nearest-rank p50 = 5th value = 3.
        assert_eq!(Objective::Percentile(50).fold(&samples), 3.0);
        // p95 → ceil(0.95·10) = 10th value = 9.
        assert_eq!(Objective::Percentile(95).fold(&samples), 9.0);
        // p1 → first value.
        assert_eq!(Objective::Percentile(1).fold(&samples), 1.0);
    }

    #[test]
    fn fold_reports_selects_a_consistent_sample() {
        let reports = [
            OverlapReport::new(2.0, 0.5, 1.5),
            OverlapReport::new(1.0, 0.2, 0.8),
            OverlapReport::new(4.0, 3.0, 1.0),
        ];
        let worst = Objective::WorstCase.fold_reports(&reports);
        assert_eq!(worst, reports[2], "worst case is the slowest sample");
        let median = Objective::Percentile(50).fold_reports(&reports);
        assert_eq!(median, reports[0]);
        let mean = Objective::Mean.fold_reports(&reports);
        assert!((mean.total_s - 7.0 / 3.0).abs() < 1e-12);
        assert!((mean.comm_only_s - 3.7 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn folding_nothing_panics() {
        Objective::Mean.fold(&[]);
    }
}
