//! # tilelink-tune
//!
//! A simulator-guided autotuner over the paper's decoupled overlap design
//! space (Section 3.1): communication/computation tile shapes, tile order,
//! transfer mode, resource mapping, barrier channels and pipeline depth.
//!
//! The reproduction previously ran hand-picked [`tilelink::OverlapConfig`]
//! values; this crate makes the *search* part of the system, the way TileLang
//! auto-explores tiling/pipelining schedules:
//!
//! * [`SearchSpace`] — a builder describing per-axis candidate values, with
//!   invalid combinations pruned through [`tilelink::OverlapConfig::validate`]
//!   and per-workload constraints ([`CostOracle::is_supported`]);
//! * [`CostOracle`] — anything that can price one candidate configuration.
//!   The workload crates implement it by compiling the tile program with the
//!   TileLink compiler and measuring the simulated makespan on the
//!   `tilelink-sim` discrete-event cluster;
//! * [`Tuner`] — drives a [`Strategy`]: [`Strategy::Exhaustive`] grid search
//!   for small spaces, or [`Strategy::Beam`] coordinate-descent beam search
//!   that visits a tiny fraction of large spaces while never returning a
//!   config worse than its seed (the default config);
//! * [`TuneCache`] — a persistent on-disk cache keyed by
//!   `(workload, cluster, cost-model revision, config)` so repeated searches
//!   are near-free. The simulator is deterministic, so cached costs never go
//!   stale for a fixed cost model — and because the provider's
//!   [`tilelink_sim::CostProvider::revision`] fingerprint is part of the key,
//!   entries evaluated under an older cost model self-invalidate instead of
//!   serving wrong timings.
//!
//! Candidate evaluation is embarrassingly parallel (the simulator is pure),
//! so the tuner fans evaluations out over `std::thread`.
//!
//! # Example
//!
//! ```
//! use tilelink::{OverlapConfig, OverlapReport};
//! use tilelink_sim::ClusterSpec;
//! use tilelink_tune::{CostOracle, SearchSpace, Strategy, Tuner};
//!
//! /// A toy oracle: prefers large compute tiles and few comm SMs.
//! struct Toy(ClusterSpec);
//! impl CostOracle for Toy {
//!     fn workload_key(&self) -> String {
//!         "toy".to_string()
//!     }
//!     fn cluster(&self) -> &ClusterSpec {
//!         &self.0
//!     }
//!     fn evaluate(&self, cfg: &OverlapConfig) -> tilelink::Result<OverlapReport> {
//!         let t = 1.0 / cfg.compute_tile.numel() as f64
//!             + cfg.comm_mapping.comm_sms() as f64 * 1e-6;
//!         Ok(OverlapReport::new(t, t / 2.0, t / 2.0))
//!     }
//! }
//!
//! let oracle = Toy(ClusterSpec::h800_node(8));
//! let space = SearchSpace::standard();
//! let report = Tuner::new(Strategy::Exhaustive).tune(&oracle, &space).unwrap();
//! assert!(report.best.report.total_s <= oracle.evaluate(&OverlapConfig::default()).unwrap().total_s);
//! ```

#![deny(missing_docs)]

pub mod cache;
mod error;
mod executor;
mod objective;
mod oracle;
mod search;
mod space;

pub use cache::TuneCache;
pub use error::TuneError;
pub use executor::{ExecutorSession, SearchExecutor};
pub use objective::Objective;
pub use oracle::{cluster_key, BoundedEval, CostOracle, FnOracle};
pub use search::{Candidate, FailedBreakdown, RoundProgress, Strategy, TuneReport, Tuner};
pub use space::{AxisConstraint, PruneCounts, SearchSpace, RING_REQUIRES_PUSH};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TuneError>;
