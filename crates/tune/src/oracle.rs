//! The cost oracle: anything that can price one candidate configuration.

use tilelink::{OverlapConfig, OverlapReport};
use tilelink_sim::ClusterSpec;

use crate::Objective;

/// Outcome of a cutoff-bounded oracle evaluation.
///
/// Returned by [`CostOracle::evaluate_bounded`]: either the full report
/// (bit-identical to [`CostOracle::evaluate`]) or proof that the candidate's
/// objective value strictly exceeds the caller's cutoff, with the certified
/// partial clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundedEval {
    /// The cutoff was never hit; the report is exact.
    Report(OverlapReport),
    /// The evaluation aborted early: the objective value provably exceeds
    /// the cutoff. Carries a lower bound on the true value.
    Exceeded(f64),
}

/// Prices one [`OverlapConfig`] for one workload on one cluster.
///
/// The workload crates implement this by building the tile program for the
/// candidate, compiling it with [`tilelink::Compiler`] and simulating the
/// result on the `tilelink-sim` engine; the simulated makespan
/// ([`OverlapReport::total_s`]) is the objective the tuner minimises.
///
/// Implementations must be deterministic and thread-safe (`Sync`): the tuner
/// calls [`CostOracle::evaluate`] concurrently from multiple threads, and the
/// persistent cache assumes a config always prices to the same cost.
pub trait CostOracle: Sync {
    /// Stable identifier of the workload kind and shape, used in cache keys.
    ///
    /// Must be unique per (workload, shape): e.g. `"mlp_ag_gemm/S8192/H4096/I11008"`.
    fn workload_key(&self) -> String;

    /// The cluster the workload runs on.
    fn cluster(&self) -> &ClusterSpec;

    /// Revision fingerprint of the cost model pricing the evaluations (see
    /// [`tilelink_sim::CostProvider::revision`]).
    ///
    /// Folded into the persistent tuning-cache key so entries evaluated under
    /// a different cost model miss instead of serving stale timings. Oracles
    /// that evaluate through a non-default provider must override this with
    /// that provider's revision.
    fn cost_revision(&self) -> String {
        tilelink_sim::CostModel::REVISION.to_string()
    }

    /// The statistic this oracle's [`CostOracle::evaluate`] reports when the
    /// workload is priced over sampled executions (see [`Objective`]).
    ///
    /// Deterministic single-execution oracles keep the default
    /// ([`Objective::Mean`]). The objective's [`Objective::key`] is folded
    /// into the persistent tuning-cache key alongside the cost revision, so
    /// mean-tuned and tail-tuned entries never collide.
    fn objective(&self) -> Objective {
        Objective::Mean
    }

    /// Compiles and simulates one candidate, returning its timing report.
    ///
    /// # Errors
    ///
    /// Returns an error if the candidate fails to compile or simulate; the
    /// tuner treats such candidates as pruned.
    fn evaluate(&self, cfg: &OverlapConfig) -> tilelink::Result<OverlapReport>;

    /// A cheap *admissible* lower bound on the objective value
    /// [`CostOracle::evaluate`] would report for `cfg`, or `None` when no
    /// sound bound is available.
    ///
    /// Admissible means `lower_bound(cfg) <= evaluate(cfg).total_s` (or the
    /// folded objective value for sampled oracles) for every supported
    /// config: the tuner skips candidates whose bound already meets or
    /// exceeds the incumbent best, so an inadmissible bound would change
    /// winners. Implementations must not compile, build graphs or run event
    /// simulation — the point is to price the candidate in nanoseconds from
    /// closed-form work/byte totals (critical-path compute, per-rank GEMM
    /// work over SM throughput, per-link bytes over bandwidth).
    ///
    /// The default returns `None`: no bound, nothing is pruned.
    fn lower_bound(&self, cfg: &OverlapConfig) -> Option<f64> {
        let _ = cfg;
        None
    }

    /// [`CostOracle::evaluate`] with an abort cutoff: implementations may
    /// stop early and return [`BoundedEval::Exceeded`] as soon as the
    /// objective value provably exceeds `cutoff` strictly.
    ///
    /// The contract mirrors [`tilelink_sim::Engine::makespan_bounded`]: when
    /// the cutoff is not hit, the returned report must be bit-identical to
    /// [`CostOracle::evaluate`]. The default ignores the cutoff and never
    /// aborts, which is always sound.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CostOracle::evaluate`].
    fn evaluate_bounded(&self, cfg: &OverlapConfig, cutoff: f64) -> tilelink::Result<BoundedEval> {
        let _ = cutoff;
        self.evaluate(cfg).map(BoundedEval::Report)
    }

    /// Workload-specific validity constraints beyond
    /// [`OverlapConfig::validate`] (for example tile-divisibility rules).
    /// Unsupported candidates are pruned without an oracle call.
    fn is_supported(&self, cfg: &OverlapConfig) -> bool {
        let _ = cfg;
        true
    }
}

/// Stable identifier of a cluster, used in cache keys.
///
/// Encodes every hardware parameter that feeds the cost model, so tuning
/// results for different simulated machines never alias.
pub fn cluster_key(cluster: &ClusterSpec) -> String {
    let g = &cluster.gpu;
    format!(
        "{}-sm{}-t{:.0}-hbm{:.0}-nv{:.0}-ib{:.0}-dma{}-kl{:.1}-hs{:.1}x{}x{}",
        g.name,
        g.sm_count,
        g.peak_tflops,
        g.hbm_gbps,
        g.nvlink_gbps,
        g.ib_gbps,
        g.dma_engines,
        g.kernel_launch_us,
        g.host_sync_us,
        cluster.gpus_per_node,
        cluster.nodes
    )
}

/// Boxed admissible lower-bound closure (see [`CostOracle::lower_bound`]).
pub type BoundFn = Box<dyn Fn(&OverlapConfig) -> Option<f64> + Send + Sync>;

/// A [`CostOracle`] built from closures, mainly for tests and experiments.
pub struct FnOracle<E, S = fn(&OverlapConfig) -> bool>
where
    E: Fn(&OverlapConfig) -> tilelink::Result<OverlapReport> + Sync,
    S: Fn(&OverlapConfig) -> bool + Sync,
{
    key: String,
    cluster: ClusterSpec,
    evaluate: E,
    supported: S,
    revision: String,
    objective: Objective,
    /// Optional admissible bound closure (boxed so adding one does not grow
    /// the type's generic surface).
    lower_bound: Option<BoundFn>,
}

impl<E> FnOracle<E>
where
    E: Fn(&OverlapConfig) -> tilelink::Result<OverlapReport> + Sync,
{
    /// Creates an oracle from an evaluation closure; every config is supported.
    pub fn new(key: impl Into<String>, cluster: ClusterSpec, evaluate: E) -> Self {
        Self {
            key: key.into(),
            cluster,
            evaluate,
            supported: |_| true,
            revision: tilelink_sim::CostModel::REVISION.to_string(),
            objective: Objective::Mean,
            lower_bound: None,
        }
    }
}

impl<E, S> FnOracle<E, S>
where
    E: Fn(&OverlapConfig) -> tilelink::Result<OverlapReport> + Sync,
    S: Fn(&OverlapConfig) -> bool + Sync,
{
    /// Replaces the support predicate.
    pub fn with_support<S2>(self, supported: S2) -> FnOracle<E, S2>
    where
        S2: Fn(&OverlapConfig) -> bool + Sync,
    {
        FnOracle {
            key: self.key,
            cluster: self.cluster,
            evaluate: self.evaluate,
            supported,
            revision: self.revision,
            objective: self.objective,
            lower_bound: self.lower_bound,
        }
    }

    /// Attaches an admissible lower-bound closure (see
    /// [`CostOracle::lower_bound`]).
    pub fn with_lower_bound(
        mut self,
        lower_bound: impl Fn(&OverlapConfig) -> Option<f64> + Send + Sync + 'static,
    ) -> Self {
        self.lower_bound = Some(Box::new(lower_bound));
        self
    }

    /// Replaces the cost-model revision reported for cache keying.
    pub fn with_revision(mut self, revision: impl Into<String>) -> Self {
        self.revision = revision.into();
        self
    }

    /// Replaces the objective reported for cache keying.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }
}

impl<E, S> CostOracle for FnOracle<E, S>
where
    E: Fn(&OverlapConfig) -> tilelink::Result<OverlapReport> + Sync,
    S: Fn(&OverlapConfig) -> bool + Sync,
{
    fn workload_key(&self) -> String {
        self.key.clone()
    }

    fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    fn evaluate(&self, cfg: &OverlapConfig) -> tilelink::Result<OverlapReport> {
        (self.evaluate)(cfg)
    }

    fn is_supported(&self, cfg: &OverlapConfig) -> bool {
        (self.supported)(cfg)
    }

    fn lower_bound(&self, cfg: &OverlapConfig) -> Option<f64> {
        self.lower_bound.as_ref().and_then(|f| f(cfg))
    }

    fn cost_revision(&self) -> String {
        self.revision.clone()
    }

    fn objective(&self) -> Objective {
        self.objective
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_key_distinguishes_topologies() {
        let a = cluster_key(&ClusterSpec::h800_node(8));
        let b = cluster_key(&ClusterSpec::h800_multi_node(2));
        let c = cluster_key(&ClusterSpec::new(tilelink_sim::GpuSpec::a100(), 8, 1));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn default_revision_is_the_analytic_model() {
        let oracle = FnOracle::new("t", ClusterSpec::h800_node(2), |_| {
            Ok(OverlapReport::new(1.0, 0.5, 0.5))
        });
        assert_eq!(oracle.cost_revision(), tilelink_sim::CostModel::REVISION);
        let oracle = oracle.with_revision("calibrated-abc");
        assert_eq!(oracle.cost_revision(), "calibrated-abc");
    }

    #[test]
    fn fn_oracle_roundtrip() {
        let oracle = FnOracle::new("t", ClusterSpec::h800_node(2), |_| {
            Ok(OverlapReport::new(1.0, 0.5, 0.5))
        })
        .with_support(|c| c.num_stages <= 2);
        assert_eq!(oracle.workload_key(), "t");
        assert!(oracle.is_supported(&OverlapConfig {
            num_stages: 2,
            ..OverlapConfig::default()
        }));
        assert!(!oracle.is_supported(&OverlapConfig::default()));
        assert_eq!(
            oracle.evaluate(&OverlapConfig::default()).unwrap().total_s,
            1.0
        );
    }
}
