//! Persistent tuning cache keyed by `(workload, cluster, config)`.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use tilelink::{OverlapConfig, OverlapReport};
use tilelink_probe::metrics::TUNE_CACHE_OPEN_ERRORS;

use crate::{Result, TuneError};

/// Environment variable overriding the default cache location.
pub const CACHE_PATH_ENV: &str = "TILELINK_TUNE_CACHE";

/// Test-only crash injection for [`TuneCache::flush`]. When this variable is
/// set to one of the recognised points, `flush` calls
/// [`std::process::abort`] there, simulating a crash:
///
/// - `mid-write` — after roughly half the bytes of the new file have been
///   written to the temp sibling,
/// - `pre-rename` — after the temp sibling is complete but before it is
///   renamed over the real file.
///
/// The torn-write regression tests spawn a child process with this set and
/// then assert the real cache file is untouched. Never set it outside tests.
pub const FLUSH_ABORT_ENV: &str = "TILELINK_TUNE_CACHE_FLUSH_ABORT";

fn flush_abort_point(point: &str) {
    if std::env::var(FLUSH_ABORT_ENV).as_deref() == Ok(point) {
        std::process::abort();
    }
}

/// Serialises the read-merge-rename sequence in [`TuneCache::flush`] within
/// one process so two in-process flushes cannot interleave their
/// read-then-rewrite windows and drop each other's entries. Cross-process
/// writers are protected by the merge itself (best effort: the window between
/// a flush's re-read and its rename is not locked across processes, but it is
/// microseconds instead of the whole tuning run).
static FLUSH_LOCK: Mutex<()> = Mutex::new(());

/// A persistent map from tuning keys to simulated timing reports.
///
/// The on-disk format is a line-oriented TSV so cache files can be inspected
/// and diffed: `key<TAB>total_s<TAB>comm_only_s<TAB>comp_only_s`. Keys combine
/// the oracle's workload key, the [`crate::cluster_key`] of the cluster, the
/// cost-model revision ([`crate::CostOracle::cost_revision`]), the objective
/// key ([`crate::Objective::key`]) and [`OverlapConfig::cache_key`], none of
/// which contain tabs or newlines. Because the revision and the objective are
/// part of the key, entries evaluated under a different cost model — or tuned
/// for a different statistic of the sampled makespans — simply miss: a stale
/// cache self-invalidates instead of serving timings the current model would
/// not produce, and mean-tuned entries never alias with p99-tuned ones.
///
/// # Persistence semantics
///
/// [`TuneCache::flush`] rewrites the file atomically: the new contents are
/// written to a sibling temp file which is then `rename`d over the real path,
/// so readers always see either the old complete file or the new complete
/// file — an interrupted flush can never truncate the cache. Before
/// rewriting, `flush` re-reads the on-disk file and merges it with the
/// in-memory entries (union; the in-memory value wins when both sides hold
/// the same key), so concurrent tuners sharing one cache file — as CI's
/// shared `TILELINK_TUNE_CACHE` does across smoke steps — accumulate entries
/// instead of clobbering each other. Unparseable lines are still skipped on
/// load, so a cache file damaged by external means only loses the damaged
/// entries, never the whole cache.
#[derive(Debug)]
pub struct TuneCache {
    path: Option<PathBuf>,
    entries: HashMap<String, OverlapReport>,
    /// Keys removed by [`TuneCache::sweep_stale`]. The flush merge re-reads
    /// the on-disk file, which would silently resurrect swept entries;
    /// tombstones make the removal stick until the next flush rewrites the
    /// file without them.
    tombstones: HashSet<String>,
}

impl TuneCache {
    /// An in-memory cache that never touches the filesystem.
    pub fn in_memory() -> Self {
        Self {
            path: None,
            entries: HashMap::new(),
            tombstones: HashSet::new(),
        }
    }

    /// Opens (or initialises) a cache backed by `path`.
    ///
    /// A missing file is treated as an empty cache; it is created on the first
    /// [`TuneCache::flush`].
    ///
    /// # Errors
    ///
    /// Returns [`TuneError::CacheIo`] if the file exists but cannot be read.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let entries = Self::read_entries(&path)?;
        Ok(Self {
            path: Some(path),
            entries,
            tombstones: HashSet::new(),
        })
    }

    /// Parses the TSV at `path` into a map, treating a missing file as empty
    /// and skipping unparseable lines. Shared by [`TuneCache::open`] and the
    /// merge pass of [`TuneCache::flush`].
    fn read_entries(path: &Path) -> Result<HashMap<String, OverlapReport>> {
        let mut entries = HashMap::new();
        match std::fs::read_to_string(path) {
            Ok(text) => {
                for line in text.lines() {
                    let mut parts = line.split('\t');
                    let (Some(key), Some(total), Some(comm), Some(comp)) =
                        (parts.next(), parts.next(), parts.next(), parts.next())
                    else {
                        continue;
                    };
                    let (Ok(total), Ok(comm), Ok(comp)) = (
                        total.parse::<f64>(),
                        comm.parse::<f64>(),
                        comp.parse::<f64>(),
                    ) else {
                        continue;
                    };
                    entries.insert(key.to_string(), OverlapReport::new(total, comm, comp));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(TuneError::CacheIo {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })
            }
        }
        Ok(entries)
    }

    /// The default cache location: `$TILELINK_TUNE_CACHE` if set, otherwise
    /// `tilelink-tune-cache.tsv` in the system temp directory.
    pub fn default_path() -> PathBuf {
        std::env::var_os(CACHE_PATH_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("tilelink-tune-cache.tsv"))
    }

    /// Opens the default cache (see [`TuneCache::default_path`]). Falls back
    /// to an in-memory cache if the file exists but is unreadable — loudly:
    /// see [`TuneCache::open_or_warn`].
    pub fn open_default() -> Self {
        Self::open_or_warn(Self::default_path())
    }

    /// Opens the cache at `path`, falling back to an *empty in-memory* cache
    /// if the file exists but cannot be read.
    ///
    /// Unlike a silent fallback, the error is reported on stderr and counted
    /// in the `tune.cache.open_errors` probe counter, so a permissions typo
    /// on `$TILELINK_TUNE_CACHE` shows up as a warning instead of
    /// masquerading as a cold cache that re-runs every search.
    pub fn open_or_warn(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref();
        match Self::open(path) {
            Ok(cache) => cache,
            Err(e) => {
                TUNE_CACHE_OPEN_ERRORS.inc();
                eprintln!(
                    "warning: tuning cache {} is unreadable ({e}); continuing with an \
                     empty in-memory cache, so every search will re-simulate and \
                     nothing will be persisted",
                    path.display()
                );
                Self::in_memory()
            }
        }
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The shared `workload|cluster|revision|objective` prefix of every key
    /// of one tuning run.
    ///
    /// All four parts are fixed for the duration of a [`crate::Tuner::tune`]
    /// call, so the tuner builds this once per run and derives per-candidate
    /// keys with [`TuneCache::key_in`] instead of re-assembling (and
    /// re-allocating) the full quadruple on every cache probe.
    pub fn key_prefix(
        workload_key: &str,
        cluster_key: &str,
        cost_revision: &str,
        objective_key: &str,
    ) -> String {
        format!("{workload_key}|{cluster_key}|{cost_revision}|{objective_key}")
    }

    /// The full cache key of one candidate under a memoized
    /// [`TuneCache::key_prefix`].
    pub fn key_in(prefix: &str, cfg: &OverlapConfig) -> String {
        format!("{prefix}|{}", cfg.cache_key())
    }

    /// The full cache key for one (workload, cluster, cost-model revision,
    /// objective, config) quintuple.
    pub fn key(
        workload_key: &str,
        cluster_key: &str,
        cost_revision: &str,
        objective_key: &str,
        cfg: &OverlapConfig,
    ) -> String {
        Self::key_in(
            &Self::key_prefix(workload_key, cluster_key, cost_revision, objective_key),
            cfg,
        )
    }

    /// Looks up a cached report.
    pub fn get(&self, key: &str) -> Option<OverlapReport> {
        self.entries.get(key).copied()
    }

    /// Number of entries for the same `workload|cluster` scope that were
    /// recorded under a *different* cost-model revision or objective than
    /// `current_prefix` (a full [`TuneCache::key_prefix`]).
    ///
    /// These entries are not wrong — they self-invalidate by missing — but
    /// every one of them represents an oracle call the current run has to
    /// repeat, which is worth surfacing in the metrics registry.
    pub fn count_stale(&self, scope: &str, current_prefix: &str) -> usize {
        let current = format!("{current_prefix}|");
        self.entries
            .keys()
            .filter(|k| k.starts_with(scope) && !k.starts_with(&current))
            .count()
    }

    /// Removes every entry in `scope` recorded under a different cost-model
    /// revision or objective than `current_prefix` (the same notion of stale
    /// as [`TuneCache::count_stale`]) and returns how many were swept.
    ///
    /// Swept keys are tombstoned so the next [`TuneCache::flush`] drops them
    /// from the backing file too instead of resurrecting them through the
    /// disk merge. This is the long-running daemon's memory/disk bound: a
    /// cost-model upgrade no longer leaves the superseded revision's entries
    /// behind forever. One-shot CLI runs that alternate between cost models
    /// should prefer `count_stale`, which keeps both revisions warm.
    pub fn sweep_stale(&mut self, scope: &str, current_prefix: &str) -> usize {
        let current = format!("{current_prefix}|");
        let stale: Vec<String> = self
            .entries
            .keys()
            .filter(|k| k.starts_with(scope) && !k.starts_with(&current))
            .cloned()
            .collect();
        for key in &stale {
            self.entries.remove(key);
            self.tombstones.insert(key.clone());
        }
        stale.len()
    }

    /// Inserts (or replaces) a cached report. Call [`TuneCache::flush`] to
    /// persist.
    pub fn insert(&mut self, key: String, report: OverlapReport) {
        self.tombstones.remove(&key);
        self.entries.insert(key, report);
    }

    /// Writes the cache to its backing file (no-op for in-memory caches).
    ///
    /// The rewrite is atomic (temp sibling + `rename`) and merges with the
    /// current on-disk contents first — union of both sides, the in-memory
    /// value winning on key conflict — so an interrupted flush never
    /// truncates the file and concurrent writers never clobber each other's
    /// entries. Entries are written sorted by key so the file is
    /// deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`TuneError::CacheIo`] on any filesystem error.
    pub fn flush(&self) -> Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let io_err = |e: std::io::Error| TuneError::CacheIo {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(io_err)?;
            }
        }
        let _serialize = FLUSH_LOCK.lock().unwrap_or_else(|e| e.into_inner());

        // Merge with whatever is on disk right now: another tuner may have
        // flushed since this cache was opened. In-memory entries win on
        // conflict (they are this run's freshest measurements), and keys
        // swept by `sweep_stale` are dropped from the merge so the rewrite
        // shrinks the file instead of re-reading the stale entries back in.
        let mut merged = Self::read_entries(path)?;
        for key in &self.tombstones {
            merged.remove(key);
        }
        for (key, report) in &self.entries {
            merged.insert(key.clone(), *report);
        }

        let mut keys: Vec<&String> = merged.keys().collect();
        keys.sort();
        let mut out = Vec::with_capacity(merged.len() * 64);
        for key in keys {
            let r = &merged[key];
            writeln!(
                out,
                "{key}\t{:.17e}\t{:.17e}\t{:.17e}",
                r.total_s, r.comm_only_s, r.comp_only_s
            )
            .map_err(io_err)?;
        }

        // Write the new contents to a temp sibling, then rename it over the
        // real file: readers only ever observe a complete file. The temp name
        // embeds the pid so two processes flushing at once stage separately.
        let mut tmp_name = path.file_name().map(|n| n.to_os_string()).ok_or_else(|| {
            io_err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cache path has no file name",
            ))
        })?;
        tmp_name.push(format!(".{}.tmp", std::process::id()));
        let tmp_path = path.with_file_name(tmp_name);
        let write_result = (|| {
            let mut file = std::fs::File::create(&tmp_path)?;
            let half = out.len() / 2;
            file.write_all(&out[..half])?;
            flush_abort_point("mid-write");
            file.write_all(&out[half..])?;
            file.sync_all()?;
            flush_abort_point("pre-rename");
            std::fs::rename(&tmp_path, path)
        })();
        if write_result.is_err() {
            let _ = std::fs::remove_file(&tmp_path);
        }
        write_result.map_err(io_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tilelink-tune-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_through_disk() {
        let path = tmp("roundtrip.tsv");
        let _ = std::fs::remove_file(&path);
        let mut cache = TuneCache::open(&path).unwrap();
        assert!(cache.is_empty());
        let key = TuneCache::key("w", "c", "analytic-v2", "mean", &OverlapConfig::default());
        cache.insert(key.clone(), OverlapReport::new(1.25e-3, 5e-4, 1e-3));
        cache.flush().unwrap();

        let reloaded = TuneCache::open(&path).unwrap();
        assert_eq!(reloaded.len(), 1);
        let r = reloaded.get(&key).unwrap();
        assert_eq!(r.total_s, 1.25e-3);
        assert_eq!(r.comm_only_s, 5e-4);
        assert_eq!(r.comp_only_s, 1e-3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_lines_are_skipped() {
        let path = tmp("corrupt.tsv");
        std::fs::write(&path, "good\t1.0\t0.5\t0.5\nbad line\nworse\tnan-ish\t\t\n").unwrap();
        let cache = TuneCache::open(&path).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get("good").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_writers_merge_instead_of_clobbering() {
        // Mirrors CI's shared TILELINK_TUNE_CACHE: two tuners open the same
        // file, each learns a different entry, and both flush. Before the
        // merge-on-flush fix the second flush rewrote the file from its own
        // (disjoint) view and the first tuner's entry was lost.
        let path = tmp("two-writer.tsv");
        let _ = std::fs::remove_file(&path);
        let mut a = TuneCache::open(&path).unwrap();
        let mut b = TuneCache::open(&path).unwrap();
        a.insert("ka".into(), OverlapReport::new(1.0, 0.4, 0.8));
        a.flush().unwrap();
        b.insert("kb".into(), OverlapReport::new(2.0, 0.9, 1.5));
        b.flush().unwrap();

        let merged = TuneCache::open(&path).unwrap();
        assert!(
            merged.get("ka").is_some(),
            "entry flushed by writer A must survive writer B's flush"
        );
        assert!(merged.get("kb").is_some());
        assert_eq!(merged.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_conflict_resolution_prefers_in_memory() {
        let path = tmp("conflict.tsv");
        let _ = std::fs::remove_file(&path);
        let mut a = TuneCache::open(&path).unwrap();
        let mut b = TuneCache::open(&path).unwrap();
        a.insert("k".into(), OverlapReport::new(1.0, 0.4, 0.8));
        a.flush().unwrap();
        b.insert("k".into(), OverlapReport::new(3.0, 1.0, 2.5));
        b.flush().unwrap();

        let merged = TuneCache::open(&path).unwrap();
        assert_eq!(
            merged.get("k").unwrap().total_s,
            3.0,
            "on key conflict the flushing cache's own value wins"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_leaves_no_temp_files_behind() {
        let dir = std::env::temp_dir().join(format!("tilelink-tmpscan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.tsv");
        let mut cache = TuneCache::open(&path).unwrap();
        cache.insert("k".into(), OverlapReport::new(1.0, 0.5, 0.5));
        cache.flush().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "flush must clean up its temp sibling");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_cache_surfaces_open_error() {
        // A directory is unreadable as a file on every platform; before the
        // fix open_or_warn/open_default swallowed this and the counter did
        // not exist.
        let dir = std::env::temp_dir().join(format!("tilelink-unreadable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let before = TUNE_CACHE_OPEN_ERRORS.get();
        let cache = TuneCache::open_or_warn(&dir);
        assert!(
            cache.path().is_none(),
            "fallback cache must be in-memory so a later flush cannot damage the path"
        );
        assert!(
            TUNE_CACHE_OPEN_ERRORS.get() > before,
            "an unreadable cache file must be counted in tune.cache.open_errors"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_cache_never_writes() {
        let mut cache = TuneCache::in_memory();
        cache.insert("k".into(), OverlapReport::new(1.0, 0.5, 0.5));
        cache.flush().unwrap();
        assert!(cache.path().is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_embed_all_five_parts() {
        let k = TuneCache::key(
            "mlp",
            "h800x8",
            "analytic-v2",
            "mean",
            &OverlapConfig::default(),
        );
        assert!(k.starts_with("mlp|h800x8|analytic-v2|mean|"));
        assert!(k.contains("ct128x128"));
    }

    #[test]
    fn memoized_prefix_produces_identical_keys() {
        let cfg = OverlapConfig::default();
        let prefix = TuneCache::key_prefix("mlp", "h800x8", "analytic-v2", "p95");
        assert_eq!(
            TuneCache::key_in(&prefix, &cfg),
            TuneCache::key("mlp", "h800x8", "analytic-v2", "p95", &cfg)
        );
    }

    #[test]
    fn keys_differ_across_cost_model_revisions() {
        let cfg = OverlapConfig::default();
        let analytic = TuneCache::key("mlp", "h800x8", "analytic-v2", "mean", &cfg);
        let calibrated = TuneCache::key("mlp", "h800x8", "calibrated-00ff", "mean", &cfg);
        assert_ne!(analytic, calibrated);
        let mut cache = TuneCache::in_memory();
        cache.insert(analytic.clone(), OverlapReport::new(1.0, 0.5, 0.5));
        assert!(cache.get(&analytic).is_some());
        assert!(
            cache.get(&calibrated).is_none(),
            "an entry written under one revision must miss under another"
        );
    }

    #[test]
    fn stale_entries_are_counted_per_scope() {
        let cfg = OverlapConfig::default();
        let r = OverlapReport::new(1.0, 0.5, 0.5);
        let mut cache = TuneCache::in_memory();
        cache.insert(
            TuneCache::key("mlp", "h800x8", "analytic-v2", "mean", &cfg),
            r,
        );
        cache.insert(
            TuneCache::key("mlp", "h800x8", "calibrated-00ff", "mean", &cfg),
            r,
        );
        cache.insert(
            TuneCache::key("moe", "h800x8", "analytic-v2", "mean", &cfg),
            r,
        );
        let prefix = TuneCache::key_prefix("mlp", "h800x8", "analytic-v2", "mean");
        // One mlp entry under another revision is stale; the moe entry is out
        // of scope and the matching-revision entry is current.
        assert_eq!(cache.count_stale("mlp|h800x8|", &prefix), 1);
        let p95 = TuneCache::key_prefix("mlp", "h800x8", "analytic-v2", "p95");
        assert_eq!(cache.count_stale("mlp|h800x8|", &p95), 2);
        assert_eq!(cache.count_stale("lm|", &prefix), 0);
    }

    #[test]
    fn sweep_stale_removes_entries_and_shrinks_the_file() {
        let path = tmp("sweep.tsv");
        let _ = std::fs::remove_file(&path);
        let cfg = OverlapConfig::default();
        let r = OverlapReport::new(1.0, 0.5, 0.5);
        let mut cache = TuneCache::open(&path).unwrap();
        let stale_key = TuneCache::key("mlp", "h800x8", "analytic-v1", "mean", &cfg);
        let fresh_key = TuneCache::key("mlp", "h800x8", "analytic-v2", "mean", &cfg);
        let other_scope = TuneCache::key("moe", "h800x8", "analytic-v1", "mean", &cfg);
        cache.insert(stale_key.clone(), r);
        cache.insert(fresh_key.clone(), r);
        cache.insert(other_scope.clone(), r);
        cache.flush().unwrap();

        let prefix = TuneCache::key_prefix("mlp", "h800x8", "analytic-v2", "mean");
        let swept = cache.sweep_stale("mlp|h800x8|", &prefix);
        assert_eq!(swept, 1);
        assert!(cache.get(&stale_key).is_none());
        assert!(cache.get(&fresh_key).is_some());
        assert!(cache.get(&other_scope).is_some(), "out of scope, untouched");

        // The flush merge re-reads the disk file; without tombstones the
        // swept entry would ride back in through the merge.
        cache.flush().unwrap();
        let reloaded = TuneCache::open(&path).unwrap();
        assert!(
            reloaded.get(&stale_key).is_none(),
            "swept entry must be dropped from the backing file too"
        );
        assert_eq!(reloaded.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reinserting_a_swept_key_clears_its_tombstone() {
        let path = tmp("sweep-reinsert.tsv");
        let _ = std::fs::remove_file(&path);
        let cfg = OverlapConfig::default();
        let mut cache = TuneCache::open(&path).unwrap();
        let key = TuneCache::key("mlp", "h800x8", "analytic-v1", "mean", &cfg);
        cache.insert(key.clone(), OverlapReport::new(1.0, 0.5, 0.5));
        let prefix = TuneCache::key_prefix("mlp", "h800x8", "analytic-v2", "mean");
        assert_eq!(cache.sweep_stale("mlp|h800x8|", &prefix), 1);
        // Re-learned under the old prefix (e.g. the CLI switched back): the
        // fresh value must survive the next flush.
        cache.insert(key.clone(), OverlapReport::new(2.0, 1.0, 1.5));
        cache.flush().unwrap();
        let reloaded = TuneCache::open(&path).unwrap();
        assert_eq!(reloaded.get(&key).unwrap().total_s, 2.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn keys_differ_across_objectives() {
        let cfg = OverlapConfig::default();
        let mean = TuneCache::key("moe", "h800x8", "analytic-v2", "mean", &cfg);
        let p95 = TuneCache::key("moe", "h800x8", "analytic-v2", "p95", &cfg);
        assert_ne!(mean, p95);
        let mut cache = TuneCache::in_memory();
        cache.insert(mean.clone(), OverlapReport::new(1.0, 0.5, 0.5));
        assert!(cache.get(&mean).is_some());
        assert!(
            cache.get(&p95).is_none(),
            "a mean-tuned entry must miss under a percentile objective"
        );
    }
}
