//! Persistent tuning cache keyed by `(workload, cluster, config)`.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use tilelink::{OverlapConfig, OverlapReport};

use crate::{Result, TuneError};

/// Environment variable overriding the default cache location.
pub const CACHE_PATH_ENV: &str = "TILELINK_TUNE_CACHE";

/// A persistent map from tuning keys to simulated timing reports.
///
/// The on-disk format is a line-oriented TSV so cache files can be inspected
/// and diffed: `key<TAB>total_s<TAB>comm_only_s<TAB>comp_only_s`. Keys combine
/// the oracle's workload key, the [`crate::cluster_key`] of the cluster, the
/// cost-model revision ([`crate::CostOracle::cost_revision`]), the objective
/// key ([`crate::Objective::key`]) and [`OverlapConfig::cache_key`], none of
/// which contain tabs or newlines. Because the revision and the objective are
/// part of the key, entries evaluated under a different cost model — or tuned
/// for a different statistic of the sampled makespans — simply miss: a stale
/// cache self-invalidates instead of serving timings the current model would
/// not produce, and mean-tuned entries never alias with p99-tuned ones.
///
/// Unparseable lines are skipped on load (a truncated line from an interrupted
/// run only loses that entry, never the whole cache).
#[derive(Debug)]
pub struct TuneCache {
    path: Option<PathBuf>,
    entries: HashMap<String, OverlapReport>,
}

impl TuneCache {
    /// An in-memory cache that never touches the filesystem.
    pub fn in_memory() -> Self {
        Self {
            path: None,
            entries: HashMap::new(),
        }
    }

    /// Opens (or initialises) a cache backed by `path`.
    ///
    /// A missing file is treated as an empty cache; it is created on the first
    /// [`TuneCache::flush`].
    ///
    /// # Errors
    ///
    /// Returns [`TuneError::CacheIo`] if the file exists but cannot be read.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut entries = HashMap::new();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    let mut parts = line.split('\t');
                    let (Some(key), Some(total), Some(comm), Some(comp)) =
                        (parts.next(), parts.next(), parts.next(), parts.next())
                    else {
                        continue;
                    };
                    let (Ok(total), Ok(comm), Ok(comp)) = (
                        total.parse::<f64>(),
                        comm.parse::<f64>(),
                        comp.parse::<f64>(),
                    ) else {
                        continue;
                    };
                    entries.insert(key.to_string(), OverlapReport::new(total, comm, comp));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(TuneError::CacheIo {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })
            }
        }
        Ok(Self {
            path: Some(path),
            entries,
        })
    }

    /// The default cache location: `$TILELINK_TUNE_CACHE` if set, otherwise
    /// `tilelink-tune-cache.tsv` in the system temp directory.
    pub fn default_path() -> PathBuf {
        std::env::var_os(CACHE_PATH_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("tilelink-tune-cache.tsv"))
    }

    /// Opens the default cache (see [`TuneCache::default_path`]). Falls back
    /// to an in-memory cache if the file exists but is unreadable.
    pub fn open_default() -> Self {
        Self::open(Self::default_path()).unwrap_or_else(|_| Self::in_memory())
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The shared `workload|cluster|revision|objective` prefix of every key
    /// of one tuning run.
    ///
    /// All four parts are fixed for the duration of a [`crate::Tuner::tune`]
    /// call, so the tuner builds this once per run and derives per-candidate
    /// keys with [`TuneCache::key_in`] instead of re-assembling (and
    /// re-allocating) the full quadruple on every cache probe.
    pub fn key_prefix(
        workload_key: &str,
        cluster_key: &str,
        cost_revision: &str,
        objective_key: &str,
    ) -> String {
        format!("{workload_key}|{cluster_key}|{cost_revision}|{objective_key}")
    }

    /// The full cache key of one candidate under a memoized
    /// [`TuneCache::key_prefix`].
    pub fn key_in(prefix: &str, cfg: &OverlapConfig) -> String {
        format!("{prefix}|{}", cfg.cache_key())
    }

    /// The full cache key for one (workload, cluster, cost-model revision,
    /// objective, config) quintuple.
    pub fn key(
        workload_key: &str,
        cluster_key: &str,
        cost_revision: &str,
        objective_key: &str,
        cfg: &OverlapConfig,
    ) -> String {
        Self::key_in(
            &Self::key_prefix(workload_key, cluster_key, cost_revision, objective_key),
            cfg,
        )
    }

    /// Looks up a cached report.
    pub fn get(&self, key: &str) -> Option<OverlapReport> {
        self.entries.get(key).copied()
    }

    /// Number of entries for the same `workload|cluster` scope that were
    /// recorded under a *different* cost-model revision or objective than
    /// `current_prefix` (a full [`TuneCache::key_prefix`]).
    ///
    /// These entries are not wrong — they self-invalidate by missing — but
    /// every one of them represents an oracle call the current run has to
    /// repeat, which is worth surfacing in the metrics registry.
    pub fn count_stale(&self, scope: &str, current_prefix: &str) -> usize {
        let current = format!("{current_prefix}|");
        self.entries
            .keys()
            .filter(|k| k.starts_with(scope) && !k.starts_with(&current))
            .count()
    }

    /// Inserts (or replaces) a cached report. Call [`TuneCache::flush`] to
    /// persist.
    pub fn insert(&mut self, key: String, report: OverlapReport) {
        self.entries.insert(key, report);
    }

    /// Writes the cache to its backing file (no-op for in-memory caches).
    ///
    /// Entries are written sorted by key so the file is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`TuneError::CacheIo`] on any filesystem error.
    pub fn flush(&self) -> Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let io_err = |e: std::io::Error| TuneError::CacheIo {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(io_err)?;
            }
        }
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort();
        let mut out = Vec::with_capacity(self.entries.len() * 64);
        for key in keys {
            let r = &self.entries[key];
            writeln!(
                out,
                "{key}\t{:.17e}\t{:.17e}\t{:.17e}",
                r.total_s, r.comm_only_s, r.comp_only_s
            )
            .map_err(io_err)?;
        }
        std::fs::write(path, out).map_err(io_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tilelink-tune-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_through_disk() {
        let path = tmp("roundtrip.tsv");
        let _ = std::fs::remove_file(&path);
        let mut cache = TuneCache::open(&path).unwrap();
        assert!(cache.is_empty());
        let key = TuneCache::key("w", "c", "analytic-v2", "mean", &OverlapConfig::default());
        cache.insert(key.clone(), OverlapReport::new(1.25e-3, 5e-4, 1e-3));
        cache.flush().unwrap();

        let reloaded = TuneCache::open(&path).unwrap();
        assert_eq!(reloaded.len(), 1);
        let r = reloaded.get(&key).unwrap();
        assert_eq!(r.total_s, 1.25e-3);
        assert_eq!(r.comm_only_s, 5e-4);
        assert_eq!(r.comp_only_s, 1e-3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_lines_are_skipped() {
        let path = tmp("corrupt.tsv");
        std::fs::write(&path, "good\t1.0\t0.5\t0.5\nbad line\nworse\tnan-ish\t\t\n").unwrap();
        let cache = TuneCache::open(&path).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get("good").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn in_memory_cache_never_writes() {
        let mut cache = TuneCache::in_memory();
        cache.insert("k".into(), OverlapReport::new(1.0, 0.5, 0.5));
        cache.flush().unwrap();
        assert!(cache.path().is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_embed_all_five_parts() {
        let k = TuneCache::key(
            "mlp",
            "h800x8",
            "analytic-v2",
            "mean",
            &OverlapConfig::default(),
        );
        assert!(k.starts_with("mlp|h800x8|analytic-v2|mean|"));
        assert!(k.contains("ct128x128"));
    }

    #[test]
    fn memoized_prefix_produces_identical_keys() {
        let cfg = OverlapConfig::default();
        let prefix = TuneCache::key_prefix("mlp", "h800x8", "analytic-v2", "p95");
        assert_eq!(
            TuneCache::key_in(&prefix, &cfg),
            TuneCache::key("mlp", "h800x8", "analytic-v2", "p95", &cfg)
        );
    }

    #[test]
    fn keys_differ_across_cost_model_revisions() {
        let cfg = OverlapConfig::default();
        let analytic = TuneCache::key("mlp", "h800x8", "analytic-v2", "mean", &cfg);
        let calibrated = TuneCache::key("mlp", "h800x8", "calibrated-00ff", "mean", &cfg);
        assert_ne!(analytic, calibrated);
        let mut cache = TuneCache::in_memory();
        cache.insert(analytic.clone(), OverlapReport::new(1.0, 0.5, 0.5));
        assert!(cache.get(&analytic).is_some());
        assert!(
            cache.get(&calibrated).is_none(),
            "an entry written under one revision must miss under another"
        );
    }

    #[test]
    fn stale_entries_are_counted_per_scope() {
        let cfg = OverlapConfig::default();
        let r = OverlapReport::new(1.0, 0.5, 0.5);
        let mut cache = TuneCache::in_memory();
        cache.insert(
            TuneCache::key("mlp", "h800x8", "analytic-v2", "mean", &cfg),
            r,
        );
        cache.insert(
            TuneCache::key("mlp", "h800x8", "calibrated-00ff", "mean", &cfg),
            r,
        );
        cache.insert(
            TuneCache::key("moe", "h800x8", "analytic-v2", "mean", &cfg),
            r,
        );
        let prefix = TuneCache::key_prefix("mlp", "h800x8", "analytic-v2", "mean");
        // One mlp entry under another revision is stale; the moe entry is out
        // of scope and the matching-revision entry is current.
        assert_eq!(cache.count_stale("mlp|h800x8|", &prefix), 1);
        let p95 = TuneCache::key_prefix("mlp", "h800x8", "analytic-v2", "p95");
        assert_eq!(cache.count_stale("mlp|h800x8|", &p95), 2);
        assert_eq!(cache.count_stale("lm|", &prefix), 0);
    }

    #[test]
    fn keys_differ_across_objectives() {
        let cfg = OverlapConfig::default();
        let mean = TuneCache::key("moe", "h800x8", "analytic-v2", "mean", &cfg);
        let p95 = TuneCache::key("moe", "h800x8", "analytic-v2", "p95", &cfg);
        assert_ne!(mean, p95);
        let mut cache = TuneCache::in_memory();
        cache.insert(mean.clone(), OverlapReport::new(1.0, 0.5, 0.5));
        assert!(cache.get(&mean).is_some());
        assert!(
            cache.get(&p95).is_none(),
            "a mean-tuned entry must miss under a percentile objective"
        );
    }
}
