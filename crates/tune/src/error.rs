//! Error type of the autotuner.

use tilelink::TileLinkError;

/// Everything that can go wrong while tuning.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// The search space pruned down to zero valid candidates.
    EmptySpace {
        /// Candidates enumerated before pruning.
        unpruned: usize,
    },
    /// Every candidate failed to compile or simulate; the last error is kept.
    AllCandidatesFailed {
        /// Number of candidates attempted.
        attempted: usize,
        /// The error of the last attempted candidate.
        last: TileLinkError,
    },
    /// The persistent cache file could not be read or written.
    CacheIo {
        /// Path of the cache file.
        path: String,
        /// Operating-system error message.
        message: String,
    },
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::EmptySpace { unpruned } => write!(
                f,
                "search space is empty after pruning ({unpruned} candidates before validation)"
            ),
            TuneError::AllCandidatesFailed { attempted, last } => write!(
                f,
                "all {attempted} candidates failed to evaluate; last error: {last}"
            ),
            TuneError::CacheIo { path, message } => {
                write!(f, "tuning cache {path}: {message}")
            }
        }
    }
}

impl std::error::Error for TuneError {}

impl From<TileLinkError> for TuneError {
    fn from(e: TileLinkError) -> Self {
        TuneError::AllCandidatesFailed {
            attempted: 1,
            last: e,
        }
    }
}
