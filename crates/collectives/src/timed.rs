//! Timed collectives: task-graph builders for the cluster simulator.
//!
//! These builders reproduce the *cost structure* of NCCL's ring collectives so
//! that the non-overlapped ("cuBLAS+NCCL") and decomposed ("Async-TP")
//! baselines of the paper's figures can be simulated. Every builder returns a
//! [`CollectiveSchedule`] with per-rank start and end marker tasks so callers
//! can wire the collective into a larger dependency graph.

use tilelink_sim::{
    ClusterSpec, CostModel, CostProvider, GpuSpec, ResourceKind, TaskGraph, TaskId, Work,
};

/// Which hardware resource carries the collective's data movement.
///
/// NCCL kernels copy with SMs; host-driven peer copies use the DMA copy
/// engines. The distinction matters because SM-driven copies contend with
/// compute (the "resource mapping" subspace of Figure 2c).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommResource {
    /// Copy with `units` streaming multiprocessors (NCCL-style).
    Sm {
        /// Number of SMs dedicated to the copy kernels.
        units: u64,
    },
    /// Copy with the DMA copy engine (cudaMemcpyPeerAsync-style).
    CopyEngine,
}

/// Per-rank entry and exit points of a collective inside a larger task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveSchedule {
    /// One marker task per rank; add dependencies *into* these to delay the collective.
    pub start: Vec<TaskId>,
    /// One marker task per rank; add dependencies *out of* these to wait for the collective.
    pub end: Vec<TaskId>,
}

fn markers(
    graph: &mut TaskGraph,
    cluster: &ClusterSpec,
    label: &str,
    launch_latency: bool,
) -> (Vec<TaskId>, Vec<TaskId>) {
    let world = cluster.world_size();
    let latency = if launch_latency {
        cluster.gpu.kernel_launch_s()
    } else {
        0.0
    };
    let start: Vec<TaskId> = (0..world)
        .map(|r| graph.add_host_latency(format!("{label}/launch/r{r}"), r, latency))
        .collect();
    let end: Vec<TaskId> = (0..world)
        .map(|r| graph.add_host_latency(format!("{label}/done/r{r}"), r, 0.0))
        .collect();
    (start, end)
}

/// Appends a ring AllGather of `bytes_per_rank` bytes contributed by each rank.
///
/// The ring runs `world_size - 1` steps; at each step every rank forwards one
/// shard to its right neighbour. The step of rank `r` depends on the previous
/// step of rank `r` *and* of rank `r - 1`, which reproduces the pipeline
/// behaviour (total time ≈ `(R-1)/R × data / bandwidth` once the pipeline is
/// full).
pub fn ring_all_gather(
    graph: &mut TaskGraph,
    cluster: &ClusterSpec,
    bytes_per_rank: f64,
    label: &str,
    resource: CommResource,
) -> CollectiveSchedule {
    let world = cluster.world_size();
    let (start, end) = markers(graph, cluster, label, true);
    if world == 1 {
        for r in 0..world {
            graph.add_dep(start[r], end[r]);
        }
        return CollectiveSchedule { start, end };
    }
    let mut prev_step: Vec<Option<TaskId>> = vec![None; world];
    for step in 0..world - 1 {
        let mut this_step = vec![None; world];
        for rank in 0..world {
            let dst = (rank + 1) % world;
            let send = match resource {
                CommResource::CopyEngine => graph.add_task(
                    format!("{label}/comm_ag/step{step}/r{rank}"),
                    rank,
                    ResourceKind::DmaEngine,
                    1,
                    Work::LinkBytes {
                        bytes: bytes_per_rank,
                        dst_rank: dst,
                    },
                ),
                // SM-driven NCCL copy kernels saturate the port; their SM
                // footprint is small, so the dominant effect is LinkOut occupancy.
                CommResource::Sm { .. } => graph.add_task(
                    format!("{label}/comm_ag/step{step}/r{rank}"),
                    rank,
                    ResourceKind::LinkOut,
                    GpuSpec::LINK_PORT_SHARES,
                    Work::LinkBytes {
                        bytes: bytes_per_rank,
                        dst_rank: dst,
                    },
                ),
            };
            match step {
                0 => graph.add_dep(start[rank], send),
                _ => {
                    if let Some(p) = prev_step[rank] {
                        graph.add_dep(p, send);
                    }
                    let left = (rank + world - 1) % world;
                    if let Some(p) = prev_step[left] {
                        graph.add_dep(p, send);
                    }
                }
            }
            this_step[rank] = Some(send);
        }
        prev_step = this_step;
    }
    for rank in 0..world {
        // A rank is done when it has sent its last shard and its left neighbour
        // has delivered the final shard to it.
        if let Some(p) = prev_step[rank] {
            graph.add_dep(p, end[rank]);
        }
        let left = (rank + world - 1) % world;
        if let Some(p) = prev_step[left] {
            graph.add_dep(p, end[rank]);
        }
    }
    CollectiveSchedule { start, end }
}

/// Appends a ring ReduceScatter where every rank contributes
/// `bytes_per_rank * world_size` bytes and keeps one reduced shard.
///
/// Cost structure is identical to the AllGather ring (each rank forwards
/// `world_size - 1` shards of `bytes_per_rank` bytes) plus an HBM-bound
/// reduction of the received data at every step.
pub fn ring_reduce_scatter(
    graph: &mut TaskGraph,
    cluster: &ClusterSpec,
    bytes_per_rank: f64,
    label: &str,
    resource: CommResource,
) -> CollectiveSchedule {
    let world = cluster.world_size();
    let (start, end) = markers(graph, cluster, label, true);
    if world == 1 {
        for r in 0..world {
            graph.add_dep(start[r], end[r]);
        }
        return CollectiveSchedule { start, end };
    }
    let reduce_sms = match resource {
        CommResource::Sm { units } => units.max(1),
        CommResource::CopyEngine => 16,
    };
    let mut prev_step: Vec<Option<TaskId>> = vec![None; world];
    for step in 0..world - 1 {
        let mut this_step = vec![None; world];
        for rank in 0..world {
            let dst = (rank + 1) % world;
            let send = graph.add_task(
                format!("{label}/comm_rs/step{step}/r{rank}"),
                rank,
                match resource {
                    CommResource::CopyEngine => ResourceKind::DmaEngine,
                    CommResource::Sm { .. } => ResourceKind::LinkOut,
                },
                match resource {
                    CommResource::CopyEngine => 1,
                    CommResource::Sm { .. } => GpuSpec::LINK_PORT_SHARES,
                },
                Work::LinkBytes {
                    bytes: bytes_per_rank,
                    dst_rank: dst,
                },
            );
            // Element-wise reduction of the received shard with the local shard.
            let reduce = graph.add_task(
                format!("{label}/comm_rs_reduce/step{step}/r{rank}"),
                rank,
                ResourceKind::Sm,
                reduce_sms,
                Work::HbmBytes {
                    bytes: bytes_per_rank * 3.0,
                },
            );
            match step {
                0 => graph.add_dep(start[rank], send),
                _ => {
                    if let Some(p) = prev_step[rank] {
                        graph.add_dep(p, send);
                    }
                }
            }
            // The reduction consumes the shard pushed by the left neighbour.
            let left = (rank + world - 1) % world;
            if step > 0 {
                if let Some(p) = prev_step[left] {
                    graph.add_dep(p, send);
                }
            }
            graph.add_dep(send, reduce);
            this_step[rank] = Some(reduce);
        }
        prev_step = this_step;
    }
    for rank in 0..world {
        if let Some(p) = prev_step[rank] {
            graph.add_dep(p, end[rank]);
        }
        let left = (rank + world - 1) % world;
        if let Some(p) = prev_step[left] {
            graph.add_dep(p, end[rank]);
        }
    }
    CollectiveSchedule { start, end }
}

/// Appends an AllReduce (ring ReduceScatter followed by ring AllGather).
pub fn all_reduce(
    graph: &mut TaskGraph,
    cluster: &ClusterSpec,
    bytes_per_rank: f64,
    label: &str,
    resource: CommResource,
) -> CollectiveSchedule {
    let rs = ring_reduce_scatter(
        graph,
        cluster,
        bytes_per_rank,
        &format!("{label}/rs"),
        resource,
    );
    let ag = ring_all_gather(
        graph,
        cluster,
        bytes_per_rank,
        &format!("{label}/ag"),
        resource,
    );
    for r in 0..cluster.world_size() {
        graph.add_dep(rs.end[r], ag.start[r]);
    }
    CollectiveSchedule {
        start: rs.start,
        end: ag.end,
    }
}

/// Appends an all-to-all where every rank sends `bytes_per_pair` bytes to every
/// other rank (full-mesh, all transfers issued concurrently and serialised by
/// the port bandwidth model).
pub fn all_to_all(
    graph: &mut TaskGraph,
    cluster: &ClusterSpec,
    bytes_per_pair: f64,
    label: &str,
) -> CollectiveSchedule {
    let world = cluster.world_size();
    let (start, end) = markers(graph, cluster, label, true);
    for src in 0..world {
        for dst in 0..world {
            if src == dst {
                continue;
            }
            let t = graph.add_task(
                format!("{label}/comm_a2a/{src}->{dst}"),
                src,
                ResourceKind::LinkOut,
                (GpuSpec::LINK_PORT_SHARES / (world as u64 - 1)).max(1),
                Work::LinkBytes {
                    bytes: bytes_per_pair,
                    dst_rank: dst,
                },
            );
            graph.add_dep(start[src], t);
            graph.add_dep(t, end[src]);
            graph.add_dep(t, end[dst]);
        }
    }
    CollectiveSchedule { start, end }
}

/// Seconds of the *slowest* hop of a rank → rank+1 ring moving `bytes` per
/// step, priced through `cost` (so it carries the provider's per-message α
/// floor and any calibrated bandwidth curve).
///
/// On a single node every hop rides NVLink and this equals the rank 0→1 hop;
/// on a multi-node ring the node-crossing hops ride InfiniBand and the ring
/// pipeline drains at that bottleneck rate. Every closed-form ring estimate
/// (here and in the workload baselines) prices hops through this one helper so
/// the estimators cannot drift apart.
pub fn ring_hop_seconds(cost: &dyn CostProvider, bytes: f64) -> f64 {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    if world <= 1 {
        return 0.0;
    }
    (0..world)
        .map(|r| cost.link_seconds(r, (r + 1) % world, bytes))
        .fold(0.0, f64::max)
}

/// Closed-form estimate of a ring collective's duration in seconds: `(R-1)`
/// pipeline steps of `bytes_per_rank` at the slowest hop in the ring
/// ([`ring_hop_seconds`]), priced by an explicit cost provider.
///
/// Useful for sanity checks and quick analytical comparisons; the benchmark
/// harness uses the task-graph builders so that overlap with compute is
/// captured.
pub fn ring_collective_seconds_with(cost: &dyn CostProvider, bytes_per_rank: f64) -> f64 {
    let world = cost.cluster().world_size();
    if world <= 1 {
        return 0.0;
    }
    (world - 1) as f64 * ring_hop_seconds(cost, bytes_per_rank)
}

/// [`ring_collective_seconds_with`] priced by the default analytic
/// [`CostModel`] for `cluster` (the historical signature).
pub fn ring_collective_seconds(cluster: &ClusterSpec, bytes_per_rank: f64) -> f64 {
    ring_collective_seconds_with(&CostModel::new(cluster.clone()), bytes_per_rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilelink_sim::Engine;

    fn run(graph: &TaskGraph, cluster: &ClusterSpec) -> f64 {
        Engine::new(cluster.clone()).run(graph).unwrap().makespan()
    }

    #[test]
    fn all_gather_time_scales_with_world_size_fraction() {
        // Ring AG moves (R-1)/R of the data through each port: doubling the data
        // should roughly double the makespan.
        let cluster = ClusterSpec::h800_node(8);
        let mut g1 = TaskGraph::new();
        ring_all_gather(
            &mut g1,
            &cluster,
            16e6,
            "ag",
            CommResource::Sm { units: 20 },
        );
        let mut g2 = TaskGraph::new();
        ring_all_gather(
            &mut g2,
            &cluster,
            32e6,
            "ag",
            CommResource::Sm { units: 20 },
        );
        let t1 = run(&g1, &cluster);
        let t2 = run(&g2, &cluster);
        assert!(t2 > 1.7 * t1 && t2 < 2.3 * t1, "t1={t1} t2={t2}");
    }

    #[test]
    fn all_gather_matches_closed_form_estimate() {
        let cluster = ClusterSpec::h800_node(8);
        let bytes = 64e6;
        let mut g = TaskGraph::new();
        ring_all_gather(
            &mut g,
            &cluster,
            bytes,
            "ag",
            CommResource::Sm { units: 20 },
        );
        let simulated = run(&g, &cluster);
        let estimate = ring_collective_seconds(&cluster, bytes);
        assert!(
            simulated > estimate * 0.9 && simulated < estimate * 1.5,
            "simulated {simulated} vs estimate {estimate}"
        );
    }

    #[test]
    fn reduce_scatter_is_slower_than_all_gather_of_same_bytes() {
        // The RS ring does the same transfers plus the reduction work.
        let cluster = ClusterSpec::h800_node(8);
        let mut ag = TaskGraph::new();
        ring_all_gather(
            &mut ag,
            &cluster,
            16e6,
            "ag",
            CommResource::Sm { units: 20 },
        );
        let mut rs = TaskGraph::new();
        ring_reduce_scatter(
            &mut rs,
            &cluster,
            16e6,
            "rs",
            CommResource::Sm { units: 20 },
        );
        assert!(run(&rs, &cluster) >= run(&ag, &cluster));
    }

    #[test]
    fn all_reduce_costs_about_twice_a_ring_pass() {
        let cluster = ClusterSpec::h800_node(8);
        let bytes = 32e6;
        let mut ar = TaskGraph::new();
        all_reduce(
            &mut ar,
            &cluster,
            bytes,
            "ar",
            CommResource::Sm { units: 20 },
        );
        let t_ar = run(&ar, &cluster);
        let single_pass = ring_collective_seconds(&cluster, bytes);
        assert!(t_ar > 1.8 * single_pass && t_ar < 3.0 * single_pass);
    }

    #[test]
    fn inter_node_collectives_are_slower() {
        let one = ClusterSpec::h800_node(8);
        let two = ClusterSpec::h800_multi_node(2);
        let mut g1 = TaskGraph::new();
        ring_all_gather(&mut g1, &one, 16e6, "ag", CommResource::CopyEngine);
        let mut g2 = TaskGraph::new();
        ring_all_gather(&mut g2, &two, 16e6, "ag", CommResource::CopyEngine);
        assert!(run(&g2, &two) > run(&g1, &one));
    }

    #[test]
    fn single_rank_collectives_cost_only_the_launch() {
        let cluster = ClusterSpec::h800_node(1);
        let mut g = TaskGraph::new();
        ring_all_gather(&mut g, &cluster, 1e9, "ag", CommResource::CopyEngine);
        let t = run(&g, &cluster);
        assert!(t <= cluster.gpu.kernel_launch_s() * 1.01);
        assert_eq!(ring_collective_seconds(&cluster, 1e9), 0.0);
    }

    #[test]
    fn closed_form_ring_pays_the_bottleneck_hop_across_nodes() {
        // Same per-rank bytes: the two-node ring has more hops *and* each
        // pipeline step drains at InfiniBand rate, so it must cost more than
        // (15/7)x the single-node estimate (the hop-count ratio alone).
        let one = ClusterSpec::h800_node(8);
        let two = ClusterSpec::h800_multi_node(2);
        let bytes = 16e6;
        let t1 = ring_collective_seconds(&one, bytes);
        let t2 = ring_collective_seconds(&two, bytes);
        assert!(t2 > t1 * 15.0 / 7.0, "t1={t1} t2={t2}");
        // And the bottleneck hop itself is the IB hop, not the NVLink one.
        let cost = CostModel::new(two.clone());
        let hop = ring_hop_seconds(&cost, bytes);
        assert_eq!(hop, cost.link_seconds(7, 8, bytes));
        assert!(hop > cost.link_seconds(0, 1, bytes));
    }

    #[test]
    fn closed_form_ring_has_the_per_message_alpha_floor() {
        // A tiny message is latency-bound: each of the (R-1) steps pays at
        // least the link class's α, never pure bandwidth.
        let cluster = ClusterSpec::h800_node(8);
        let cost = CostModel::new(cluster.clone());
        let tiny = ring_collective_seconds(&cluster, 1.0);
        let alpha = cost.link_seconds(0, 1, 0.0);
        assert!(alpha > 0.0);
        assert!(tiny >= 7.0 * alpha, "tiny={tiny} alpha={alpha}");
    }

    #[test]
    fn closed_form_wrapper_matches_the_provider_form() {
        for cluster in [ClusterSpec::h800_node(8), ClusterSpec::h800_multi_node(2)] {
            let cost = CostModel::new(cluster.clone());
            for bytes in [1.0, 1e6, 64e6] {
                assert_eq!(
                    ring_collective_seconds(&cluster, bytes),
                    ring_collective_seconds_with(&cost, bytes)
                );
            }
        }
        assert_eq!(
            ring_hop_seconds(&CostModel::new(ClusterSpec::h800_node(1)), 1e9),
            0.0
        );
    }

    #[test]
    fn all_to_all_completes_and_uses_every_pair() {
        let cluster = ClusterSpec::h800_node(4);
        let mut g = TaskGraph::new();
        let sched = all_to_all(&mut g, &cluster, 8e6, "a2a");
        assert_eq!(sched.start.len(), 4);
        let trace = Engine::new(cluster.clone()).run(&g).unwrap();
        let transfers = trace
            .entries()
            .iter()
            .filter(|e| e.name.contains("comm_a2a"))
            .count();
        assert_eq!(transfers, 4 * 3);
    }

    #[test]
    fn copy_engine_all_gather_leaves_sms_idle() {
        let cluster = ClusterSpec::h800_node(4);
        let mut g = TaskGraph::new();
        ring_all_gather(&mut g, &cluster, 64e6, "ag", CommResource::CopyEngine);
        let trace = Engine::new(cluster.clone()).run(&g).unwrap();
        assert_eq!(trace.utilization(0, ResourceKind::Sm), 0.0);
        assert!(trace.utilization(0, ResourceKind::DmaEngine) > 0.0);
    }
}
