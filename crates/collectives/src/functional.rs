//! Functional collectives: real data movement over symmetric memory.

use tilelink_shmem::RankContext;

/// A per-rank communicator, the moral equivalent of a NCCL communicator handle.
///
/// Every collective call allocates fresh symmetric buffers tagged with an
/// internal sequence number, so the *order* of collective calls must match
/// across ranks (the usual SPMD contract of NCCL / `torch.distributed`).
///
/// The functional collectives are used as the ground-truth reference for every
/// overlapped kernel in the repository: the paper's tensor-parallel layers are
/// expressible as `AllGather + GEMM` and `GEMM + ReduceScatter`
/// (Section 2.1), so "collective then compute" with this communicator defines
/// the values the fused TileLink kernels must reproduce.
pub struct Comm {
    ctx: RankContext,
    seq: u64,
}

impl Comm {
    /// Wraps a rank context into a communicator.
    pub fn new(ctx: RankContext) -> Self {
        Self { ctx, seq: 0 }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.ctx.rank()
    }

    /// Number of ranks in the communicator.
    pub fn world_size(&self) -> usize {
        self.ctx.world_size()
    }

    /// The underlying rank context.
    pub fn context(&self) -> &RankContext {
        &self.ctx
    }

    /// Waits for every rank to reach this point.
    pub fn barrier(&self) {
        self.ctx.barrier();
    }

    fn next_tag(&mut self, op: &str) -> String {
        let tag = format!("__coll/{op}/{}", self.seq);
        self.seq += 1;
        tag
    }

    /// Gathers every rank's `local` slice and returns the concatenation in rank
    /// order (`[world_size * local.len()]`).
    ///
    /// Implemented in *pull* mode: every rank publishes its shard and then reads
    /// every peer's shard, which is the same data-flow as the paper's pull-mode
    /// AllGather producer (Figure 3b).
    ///
    /// # Panics
    ///
    /// Panics if ranks pass slices of different lengths.
    pub fn all_gather(&mut self, local: &[f32]) -> Vec<f32> {
        let tag = self.next_tag("ag");
        let mine = self.ctx.alloc(&tag, local.len());
        mine.write_slice(0, local);
        self.ctx.barrier();
        let mut out = Vec::with_capacity(local.len() * self.world_size());
        for r in 0..self.world_size() {
            let remote = self.ctx.remote(r, &tag);
            assert_eq!(
                remote.len(),
                local.len(),
                "all_gather requires equal shard lengths on every rank"
            );
            out.extend(remote.read_range(0, remote.len()));
        }
        self.ctx.barrier();
        out
    }

    /// Ring reduce-scatter: sums `local` element-wise across ranks and returns
    /// this rank's shard (`local.len() / world_size` values, shard `r` for rank
    /// `r`).
    ///
    /// Implemented as the classic `world_size - 1`-step ring with push-mode
    /// transfers and per-stage signals, the same communication pattern as the
    /// paper's GEMM + ReduceScatter kernel (Figure 4).
    ///
    /// # Panics
    ///
    /// Panics if `local.len()` is not divisible by the world size.
    pub fn reduce_scatter(&mut self, local: &[f32]) -> Vec<f32> {
        let world = self.world_size();
        assert_eq!(
            local.len() % world,
            0,
            "reduce_scatter input length {} is not divisible by world size {}",
            local.len(),
            world
        );
        let shard = local.len() / world;
        let tag = self.next_tag("rs");
        if world == 1 {
            return local.to_vec();
        }

        // Per-stage landing buffers and signals on every rank.
        for stage in 0..world - 1 {
            self.ctx.alloc(&format!("{tag}/stage{stage}"), shard);
        }
        let flags = self.ctx.alloc_signals(&format!("{tag}/flags"), world - 1);
        self.ctx.barrier();

        let rank = self.rank();
        let next = (rank + 1) % world;
        let chunk = |idx: usize| &local[idx * shard..(idx + 1) * shard];

        // The chunk this rank is currently accumulating/forwarding.
        let mut acc: Vec<f32> = Vec::new();
        for stage in 0..world - 1 {
            let send_idx = (rank + 2 * world - stage - 1) % world;
            let to_send: Vec<f32> = if stage == 0 {
                chunk(send_idx).to_vec()
            } else {
                acc.clone()
            };
            // Push the partial sum into the next rank's landing buffer for this stage.
            let landing = self.ctx.remote(next, &format!("{tag}/stage{stage}"));
            landing.write_slice(0, &to_send);
            self.ctx
                .remote_signals(next, &format!("{tag}/flags"))
                .set(stage, 1);

            // Receive this stage's chunk from the previous rank and fold in our
            // own contribution.
            let recv_idx = (rank + 2 * world - stage - 2) % world;
            flags.wait_ge(stage, 1);
            let received = self
                .ctx
                .local(&format!("{tag}/stage{stage}"))
                .read_range(0, shard);
            acc = received
                .iter()
                .zip(chunk(recv_idx))
                .map(|(a, b)| a + b)
                .collect();
        }
        self.ctx.barrier();
        acc
    }

    /// Element-wise sum of `local` across every rank (every rank receives the
    /// full result).
    ///
    /// # Panics
    ///
    /// Panics if ranks pass slices of different lengths.
    pub fn all_reduce(&mut self, local: &[f32]) -> Vec<f32> {
        let tag = self.next_tag("ar");
        let mine = self.ctx.alloc(&tag, local.len());
        mine.write_slice(0, local);
        self.ctx.barrier();
        let mut out = vec![0.0f32; local.len()];
        for r in 0..self.world_size() {
            let remote = self.ctx.remote(r, &tag);
            assert_eq!(
                remote.len(),
                local.len(),
                "all_reduce requires equal lengths"
            );
            for (o, v) in out.iter_mut().zip(remote.read_range(0, remote.len())) {
                *o += v;
            }
        }
        self.ctx.barrier();
        out
    }

    /// All-to-all: splits `local` into `world_size` equal chunks and returns the
    /// concatenation of chunk `rank` from every peer.
    ///
    /// # Panics
    ///
    /// Panics if `local.len()` is not divisible by the world size.
    pub fn all_to_all(&mut self, local: &[f32]) -> Vec<f32> {
        let world = self.world_size();
        assert_eq!(
            local.len() % world,
            0,
            "all_to_all input length {} is not divisible by world size {}",
            local.len(),
            world
        );
        let chunk = local.len() / world;
        let tag = self.next_tag("a2a");
        let mine = self.ctx.alloc(&tag, local.len());
        mine.write_slice(0, local);
        self.ctx.barrier();
        let mut out = Vec::with_capacity(local.len());
        for r in 0..world {
            let remote = self.ctx.remote(r, &tag);
            out.extend(remote.read_range(self.rank() * chunk, chunk));
        }
        self.ctx.barrier();
        out
    }

    /// Broadcast from `root`: every rank returns `root`'s `local` slice.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range or ranks pass slices of different lengths.
    pub fn broadcast(&mut self, local: &[f32], root: usize) -> Vec<f32> {
        assert!(root < self.world_size(), "broadcast root out of range");
        let tag = self.next_tag("bc");
        let mine = self.ctx.alloc(&tag, local.len());
        if self.rank() == root {
            mine.write_slice(0, local);
        }
        self.ctx.barrier();
        let remote = self.ctx.remote(root, &tag);
        assert_eq!(
            remote.len(),
            local.len(),
            "broadcast requires equal lengths"
        );
        let out = remote.read_range(0, remote.len());
        self.ctx.barrier();
        out
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank())
            .field("world_size", &self.world_size())
            .field("collectives_issued", &self.seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilelink_shmem::ProcessGroup;

    fn per_rank_data(rank: usize, len: usize) -> Vec<f32> {
        (0..len).map(|i| (rank * 100 + i) as f32).collect()
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let out = ProcessGroup::launch(4, |ctx| {
            let mut comm = Comm::new(ctx);
            comm.all_gather(&per_rank_data(comm.rank(), 3))
        });
        let expected: Vec<f32> = (0..4).flat_map(|r| per_rank_data(r, 3)).collect();
        for o in out {
            assert_eq!(o, expected);
        }
    }

    #[test]
    fn reduce_scatter_returns_summed_shards() {
        let world = 4;
        let len = 8;
        let out = ProcessGroup::launch(world, |ctx| {
            let mut comm = Comm::new(ctx);
            comm.reduce_scatter(&per_rank_data(comm.rank(), len))
        });
        // expected full sum
        let mut full = vec![0.0f32; len];
        for r in 0..world {
            for (f, v) in full.iter_mut().zip(per_rank_data(r, len)) {
                *f += v;
            }
        }
        let shard = len / world;
        for (r, o) in out.iter().enumerate() {
            assert_eq!(
                o,
                &full[r * shard..(r + 1) * shard],
                "rank {r} shard mismatch"
            );
        }
    }

    #[test]
    fn reduce_scatter_single_rank_is_identity() {
        let out = ProcessGroup::launch(1, |ctx| {
            let mut comm = Comm::new(ctx);
            comm.reduce_scatter(&[1.0, 2.0])
        });
        assert_eq!(out[0], vec![1.0, 2.0]);
    }

    #[test]
    fn all_reduce_equals_reduce_scatter_plus_all_gather() {
        let world = 4;
        let len = 8;
        let out = ProcessGroup::launch(world, |ctx| {
            let mut comm = Comm::new(ctx);
            let data = per_rank_data(comm.rank(), len);
            let ar = comm.all_reduce(&data);
            let rs = comm.reduce_scatter(&data);
            let composed = comm.all_gather(&rs);
            (ar, composed)
        });
        for (ar, composed) in out {
            assert_eq!(ar, composed);
        }
    }

    #[test]
    fn all_to_all_is_a_transpose_of_chunks() {
        let world = 3;
        let out = ProcessGroup::launch(world, |ctx| {
            let mut comm = Comm::new(ctx);
            // chunk j of rank i is the single value i*10 + j
            let local: Vec<f32> = (0..world).map(|j| (comm.rank() * 10 + j) as f32).collect();
            comm.all_to_all(&local)
        });
        for (r, o) in out.iter().enumerate() {
            let expected: Vec<f32> = (0..world).map(|i| (i * 10 + r) as f32).collect();
            assert_eq!(o, &expected);
        }
    }

    #[test]
    fn broadcast_propagates_roots_data() {
        let out = ProcessGroup::launch(4, |ctx| {
            let mut comm = Comm::new(ctx);
            let local = per_rank_data(comm.rank(), 4);
            comm.broadcast(&local, 2)
        });
        for o in out {
            assert_eq!(o, per_rank_data(2, 4));
        }
    }

    #[test]
    fn repeated_collectives_do_not_interfere() {
        let out = ProcessGroup::launch(2, |ctx| {
            let mut comm = Comm::new(ctx);
            let a = comm.all_gather(&[comm.rank() as f32]);
            let b = comm.all_gather(&[10.0 + comm.rank() as f32]);
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, vec![0.0, 1.0]);
            assert_eq!(b, vec![10.0, 11.0]);
        }
    }

    #[test]
    fn debug_reports_sequence() {
        let out = ProcessGroup::launch(1, |ctx| {
            let mut comm = Comm::new(ctx);
            let _ = comm.all_gather(&[1.0]);
            format!("{comm:?}")
        });
        assert!(out[0].contains("collectives_issued: 1"));
    }
}
