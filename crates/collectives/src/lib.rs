//! # tilelink-collectives
//!
//! Collective communication for the TileLink reproduction, standing in for
//! NCCL. Two views of every collective are provided:
//!
//! * **functional** ([`Comm`]) — real data movement between rank threads over
//!   the [`tilelink_shmem`] symmetric memory, used to validate that the
//!   overlapped kernels produce bit-identical results to an unoverlapped
//!   collective + compute reference;
//! * **timed** ([`timed`]) — task-graph builders for the
//!   [`tilelink_sim`] discrete-event simulator, used by every baseline in the
//!   benchmark harness ("cuBLAS+NCCL", "CUTLASS+NCCL", Async-TP) to model the
//!   cost of the non-overlapped or decomposed collectives.
//!
//! The supported collectives are the ones the paper's workloads need
//! (Section 2.1): AllGather, ReduceScatter, AllReduce, All-to-All and
//! Broadcast.
//!
//! # Example
//!
//! ```
//! use tilelink_shmem::ProcessGroup;
//! use tilelink_collectives::Comm;
//!
//! let outputs = ProcessGroup::launch(4, |ctx| {
//!     let mut comm = Comm::new(ctx);
//!     // every rank contributes one value; all-reduce sums them
//!     comm.all_reduce(&[comm.rank() as f32 + 1.0])
//! });
//! assert!(outputs.iter().all(|o| o == &vec![10.0]));
//! ```

#![deny(missing_docs)]

mod functional;
pub mod timed;

pub use functional::Comm;
