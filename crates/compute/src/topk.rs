//! Top-k expert routing and token dispatch for MoE layers.

use crate::activation::softmax_rows;
use crate::Tensor;

/// The routing decision for a batch of tokens.
///
/// For every token we keep the `k` selected experts and their (softmax)
/// weights. This is the `topk_ids` input of the paper's AG + MoE kernel
/// (Figure 5) and drives the *dynamic* tile-centric mapping of Section 4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct Routing {
    /// Selected expert ids, `[tokens][k]`.
    pub expert_ids: Vec<Vec<usize>>,
    /// Normalised gate weights, `[tokens][k]`.
    pub weights: Vec<Vec<f32>>,
    /// Number of experts in the layer.
    pub num_experts: usize,
}

impl Routing {
    /// Number of routed tokens.
    pub fn num_tokens(&self) -> usize {
        self.expert_ids.len()
    }

    /// Routing fan-out `k`.
    pub fn top_k(&self) -> usize {
        self.expert_ids.first().map_or(0, |v| v.len())
    }

    /// Number of tokens assigned to each expert.
    pub fn expert_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_experts];
        for ids in &self.expert_ids {
            for &e in ids {
                counts[e] += 1;
            }
        }
        counts
    }
}

/// Computes softmax-gated top-k routing from router logits `[tokens, experts]`.
///
/// Ties are broken towards the lower expert id so the routing is deterministic.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or `k` is zero or larger than the number of
/// experts.
pub fn topk_routing(logits: &Tensor, k: usize) -> Routing {
    assert_eq!(logits.ndim(), 2, "router logits must be 2-D");
    let (tokens, experts) = (logits.shape()[0], logits.shape()[1]);
    assert!(
        k >= 1 && k <= experts,
        "invalid top-k {k} for {experts} experts"
    );
    let probs = softmax_rows(logits);
    let mut expert_ids = Vec::with_capacity(tokens);
    let mut weights = Vec::with_capacity(tokens);
    for t in 0..tokens {
        let mut order: Vec<usize> = (0..experts).collect();
        order.sort_by(|&a, &b| {
            probs
                .at(&[t, b])
                .partial_cmp(&probs.at(&[t, a]))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let chosen: Vec<usize> = order[..k].to_vec();
        let raw: Vec<f32> = chosen.iter().map(|&e| probs.at(&[t, e])).collect();
        let sum: f32 = raw.iter().sum();
        expert_ids.push(chosen);
        weights.push(raw.iter().map(|w| w / sum).collect());
    }
    Routing {
        expert_ids,
        weights,
        num_experts: experts,
    }
}

/// The token → expert dispatch plan derived from a [`Routing`].
///
/// Tokens are replicated `k` times (one copy per selected expert) and sorted by
/// expert so a grouped GEMM can process each expert's tokens contiguously —
/// the same "Gather ... fused into Group GEMM" arrangement that vLLM's fused
/// MoE kernels (and the paper's Figure 9 pipeline) use.
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatch {
    /// For every dispatched row (sorted by expert): the source token index.
    pub token_of_row: Vec<usize>,
    /// For every dispatched row: which of the token's k slots produced it.
    pub slot_of_row: Vec<usize>,
    /// For every dispatched row: the expert that consumes it.
    pub expert_of_row: Vec<usize>,
    /// `expert_offsets[e]..expert_offsets[e+1]` is the row range of expert `e`.
    pub expert_offsets: Vec<usize>,
}

impl Dispatch {
    /// Builds the dispatch plan for a routing decision.
    pub fn new(routing: &Routing) -> Self {
        let k = routing.top_k();
        let counts = routing.expert_counts();
        let mut expert_offsets = vec![0usize; routing.num_experts + 1];
        for e in 0..routing.num_experts {
            expert_offsets[e + 1] = expert_offsets[e] + counts[e];
        }
        let total = expert_offsets[routing.num_experts];
        let mut token_of_row = vec![0usize; total];
        let mut slot_of_row = vec![0usize; total];
        let mut expert_of_row = vec![0usize; total];
        let mut cursor = expert_offsets.clone();
        for t in 0..routing.num_tokens() {
            for s in 0..k {
                let e = routing.expert_ids[t][s];
                let row = cursor[e];
                cursor[e] += 1;
                token_of_row[row] = t;
                slot_of_row[row] = s;
                expert_of_row[row] = e;
            }
        }
        Self {
            token_of_row,
            slot_of_row,
            expert_of_row,
            expert_offsets,
        }
    }

    /// Total number of dispatched rows (`tokens × k`).
    pub fn num_rows(&self) -> usize {
        self.token_of_row.len()
    }

    /// Gathers the dispatched rows from the token matrix `[tokens, hidden]`.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is not 2-D or a token index is out of range.
    pub fn gather(&self, tokens: &Tensor) -> Tensor {
        assert_eq!(tokens.ndim(), 2, "gather expects a 2-D token matrix");
        let hidden = tokens.shape()[1];
        let mut out = Tensor::zeros(&[self.num_rows(), hidden]);
        for (row, &t) in self.token_of_row.iter().enumerate() {
            for h in 0..hidden {
                out.set(&[row, h], tokens.at(&[t, h]));
            }
        }
        out
    }

    /// Scatter-reduces expert outputs `[rows, hidden]` back to `[tokens, hidden]`,
    /// weighting each row by its gate weight (the "Scatter + Topk Reduce"
    /// epilogue of the MoE layer's second half).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the routing.
    pub fn combine(&self, routing: &Routing, expert_out: &Tensor) -> Tensor {
        assert_eq!(expert_out.ndim(), 2, "combine expects a 2-D expert output");
        assert_eq!(
            expert_out.shape()[0],
            self.num_rows(),
            "expert output rows must match dispatch rows"
        );
        let hidden = expert_out.shape()[1];
        let mut out = Tensor::zeros(&[routing.num_tokens(), hidden]);
        for row in 0..self.num_rows() {
            let t = self.token_of_row[row];
            let s = self.slot_of_row[row];
            let w = routing.weights[t][s];
            for h in 0..hidden {
                let cur = out.at(&[t, h]);
                out.set(&[t, h], cur + w * expert_out.at(&[row, h]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits() -> Tensor {
        Tensor::from_vec(
            vec![
                1.0, 5.0, 0.0, 2.0, // token 0 -> experts 1, 3
                4.0, 0.0, 3.0, 1.0, // token 1 -> experts 0, 2
                0.0, 0.0, 9.0, 8.0, // token 2 -> experts 2, 3
            ],
            &[3, 4],
        )
    }

    #[test]
    fn routing_selects_highest_logits() {
        let r = topk_routing(&logits(), 2);
        assert_eq!(r.expert_ids[0], vec![1, 3]);
        assert_eq!(r.expert_ids[1], vec![0, 2]);
        assert_eq!(r.expert_ids[2], vec![2, 3]);
        assert_eq!(r.num_tokens(), 3);
        assert_eq!(r.top_k(), 2);
    }

    #[test]
    fn routing_weights_are_normalised_and_ordered() {
        let r = topk_routing(&logits(), 2);
        for t in 0..3 {
            let sum: f32 = r.weights[t].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(r.weights[t][0] >= r.weights[t][1]);
        }
    }

    #[test]
    fn expert_counts_sum_to_tokens_times_k() {
        let r = topk_routing(&logits(), 2);
        let counts = r.expert_counts();
        assert_eq!(counts.iter().sum::<usize>(), 6);
        assert_eq!(counts, vec![1, 1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "invalid top-k")]
    fn topk_larger_than_experts_panics() {
        topk_routing(&logits(), 5);
    }

    #[test]
    fn dispatch_rows_are_grouped_by_expert() {
        let r = topk_routing(&logits(), 2);
        let d = Dispatch::new(&r);
        assert_eq!(d.num_rows(), 6);
        assert_eq!(d.expert_offsets, vec![0, 1, 2, 4, 6]);
        // rows within an expert range actually route to that expert
        for e in 0..4 {
            for row in d.expert_offsets[e]..d.expert_offsets[e + 1] {
                assert_eq!(d.expert_of_row[row], e);
                assert!(r.expert_ids[d.token_of_row[row]].contains(&e));
            }
        }
    }

    #[test]
    fn gather_then_combine_with_identity_experts_recovers_tokens() {
        // If every expert is the identity function, combine(gather(x)) == x
        // because the gate weights sum to one.
        let r = topk_routing(&logits(), 2);
        let d = Dispatch::new(&r);
        let tokens = Tensor::random(&[3, 5], 11);
        let gathered = d.gather(&tokens);
        let combined = d.combine(&r, &gathered);
        assert!(combined.allclose(&tokens, 1e-5));
    }

    #[test]
    fn single_expert_routing_behaves() {
        let l = Tensor::from_vec(vec![0.3, 0.9, 0.1, 0.2], &[4, 1]);
        let r = topk_routing(&l, 1);
        assert!(r.expert_ids.iter().all(|ids| ids == &vec![0]));
        assert!(r.weights.iter().all(|w| (w[0] - 1.0).abs() < 1e-6));
        let d = Dispatch::new(&r);
        assert_eq!(d.expert_offsets, vec![0, 4]);
    }
}
