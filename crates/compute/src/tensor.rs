//! A minimal row-major dense tensor.

/// A dense, row-major `f32` tensor.
///
/// The tensor is intentionally simple: the reproduction only needs 2-D and 3-D
/// shapes, contiguous storage and cheap row slicing. All distributed layouts
/// (sharding across ranks, tiles) are expressed *on top of* this type by the
/// `tilelink` crate's mappings.
///
/// # Example
///
/// ```
/// use tilelink_compute::Tensor;
///
/// let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
/// assert_eq!(t.at(&[1, 2]), 5.0);
/// assert_eq!(t.shape(), &[2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(
            !shape.is_empty(),
            "tensor shape must have at least one dimension"
        );
        Self {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor by evaluating `f` at every index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let mut t = Self::zeros(shape);
        let mut idx = vec![0usize; shape.len()];
        for flat in 0..t.numel() {
            let mut rem = flat;
            for (d, &extent) in shape.iter().enumerate().rev() {
                idx[d] = rem % extent;
                rem /= extent;
            }
            t.data[flat] = f(&idx);
        }
        t
    }

    /// Creates a deterministic pseudo-random tensor in `[-0.5, 0.5)`.
    ///
    /// A simple SplitMix64 generator keyed by `seed` keeps the crate free of
    /// external dependencies while giving well-spread values for tests and
    /// benchmarks.
    pub fn random(shape: &[usize], seed: u64) -> Self {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        let numel: usize = shape.iter().product();
        let data: Vec<f32> = (0..numel).map(|_| (next() - 0.5) as f32).collect();
        Self::from_vec(data, shape)
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying storage (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying storage (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0usize;
        for (d, (&i, &extent)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                i < extent,
                "index {i} out of bounds for dim {d} of extent {extent}"
            );
            flat = flat * extent + i;
        }
        flat
    }

    /// Value at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Sets the value at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let flat = self.flat_index(idx);
        self.data[flat] = value;
    }

    /// Reinterprets the tensor with a new shape of the same number of elements.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Returns rows `rows.start..rows.end` of a 2-D tensor as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the range is out of bounds.
    pub fn slice_rows(&self, rows: std::ops::Range<usize>) -> Tensor {
        assert_eq!(self.ndim(), 2, "slice_rows requires a 2-D tensor");
        let cols = self.shape[1];
        assert!(rows.end <= self.shape[0], "row range out of bounds");
        let data = self.data[rows.start * cols..rows.end * cols].to_vec();
        Tensor::from_vec(data, &[rows.len(), cols])
    }

    /// Concatenates 2-D tensors along dimension 0 (rows).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the column counts differ.
    pub fn concat_rows(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "cannot concatenate an empty list");
        let cols = parts[0].shape()[1];
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.ndim(), 2, "concat_rows requires 2-D tensors");
            assert_eq!(p.shape()[1], cols, "column count mismatch");
            rows += p.shape()[0];
            data.extend_from_slice(p.data());
        }
        Tensor::from_vec(data, &[rows, cols])
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose requires a 2-D tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Element-wise sum of two tensors of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_vec(data, &self.shape)
    }

    /// Maximum absolute difference between two tensors of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Returns `true` if every element differs by at most `tol`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_numel() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.numel(), 24);
        assert_eq!(t.ndim(), 3);
    }

    #[test]
    fn from_vec_checks_length() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        assert_eq!(t.at(&[1, 0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1.0], &[2, 2]);
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(&[2, 2], |idx| (10 * idx[0] + idx[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn at_and_set_roundtrip() {
        let mut t = Tensor::zeros(&[3, 3]);
        t.set(&[2, 1], 7.0);
        assert_eq!(t.at(&[2, 1]), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_out_of_bounds_panics() {
        Tensor::zeros(&[2, 2]).at(&[2, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4, 1]);
        assert_eq!(r.at(&[3, 0]), 4.0);
    }

    #[test]
    fn slice_and_concat_rows_are_inverses() {
        let t = Tensor::random(&[6, 4], 1);
        let parts: Vec<Tensor> = (0..3).map(|i| t.slice_rows(i * 2..(i + 1) * 2)).collect();
        let back = Tensor::concat_rows(&parts);
        assert!(t.allclose(&back, 0.0));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let t = Tensor::random(&[3, 5], 2);
        assert!(t.transpose().transpose().allclose(&t, 0.0));
    }

    #[test]
    fn add_is_elementwise() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2, 1]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0]);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Tensor::random(&[8, 8], 42);
        let b = Tensor::random(&[8, 8], 42);
        let c = Tensor::random(&[8, 8], 43);
        assert!(a.allclose(&b, 0.0));
        assert!(!a.allclose(&c, 1e-6));
        assert!(a.data().iter().all(|v| (-0.5..0.5).contains(v)));
    }

    #[test]
    fn max_abs_diff_and_allclose() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = Tensor::from_vec(vec![1.0, 2.5], &[2, 1]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.allclose(&b, 0.5));
        assert!(!a.allclose(&b, 0.4));
    }
}
