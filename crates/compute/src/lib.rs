//! # tilelink-compute
//!
//! Functional (f32) implementations of the dense kernels that the paper's
//! workloads are built from, standing in for cuBLAS, CUTLASS, vLLM's fused MoE
//! kernels and Flash-Attention:
//!
//! * [`Tensor`] — a minimal row-major dense tensor;
//! * [`gemm`] — reference and tiled matrix multiplication, plus single-tile
//!   helpers used by the TileLink tile programs;
//! * [`group_gemm`] — grouped GEMM over per-expert weights for MoE layers;
//! * [`attention`] — reference attention and an online-softmax (flash)
//!   accumulator that consumes KV tiles incrementally, exactly the shape of
//!   computation the overlapped AG-KV + attention kernel needs;
//! * [`activation`] — SiLU-mul / GELU-mul gates of LLaMA/Gemma-style MLPs;
//! * [`topk`] — softmax gating, top-k expert selection and token dispatch for
//!   MoE layers.
//!
//! Everything here is single-device math: distribution, tiling across ranks and
//! overlap are handled by the `tilelink` and `tilelink-workloads` crates.

#![deny(missing_docs)]

pub mod activation;
pub mod attention;
pub mod gemm;
pub mod group_gemm;
pub mod tensor;
pub mod topk;

pub use attention::FlashAccumulator;
pub use tensor::Tensor;
pub use topk::Dispatch;
