//! Reference and tiled matrix multiplication.

use crate::Tensor;

/// Computes `a @ b` for `a: [M, K]`, `b: [K, N]` with a straightforward
/// i-k-j loop (the reference against which every overlapped implementation in
/// the repository is checked).
///
/// # Panics
///
/// Panics if the shapes are not 2-D or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul expects 2-D lhs");
    assert_eq!(b.ndim(), 2, "matmul expects 2-D rhs");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimensions disagree: {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        for p in 0..k {
            let aik = ad[i * k + p];
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
    out
}

/// Computes `c += a @ b` in place.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn matmul_accumulate(c: &mut Tensor, a: &Tensor, b: &Tensor) {
    let product = matmul(a, b);
    assert_eq!(c.shape(), product.shape(), "accumulator shape mismatch");
    for (cv, pv) in c.data_mut().iter_mut().zip(product.data()) {
        *cv += pv;
    }
}

/// Computes one `tile_m × tile_n` output tile of `a @ b`.
///
/// `row0` and `col0` are the top-left coordinates of the tile in the output;
/// tiles that stick out past the matrix edge are clipped. This is the exact
/// unit of work a TileLink compute block performs between its
/// `consumer_tile_wait` and `producer_tile_notify` calls.
///
/// # Panics
///
/// Panics if the inner dimensions disagree or `row0`/`col0` are out of range.
pub fn matmul_tile(
    a: &Tensor,
    b: &Tensor,
    row0: usize,
    col0: usize,
    tile_m: usize,
    tile_n: usize,
) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimensions disagree");
    assert!(row0 < m && col0 < n, "tile origin out of range");
    let rows = tile_m.min(m - row0);
    let cols = tile_n.min(n - col0);
    let mut out = Tensor::zeros(&[rows, cols]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..rows {
        for p in 0..k {
            let aik = ad[(row0 + i) * k + p];
            if aik == 0.0 {
                continue;
            }
            for j in 0..cols {
                od[i * cols + j] += aik * bd[p * n + col0 + j];
            }
        }
    }
    out
}

/// Tiled matmul: identical result to [`matmul`], but iterating tile by tile.
///
/// Exists mostly to validate that the tiling used by the compiler partitions
/// the iteration space exactly once.
///
/// # Panics
///
/// Panics if shapes are inconsistent or any tile extent is zero.
pub fn matmul_tiled(a: &Tensor, b: &Tensor, tile_m: usize, tile_n: usize) -> Tensor {
    assert!(tile_m > 0 && tile_n > 0, "tile extents must be positive");
    let (m, n) = (a.shape()[0], b.shape()[1]);
    let mut out = Tensor::zeros(&[m, n]);
    for row0 in (0..m).step_by(tile_m) {
        for col0 in (0..n).step_by(tile_n) {
            let tile = matmul_tile(a, b, row0, col0, tile_m, tile_n);
            let (rows, cols) = (tile.shape()[0], tile.shape()[1]);
            for i in 0..rows {
                for j in 0..cols {
                    out.set(&[row0 + i, col0 + j], tile.at(&[i, j]));
                }
            }
        }
    }
    out
}

/// Writes `tile` into `out` at offset `(row0, col0)`.
///
/// # Panics
///
/// Panics if the tile does not fit.
pub fn write_tile(out: &mut Tensor, tile: &Tensor, row0: usize, col0: usize) {
    assert_eq!(out.ndim(), 2, "write_tile expects a 2-D destination");
    let (rows, cols) = (tile.shape()[0], tile.shape()[1]);
    assert!(row0 + rows <= out.shape()[0], "tile rows out of bounds");
    assert!(col0 + cols <= out.shape()[1], "tile cols out of bounds");
    for i in 0..rows {
        for j in 0..cols {
            out.set(&[row0 + i, col0 + j], tile.at(&[i, j]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::random(&[7, 5], 3);
        let eye = Tensor::from_fn(&[5, 5], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        assert!(matmul(&a, &eye).allclose(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn mismatched_inner_dims_panic() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn accumulate_adds_product() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let mut c = Tensor::from_vec(vec![10.0, 10.0, 10.0, 10.0], &[2, 2]);
        matmul_accumulate(&mut c, &a, &b);
        assert_eq!(c.data(), &[11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn tiled_matches_reference_even_with_ragged_tiles() {
        let a = Tensor::random(&[13, 9], 1);
        let b = Tensor::random(&[9, 11], 2);
        let reference = matmul(&a, &b);
        for (tm, tn) in [(4, 4), (5, 3), (13, 11), (16, 16)] {
            let tiled = matmul_tiled(&a, &b, tm, tn);
            assert!(tiled.allclose(&reference, 1e-5), "tile {tm}x{tn} diverged");
        }
    }

    #[test]
    fn single_tile_matches_region_of_reference() {
        let a = Tensor::random(&[16, 8], 5);
        let b = Tensor::random(&[8, 12], 6);
        let reference = matmul(&a, &b);
        let tile = matmul_tile(&a, &b, 4, 8, 4, 4);
        for i in 0..4 {
            for j in 0..4 {
                assert!((tile.at(&[i, j]) - reference.at(&[4 + i, 8 + j])).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn write_tile_places_block() {
        let mut out = Tensor::zeros(&[4, 4]);
        let tile = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        write_tile(&mut out, &tile, 2, 1);
        assert_eq!(out.at(&[2, 1]), 1.0);
        assert_eq!(out.at(&[3, 2]), 4.0);
        assert_eq!(out.at(&[0, 0]), 0.0);
    }
}
