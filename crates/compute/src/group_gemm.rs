//! Grouped GEMM over per-expert weight matrices (the MoE workhorse).

use crate::gemm::matmul;
use crate::topk::Dispatch;
use crate::Tensor;

/// Multiplies each expert's slice of `rows` with that expert's weight matrix.
///
/// * `rows`: `[total_rows, K]`, sorted by expert as produced by
///   [`Dispatch::gather`];
/// * `expert_offsets`: `num_experts + 1` offsets delimiting each expert's rows;
/// * `weights`: `[num_experts, K, N]`.
///
/// Returns `[total_rows, N]`. Experts with no assigned rows are skipped, which
/// is exactly the "Group GEMM" of the paper's MoE pipeline (Figure 9).
///
/// # Panics
///
/// Panics if shapes or offsets are inconsistent.
pub fn group_gemm(rows: &Tensor, expert_offsets: &[usize], weights: &Tensor) -> Tensor {
    assert_eq!(rows.ndim(), 2, "rows must be 2-D");
    assert_eq!(weights.ndim(), 3, "weights must be [experts, K, N]");
    let num_experts = weights.shape()[0];
    assert_eq!(
        expert_offsets.len(),
        num_experts + 1,
        "expert_offsets must have num_experts + 1 entries"
    );
    let (total_rows, k) = (rows.shape()[0], rows.shape()[1]);
    assert_eq!(weights.shape()[1], k, "weight K dimension mismatch");
    assert_eq!(
        *expert_offsets.last().expect("offsets nonempty"),
        total_rows,
        "offsets must cover every row"
    );
    let n = weights.shape()[2];
    let mut out = Tensor::zeros(&[total_rows, n]);
    for e in 0..num_experts {
        let (start, end) = (expert_offsets[e], expert_offsets[e + 1]);
        assert!(start <= end, "offsets must be non-decreasing");
        if start == end {
            continue;
        }
        let expert_rows = rows.slice_rows(start..end);
        let w = expert_weight(weights, e);
        let product = matmul(&expert_rows, &w);
        for i in 0..(end - start) {
            for j in 0..n {
                out.set(&[start + i, j], product.at(&[i, j]));
            }
        }
    }
    out
}

/// Extracts expert `e`'s `[K, N]` weight matrix from a `[E, K, N]` tensor.
///
/// # Panics
///
/// Panics if `weights` is not 3-D or `e` is out of range.
pub fn expert_weight(weights: &Tensor, e: usize) -> Tensor {
    assert_eq!(weights.ndim(), 3, "weights must be [experts, K, N]");
    let (experts, k, n) = (weights.shape()[0], weights.shape()[1], weights.shape()[2]);
    assert!(e < experts, "expert index out of range");
    let data = weights.data()[e * k * n..(e + 1) * k * n].to_vec();
    Tensor::from_vec(data, &[k, n])
}

/// Convenience wrapper running the full dispatch → group GEMM for an MoE half:
/// gathers the routed rows, multiplies by each expert's weights and returns the
/// per-row output (still sorted by expert).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn moe_expert_forward(tokens: &Tensor, dispatch: &Dispatch, weights: &Tensor) -> Tensor {
    let gathered = dispatch.gather(tokens);
    group_gemm(&gathered, &dispatch.expert_offsets, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::{topk_routing, Dispatch};

    #[test]
    fn group_gemm_matches_per_expert_matmul() {
        let rows = Tensor::random(&[10, 4], 1);
        let weights = Tensor::random(&[3, 4, 6], 2);
        let offsets = vec![0, 4, 7, 10];
        let out = group_gemm(&rows, &offsets, &weights);
        for e in 0..3 {
            let expected = matmul(
                &rows.slice_rows(offsets[e]..offsets[e + 1]),
                &expert_weight(&weights, e),
            );
            for (i, row) in (offsets[e]..offsets[e + 1]).enumerate() {
                for j in 0..6 {
                    assert!((out.at(&[row, j]) - expected.at(&[i, j])).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn empty_expert_is_skipped() {
        let rows = Tensor::random(&[4, 3], 3);
        let weights = Tensor::random(&[3, 3, 2], 4);
        let offsets = vec![0, 4, 4, 4]; // experts 1 and 2 receive nothing
        let out = group_gemm(&rows, &offsets, &weights);
        assert_eq!(out.shape(), &[4, 2]);
    }

    #[test]
    #[should_panic(expected = "offsets must cover every row")]
    fn offsets_must_cover_rows() {
        let rows = Tensor::zeros(&[4, 3]);
        let weights = Tensor::zeros(&[1, 3, 2]);
        group_gemm(&rows, &[0, 3], &weights);
    }

    #[test]
    fn expert_weight_extracts_correct_slice() {
        let weights = Tensor::from_fn(&[2, 2, 2], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f32);
        let w1 = expert_weight(&weights, 1);
        assert_eq!(w1.data(), &[100.0, 101.0, 110.0, 111.0]);
    }

    #[test]
    fn moe_expert_forward_matches_manual_composition() {
        let tokens = Tensor::random(&[6, 4], 5);
        let logits = Tensor::random(&[6, 3], 6);
        let routing = topk_routing(&logits, 2);
        let dispatch = Dispatch::new(&routing);
        let weights = Tensor::random(&[3, 4, 5], 7);
        let fused = moe_expert_forward(&tokens, &dispatch, &weights);
        let manual = group_gemm(
            &dispatch.gather(&tokens),
            &dispatch.expert_offsets,
            &weights,
        );
        assert!(fused.allclose(&manual, 1e-6));
    }
}
