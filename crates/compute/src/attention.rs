//! Reference attention and an online-softmax (flash) accumulator.

use crate::Tensor;

/// Scaled dot-product attention with materialised scores, for one head:
/// `q: [Sq, D]`, `k: [Skv, D]`, `v: [Skv, D]` → `[Sq, D]`.
///
/// This is the numerical reference; it is also the cost profile of the
/// non-flash "Torch" baseline in Figure 10, which materialises the full
/// `Sq × Skv` score matrix.
///
/// # Panics
///
/// Panics if the head dimensions disagree.
pub fn attention_reference(q: &Tensor, k: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(q.ndim(), 2, "q must be [Sq, D]");
    assert_eq!(k.ndim(), 2, "k must be [Skv, D]");
    assert_eq!(v.ndim(), 2, "v must be [Skv, D]");
    let (sq, d) = (q.shape()[0], q.shape()[1]);
    let (skv, dk) = (k.shape()[0], k.shape()[1]);
    assert_eq!(d, dk, "q/k head dimension mismatch");
    assert_eq!(v.shape()[0], skv, "k/v length mismatch");
    assert_eq!(v.shape()[1], d, "v head dimension mismatch");
    let scale = 1.0 / (d as f32).sqrt();
    let mut out = Tensor::zeros(&[sq, d]);
    for i in 0..sq {
        // scores_i = q_i . k_j * scale
        let mut scores = vec![0.0f32; skv];
        for (j, score) in scores.iter_mut().enumerate() {
            let mut dot = 0.0;
            for t in 0..d {
                dot += q.at(&[i, t]) * k.at(&[j, t]);
            }
            *score = dot * scale;
        }
        let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores.iter().map(|s| (s - max).exp()).collect();
        let denom: f32 = exps.iter().sum();
        for t in 0..d {
            let mut acc = 0.0;
            for (j, &e) in exps.iter().enumerate() {
                acc += e * v.at(&[j, t]);
            }
            out.set(&[i, t], acc / denom);
        }
    }
    out
}

/// Streaming (online-softmax) attention accumulator for one head.
///
/// The accumulator consumes KV *tiles* one at a time and keeps the running
/// max/denominator statistics of Flash-Attention. This is precisely the
/// `tile_flash_attn(q, k, v, acc)` step that the paper's AG-KV + self-attention
/// kernel performs after every `consumer_tile_wait` (Figure 6), so the
/// overlapped attention workload can feed it KV tiles in *any* rank order and
/// still produce the exact attention output.
///
/// # Example
///
/// ```
/// use tilelink_compute::{attention, FlashAccumulator, Tensor};
///
/// let q = Tensor::random(&[4, 8], 1);
/// let k = Tensor::random(&[16, 8], 2);
/// let v = Tensor::random(&[16, 8], 3);
/// let mut acc = FlashAccumulator::new(&q);
/// // feed the KV cache tile by tile, out of order
/// for start in [8usize, 0] {
///     acc.update(&k.slice_rows(start..start + 8), &v.slice_rows(start..start + 8));
/// }
/// let flash = acc.finalize();
/// let reference = attention::attention_reference(&q, &k, &v);
/// assert!(flash.allclose(&reference, 1e-4));
/// ```
#[derive(Debug, Clone)]
pub struct FlashAccumulator {
    q: Tensor,
    /// Unnormalised output accumulator, `[Sq, D]`.
    acc: Tensor,
    /// Running row maxima of the scores.
    row_max: Vec<f32>,
    /// Running softmax denominators.
    row_sum: Vec<f32>,
    scale: f32,
}

impl FlashAccumulator {
    /// Creates an accumulator for the query tile `q: [Sq, D]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not 2-D.
    pub fn new(q: &Tensor) -> Self {
        assert_eq!(q.ndim(), 2, "q must be [Sq, D]");
        let sq = q.shape()[0];
        let d = q.shape()[1];
        Self {
            q: q.clone(),
            acc: Tensor::zeros(&[sq, d]),
            row_max: vec![f32::NEG_INFINITY; sq],
            row_sum: vec![0.0; sq],
            scale: 1.0 / (d as f32).sqrt(),
        }
    }

    /// Number of query rows.
    pub fn query_len(&self) -> usize {
        self.q.shape()[0]
    }

    /// Folds one KV tile (`k_tile`, `v_tile`: `[T, D]`) into the running state.
    ///
    /// # Panics
    ///
    /// Panics if the tile shapes are inconsistent with the query.
    pub fn update(&mut self, k_tile: &Tensor, v_tile: &Tensor) {
        let d = self.q.shape()[1];
        assert_eq!(k_tile.ndim(), 2, "k tile must be 2-D");
        assert_eq!(k_tile.shape()[1], d, "k tile head dimension mismatch");
        assert_eq!(k_tile.shape(), v_tile.shape(), "k/v tile shape mismatch");
        let t_len = k_tile.shape()[0];
        let sq = self.query_len();
        for i in 0..sq {
            // scores for this tile
            let mut scores = vec![0.0f32; t_len];
            for (j, score) in scores.iter_mut().enumerate() {
                let mut dot = 0.0;
                for t in 0..d {
                    dot += self.q.at(&[i, t]) * k_tile.at(&[j, t]);
                }
                *score = dot * self.scale;
            }
            let tile_max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let new_max = self.row_max[i].max(tile_max);
            let correction = if self.row_max[i] == f32::NEG_INFINITY {
                0.0
            } else {
                (self.row_max[i] - new_max).exp()
            };
            // rescale existing accumulator and denominator
            self.row_sum[i] *= correction;
            for t in 0..d {
                let cur = self.acc.at(&[i, t]);
                self.acc.set(&[i, t], cur * correction);
            }
            // accumulate this tile
            for (j, &score) in scores.iter().enumerate() {
                let p = (score - new_max).exp();
                self.row_sum[i] += p;
                for t in 0..d {
                    let cur = self.acc.at(&[i, t]);
                    self.acc.set(&[i, t], cur + p * v_tile.at(&[j, t]));
                }
            }
            self.row_max[i] = new_max;
        }
    }

    /// Finishes the accumulation and returns the attention output `[Sq, D]`.
    ///
    /// # Panics
    ///
    /// Panics if no KV tile was ever folded in (the softmax denominator would
    /// be zero).
    pub fn finalize(&self) -> Tensor {
        let (sq, d) = (self.q.shape()[0], self.q.shape()[1]);
        let mut out = Tensor::zeros(&[sq, d]);
        for i in 0..sq {
            assert!(
                self.row_sum[i] > 0.0,
                "finalize called before any KV tile was accumulated"
            );
            for t in 0..d {
                out.set(&[i, t], self.acc.at(&[i, t]) / self.row_sum[i]);
            }
        }
        out
    }
}

/// Full flash attention over blocked KV: numerically equivalent to
/// [`attention_reference`] but computed tile by tile with `block` KV rows at a
/// time.
///
/// # Panics
///
/// Panics if `block` is zero or shapes are inconsistent.
pub fn flash_attention(q: &Tensor, k: &Tensor, v: &Tensor, block: usize) -> Tensor {
    assert!(block > 0, "block size must be positive");
    let skv = k.shape()[0];
    let mut acc = FlashAccumulator::new(q);
    let mut start = 0;
    while start < skv {
        let end = (start + block).min(skv);
        acc.update(&k.slice_rows(start..end), &v.slice_rows(start..end));
        start = end;
    }
    acc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qkv(sq: usize, skv: usize, d: usize) -> (Tensor, Tensor, Tensor) {
        (
            Tensor::random(&[sq, d], 10),
            Tensor::random(&[skv, d], 11),
            Tensor::random(&[skv, d], 12),
        )
    }

    #[test]
    fn reference_rows_are_convex_combinations_of_v() {
        // With a single query equal to zero, attention is the mean of V.
        let q = Tensor::zeros(&[1, 4]);
        let k = Tensor::random(&[6, 4], 1);
        let v = Tensor::random(&[6, 4], 2);
        let out = attention_reference(&q, &k, &v);
        for t in 0..4 {
            let mean: f32 = (0..6).map(|j| v.at(&[j, t])).sum::<f32>() / 6.0;
            assert!((out.at(&[0, t]) - mean).abs() < 1e-5);
        }
    }

    #[test]
    fn flash_matches_reference_for_various_blocks() {
        let (q, k, v) = qkv(5, 33, 8);
        let reference = attention_reference(&q, &k, &v);
        for block in [1, 4, 16, 33, 64] {
            let flash = flash_attention(&q, &k, &v, block);
            assert!(
                flash.allclose(&reference, 1e-4),
                "block {block} diverged by {}",
                flash.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn accumulator_is_order_invariant() {
        let (q, k, v) = qkv(3, 24, 4);
        let reference = attention_reference(&q, &k, &v);
        // feed tiles in a scrambled order, as the overlapped kernel would when
        // remote ranks' KV shards arrive out of order
        let order = [2usize, 0, 1];
        let mut acc = FlashAccumulator::new(&q);
        for &blk in &order {
            acc.update(
                &k.slice_rows(blk * 8..(blk + 1) * 8),
                &v.slice_rows(blk * 8..(blk + 1) * 8),
            );
        }
        assert!(acc.finalize().allclose(&reference, 1e-4));
    }

    #[test]
    fn accumulator_query_len() {
        let q = Tensor::zeros(&[7, 2]);
        assert_eq!(FlashAccumulator::new(&q).query_len(), 7);
    }

    #[test]
    #[should_panic(expected = "before any KV tile")]
    fn finalize_without_updates_panics() {
        FlashAccumulator::new(&Tensor::zeros(&[1, 2])).finalize();
    }

    #[test]
    #[should_panic(expected = "head dimension mismatch")]
    fn mismatched_heads_panic() {
        let (q, k, _) = qkv(2, 4, 8);
        let bad_v = Tensor::zeros(&[4, 2]);
        attention_reference(&q, &k, &bad_v);
    }

    #[test]
    fn softmax_weights_are_normalised_attention_is_bounded() {
        let (q, k, v) = qkv(4, 16, 8);
        let out = attention_reference(&q, &k, &v);
        let vmax = v.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let vmin = v.data().iter().cloned().fold(f32::INFINITY, f32::min);
        for &o in out.data() {
            assert!(o <= vmax + 1e-5 && o >= vmin - 1e-5);
        }
    }
}
