//! Gated activations used between the two halves of LLaMA/Gemma-style MLPs.

use crate::Tensor;

/// SiLU (sigmoid-weighted linear unit): `x * sigmoid(x)`.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// The tanh-approximated GELU used by Gemma and GPT-style models.
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + ((2.0 / std::f32::consts::PI).sqrt() * (x + 0.044_715 * x * x * x)).tanh())
}

/// SwiGLU gate: `silu(gate) * up`, applied element-wise.
///
/// This is the activation between the AG+GEMM and GEMM+RS halves of the
/// tensor-parallel MLP in Figure 8 ("there is one activation layer (e.g.
/// SiLUMul or GeLUMul) between these two parts").
///
/// # Panics
///
/// Panics if the two tensors have different shapes.
pub fn silu_mul(gate: &Tensor, up: &Tensor) -> Tensor {
    assert_eq!(gate.shape(), up.shape(), "gate/up shape mismatch");
    let data = gate
        .data()
        .iter()
        .zip(up.data())
        .map(|(&g, &u)| silu(g) * u)
        .collect();
    Tensor::from_vec(data, gate.shape())
}

/// GeGLU gate: `gelu(gate) * up`, applied element-wise.
///
/// # Panics
///
/// Panics if the two tensors have different shapes.
pub fn gelu_mul(gate: &Tensor, up: &Tensor) -> Tensor {
    assert_eq!(gate.shape(), up.shape(), "gate/up shape mismatch");
    let data = gate
        .data()
        .iter()
        .zip(up.data())
        .map(|(&g, &u)| gelu(g) * u)
        .collect();
    Tensor::from_vec(data, gate.shape())
}

/// Row-wise softmax of a 2-D tensor.
///
/// # Panics
///
/// Panics if the tensor is not 2-D.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.ndim(), 2, "softmax_rows expects a 2-D tensor");
    let (rows, cols) = (x.shape()[0], x.shape()[1]);
    let mut out = Tensor::zeros(&[rows, cols]);
    for r in 0..rows {
        let row = &x.data()[r * cols..(r + 1) * cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (c, &e) in exps.iter().enumerate() {
            out.set(&[r, c], e / sum);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silu_known_values() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.731_058_6).abs() < 1e-5);
        assert!(silu(-20.0).abs() < 1e-6);
    }

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.841_19).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-4);
    }

    #[test]
    fn silu_mul_matches_scalar_math() {
        let gate = Tensor::from_vec(vec![0.0, 1.0, -1.0], &[1, 3]);
        let up = Tensor::from_vec(vec![2.0, 2.0, 2.0], &[1, 3]);
        let out = silu_mul(&gate, &up);
        for (o, g) in out.data().iter().zip(gate.data()) {
            assert!((o - silu(*g) * 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn gelu_mul_matches_scalar_math() {
        let gate = Tensor::random(&[2, 4], 7);
        let up = Tensor::random(&[2, 4], 8);
        let out = gelu_mul(&gate, &up);
        for i in 0..out.numel() {
            assert!((out.data()[i] - gelu(gate.data()[i]) * up.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        silu_mul(&Tensor::zeros(&[1, 2]), &Tensor::zeros(&[2, 1]));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let row: f32 = (0..3).map(|c| s.at(&[r, c])).sum();
            assert!((row - 1.0).abs() < 1e-6);
            assert!(s.at(&[r, 2]) > s.at(&[r, 0]));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]);
        assert!(softmax_rows(&x).allclose(&softmax_rows(&y), 1e-6));
    }
}
