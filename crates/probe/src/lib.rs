//! # tilelink-probe
//!
//! Zero-dependency observability for the TileLink reproduction. The crate has
//! no opinion about *what* is being measured — the sibling crates thread it
//! through the compile pipeline, the simulator and the tuner — and provides
//! four small building blocks:
//!
//! * [`span`] / [`SpanGuard`] — a hierarchical wall-clock **span profiler**.
//!   Scopes are RAII guards, nest across call frames, are tracked per thread,
//!   and cost ~a nanosecond when profiling is disabled (one relaxed atomic
//!   load, no allocation, no lock). Finished spans record total and
//!   self-minus-children time so reports can attribute where a phase's time
//!   actually goes.
//! * [`metrics`] — a fixed **metrics registry** of counters, gauges and
//!   histograms (tune-cache hits/misses/revision-invalidations, candidates
//!   simulated/cached/pruned, sims run, scratch reuses, …) exportable as
//!   JSON. Counters are lock-free relaxed atomics so they are safe to bump
//!   from hot-ish paths (per-simulation granularity, never per-event).
//! * [`chrome`] — a Chrome `trace_event` JSON builder used both for
//!   host-side span timelines and for the simulated cluster [`Trace`]
//!   (ranks as processes, resource lanes as threads), openable in Perfetto
//!   or `chrome://tracing`.
//! * [`json`] — a strict recursive-descent JSON parser used by the tests (and
//!   CI) to hold the exporters to validator-grade output rather than
//!   "looks like JSON".
//!
//! [`Trace`]: https://docs.rs/tilelink-sim

#![deny(missing_docs)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod report;
pub mod span;

pub use chrome::ChromeTrace;
pub use json::{parse_json, JsonError, JsonValue};
pub use metrics::{metrics_json, Counter, Gauge, Histogram};
pub use report::{PhaseStats, ProfileReport};
pub use span::{enabled, restore_spans, set_enabled, span, take_spans, SpanGuard, SpanRecord};
