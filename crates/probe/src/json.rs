//! A strict recursive-descent JSON parser.
//!
//! The exporters in this workspace hand-roll their JSON (the workspace is
//! zero-dependency by design), so the tests need something stronger than
//! substring checks to call the output valid. This parser implements RFC 8259
//! — rejecting trailing commas, bare values after the document, malformed
//! numbers, unescaped control characters and broken `\u` escapes — which is
//! the same strictness class as the parse Perfetto's trace processor applies
//! before it accepts a trace.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object as an ordered key/value list (duplicate keys preserved).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses `input` as one complete JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] (with byte offset) on any deviation from RFC 8259,
/// including trailing garbage after the document.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON document"));
    }
    Ok(value)
}

/// Nesting depth limit; traces are at most a few levels deep.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected '{word}')")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing on
                    // a char boundary is guaranteed to exist).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let unit = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by an
        // escaped low surrogate.
        if (0xD800..=0xDBFF).contains(&unit) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&low) {
                    return Err(self.err("invalid low surrogate"));
                }
                let c = 0x10000 + ((u32::from(unit) - 0xD800) << 10) + (u32::from(low) - 0xDC00);
                return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..=0xDFFF).contains(&unit) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(u32::from(unit)).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let digit = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = v << 4 | u16::from(digit);
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse_json(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\n\"y\"", "d": null}, "e": true}"#)
                .unwrap();
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("x\n\"y\"")
        );
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn parses_unicode_escapes_and_surrogate_pairs() {
        // A BMP escape, a surrogate-pair escape (U+1F600) and literal UTF-8.
        let v = parse_json(r#""\u0041 \ud83d\ude00 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A \u{1F600} \u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "[1, 2,]",
            "{\"a\": 1,}",
            "{\"a\" 1}",
            "[1] extra",
            "01",
            "1.",
            "1e",
            "+1",
            "'single'",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\u{1}\"",
            "nul",
            r#""\ud800""#,
        ] {
            assert!(parse_json(bad).is_err(), "accepted: {bad:?}");
        }
    }
}
