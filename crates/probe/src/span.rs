//! Hierarchical RAII span profiler.
//!
//! A span is opened with [`span`] and closed when the returned [`SpanGuard`]
//! drops. Spans nest: each thread keeps a stack of open frames, so a span
//! opened while another is open becomes its child, and on close the child's
//! duration is charged against the parent's child-time. That lets reports
//! distinguish *total* time (wall clock of the whole scope) from *self* time
//! (total minus children), which is what attribution of a pipeline needs.
//!
//! When profiling is disabled (the default) [`span`] is a single relaxed
//! atomic load and returns an inert guard — no clock read, no allocation, no
//! lock — so call sites can stay unconditionally instrumented. Finished spans
//! from all threads land in one global sink, drained with [`take_spans`].

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global on/off switch for the profiler.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Monotonic span-id source (0 is reserved for "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Monotonic thread-ordinal source, so records carry a small stable id.
static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(0);
/// Sink of finished spans from every thread.
static SINK: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
/// Common time origin so `start_ns` is comparable across threads.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Enables or disables span collection process-wide.
///
/// Disabling does not drop spans already recorded, and guards that are open
/// when the switch flips still close correctly.
pub fn set_enabled(on: bool) {
    // Make sure the epoch exists before the first span can be recorded.
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the profiler is currently collecting spans.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// One finished span as drained from the global sink.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id of this span (process-wide, never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root span.
    pub parent: u64,
    /// Static name of the instrumented phase (e.g. `"compile.lower"`).
    pub name: &'static str,
    /// Small per-thread ordinal (0, 1, …) identifying the recording thread.
    pub thread: u64,
    /// Start time in nanoseconds since the profiler epoch.
    pub start_ns: u64,
    /// Total wall-clock duration of the span in nanoseconds.
    pub dur_ns: u64,
    /// Nanoseconds spent inside direct child spans on the same thread.
    pub child_ns: u64,
}

impl SpanRecord {
    /// Duration not attributed to any child span.
    #[must_use]
    pub fn self_ns(&self) -> u64 {
        self.dur_ns.saturating_sub(self.child_ns)
    }
}

/// One open (not yet finished) span on a thread's stack.
struct Frame {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORD: u64 = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
}

/// RAII guard returned by [`span`]; the span closes when this drops.
///
/// The guard is deliberately `!Send`: a span measures one thread's time and
/// must close on the thread that opened it.
#[must_use = "a span guard measures the scope it lives in; bind it to a variable"]
pub struct SpanGuard {
    /// Whether this guard actually opened a frame (profiler was enabled).
    armed: bool,
    /// Keeps the guard `!Send` without any runtime cost.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Opens a span named `name`; it closes when the returned guard drops.
///
/// With the profiler disabled this is one relaxed atomic load.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            armed: false,
            _not_send: std::marker::PhantomData,
        };
    }
    open_span(name)
}

#[cold]
fn open_span(name: &'static str) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().map_or(0, |f| f.id);
        stack.push(Frame {
            id,
            parent,
            name,
            start: Instant::now(),
            child_ns: 0,
        });
    });
    SpanGuard {
        armed: true,
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let record = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop()?;
            let dur_ns = frame.start.elapsed().as_nanos() as u64;
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += dur_ns;
            }
            Some(SpanRecord {
                id: frame.id,
                parent: frame.parent,
                name: frame.name,
                thread: THREAD_ORD.with(|t| *t),
                start_ns: frame.start.duration_since(epoch()).as_nanos() as u64,
                dur_ns,
                child_ns: frame.child_ns,
            })
        });
        if let Some(record) = record {
            SINK.lock().expect("span sink poisoned").push(record);
        }
    }
}

/// Drains and returns every finished span recorded so far (all threads).
#[must_use]
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *SINK.lock().expect("span sink poisoned"))
}

/// Puts previously drained records back into the global sink (appended in
/// order, before anything recorded since the drain).
///
/// This lets a harness take a *scoped* measurement — drain, run the scope,
/// drain again — and then return everything, so a later process-wide
/// [`take_spans`] (e.g. the final `--profile` report) still sees the spans
/// recorded before the scope.
pub fn restore_spans(records: Vec<SpanRecord>) {
    let mut sink = SINK.lock().expect("span sink poisoned");
    let tail = std::mem::replace(&mut *sink, records);
    sink.extend(tail);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises the probe tests that toggle the global profiler.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn spin(us: u64) {
        let start = Instant::now();
        while start.elapsed().as_micros() < u128::from(us) {
            std::hint::black_box(0);
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let _ = take_spans();
        {
            let _s = span("probe.test.disabled");
        }
        assert!(take_spans().iter().all(|r| r.name != "probe.test.disabled"));
    }

    #[test]
    fn nesting_links_parents_and_charges_child_time() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _ = take_spans();
        {
            let _outer = span("probe.test.outer");
            spin(200);
            {
                let _inner = span("probe.test.inner");
                spin(200);
            }
            spin(200);
        }
        set_enabled(false);
        let spans = take_spans();
        let outer = spans.iter().find(|r| r.name == "probe.test.outer").unwrap();
        let inner = spans.iter().find(|r| r.name == "probe.test.inner").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.thread, outer.thread);
        // The child closes before the parent, and the parent's child-time is
        // exactly the child's duration.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.dur_ns <= outer.dur_ns);
        assert_eq!(outer.child_ns, inner.dur_ns);
        assert_eq!(outer.self_ns(), outer.dur_ns - inner.dur_ns);
    }

    #[test]
    fn nested_child_self_time_never_exceeds_parent_total() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _ = take_spans();
        // Property check over a randomised family of nesting shapes: a
        // deterministic LCG drives how deep and how long each scope runs.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        fn nest(depth: u64, rand: &mut impl FnMut() -> u64, spin: &dyn Fn(u64)) {
            let _s = span("probe.test.prop");
            spin(20);
            if depth > 0 {
                for _ in 0..(rand() % 3) {
                    nest(depth - 1, rand, spin);
                }
            }
            spin(20);
        }
        for _ in 0..8 {
            nest(3, &mut rand, &|us| spin(us));
        }
        set_enabled(false);
        let spans: Vec<SpanRecord> = take_spans()
            .into_iter()
            .filter(|r| r.name == "probe.test.prop")
            .collect();
        assert!(!spans.is_empty());
        for child in &spans {
            assert!(child.self_ns() <= child.dur_ns);
            if child.parent != 0 {
                let parent = spans
                    .iter()
                    .find(|p| p.id == child.parent)
                    .expect("parent recorded");
                assert!(
                    child.self_ns() <= parent.dur_ns,
                    "child self {} > parent total {}",
                    child.self_ns(),
                    parent.dur_ns
                );
                assert!(parent.child_ns <= parent.dur_ns);
            }
        }
    }
}
