//! Aggregation of finished spans into per-phase wall-time reports.
//!
//! [`ProfileReport::from_spans`] groups [`SpanRecord`]s by phase name and
//! computes count, total, mean, p95, max and self (total minus children)
//! time per phase. The report renders as a fixed-width table for the
//! terminal and as JSON (phases plus the metrics registry snapshot) for
//! `--profile=<path>` and CI checks.

use crate::span::SpanRecord;

/// Aggregated wall-time statistics for one phase (span name).
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase name (the static span name, e.g. `"compile.lower"`).
    pub name: &'static str,
    /// Number of spans recorded under this name.
    pub count: usize,
    /// Sum of span durations in nanoseconds.
    pub total_ns: u64,
    /// Sum of self time (duration minus direct children) in nanoseconds.
    pub self_ns: u64,
    /// Mean span duration in nanoseconds.
    pub mean_ns: u64,
    /// 95th-percentile span duration in nanoseconds.
    pub p95_ns: u64,
    /// Maximum span duration in nanoseconds.
    pub max_ns: u64,
}

impl PhaseStats {
    /// Total time in milliseconds.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// A per-phase aggregation of every span recorded during a run.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Phases sorted by descending total time.
    pub phases: Vec<PhaseStats>,
}

impl ProfileReport {
    /// Aggregates `spans` by phase name.
    #[must_use]
    pub fn from_spans(spans: &[SpanRecord]) -> Self {
        let mut names: Vec<&'static str> = spans.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        let mut phases: Vec<PhaseStats> = names
            .into_iter()
            .map(|name| {
                let mut durs: Vec<u64> = spans
                    .iter()
                    .filter(|s| s.name == name)
                    .map(|s| s.dur_ns)
                    .collect();
                durs.sort_unstable();
                let count = durs.len();
                let total_ns: u64 = durs.iter().sum();
                let self_ns: u64 = spans
                    .iter()
                    .filter(|s| s.name == name)
                    .map(SpanRecord::self_ns)
                    .sum();
                // Nearest-rank p95 over the sorted durations.
                let p95_idx = ((count as f64 * 0.95).ceil() as usize).clamp(1, count) - 1;
                PhaseStats {
                    name,
                    count,
                    total_ns,
                    self_ns,
                    mean_ns: total_ns / count as u64,
                    p95_ns: durs[p95_idx],
                    max_ns: *durs.last().expect("non-empty"),
                }
            })
            .collect();
        phases.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        Self { phases }
    }

    /// Looks up one phase by name.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Renders the report as a fixed-width table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>7} {:>12} {:>11} {:>11} {:>11} {:>12}\n",
            "phase", "count", "total ms", "mean us", "p95 us", "max us", "self ms"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<24} {:>7} {:>12.3} {:>11.1} {:>11.1} {:>11.1} {:>12.3}\n",
                p.name,
                p.count,
                p.total_ms(),
                p.mean_ns as f64 / 1e3,
                p.p95_ns as f64 / 1e3,
                p.max_ns as f64 / 1e3,
                p.self_ns as f64 / 1e6,
            ));
        }
        out
    }

    /// Serialises the phases (and the metrics registry snapshot) as one JSON
    /// document: `{"schema", "phases": {name: {…}}, "metrics": {…}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"tilelink-probe/v1\",\n  \"phases\": {");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"total_ms\": {:.6}, \"mean_us\": {:.3}, \
                 \"p95_us\": {:.3}, \"max_us\": {:.3}, \"self_ms\": {:.6}}}",
                crate::chrome::json_escape(p.name),
                p.count,
                p.total_ms(),
                p.mean_ns as f64 / 1e3,
                p.p95_ns as f64 / 1e3,
                p.max_ns as f64 / 1e3,
                p.self_ns as f64 / 1e6,
            ));
        }
        out.push_str("\n  },\n  \"metrics\": ");
        // Indent the metrics object to keep the document readable.
        let metrics = crate::metrics::metrics_json().replace('\n', "\n  ");
        out.push_str(&metrics);
        out.push_str("\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &'static str, dur_ns: u64, child_ns: u64) -> SpanRecord {
        SpanRecord {
            id: 1,
            parent: 0,
            name,
            thread: 0,
            start_ns: 0,
            dur_ns,
            child_ns,
        }
    }

    #[test]
    fn aggregates_by_phase_with_self_time() {
        let spans = vec![
            record("a", 100, 40),
            record("a", 300, 0),
            record("b", 50, 0),
        ];
        let report = ProfileReport::from_spans(&spans);
        assert_eq!(report.phases.len(), 2);
        // Sorted by total time descending: "a" (400) before "b" (50).
        assert_eq!(report.phases[0].name, "a");
        let a = report.phase("a").unwrap();
        assert_eq!(a.count, 2);
        assert_eq!(a.total_ns, 400);
        assert_eq!(a.self_ns, 360);
        assert_eq!(a.mean_ns, 200);
        assert_eq!(a.p95_ns, 300);
        assert_eq!(a.max_ns, 300);
        let table = report.render();
        assert!(table.contains("phase"));
        assert!(table.contains('a'));
    }

    #[test]
    fn profile_json_is_valid_and_carries_phases_and_metrics() {
        let spans = vec![record("compile.lower", 1_000_000, 0)];
        let json = ProfileReport::from_spans(&spans).to_json();
        let v = crate::json::parse_json(&json).expect("valid profile JSON");
        assert_eq!(
            v.get("schema").and_then(crate::json::JsonValue::as_str),
            Some("tilelink-probe/v1")
        );
        let lower = v
            .get("phases")
            .and_then(|p| p.get("compile.lower"))
            .unwrap();
        assert_eq!(
            lower
                .get("total_ms")
                .and_then(crate::json::JsonValue::as_f64),
            Some(1.0)
        );
        assert!(v.get("metrics").and_then(|m| m.get("counters")).is_some());
    }
}
