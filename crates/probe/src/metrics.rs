//! Fixed metrics registry: counters, gauges and histograms.
//!
//! The registry is a closed set of statically-declared instruments — there is
//! no runtime registration, no string hashing and no locking on the update
//! path. A counter bump is one relaxed `fetch_add`, cheap enough for
//! per-simulation granularity (it is still never used inside the scheduler's
//! inner event loop). [`metrics_json`] snapshots every instrument as a JSON
//! object for `--profile` output and `BENCH_sim.json`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Creates a named counter starting at zero.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// Registry name of this counter (e.g. `"tune.cache.hits"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    /// Creates a named gauge starting at zero.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicI64::new(0),
        }
    }

    /// Registry name of this gauge.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` to the gauge (negative to decrement). Used for
    /// level-style gauges such as `serve.inflight`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets a [`Histogram`] keeps (covers `u64`).
const HIST_BUCKETS: usize = 64;

/// A lock-free histogram over `u64` observations with power-of-two buckets.
///
/// Bucket `i` counts observations `v` with `ceil(log2(v + 1)) == i`, i.e.
/// bucket 0 is exactly `0`, bucket 1 is `1`, bucket 2 is `2..=3`, and so on.
/// Quantiles interpolate the upper bound of the containing bucket, which is
/// plenty for order-of-magnitude latency attribution.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    /// Creates a named, empty histogram.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HIST_BUCKETS],
        }
    }

    /// Registry name of this histogram.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[bucket.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing quantile `q` (0.0..=1.0), or 0
    /// when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// The registry: every instrument the reproduction exposes.
// ---------------------------------------------------------------------------

/// Tune-cache lookups that returned a priced report.
pub static TUNE_CACHE_HITS: Counter = Counter::new("tune.cache.hits");
/// Tune-cache lookups that missed and forced an oracle evaluation.
pub static TUNE_CACHE_MISSES: Counter = Counter::new("tune.cache.misses");
/// Persisted cache entries dropped at load because their cost-model revision
/// no longer matches the active provider.
pub static TUNE_CACHE_REVISION_INVALIDATIONS: Counter =
    Counter::new("tune.cache.revision_invalidations");
/// Candidates priced by actually running the oracle (compile + simulate).
pub static TUNE_CANDIDATES_SIMULATED: Counter = Counter::new("tune.candidates.simulated");
/// Candidates served from the tune cache.
pub static TUNE_CANDIDATES_CACHED: Counter = Counter::new("tune.candidates.cached");
/// Candidates rejected by `OverlapConfig::validate` before evaluation.
pub static TUNE_CANDIDATES_PRUNED_VALIDATE: Counter =
    Counter::new("tune.candidates.pruned_validate");
/// Candidates rejected by search-space / workload constraints before
/// evaluation (`SearchSpace::allows` or `CostOracle::is_supported`).
pub static TUNE_CANDIDATES_PRUNED_CONSTRAINT: Counter =
    Counter::new("tune.candidates.pruned_constraint");
/// Candidates whose oracle evaluation returned an error.
pub static TUNE_CANDIDATES_FAILED_SIM: Counter = Counter::new("tune.candidates.failed_sim");
/// Candidates skipped without compiling or simulating because their admissible
/// analytic lower bound already met or exceeded the incumbent best.
pub static TUNE_CANDIDATES_PRUNED_BOUND: Counter = Counter::new("tune.candidates.pruned_bound");
/// Bounded fast-path simulations that aborted early because the simulated
/// clock provably exceeded the incumbent cutoff.
pub static SIM_MAKESPAN_BOUNDED_ABORTS: Counter = Counter::new("sim.makespan_bounded_aborts");
/// Candidate compiles served by patching a cached lowered program (the
/// incremental-recompilation fast path).
pub static TUNE_COMPILE_PATCHED: Counter = Counter::new("tune.compile.patched");
/// Candidate compiles that rebuilt and re-lowered the program from scratch.
pub static TUNE_COMPILE_FULL_REBUILDS: Counter = Counter::new("tune.compile.full_rebuilds");
/// Task-graph builds that borrowed the thread-local warm graph scratch.
pub static GRAPH_SCRATCH_REUSES: Counter = Counter::new("graph.scratch.reuses");
/// Task-graph builds that allocated a fresh scratch (first build on a thread,
/// or a re-entrant build while the scratch was borrowed).
pub static GRAPH_SCRATCH_COLD: Counter = Counter::new("graph.scratch.cold");
/// Makespan-only (fast-path) simulations run.
pub static SIM_MAKESPAN_RUNS: Counter = Counter::new("sim.makespan_runs");
/// Full-trace simulations run.
pub static SIM_TRACE_RUNS: Counter = Counter::new("sim.trace_runs");
/// Fast-path simulations that borrowed the thread-local warm scratch.
pub static SIM_SCRATCH_REUSES: Counter = Counter::new("sim.scratch.reuses");
/// Fast-path simulations that had to allocate a fresh scratch because the
/// thread-local one was already borrowed (re-entrant simulation).
pub static SIM_SCRATCH_COLD: Counter = Counter::new("sim.scratch.cold");
/// Cache files that existed but could not be read when opening the default
/// tune cache (the open falls back to in-memory, but loudly).
pub static TUNE_CACHE_OPEN_ERRORS: Counter = Counter::new("tune.cache.open_errors");
/// Serve requests answered from the sharded in-memory result cache.
pub static SERVE_REQUESTS_WARM: Counter = Counter::new("serve.requests.warm");
/// Serve requests that ran a search (the in-flight leader for their key).
pub static SERVE_REQUESTS_COLD: Counter = Counter::new("serve.requests.cold");
/// Serve requests that piggybacked on another request's in-flight search
/// instead of starting their own.
pub static SERVE_REQUESTS_DEDUPED: Counter = Counter::new("serve.requests.deduped");
/// Requests the serve connection pool rejected because its admission queue
/// was full (answered `ERR busy` without touching a worker).
pub static SERVE_POOL_REJECTED: Counter = Counter::new("serve.pool.rejected");
/// Warm-cache entries evicted to keep a shard under its entry cap (LRU).
pub static SERVE_CACHE_EVICTIONS: Counter = Counter::new("serve.cache.evictions");
/// Warm-cache entries dropped because they outlived the configured TTL.
pub static SERVE_CACHE_EXPIRED: Counter = Counter::new("serve.cache.expired");
/// Tuning runs admitted to a shared `SearchExecutor` whose worker pool was
/// already warm (spawned by an earlier run) instead of spawning fresh
/// threads.
pub static TUNE_EXECUTOR_REUSES: Counter = Counter::new("tune.executor.reuses");
/// Size of the most recently enumerated search space (valid candidates).
pub static TUNE_SPACE_SIZE: Gauge = Gauge::new("tune.space.size");
/// Tuning requests currently being handled by the serve daemon.
pub static SERVE_INFLIGHT: Gauge = Gauge::new("serve.inflight");
/// Parsed requests sitting in the serve connection pool's admission queue,
/// waiting for a worker.
pub static SERVE_POOL_QUEUED: Gauge = Gauge::new("serve.pool.queued");
/// Serve connection-pool workers currently executing a request.
pub static SERVE_POOL_ACTIVE: Gauge = Gauge::new("serve.pool.active");
/// Tuning runs waiting for admission to a shared `SearchExecutor` (its
/// concurrent-session bound is saturated).
pub static TUNE_EXECUTOR_QUEUE_DEPTH: Gauge = Gauge::new("tune.executor.queue_depth");
/// Per-candidate oracle evaluation latency in microseconds.
pub static TUNE_EVAL_US: Histogram = Histogram::new("tune.eval_us");

static COUNTERS: &[&Counter] = &[
    &TUNE_CACHE_HITS,
    &TUNE_CACHE_MISSES,
    &TUNE_CACHE_REVISION_INVALIDATIONS,
    &TUNE_CANDIDATES_SIMULATED,
    &TUNE_CANDIDATES_CACHED,
    &TUNE_CANDIDATES_PRUNED_VALIDATE,
    &TUNE_CANDIDATES_PRUNED_CONSTRAINT,
    &TUNE_CANDIDATES_FAILED_SIM,
    &TUNE_CANDIDATES_PRUNED_BOUND,
    &SIM_MAKESPAN_BOUNDED_ABORTS,
    &TUNE_COMPILE_PATCHED,
    &TUNE_COMPILE_FULL_REBUILDS,
    &GRAPH_SCRATCH_REUSES,
    &GRAPH_SCRATCH_COLD,
    &SIM_MAKESPAN_RUNS,
    &SIM_TRACE_RUNS,
    &SIM_SCRATCH_REUSES,
    &SIM_SCRATCH_COLD,
    &TUNE_CACHE_OPEN_ERRORS,
    &SERVE_REQUESTS_WARM,
    &SERVE_REQUESTS_COLD,
    &SERVE_REQUESTS_DEDUPED,
    &SERVE_POOL_REJECTED,
    &SERVE_CACHE_EVICTIONS,
    &SERVE_CACHE_EXPIRED,
    &TUNE_EXECUTOR_REUSES,
];

static GAUGES: &[&Gauge] = &[
    &TUNE_SPACE_SIZE,
    &SERVE_INFLIGHT,
    &SERVE_POOL_QUEUED,
    &SERVE_POOL_ACTIVE,
    &TUNE_EXECUTOR_QUEUE_DEPTH,
];

static HISTOGRAMS: &[&Histogram] = &[&TUNE_EVAL_US];

/// Snapshot of every registered instrument as a JSON object.
///
/// Shape: `{"counters": {name: u64, …}, "gauges": {name: i64, …},
/// "histograms": {name: {"count", "sum", "p50", "p95"}, …}}`.
#[must_use]
pub fn metrics_json() -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, c) in COUNTERS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", c.name(), c.get()));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, g) in GAUGES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", g.name(), g.get()));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, h) in HISTOGRAMS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}}}",
            h.name(),
            h.count(),
            h.sum(),
            h.quantile(0.50),
            h.quantile(0.95)
        ));
    }
    out.push_str("\n  }\n}");
    out
}

/// Resets every instrument to zero (test isolation only).
pub fn reset_metrics() {
    for c in COUNTERS {
        c.reset();
    }
    for g in GAUGES {
        g.reset();
    }
    for h in HISTOGRAMS {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new("t.c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new("t.g");
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new("t.h");
        for v in [0u64, 1, 1, 2, 3, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1117);
        assert_eq!(h.quantile(0.0), 0);
        // p50 falls in the bucket holding 2..=3.
        assert_eq!(h.quantile(0.5), 3);
        // p100 falls in the bucket holding 513..=1023.
        assert_eq!(h.quantile(1.0), 1023);
    }

    #[test]
    fn metrics_json_parses_and_names_every_registered_instrument() {
        let json = metrics_json();
        let value = crate::json::parse_json(&json).expect("metrics JSON is valid");
        let counters = value.get("counters").and_then(JsonValueExt::as_object_len);
        assert_eq!(counters, Some(COUNTERS.len()));
        assert!(value
            .get("counters")
            .and_then(|c| c.get("tune.cache.hits"))
            .is_some());
        assert!(value
            .get("histograms")
            .and_then(|h| h.get("tune.eval_us"))
            .and_then(|h| h.get("p95"))
            .is_some());
    }

    trait JsonValueExt {
        fn as_object_len(&self) -> Option<usize>;
    }
    impl JsonValueExt for crate::json::JsonValue {
        fn as_object_len(&self) -> Option<usize> {
            match self {
                crate::json::JsonValue::Object(kv) => Some(kv.len()),
                _ => None,
            }
        }
    }
}
