//! Chrome `trace_event` JSON builder.
//!
//! Emits the JSON Array Format understood by `chrome://tracing` and
//! Perfetto: a flat array of complete (`"ph": "X"`) events with microsecond
//! `ts`/`dur`, plus `process_name` / `thread_name` metadata events so lanes
//! get human-readable labels. Callers choose what a process (`pid`) and a
//! thread (`tid`) mean — the simulator maps ranks to processes and resource
//! kinds to thread lanes; the host-span exporter maps the process to the
//! profiled binary and real threads to lanes.

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a non-negative microsecond value with fixed 3-decimal precision.
///
/// `trace_event` timestamps are (possibly fractional) microseconds; fixed
/// precision keeps the output deterministic across platforms.
fn us(v: f64) -> String {
    format!("{:.3}", v.max(0.0))
}

/// An in-progress Chrome `trace_event` array.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events added so far (including metadata events).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names process `pid` (shown as a top-level group in the viewer).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Names thread lane `tid` of process `pid`.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Orders thread lane `tid` of process `pid` in the viewer (lower first).
    pub fn thread_sort_index(&mut self, pid: u64, tid: u64, index: u64) {
        self.events.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"sort_index\":{index}}}}}"
        ));
    }

    /// Adds one complete (`ph: "X"`) event. `ts_us`/`dur_us` are microseconds.
    pub fn complete_event(
        &mut self,
        name: &str,
        category: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        dur_us: f64,
    ) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{},\"dur\":{}}}",
            json_escape(name),
            json_escape(category),
            us(ts_us),
            us(dur_us)
        ));
    }

    /// Serialises the trace as a JSON array (the JSON Array Format).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str("  ");
            out.push_str(e);
            if i + 1 != self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }
}

/// Renders host-side profiler spans as a Chrome trace: one process (`pid` 0)
/// for the host, one thread lane per recording thread.
#[must_use]
pub fn spans_to_chrome(spans: &[crate::span::SpanRecord]) -> String {
    let mut trace = ChromeTrace::new();
    trace.process_name(0, "host");
    let mut threads: Vec<u64> = spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        trace.thread_name(0, t, &format!("thread {t}"));
    }
    for s in spans {
        trace.complete_event(
            s.name,
            "host",
            0,
            s.thread,
            s.start_ns as f64 / 1_000.0,
            s.dur_ns as f64 / 1_000.0,
        );
    }
    trace.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, JsonValue};

    #[test]
    fn escape_covers_quotes_backslashes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn built_trace_is_valid_json_with_expected_fields() {
        let mut t = ChromeTrace::new();
        t.process_name(3, "rank 3");
        t.thread_name(3, 1, "copy \"lane\"");
        t.complete_event("push/r0/b1", "comm", 3, 1, 0.0, 12.5);
        let parsed = parse_json(&t.to_json()).expect("valid JSON");
        let JsonValue::Array(events) = parsed else {
            panic!("expected array");
        };
        assert_eq!(events.len(), 3);
        let ev = &events[2];
        assert_eq!(ev.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(ev.get("pid").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(ev.get("tid").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(ev.get("dur").and_then(JsonValue::as_f64), Some(12.5));
    }
}
