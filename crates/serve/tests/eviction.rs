//! Warm-cache churn stays bounded: the LRU entry cap holds under a stream
//! of distinct keys, eviction order follows recency, and the
//! `serve.cache.evictions` counter records the churn.
//!
//! Lives in its own test binary so the process-global eviction counter is
//! not shared with unrelated tests.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use tilelink_probe::metrics::SERVE_CACHE_EVICTIONS;
use tilelink_serve::protocol::{parse_command, Command, TuneRequest};
use tilelink_serve::service::{ServeOptions, Source, TuneOutcome, TuneService};

fn request(line: &str) -> TuneRequest {
    match parse_command(line).unwrap() {
        Command::Tune(req) => *req,
        other => panic!("expected TUNE, got {other:?}"),
    }
}

/// A stub service with a single-shard warm cache capped at `cap` entries —
/// one shard makes the LRU order global, so eviction order is exact.
fn capped_service(cap: usize, calls: Arc<AtomicUsize>) -> TuneService {
    let opts = ServeOptions {
        cache_path: None,
        shards: 1,
        cache_entries: cap,
        ..ServeOptions::quick()
    };
    TuneService::with_search(
        opts,
        Box::new(move |req, _cost, _opts| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(TuneOutcome {
                config_key: format!("stub-{}", req.workload.name()),
                total_s: 1e-3,
                comm_s: 4e-4,
                comp_s: 8e-4,
                evaluations: 1,
                cache_hits: 0,
            })
        }),
    )
}

/// 18 distinct cache-key quintuples (workload / cluster axes).
fn churn_catalog() -> Vec<String> {
    let mut catalog = Vec::new();
    for i in 1..=6 {
        catalog.push(format!("TUNE workload=MLP-{i}"));
        catalog.push(format!("TUNE workload=MLP-{i} cluster=h800x4"));
        catalog.push(format!("TUNE workload=MoE-{i}"));
    }
    catalog
}

#[test]
fn key_churn_stays_under_the_entry_cap_and_evicts_in_lru_order() {
    const CAP: usize = 8;
    let calls = Arc::new(AtomicUsize::new(0));
    let service = capped_service(CAP, Arc::clone(&calls));
    let catalog = churn_catalog();
    assert!(catalog.len() > CAP, "churn must overflow the cap");

    let evictions_before = SERVE_CACHE_EVICTIONS.get();
    for line in &catalog {
        let (_, source) = service.tune(&request(line)).unwrap();
        assert_eq!(source, Source::Cold, "{line} is a fresh key");
        assert!(
            service.cached_results() <= CAP,
            "cap must hold at every step, got {} entries",
            service.cached_results()
        );
    }
    assert_eq!(service.cached_results(), CAP);
    let evicted = (SERVE_CACHE_EVICTIONS.get() - evictions_before) as usize;
    assert_eq!(
        evicted,
        catalog.len() - CAP,
        "every overflow insert evicts exactly one entry"
    );

    // Recency order: the newest CAP keys are still warm, the oldest are not.
    let searches_so_far = calls.load(Ordering::SeqCst);
    let (_, source) = service.tune(&request(catalog.last().unwrap())).unwrap();
    assert_eq!(source, Source::Warm, "the newest key must still be cached");
    let (_, source) = service.tune(&request(&catalog[0])).unwrap();
    assert_eq!(
        source,
        Source::Cold,
        "the oldest key must have been evicted"
    );
    assert_eq!(
        calls.load(Ordering::SeqCst),
        searches_so_far + 1,
        "only the evicted key re-searches"
    );
}
