//! The `serve.inflight` gauge and the in-flight dedup map survive a
//! panicking search: the RAII guard decrements the gauge on unwind, and the
//! leader's unwind insurance publishes an error so followers get `ERR`
//! instead of waiting forever.
//!
//! Lives in its own test binary so the process-global gauge is not shared
//! with unrelated tests and the zero-sum assertion is exact.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use tilelink_probe::metrics::SERVE_INFLIGHT;
use tilelink_serve::protocol::{parse_command, Command, TuneRequest};
use tilelink_serve::service::{ServeOptions, Source, TuneOutcome, TuneService};

fn request(line: &str) -> TuneRequest {
    match parse_command(line).unwrap() {
        Command::Tune(req) => *req,
        other => panic!("expected TUNE, got {other:?}"),
    }
}

#[test]
fn a_panicking_search_leaks_neither_the_gauge_nor_the_flight() {
    let calls = Arc::new(AtomicUsize::new(0));
    // Two parties: the leader's stub (mid-search) and the follower's spawn
    // point — the barrier guarantees the follower arrives while the search
    // is in flight.
    let in_search = Arc::new(Barrier::new(2));

    let stub_calls = Arc::clone(&calls);
    let stub_barrier = Arc::clone(&in_search);
    let service = Arc::new(TuneService::with_search(
        ServeOptions {
            cache_path: None,
            ..ServeOptions::quick()
        },
        Box::new(move |_req, _cost, _opts| {
            if stub_calls.fetch_add(1, Ordering::SeqCst) == 0 {
                stub_barrier.wait();
                // Give the follower time to block on the flight.
                std::thread::sleep(Duration::from_millis(100));
                panic!("oracle exploded mid-search");
            }
            Ok(TuneOutcome {
                config_key: "recovered".into(),
                total_s: 1e-3,
                comm_s: 4e-4,
                comp_s: 8e-4,
                evaluations: 1,
                cache_hits: 0,
            })
        }),
    ));

    let gauge_before = SERVE_INFLIGHT.get();

    let leader = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            catch_unwind(AssertUnwindSafe(|| {
                service.tune(&request("TUNE workload=MLP-1"))
            }))
        })
    };
    let follower = {
        let service = Arc::clone(&service);
        let in_search = Arc::clone(&in_search);
        std::thread::spawn(move || {
            in_search.wait(); // the leader is now inside the stub
            service.tune(&request("TUNE workload=MLP-1"))
        })
    };

    let leader_result = leader.join().unwrap();
    assert!(
        leader_result.is_err(),
        "the leader's panic must propagate to its caller"
    );
    let follower_result = follower.join().unwrap();
    let err = follower_result.expect_err("the follower must get an error, not hang");
    assert!(
        err.contains("panicked"),
        "the follower's error should say what happened, got {err:?}"
    );

    assert_eq!(
        SERVE_INFLIGHT.get(),
        gauge_before,
        "the inflight gauge must return to its baseline after the panic"
    );
    assert_eq!(service.cached_results(), 0, "failures are not cached");

    // The flight was deregistered: a retry becomes a fresh leader and gets
    // the stub's recovered answer.
    let (outcome, source) = service.tune(&request("TUNE workload=MLP-1")).unwrap();
    assert_eq!(source, Source::Cold);
    assert_eq!(outcome.config_key, "recovered");
    assert_eq!(
        SERVE_INFLIGHT.get(),
        gauge_before,
        "the gauge stays balanced on the success path too"
    );
}
