//! Back-to-back cold serve searches share one warm executor: the second
//! search must reuse the thread pool the first one spawned instead of
//! paying the spawn cost again.
//!
//! Lives in its own test binary so the process-global
//! `tune.executor.reuses` counter is not shared with unrelated tests, and
//! uses a dedicated executor so the delta is attributable to these two
//! searches alone.

use std::sync::Arc;

use tilelink_probe::metrics::TUNE_EXECUTOR_REUSES;
use tilelink_serve::protocol::{parse_command, Command, TuneRequest};
use tilelink_serve::service::{ServeOptions, Source, TuneService};
use tilelink_tune::SearchExecutor;

fn request(line: &str) -> TuneRequest {
    match parse_command(line).unwrap() {
        Command::Tune(req) => *req,
        other => panic!("expected TUNE, got {other:?}"),
    }
}

#[test]
fn two_cold_searches_reuse_the_shared_executor_pool() {
    let executor = Arc::new(SearchExecutor::with_threads(2));
    let service = TuneService::new(ServeOptions {
        cache_path: None,
        threads: Some(2),
        executor: Some(Arc::clone(&executor)),
        ..ServeOptions::quick()
    });

    let reuses_before = TUNE_EXECUTOR_REUSES.get();

    // Distinct keys so both requests run real cold searches through the
    // quick space.
    let (_, source) = service.tune(&request("TUNE workload=MLP-1")).unwrap();
    assert_eq!(source, Source::Cold);
    let (_, source) = service.tune(&request("TUNE workload=MLP-2")).unwrap();
    assert_eq!(source, Source::Cold);

    assert!(
        TUNE_EXECUTOR_REUSES.get() > reuses_before,
        "the second cold search must reuse the first one's worker pool"
    );
}
