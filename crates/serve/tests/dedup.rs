//! Cold-search deduplication and warm-path coverage (service level).
//!
//! A slow stub search stands in for the beam search so the tests can prove
//! the concurrency contract exactly: N threads asking for the same uncached
//! key must trigger exactly 1 search and receive N identical responses, and
//! a warm key must trigger 0.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use tilelink_serve::protocol::{parse_command, Command, TuneRequest};
use tilelink_serve::service::{ServeOptions, Source, TuneOutcome, TuneService};

fn request(line: &str) -> TuneRequest {
    match parse_command(line).unwrap() {
        Command::Tune(req) => *req,
        other => panic!("expected TUNE, got {other:?}"),
    }
}

/// A service whose "search" sleeps long enough that every concurrent waiter
/// reliably arrives while it is in flight, and counts its invocations —
/// each invocation is one (stubbed) oracle evaluation.
fn slow_stub_service(evaluations: Arc<AtomicUsize>, delay: Duration) -> TuneService {
    TuneService::with_search(
        ServeOptions {
            cache_path: None,
            ..ServeOptions::quick()
        },
        Box::new(move |req, _cost, _opts| {
            let n = evaluations.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(delay);
            Ok(TuneOutcome {
                config_key: format!("stub-{}-{n}", req.workload.name()),
                total_s: 1.5e-3,
                comm_s: 5e-4,
                comp_s: 1.2e-3,
                evaluations: 1,
                cache_hits: 0,
            })
        }),
    )
}

#[test]
fn n_concurrent_identical_cold_requests_run_exactly_one_search() {
    const N: usize = 16;
    let evaluations = Arc::new(AtomicUsize::new(0));
    let service = Arc::new(slow_stub_service(
        Arc::clone(&evaluations),
        Duration::from_millis(300),
    ));
    let barrier = Arc::new(Barrier::new(N));

    let mut handles = Vec::new();
    for _ in 0..N {
        let service = Arc::clone(&service);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let req = request("TUNE workload=MoE-1 routing=zipf:1.2 objective=p95");
            barrier.wait();
            service.tune(&req).unwrap()
        }));
    }
    let results: Vec<(TuneOutcome, Source)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    assert_eq!(
        evaluations.load(Ordering::SeqCst),
        1,
        "N identical cold requests must trigger exactly one search"
    );
    let leader = results.iter().filter(|(_, s)| *s == Source::Cold).count();
    let piggybacked = results
        .iter()
        .filter(|(_, s)| *s == Source::Deduped)
        .count();
    assert_eq!(leader, 1, "exactly one request is the search leader");
    assert_eq!(
        piggybacked,
        N - 1,
        "every other request piggybacks (serve.requests.deduped = N-1)"
    );
    let first = &results[0].0;
    assert!(
        results.iter().all(|(outcome, _)| outcome == first),
        "all N waiters must receive the identical broadcast result"
    );
}

#[test]
fn warm_requests_run_zero_searches() {
    let evaluations = Arc::new(AtomicUsize::new(0));
    let service = Arc::new(slow_stub_service(
        Arc::clone(&evaluations),
        Duration::from_millis(1),
    ));
    let req = request("TUNE workload=MLP-3");

    let (cold, source) = service.tune(&req).unwrap();
    assert_eq!(source, Source::Cold);
    assert_eq!(evaluations.load(Ordering::SeqCst), 1);

    // Hammer the warm path from many threads: zero further searches.
    let barrier = Arc::new(Barrier::new(8));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let service = Arc::clone(&service);
        let barrier = Arc::clone(&barrier);
        let req = req.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut outcomes = Vec::new();
            for _ in 0..50 {
                outcomes.push(service.tune(&req).unwrap());
            }
            outcomes
        }));
    }
    for handle in handles {
        for (outcome, source) in handle.join().unwrap() {
            assert_eq!(source, Source::Warm);
            assert_eq!(outcome, cold);
        }
    }
    assert_eq!(
        evaluations.load(Ordering::SeqCst),
        1,
        "warm hits must never evaluate the oracle"
    );
}

#[test]
fn failed_search_is_broadcast_to_every_waiter() {
    const N: usize = 8;
    let attempts = Arc::new(AtomicUsize::new(0));
    let attempts_in_stub = Arc::clone(&attempts);
    let service = Arc::new(TuneService::with_search(
        ServeOptions {
            cache_path: None,
            ..ServeOptions::quick()
        },
        Box::new(move |_req, _cost, _opts| {
            attempts_in_stub.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(200));
            Err("search exploded".to_string())
        }),
    ));
    let barrier = Arc::new(Barrier::new(N));
    let mut handles = Vec::new();
    for _ in 0..N {
        let service = Arc::clone(&service);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let req = request("TUNE workload=MLP-1");
            barrier.wait();
            service.tune(&req)
        }));
    }
    for handle in handles {
        let result = handle.join().unwrap();
        assert_eq!(result.unwrap_err(), "search exploded");
    }
    assert_eq!(
        attempts.load(Ordering::SeqCst),
        1,
        "the failure, too, is deduplicated"
    );
    assert_eq!(service.cached_results(), 0);
}
