//! End-to-end protocol tests over a real TCP socket, with real quick-space
//! beam searches behind the daemon.

use std::sync::{Arc, Barrier};

use tilelink_serve::protocol::{parse_reply, Reply};
use tilelink_serve::server::{serve_ephemeral, Client, MAX_LINE_BYTES};
use tilelink_serve::service::{ServeOptions, TuneService};

fn quick_server() -> tilelink_serve::server::ServerHandle {
    serve_ephemeral(TuneService::new(ServeOptions {
        cache_path: None, // keep tests hermetic: no shared TSV
        threads: Some(2),
        ..ServeOptions::quick()
    }))
    .expect("bind ephemeral port")
}

#[test]
fn ping_stats_and_errors_over_the_wire() {
    let server = quick_server();
    let mut client = Client::connect(server.addr()).unwrap();

    assert_eq!(client.request("PING").unwrap(), "PONG");

    let reply = parse_reply(&client.request("STATS").unwrap()).unwrap();
    let Reply::Stats(stats) = &reply else {
        panic!("expected STATS, got {reply:?}");
    };
    assert!(stats.contains("cached="), "stats line: {stats}");
    // The payload also parses through the typed reader, and the pipeline
    // fields are present (an unknown or missing key would error here).
    let fields = reply.stats().expect("stats line parses typed");
    assert_eq!(fields.cached, fields.cache_entries, "legacy alias agrees");
    assert!(fields.pool_queued >= 0 && fields.pool_active >= 0);

    for bad in [
        "TUNE workload=MLP-9",
        "TUNE workload=MLP-1 cluster=h800x1",
        "HELLO",
        "",
    ] {
        let reply = parse_reply(&client.request(bad).unwrap()).unwrap();
        assert!(
            matches!(reply, Reply::Err(_)),
            "{bad:?} should answer ERR, got {reply:?}"
        );
    }

    // The connection survives every error above.
    assert_eq!(client.request("PING").unwrap(), "PONG");
    server.shutdown();
}

#[test]
fn cold_then_warm_tune_over_the_wire() {
    let server = quick_server();
    let mut client = Client::connect(server.addr()).unwrap();

    let line = "TUNE workload=MLP-1 cluster=h800x8";
    let Reply::Ok(cold) = parse_reply(&client.request(line).unwrap()).unwrap() else {
        panic!("cold request failed");
    };
    assert_eq!(cold.workload, "MLP-1");
    assert_eq!(cold.source, "cold");
    assert!(cold.evals > 0, "a cold search evaluates candidates");
    assert!(cold.total_ms > 0.0 && cold.total_ms.is_finite());
    assert!(!cold.config.is_empty());

    // Same request again — warm, identical winner, and from a *different*
    // connection to prove the cache is connection-independent.
    let mut second = Client::connect(server.addr()).unwrap();
    let Reply::Ok(warm) = parse_reply(&second.request(line).unwrap()).unwrap() else {
        panic!("warm request failed");
    };
    assert_eq!(warm.source, "warm");
    assert_eq!(warm.config, cold.config);
    assert_eq!(warm.total_ms, cold.total_ms);

    // The typed STATS payload reflects the traffic this server just served.
    let stats = parse_reply(&second.request("STATS").unwrap())
        .unwrap()
        .stats()
        .expect("stats line parses typed");
    assert!(stats.warm >= 1, "one warm hit recorded: {stats:?}");
    assert!(stats.cold >= 1, "one cold search recorded: {stats:?}");
    assert!(stats.cache_entries >= 1, "the winner is cached: {stats:?}");
    server.shutdown();
}

#[test]
fn oversized_request_lines_answer_err_and_close_the_connection() {
    let server = quick_server();
    let mut client = Client::connect(server.addr()).unwrap();

    // A request line one chunk past the cap: the daemon must refuse it with
    // a bounded-size ERR instead of buffering without limit.
    let huge = "X".repeat(MAX_LINE_BYTES + 4096);
    let reply = client.request(&huge).unwrap();
    assert!(
        reply.starts_with("ERR request line exceeds"),
        "got: {reply}"
    );

    // The daemon closes the connection after the refusal; the next request
    // on the same socket fails instead of hanging.
    assert!(
        client.request("PING").is_err(),
        "connection must be closed after an oversized line"
    );

    // Fresh connections are unaffected.
    let mut fresh = Client::connect(server.addr()).unwrap();
    assert_eq!(fresh.request("PING").unwrap(), "PONG");
    server.shutdown();
}

#[test]
fn concurrent_identical_requests_over_sockets_share_one_search() {
    const N: usize = 8;
    let server = quick_server();
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(N));

    let mut handles = Vec::new();
    for _ in 0..N {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            barrier.wait();
            client
                .request("TUNE workload=MoE-1 routing=zipf:1.1 objective=p95")
                .unwrap()
        }));
    }
    let replies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut cold = 0;
    let mut deduped = 0;
    let mut configs = std::collections::HashSet::new();
    for reply in &replies {
        let Reply::Ok(fields) = parse_reply(reply).unwrap() else {
            panic!("request failed: {reply}");
        };
        match fields.source.as_str() {
            "cold" => cold += 1,
            "deduped" => deduped += 1,
            other => panic!("unexpected source {other} (a racer went warm too early?)"),
        }
        configs.insert(fields.config);
    }
    assert_eq!(cold, 1, "exactly one socket request runs the search");
    assert_eq!(deduped, N - 1);
    assert_eq!(configs.len(), 1, "every client gets the same winner");
    server.shutdown();
}
