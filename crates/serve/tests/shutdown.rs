//! Graceful shutdown under load: a daemon asked to stop while a cold search
//! is executing must drain — the in-flight request finishes, its response is
//! flushed to the client, and the result lands in the warm cache — before
//! the process exits.
//!
//! Uses the self-exec idiom: the parent test re-invokes this test binary
//! with `TILELINK_SERVE_TEST_CHILD_PATH` set, the child boots a real daemon
//! with a slow stub search and shuts it down mid-search, and the parent
//! verifies from the outside (exit status + a TSV marker the stub persisted
//! through a [`TuneCache`]) that the drain really completed.

use std::path::PathBuf;
use std::process::Command as ProcCommand;
use std::sync::Arc;
use std::time::Duration;

use tilelink::{OverlapConfig, OverlapReport};
use tilelink_serve::protocol::{parse_reply, Reply};
use tilelink_serve::server::{serve_ephemeral, Client};
use tilelink_serve::service::{ServeOptions, TuneOutcome, TuneService};
use tilelink_tune::TuneCache;

/// Environment variable carrying the marker-cache path; its presence marks
/// the process as the re-invoked child.
const CHILD_ENV: &str = "TILELINK_SERVE_TEST_CHILD_PATH";
const CHILD_TEST: &str = "child_daemon_drains_the_inflight_search";

fn marker_key() -> String {
    let prefix = TuneCache::key_prefix("shutdown-marker", "test-cluster", "r-test", "mean");
    TuneCache::key_in(&prefix, &OverlapConfig::default())
}

/// Child half: inert unless re-invoked with the marker path in the
/// environment. Boots a daemon whose search sleeps long enough for the
/// shutdown to arrive mid-flight, then persists a marker entry.
#[test]
fn child_daemon_drains_the_inflight_search() {
    let Ok(marker_path) = std::env::var(CHILD_ENV) else {
        return;
    };
    let marker_path = PathBuf::from(marker_path);

    let stub_marker = marker_path.clone();
    let service = TuneService::with_search(
        ServeOptions {
            cache_path: None,
            ..ServeOptions::quick()
        },
        Box::new(move |_req, _cost, _opts| {
            // Long enough that the parent-side shutdown below overlaps the
            // search, short enough to keep the test fast.
            std::thread::sleep(Duration::from_millis(300));
            let mut cache = TuneCache::open(&stub_marker).expect("open marker cache");
            cache.insert(marker_key(), OverlapReport::new(1e-3, 4e-4, 8e-4));
            cache.flush().expect("flush marker cache");
            Ok(TuneOutcome {
                config_key: "drained".into(),
                total_s: 1e-3,
                comm_s: 4e-4,
                comp_s: 8e-4,
                evaluations: 1,
                cache_hits: 0,
            })
        }),
    );

    let server = serve_ephemeral(service).expect("daemon binds an ephemeral port");
    let addr = server.addr();
    let service = Arc::clone(server.service());

    let client = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("client connects");
        client
            .request("TUNE workload=MLP-1")
            .expect("the drained daemon still answers the in-flight request")
    });

    // Let the request reach a worker and enter the slow search, then ask the
    // daemon to stop while the search is still running.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();

    let reply = client.join().expect("client thread");
    match parse_reply(&reply).expect("well-formed reply") {
        Reply::Ok(fields) => {
            assert_eq!(fields.source, "cold");
            assert_eq!(fields.config, "drained");
        }
        other => panic!("expected OK after drain, got {other:?}"),
    }
    assert_eq!(
        service.cached_results(),
        1,
        "the drained search must publish into the warm cache before exit"
    );
}

/// Parent half: re-invokes the child in a fresh process and verifies the
/// drain from outside — exit status plus the marker the stub persisted.
#[test]
fn shutdown_under_load_completes_and_persists_the_inflight_search() {
    if std::env::var(CHILD_ENV).is_ok() {
        return; // we *are* the child; only the child test body should run
    }
    let marker = std::env::temp_dir().join(format!(
        "tilelink-serve-shutdown-{}.tsv",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&marker);

    let exe = std::env::current_exe().expect("test binary path");
    let output = ProcCommand::new(exe)
        .args([CHILD_TEST, "--exact", "--nocapture", "--test-threads=1"])
        .env(CHILD_ENV, &marker)
        .output()
        .expect("spawn child test process");
    assert!(
        output.status.success(),
        "child daemon failed:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    let cache = TuneCache::open(&marker).expect("marker cache readable after child exit");
    assert_eq!(cache.len(), 1, "exactly the drained search left a marker");
    assert!(
        cache.get(&marker_key()).is_some(),
        "the marker entry carries the expected key"
    );
    let _ = std::fs::remove_file(&marker);
}
