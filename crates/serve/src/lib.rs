//! # tilelink-serve
//!
//! Tuning-as-a-service: a long-running daemon that answers "what is the best
//! overlap config for this workload on this cluster?" over a line-oriented
//! socket protocol, serving warm answers from a sharded in-memory cache in
//! microseconds and collapsing concurrent identical cold misses into a
//! single beam search.
//!
//! The pieces, bottom up:
//!
//! * [`shard::ShardedCache`] — the warm path: N independently `RwLock`ed
//!   shards keyed by FNV hash, so concurrent warm hits touch disjoint locks;
//! * [`service::TuneService`] — request → cache-key quintuple → warm hit /
//!   in-flight piggyback / leader search, with the persistent
//!   [`tilelink_tune::TuneCache`] as write-behind storage and the probe
//!   counters `serve.requests.{warm,cold,deduped}` + `serve.inflight`
//!   threaded through;
//! * [`protocol`] — the wire grammar (`TUNE workload=MoE-1 routing=zipf:1.2
//!   objective=p95`, `PING`, `STATS`) and its response forms;
//! * [`server`] — the TCP front end (thread per connection, persistent
//!   connections) and a minimal blocking [`server::Client`];
//! * [`loadgen`] — the load generator behind `reproduce --bench-serve` and
//!   `BENCH_serve.json`.
//!
//! Cold searches reuse the existing tuning stack unchanged: the same
//! [`tilelink_workloads::autotune::MlpOracle`]/[`tilelink_workloads::autotune::MoeOracle`],
//! the same [`tilelink_tune::Objective`] statistics, the same revision-keyed
//! cache invalidation and the same multi-threaded evaluator. The daemon is
//! a concurrency shell around machinery that already existed.

#![deny(missing_docs)]

pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod service;
pub mod shard;

pub use loadgen::{LoadGenConfig, ServeBenchReport};
pub use protocol::{parse_command, parse_reply, Command, Reply, TuneRequest, WorkloadSpec};
pub use server::{serve, serve_ephemeral, Client, ServerHandle};
pub use service::{ServeOptions, Source, TuneOutcome, TuneService};
pub use shard::ShardedCache;
