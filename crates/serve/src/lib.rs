//! # tilelink-serve
//!
//! Tuning-as-a-service: a long-running daemon that answers "what is the best
//! overlap config for this workload on this cluster?" over a line-oriented
//! socket protocol, serving warm answers from a sharded in-memory cache in
//! microseconds and collapsing concurrent identical cold misses into a
//! single beam search.
//!
//! The request path is a staged, bounded pipeline — every stage has a fixed
//! resource bound, so load shows up as queueing (visible in `STATS` and the
//! probe gauges), never as unbounded threads or memory:
//!
//! ```text
//! conns (any number)                         ← one nonblocking reactor thread
//!   └─ bounded dispatch queue (ERR busy when full)
//!        └─ fixed worker pool               ← serve.pool.{queued,active,rejected}
//!             └─ TuneService: warm hit │ in-flight piggyback │ leader search
//!                  └─ shared SearchExecutor ← tune.executor.{reuses,queue_depth}
//! ```
//!
//! The pieces, bottom up:
//!
//! * [`shard::ShardedCache`] — the warm path: N independently `RwLock`ed
//!   shards keyed by FNV hash, so concurrent warm hits touch disjoint locks;
//!   bounded by a per-shard LRU entry cap and an idle TTL
//!   ([`shard::CachePolicy`]), with churn counted in
//!   `serve.cache.{evictions,expired}`;
//! * [`service::TuneService`] — request → cache-key quintuple → warm hit /
//!   in-flight piggyback / leader search, with the persistent
//!   [`tilelink_tune::TuneCache`] as write-behind storage and the probe
//!   counters `serve.requests.{warm,cold,deduped}` + `serve.inflight`
//!   threaded through;
//! * [`protocol`] — the wire grammar (`TUNE workload=MoE-1 routing=zipf:1.2
//!   objective=p95`, `PING`, `STATS`) and its response forms;
//! * [`server`] — the TCP front end: one reactor thread multiplexing every
//!   connection over nonblocking sockets, a fixed worker pool behind a
//!   bounded queue, and a minimal blocking [`server::Client`];
//! * [`loadgen`] — the load generator behind `reproduce --bench-serve` and
//!   `BENCH_serve.json`, including a connection-ramp phase that holds total
//!   work constant while multiplying idle connections.
//!
//! Cold searches reuse the existing tuning stack unchanged: the same
//! [`tilelink_workloads::autotune::MlpOracle`]/[`tilelink_workloads::autotune::MoeOracle`],
//! the same [`tilelink_tune::Objective`] statistics, the same revision-keyed
//! cache invalidation — but evaluation now runs on the process-shared
//! [`tilelink_tune::SearchExecutor`], so concurrent cold searches interleave
//! on one warm thread pool instead of each spawning their own.

#![deny(missing_docs)]

pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod service;
pub mod shard;

pub use loadgen::{LoadGenConfig, PipelineMetrics, RampLevel, ServeBenchReport};
pub use protocol::{
    parse_command, parse_reply, parse_stats, Command, Reply, StatsFields, TuneRequest, WorkloadSpec,
};
pub use server::{serve, serve_ephemeral, Client, ServerHandle, MAX_LINE_BYTES};
pub use service::{ServeOptions, Source, TuneOutcome, TuneService};
pub use shard::{CachePolicy, ShardedCache};
