//! A sharded concurrent map: the warm path of the serve daemon.
//!
//! Lock granularity is the point. A single `RwLock<HashMap>` would serialise
//! every warm hit behind one lock word; splitting the key space over N
//! independently locked shards lets N readers (and up to N writers) proceed
//! in parallel with nothing shared but the immutable shard vector. Keys are
//! assigned to shards by FNV-1a hash, which is cheap, has no per-process
//! randomisation (so shard occupancy is reproducible in tests) and mixes the
//! long, structured tuning keys well.
//!
//! # Eviction
//!
//! A daemon that never forgets grows without bound under key churn, so the
//! cache optionally enforces a [`CachePolicy`]: a per-shard LRU entry cap
//! (evictions counted in `serve.cache.evictions`) and a time-to-live measured
//! from an entry's last *access* (expiries counted in `serve.cache.expired`).
//! Recency is tracked with a relaxed atomic stamp per entry, so warm hits
//! still only take the shard's read lock. TTL expiry is enforced lazily on
//! `get` and eagerly by [`ShardedCache::purge_expired`], which the server's
//! maintenance tick calls periodically.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::{Duration, Instant};

use tilelink_probe::metrics::{SERVE_CACHE_EVICTIONS, SERVE_CACHE_EXPIRED};

/// Number of shards [`ShardedCache::default`] uses — comfortably more than
/// the worker threads a load generator throws at the daemon, so two
/// concurrent warm hits rarely contend on the same lock.
pub const DEFAULT_SHARDS: usize = 64;

/// Bounds on a [`ShardedCache`]: entry cap and idle time-to-live. The
/// default is unbounded with no expiry — the pre-policy behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CachePolicy {
    /// Total entry cap across all shards; `0` means unbounded. The cap is
    /// enforced per shard (`max_entries / shards`, at least 1 each, with the
    /// shard count clamped so the total never exceeds `max_entries`), evicting
    /// the shard's least-recently-used entry on overflow.
    pub max_entries: usize,
    /// Drop entries not accessed for this long; `None` disables expiry.
    pub ttl: Option<Duration>,
}

/// One cached value plus its recency bookkeeping, both bumped with relaxed
/// atomics so reads need only the shard's read lock: `seq` is a logical
/// access number (LRU ordering — wall-clock stamps tie within a
/// microsecond), `stamp_us` is microseconds since the cache's epoch (TTL).
#[derive(Debug)]
struct Entry<V> {
    value: V,
    seq: AtomicU64,
    stamp_us: AtomicU64,
}

impl<V> Entry<V> {
    fn touch(&self, seq: u64, now_us: u64) {
        self.seq.store(seq, Ordering::Relaxed);
        self.stamp_us.store(now_us, Ordering::Relaxed);
    }
}

/// A concurrent string-keyed map split over independently locked shards, with
/// optional per-shard LRU eviction and idle TTL (see [`CachePolicy`]).
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: Vec<RwLock<HashMap<String, Entry<V>>>>,
    /// Entry cap per shard; `usize::MAX` when unbounded.
    per_shard_cap: usize,
    /// Idle TTL in microseconds; `None` disables expiry.
    ttl_us: Option<u64>,
    /// Zero point of the `stamp_us` stamps.
    epoch: Instant,
    /// Logical access clock feeding `Entry::seq`.
    clock: AtomicU64,
}

impl<V: Clone> Default for ShardedCache<V> {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

impl<V: Clone> ShardedCache<V> {
    /// Creates an unbounded cache with `shards` independently locked shards
    /// (at least 1).
    pub fn new(shards: usize) -> Self {
        Self::with_policy(shards, CachePolicy::default())
    }

    /// Creates a cache with `shards` shards bounded by `policy`. When the
    /// entry cap is smaller than the shard count, the shard count is reduced
    /// so the per-shard caps sum to at most `policy.max_entries`.
    pub fn with_policy(shards: usize, policy: CachePolicy) -> Self {
        let mut shards = shards.max(1);
        let per_shard_cap = if policy.max_entries == 0 {
            usize::MAX
        } else {
            shards = shards.min(policy.max_entries);
            policy.max_entries / shards
        };
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            per_shard_cap,
            ttl_us: policy.ttl.map(|d| d.as_micros() as u64),
            epoch: Instant::now(),
            clock: AtomicU64::new(0),
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total entries the cache will hold before evicting, or `None` when
    /// unbounded.
    pub fn capacity(&self) -> Option<usize> {
        (self.per_shard_cap != usize::MAX).then(|| self.per_shard_cap * self.shards.len())
    }

    /// Microseconds since the cache's epoch.
    fn tick(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Next logical access number (total order over gets and inserts).
    fn next_seq(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn expired(&self, entry_last_used: u64, now: u64) -> bool {
        self.ttl_us
            .is_some_and(|ttl| now.saturating_sub(entry_last_used) > ttl)
    }

    /// FNV-1a over the key bytes, reduced to a shard index.
    fn shard_of(&self, key: &str) -> usize {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in key.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    /// Clones the value under `key`, if present and not expired, holding only
    /// that shard's read lock on the hit path (recency is bumped through a
    /// relaxed atomic). An expired entry is removed (upgrading to the write
    /// lock), counted in `serve.cache.expired`, and reported as a miss.
    pub fn get(&self, key: &str) -> Option<V> {
        let idx = self.shard_of(key);
        let now = self.tick();
        {
            let shard = self.shards[idx].read().unwrap_or_else(|e| e.into_inner());
            match shard.get(key) {
                None => return None,
                Some(entry) if !self.expired(entry.stamp_us.load(Ordering::Relaxed), now) => {
                    entry.touch(self.next_seq(), now);
                    return Some(entry.value.clone());
                }
                Some(_) => {} // expired: fall through to the write path
            }
        }
        let mut shard = self.shards[idx].write().unwrap_or_else(|e| e.into_inner());
        // Re-check under the write lock: a concurrent insert may have
        // replaced the entry with a fresh one between the two locks.
        if let Some(entry) = shard.get(key) {
            if self.expired(entry.stamp_us.load(Ordering::Relaxed), now) {
                shard.remove(key);
                SERVE_CACHE_EXPIRED.inc();
            } else {
                let value = entry.value.clone();
                entry.touch(self.next_seq(), now);
                return Some(value);
            }
        }
        None
    }

    /// Inserts (or replaces) the value under `key`, holding only that shard's
    /// write lock, then evicts the shard's least-recently-used entries until
    /// it is back under its cap (counted in `serve.cache.evictions`).
    pub fn insert(&self, key: String, value: V) {
        let now = self.tick();
        let mut shard = self.shards[self.shard_of(&key)]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        shard.insert(
            key,
            Entry {
                value,
                seq: AtomicU64::new(self.next_seq()),
                stamp_us: AtomicU64::new(now),
            },
        );
        while shard.len() > self.per_shard_cap {
            let Some(oldest) = shard
                .iter()
                .min_by_key(|(_, e)| e.seq.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            shard.remove(&oldest);
            SERVE_CACHE_EVICTIONS.inc();
        }
    }

    /// Removes every expired entry right now and returns how many were
    /// dropped (also counted in `serve.cache.expired`). A no-op without a
    /// TTL. Called from the server's periodic maintenance tick so idle
    /// entries are reclaimed even when nothing touches their keys.
    pub fn purge_expired(&self) -> usize {
        if self.ttl_us.is_none() {
            return 0;
        }
        let now = self.tick();
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = shard.write().unwrap_or_else(|e| e.into_inner());
            let before = shard.len();
            shard.retain(|_, e| !self.expired(e.stamp_us.load(Ordering::Relaxed), now));
            dropped += before - shard.len();
        }
        SERVE_CACHE_EXPIRED.add(dropped as u64);
        dropped
    }

    /// Total entries across all shards (takes each read lock in turn, so the
    /// count is only a snapshot under concurrent writers).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Returns `true` when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn roundtrip_and_replace() {
        let cache: ShardedCache<u32> = ShardedCache::new(8);
        assert!(cache.is_empty());
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        cache.insert("a".into(), 3);
        assert_eq!(cache.get("a"), Some(3));
        assert_eq!(cache.get("b"), Some(2));
        assert_eq!(cache.get("c"), None);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.capacity(), None);
    }

    #[test]
    fn zero_shards_is_clamped() {
        let cache: ShardedCache<u32> = ShardedCache::new(0);
        assert_eq!(cache.shards(), 1);
        cache.insert("k".into(), 7);
        assert_eq!(cache.get("k"), Some(7));
    }

    #[test]
    fn keys_spread_over_multiple_shards() {
        let cache: ShardedCache<usize> = ShardedCache::new(16);
        for i in 0..256 {
            cache.insert(format!("mlp/S8192-H4096|key-{i}"), i);
        }
        assert_eq!(cache.len(), 256);
        let occupied = (0..256)
            .map(|i| cache.shard_of(&format!("mlp/S8192-H4096|key-{i}")))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(
            occupied > 8,
            "256 keys should land on most of 16 shards, got {occupied}"
        );
    }

    #[test]
    fn concurrent_readers_and_writers_agree() {
        let cache: Arc<ShardedCache<usize>> = Arc::new(ShardedCache::new(8));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..100 {
                        cache.insert(format!("t{t}-k{i}"), i);
                        assert_eq!(cache.get(&format!("t{t}-k{i}")), Some(i));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 800);
    }

    #[test]
    fn lru_eviction_holds_the_cap_under_churn() {
        let cache: ShardedCache<usize> = ShardedCache::with_policy(
            8,
            CachePolicy {
                max_entries: 64,
                ttl: None,
            },
        );
        assert_eq!(cache.capacity(), Some(64));
        for i in 0..1000 {
            cache.insert(format!("churn-key-{i}"), i);
            assert!(
                cache.len() <= 64,
                "cap must hold at every step, len={} after {i} inserts",
                cache.len()
            );
        }
        assert!(!cache.is_empty());
    }

    #[test]
    fn eviction_prefers_the_least_recently_used() {
        // One shard so every key competes in the same LRU domain.
        let cache: ShardedCache<u32> = ShardedCache::with_policy(
            1,
            CachePolicy {
                max_entries: 3,
                ttl: None,
            },
        );
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        cache.insert("c".into(), 3);
        // Touch "a" so "b" is now the coldest.
        assert_eq!(cache.get("a"), Some(1));
        cache.insert("d".into(), 4);
        assert_eq!(cache.get("b"), None, "coldest entry must be evicted");
        assert_eq!(cache.get("a"), Some(1));
        assert_eq!(cache.get("c"), Some(3));
        assert_eq!(cache.get("d"), Some(4));
    }

    #[test]
    fn cap_smaller_than_shard_count_still_holds() {
        let cache: ShardedCache<u32> = ShardedCache::with_policy(
            64,
            CachePolicy {
                max_entries: 4,
                ttl: None,
            },
        );
        assert!(cache.capacity().unwrap() <= 4);
        for i in 0..100 {
            cache.insert(format!("k{i}"), i);
            assert!(cache.len() <= 4);
        }
    }

    #[test]
    fn ttl_expires_idle_entries() {
        let cache: ShardedCache<u32> = ShardedCache::with_policy(
            4,
            CachePolicy {
                max_entries: 0,
                ttl: Some(Duration::from_millis(30)),
            },
        );
        cache.insert("k".into(), 1);
        assert_eq!(cache.get("k"), Some(1));
        std::thread::sleep(Duration::from_millis(60));
        let before = SERVE_CACHE_EXPIRED.get();
        assert_eq!(cache.get("k"), None, "idle entry must expire");
        assert!(SERVE_CACHE_EXPIRED.get() > before);
        assert_eq!(cache.len(), 0, "expired entry is removed, not just hidden");
    }

    #[test]
    fn access_refreshes_the_ttl() {
        let cache: ShardedCache<u32> = ShardedCache::with_policy(
            4,
            CachePolicy {
                max_entries: 0,
                ttl: Some(Duration::from_millis(80)),
            },
        );
        cache.insert("hot".into(), 1);
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(40));
            assert_eq!(
                cache.get("hot"),
                Some(1),
                "an entry touched within its TTL must stay warm"
            );
        }
    }

    #[test]
    fn purge_expired_sweeps_untouched_entries() {
        let cache: ShardedCache<u32> = ShardedCache::with_policy(
            4,
            CachePolicy {
                max_entries: 0,
                ttl: Some(Duration::from_millis(20)),
            },
        );
        for i in 0..16 {
            cache.insert(format!("k{i}"), i);
        }
        assert_eq!(cache.purge_expired(), 0, "nothing expired yet");
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(cache.purge_expired(), 16);
        assert!(cache.is_empty());
        // Without a TTL the purge is a no-op.
        let unbounded: ShardedCache<u32> = ShardedCache::new(2);
        unbounded.insert("k".into(), 1);
        assert_eq!(unbounded.purge_expired(), 0);
    }
}
