//! A sharded concurrent map: the warm path of the serve daemon.
//!
//! Lock granularity is the point. A single `RwLock<HashMap>` would serialise
//! every warm hit behind one lock word; splitting the key space over N
//! independently locked shards lets N readers (and up to N writers) proceed
//! in parallel with nothing shared but the immutable shard vector. Keys are
//! assigned to shards by FNV-1a hash, which is cheap, has no per-process
//! randomisation (so shard occupancy is reproducible in tests) and mixes the
//! long, structured tuning keys well.

use std::collections::HashMap;
use std::sync::RwLock;

/// Number of shards [`ShardedCache::default`] uses — comfortably more than
/// the worker threads a load generator throws at the daemon, so two
/// concurrent warm hits rarely contend on the same lock.
pub const DEFAULT_SHARDS: usize = 64;

/// A concurrent string-keyed map split over independently locked shards.
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: Vec<RwLock<HashMap<String, V>>>,
}

impl<V: Clone> Default for ShardedCache<V> {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

impl<V: Clone> ShardedCache<V> {
    /// Creates a cache with `shards` independently locked shards (at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// FNV-1a over the key bytes, reduced to a shard index.
    fn shard_of(&self, key: &str) -> usize {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in key.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    /// Clones the value under `key`, if present, holding only that shard's
    /// read lock.
    pub fn get(&self, key: &str) -> Option<V> {
        let shard = self.shards[self.shard_of(key)]
            .read()
            .unwrap_or_else(|e| e.into_inner());
        shard.get(key).cloned()
    }

    /// Inserts (or replaces) the value under `key`, holding only that shard's
    /// write lock.
    pub fn insert(&self, key: String, value: V) {
        let mut shard = self.shards[self.shard_of(&key)]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        shard.insert(key, value);
    }

    /// Total entries across all shards (takes each read lock in turn, so the
    /// count is only a snapshot under concurrent writers).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Returns `true` when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn roundtrip_and_replace() {
        let cache: ShardedCache<u32> = ShardedCache::new(8);
        assert!(cache.is_empty());
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        cache.insert("a".into(), 3);
        assert_eq!(cache.get("a"), Some(3));
        assert_eq!(cache.get("b"), Some(2));
        assert_eq!(cache.get("c"), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_shards_is_clamped() {
        let cache: ShardedCache<u32> = ShardedCache::new(0);
        assert_eq!(cache.shards(), 1);
        cache.insert("k".into(), 7);
        assert_eq!(cache.get("k"), Some(7));
    }

    #[test]
    fn keys_spread_over_multiple_shards() {
        let cache: ShardedCache<usize> = ShardedCache::new(16);
        for i in 0..256 {
            cache.insert(format!("mlp/S8192-H4096|key-{i}"), i);
        }
        assert_eq!(cache.len(), 256);
        let occupied = (0..256)
            .map(|i| cache.shard_of(&format!("mlp/S8192-H4096|key-{i}")))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(
            occupied > 8,
            "256 keys should land on most of 16 shards, got {occupied}"
        );
    }

    #[test]
    fn concurrent_readers_and_writers_agree() {
        let cache: Arc<ShardedCache<usize>> = Arc::new(ShardedCache::new(8));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..100 {
                        cache.insert(format!("t{t}-k{i}"), i);
                        assert_eq!(cache.get(&format!("t{t}-k{i}")), Some(i));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 800);
    }
}
