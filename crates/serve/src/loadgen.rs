//! Load generator: drives a real daemon over real sockets and measures it.
//!
//! Three phases, mirroring the service's three request paths:
//!
//! 1. **dedup** — N clients fire the *same* uncached request through a
//!    barrier; with batching working, exactly one runs the search
//!    (`source=cold`) and the other N−1 piggyback (`source=deduped`).
//! 2. **warm** — C persistent connections each issue R copies of an
//!    already-cached request, measuring per-request wall latency
//!    client-side (write → response line). This is the microsecond path the
//!    daemon exists for.
//! 3. **mixed** — C connections sweep a catalog of distinct requests with
//!    staggered offsets, so the run mixes cold searches, warm hits and
//!    dedup collisions the way a real fleet of tuner clients would.
//! 4. **ramp** — the connection count multiplies level by level while the
//!    total warm-request volume stays constant, so the measurement isolates
//!    what *connections* cost (the reactor's scan, not extra work). Against
//!    the old thread-per-connection front end this is where the thread
//!    explosion lived; against the reactor the warm p99 should stay flat.
//!
//! Sources are counted from the response lines themselves (every `OK` reply
//! carries `source=`), so the phase numbers are exact even if other traffic
//! shares the process's probe counters. The pipeline counters that *are*
//! process-global (`serve.pool.*`, `serve.cache.*`, `tune.executor.*`) are
//! snapshotted before and after the run and reported as deltas. Cold
//! searches always use the compact `--quick` search space — the bench
//! measures *serving*, not search depth — while request volumes scale with
//! the quick flag.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use tilelink_probe::metrics::{
    SERVE_CACHE_EVICTIONS, SERVE_CACHE_EXPIRED, SERVE_POOL_REJECTED, TUNE_EXECUTOR_REUSES,
};
use tilelink_sim::CostModelSpec;

use crate::protocol::{parse_reply, Reply};
use crate::server::{serve_ephemeral, Client, ServerHandle};
use crate::service::{ServeOptions, TuneService};

/// Sizing of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Cost model the daemon prices searches with.
    pub cost: CostModelSpec,
    /// Clients firing the identical cold request in the dedup phase.
    pub dedup_waiters: usize,
    /// Concurrent persistent connections in the warm and mixed phases.
    pub clients: usize,
    /// Warm requests per client.
    pub warm_requests: usize,
    /// Mixed catalog requests per client.
    pub mixed_requests: usize,
    /// Evaluation threads per cold search (bounded so concurrent cold
    /// searches do not oversubscribe the box).
    pub search_threads: usize,
    /// Connection counts the ramp phase steps through.
    pub ramp_connections: Vec<usize>,
    /// Total warm requests per ramp level (split over the level's
    /// connections, so offered work stays constant while connections grow).
    pub ramp_total_requests: usize,
    /// Whether this is the reduced-volume quick configuration.
    pub quick: bool,
}

impl LoadGenConfig {
    /// CI-sized run: ~2k warm requests, hundreds of mixed ones, ramp to 64
    /// connections.
    pub fn quick(cost: CostModelSpec) -> Self {
        Self {
            cost,
            dedup_waiters: 16,
            clients: 8,
            warm_requests: 250,
            mixed_requests: 25,
            search_threads: 2,
            ramp_connections: vec![8, 16, 32, 64],
            ramp_total_requests: 2000,
            quick: true,
        }
    }

    /// Full run: tens of thousands of warm requests, thousands mixed, ramp
    /// to 256 connections.
    pub fn full(cost: CostModelSpec) -> Self {
        Self {
            cost,
            dedup_waiters: 64,
            clients: 32,
            warm_requests: 1000,
            mixed_requests: 100,
            search_threads: 2,
            ramp_connections: vec![32, 64, 128, 256],
            ramp_total_requests: 8000,
            quick: false,
        }
    }
}

/// Latency percentiles and throughput of one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Requests measured.
    pub count: usize,
    /// Wall-clock of the whole phase, seconds.
    pub wall_s: f64,
    /// `count / wall_s`.
    pub requests_per_sec: f64,
    /// Mean request latency, microseconds.
    pub mean_us: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Slowest request, microseconds.
    pub max_us: u64,
}

impl LatencyStats {
    fn from_latencies(mut latencies_us: Vec<u64>, wall_s: f64) -> Self {
        latencies_us.sort_unstable();
        let count = latencies_us.len();
        let pct = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as usize).clamp(1, count);
            latencies_us[rank - 1]
        };
        let sum: u64 = latencies_us.iter().sum();
        Self {
            count,
            wall_s,
            requests_per_sec: if wall_s > 0.0 {
                count as f64 / wall_s
            } else {
                0.0
            },
            mean_us: if count > 0 {
                sum as f64 / count as f64
            } else {
                0.0
            },
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: latencies_us.last().copied().unwrap_or(0),
        }
    }
}

/// Outcome of the dedup phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupPhase {
    /// Clients that fired the identical request.
    pub waiters: usize,
    /// Replies with `source=cold` — must be exactly 1 for perfect batching.
    pub searches: usize,
    /// Replies with `source=deduped` — ideally `waiters - 1`.
    pub deduped: usize,
    /// Replies with `source=warm` (a straggler that arrived after the
    /// search finished; 0 in a healthy run).
    pub warm: usize,
    /// Replies that matched the leader's config exactly.
    pub identical: usize,
}

/// Outcome of the mixed phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedPhase {
    /// Latency/throughput of the phase.
    pub stats: LatencyStats,
    /// Replies answered warm.
    pub warm: usize,
    /// Replies that ran a search.
    pub cold: usize,
    /// Replies that piggybacked on an in-flight search.
    pub deduped: usize,
}

/// One connection-count step of the ramp phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampLevel {
    /// Concurrent persistent connections at this level.
    pub connections: usize,
    /// Warm-request latency/throughput at this level.
    pub stats: LatencyStats,
}

/// Deltas of the process-global pipeline counters over one load-gen run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineMetrics {
    /// Requests answered `ERR busy` by the bounded dispatch queue.
    pub pool_rejected: u64,
    /// Warm-cache entries evicted by the LRU cap.
    pub cache_evictions: u64,
    /// Warm-cache entries dropped by TTL expiry.
    pub cache_expired: u64,
    /// Cold searches that reused the already-warm shared executor pool.
    pub executor_reuses: u64,
}

impl PipelineMetrics {
    fn snapshot() -> Self {
        Self {
            pool_rejected: SERVE_POOL_REJECTED.get(),
            cache_evictions: SERVE_CACHE_EVICTIONS.get(),
            cache_expired: SERVE_CACHE_EXPIRED.get(),
            executor_reuses: TUNE_EXECUTOR_REUSES.get(),
        }
    }

    fn delta_since(&self, before: &Self) -> Self {
        Self {
            pool_rejected: self.pool_rejected - before.pool_rejected,
            cache_evictions: self.cache_evictions - before.cache_evictions,
            cache_expired: self.cache_expired - before.cache_expired,
            executor_reuses: self.executor_reuses - before.executor_reuses,
        }
    }
}

/// Everything one load-generator run measured.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// The sizing that produced this report.
    pub config: LoadGenConfig,
    /// Cost-model revision the daemon priced with.
    pub cost_revision: String,
    /// Dedup phase results.
    pub dedup: DedupPhase,
    /// Warm phase latency/throughput.
    pub warm: LatencyStats,
    /// Mixed phase results.
    pub mixed: MixedPhase,
    /// Connection-ramp levels, in ramp order.
    pub ramp: Vec<RampLevel>,
    /// Pipeline-counter deltas over the whole run.
    pub metrics: PipelineMetrics,
}

/// The request every dedup waiter fires: routing-sampled and tail-tuned so
/// the search is slow enough that all waiters arrive while it is in flight.
const DEDUP_REQUEST: &str = "TUNE workload=MoE-1 routing=zipf:1.2 objective=p95";

/// The request the warm phase hammers (primed once before measuring).
const WARM_REQUEST: &str = "TUNE workload=MLP-1";

/// The mixed-phase catalog: every Table 4 shape plus routing/objective
/// variants, each a distinct cache-key quintuple.
fn mixed_catalog() -> Vec<String> {
    let mut catalog: Vec<String> = Vec::new();
    for i in 1..=6 {
        catalog.push(format!("TUNE workload=MLP-{i}"));
    }
    for i in 1..=4 {
        catalog.push(format!("TUNE workload=MoE-{i}"));
    }
    catalog.push("TUNE workload=MoE-1 routing=zipf:1.2".to_string());
    catalog.push("TUNE workload=MoE-2 objective=p95".to_string());
    catalog.push("TUNE workload=MLP-2 cluster=h800x4".to_string());
    catalog.push("TUNE workload=MoE-1 routing=hot:2".to_string());
    catalog
}

fn classify(reply: &str) -> Option<(&'static str, String)> {
    match parse_reply(reply) {
        Ok(Reply::Ok(fields)) => {
            let source: &'static str = match fields.source.as_str() {
                "warm" => "warm",
                "cold" => "cold",
                "deduped" => "deduped",
                _ => return None,
            };
            Some((source, fields.config))
        }
        _ => None,
    }
}

/// Runs the full three-phase load generation against a fresh daemon on an
/// ephemeral localhost port.
///
/// The daemon's write-behind [`tilelink_tune::TuneCache`] is pointed at a
/// fresh temp file (removed afterwards) so every cold key is genuinely cold
/// regardless of what earlier runs persisted.
///
/// # Errors
///
/// Returns any socket error; individual request failures surface as
/// non-`OK` replies and are excluded from the source counts.
pub fn run_loadgen(cfg: &LoadGenConfig) -> std::io::Result<ServeBenchReport> {
    let cache_path =
        std::env::temp_dir().join(format!("tilelink-serve-loadgen-{}.tsv", std::process::id()));
    let _ = std::fs::remove_file(&cache_path);

    let opts = ServeOptions {
        cost: cfg.cost.clone(),
        cache_path: Some(cache_path.clone()),
        threads: Some(cfg.search_threads.max(1)),
        ..ServeOptions::quick()
    };
    let cost_revision = opts
        .cost
        .build(&tilelink_sim::ClusterSpec::h800_node(8))
        .map(|cost| cost.revision())
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let server = serve_ephemeral(TuneService::new(opts))?;
    let before = PipelineMetrics::snapshot();

    let dedup = run_dedup_phase(&server, cfg.dedup_waiters)?;
    let warm = run_warm_phase(&server, cfg.clients, cfg.warm_requests)?;
    let mixed = run_mixed_phase(&server, cfg.clients, cfg.mixed_requests)?;
    let ramp = run_ramp_phase(&server, &cfg.ramp_connections, cfg.ramp_total_requests)?;

    let metrics = PipelineMetrics::snapshot().delta_since(&before);
    server.shutdown();
    let _ = std::fs::remove_file(&cache_path);

    Ok(ServeBenchReport {
        config: cfg.clone(),
        cost_revision,
        dedup,
        warm,
        mixed,
        ramp,
        metrics,
    })
}

/// The ramp phase: re-runs the warm measurement at each connection count,
/// splitting a constant request total over the connections, so each level
/// answers "what does 4× the connections cost?" rather than "what does 4×
/// the work cost?".
fn run_ramp_phase(
    server: &ServerHandle,
    levels: &[usize],
    total_requests: usize,
) -> std::io::Result<Vec<RampLevel>> {
    let mut out = Vec::with_capacity(levels.len());
    for &connections in levels {
        let connections = connections.max(1);
        let per_conn = (total_requests / connections).max(1);
        let stats = run_warm_phase(server, connections, per_conn)?;
        out.push(RampLevel { connections, stats });
    }
    Ok(out)
}

fn run_dedup_phase(server: &ServerHandle, waiters: usize) -> std::io::Result<DedupPhase> {
    let addr = server.addr();
    let barrier = Barrier::new(waiters);
    let replies = Mutex::new(Vec::with_capacity(waiters));
    let io_errors = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..waiters {
            scope.spawn(|| {
                // Connect before the barrier so the sends race as one volley.
                let client = Client::connect(addr);
                barrier.wait();
                match client.and_then(|mut c| c.request(DEDUP_REQUEST)) {
                    Ok(reply) => replies
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(reply),
                    Err(_) => {
                        io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    if io_errors.load(Ordering::Relaxed) > 0 {
        return Err(std::io::Error::other("dedup phase lost connections"));
    }
    let replies = replies.into_inner().unwrap_or_else(|e| e.into_inner());
    let mut phase = DedupPhase {
        waiters,
        searches: 0,
        deduped: 0,
        warm: 0,
        identical: 0,
    };
    let mut configs: Vec<String> = Vec::new();
    for reply in &replies {
        if let Some((source, config)) = classify(reply) {
            match source {
                "cold" => phase.searches += 1,
                "deduped" => phase.deduped += 1,
                _ => phase.warm += 1,
            }
            configs.push(config);
        }
    }
    if let Some(first) = configs.first() {
        phase.identical = configs.iter().filter(|c| *c == first).count();
    }
    Ok(phase)
}

fn run_warm_phase(
    server: &ServerHandle,
    clients: usize,
    requests_per_client: usize,
) -> std::io::Result<LatencyStats> {
    let addr = server.addr();
    // Prime the key so the measured phase is pure warm hits.
    Client::connect(addr)?.request(WARM_REQUEST)?;

    let barrier = Barrier::new(clients);
    let all_latencies = Mutex::new(Vec::with_capacity(clients * requests_per_client));
    let started = Mutex::new(None::<Instant>);
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let Ok(mut client) = Client::connect(addr) else {
                    return;
                };
                barrier.wait();
                started
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get_or_insert_with(Instant::now);
                let mut latencies = Vec::with_capacity(requests_per_client);
                for _ in 0..requests_per_client {
                    let t0 = Instant::now();
                    if client.request(WARM_REQUEST).is_err() {
                        return;
                    }
                    latencies.push(t0.elapsed().as_micros() as u64);
                }
                all_latencies
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(latencies);
            });
        }
    });
    let wall_s = started
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .map(|t0| t0.elapsed().as_secs_f64())
        .unwrap_or(0.0);
    let latencies = all_latencies
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    if latencies.len() != clients * requests_per_client {
        return Err(std::io::Error::other("warm phase lost requests"));
    }
    Ok(LatencyStats::from_latencies(latencies, wall_s))
}

fn run_mixed_phase(
    server: &ServerHandle,
    clients: usize,
    requests_per_client: usize,
) -> std::io::Result<MixedPhase> {
    let addr = server.addr();
    let catalog = mixed_catalog();
    let barrier = Barrier::new(clients);
    let all: Mutex<(Vec<u64>, usize, usize, usize)> = Mutex::new((Vec::new(), 0, 0, 0));
    let started = Mutex::new(None::<Instant>);
    std::thread::scope(|scope| {
        for client_idx in 0..clients {
            let catalog = &catalog;
            let barrier = &barrier;
            let all = &all;
            let started = &started;
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr) else {
                    return;
                };
                barrier.wait();
                started
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get_or_insert_with(Instant::now);
                let mut latencies = Vec::with_capacity(requests_per_client);
                let (mut warm, mut cold, mut deduped) = (0usize, 0usize, 0usize);
                for i in 0..requests_per_client {
                    // Staggered offsets: clients start at different catalog
                    // positions, so early requests collide (dedup) while the
                    // tail is mostly warm.
                    let line = &catalog[(client_idx + i) % catalog.len()];
                    let t0 = Instant::now();
                    let Ok(reply) = client.request(line) else {
                        return;
                    };
                    latencies.push(t0.elapsed().as_micros() as u64);
                    match classify(&reply).map(|(source, _)| source) {
                        Some("warm") => warm += 1,
                        Some("cold") => cold += 1,
                        Some("deduped") => deduped += 1,
                        _ => {}
                    }
                }
                let mut all = all.lock().unwrap_or_else(|e| e.into_inner());
                all.0.extend(latencies);
                all.1 += warm;
                all.2 += cold;
                all.3 += deduped;
            });
        }
    });
    let wall_s = started
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .map(|t0| t0.elapsed().as_secs_f64())
        .unwrap_or(0.0);
    let (latencies, warm, cold, deduped) = all.into_inner().unwrap_or_else(|e| e.into_inner());
    if latencies.len() != clients * requests_per_client {
        return Err(std::io::Error::other("mixed phase lost requests"));
    }
    Ok(MixedPhase {
        stats: LatencyStats::from_latencies(latencies, wall_s),
        warm,
        cold,
        deduped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_percentiles_are_nearest_rank() {
        let stats = LatencyStats::from_latencies((1..=100).collect(), 2.0);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50_us, 50);
        assert_eq!(stats.p95_us, 95);
        assert_eq!(stats.p99_us, 99);
        assert_eq!(stats.max_us, 100);
        assert_eq!(stats.requests_per_sec, 50.0);
        assert_eq!(stats.mean_us, 50.5);
    }

    #[test]
    fn latency_stats_handle_empty_input() {
        let stats = LatencyStats::from_latencies(Vec::new(), 0.0);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.p99_us, 0);
        assert_eq!(stats.requests_per_sec, 0.0);
    }

    #[test]
    fn mixed_catalog_keys_are_distinct() {
        let catalog = mixed_catalog();
        let unique: std::collections::HashSet<_> = catalog.iter().collect();
        assert_eq!(unique.len(), catalog.len());
        assert!(catalog.len() >= 12);
    }
}
