//! TCP front end: one thread per connection, one response line per request.
//!
//! Connections are persistent — a client sends any number of request lines
//! and reads one response line per request, in order. Connection threads
//! poll a shared shutdown flag between reads (via a short read timeout), so
//! [`ServerHandle::shutdown`] drains cleanly even with idle clients
//! attached.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::{parse_command, Command};
use crate::service::TuneService;

/// How long a connection thread blocks in one read before re-checking the
/// shutdown flag. Short enough that shutdown is prompt, long enough that
/// idle connections cost nothing measurable.
const READ_POLL: Duration = Duration::from_millis(100);

/// A running daemon: the bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    service: Arc<TuneService>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the daemon is listening on (useful with `addr` port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the listener.
    pub fn service(&self) -> &Arc<TuneService> {
        &self.service
    }

    /// Stops accepting, wakes the accept thread and joins it. Existing
    /// connection threads notice the flag within [`READ_POLL`] and exit;
    /// they are detached, so they drain in the background.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// `service` until [`ServerHandle::shutdown`].
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve(service: Arc<TuneService>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_service = Arc::clone(&service);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let service = Arc::clone(&accept_service);
            let shutdown = Arc::clone(&accept_shutdown);
            std::thread::spawn(move || handle_connection(stream, &service, &shutdown));
        }
    });

    Ok(ServerHandle {
        addr: local,
        shutdown,
        accept_thread: Some(accept_thread),
        service,
    })
}

/// Serves one connection until the peer closes, an I/O error, or shutdown.
fn handle_connection(stream: TcpStream, service: &TuneService, shutdown: &Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    // `line` persists across timeout retries: a poll timeout can interrupt a
    // partially received line, whose prefix read_line has already appended.
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                let response = respond(service, &line);
                line.clear();
                if writer.write_all(response.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                    || writer.flush().is_err()
                {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Produces the single response line (no newline) for one request line.
fn respond(service: &TuneService, line: &str) -> String {
    if line.trim().is_empty() {
        return "ERR empty request".to_string();
    }
    match parse_command(line) {
        Ok(Command::Ping) => "PONG".to_string(),
        Ok(Command::Stats) => format!("STATS {}", service.stats_line()),
        Ok(Command::Tune(req)) => match service.tune(&req) {
            Ok((outcome, source)) => outcome.ok_fields(req.workload.name(), source).render(),
            Err(message) => format!("ERR {}", message.replace('\n', " ")),
        },
        Err(message) => format!("ERR {}", message.replace('\n', " ")),
    }
}

/// A minimal blocking client for the daemon's protocol — what the load
/// generator, the smoke test and examples use to talk to the server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and reads the matching response line.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the connection drops.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }
}

/// Shared infrastructure for binding test/bench servers: a server on an
/// ephemeral localhost port.
///
/// # Errors
///
/// Returns the bind error.
pub fn serve_ephemeral(service: TuneService) -> std::io::Result<ServerHandle> {
    serve(Arc::new(service), "127.0.0.1:0")
}
