//! TCP front end: a nonblocking reactor thread plus a bounded worker pool.
//!
//! The previous front end spawned one OS thread per connection, so a load
//! generator holding a thousand mostly idle connections cost a thousand
//! stacks and a thousand schedulable threads. This one costs two fixed sets
//! of threads regardless of connection count:
//!
//! * **one reactor thread** owns the nonblocking listener and every
//!   connection. Each loop tick it accepts pending connections, drains
//!   worker completions into per-connection write buffers, flushes those
//!   buffers, and scans readable connections for complete request lines.
//!   Idle ticks decay from `yield_now` to a short sleep, so a thousand idle
//!   connections cost one mostly sleeping thread while an active connection
//!   still sees sub-millisecond turnaround;
//! * **a fixed pool of worker threads** executes requests. The reactor
//!   dispatches at most one in-flight request per connection (responses
//!   therefore come back in request order without any sequencing machinery)
//!   into a bounded queue; when the queue is full the reactor answers
//!   `ERR busy` immediately instead of buffering unboundedly
//!   (`serve.pool.rejected`). Queue depth and active workers are visible as
//!   the `serve.pool.{queued,active}` gauges and in `STATS`.
//!
//! A request line longer than [`MAX_LINE_BYTES`] is answered with `ERR` and
//! the connection is closed — a client that streams an unbounded "line" can
//! no longer pin reactor memory.
//!
//! Shutdown is a drain, not an axe: [`ServerHandle::shutdown`] stops
//! accepting and stops parsing new requests, but every dispatched request —
//! including a cold search mid-beam — completes, its response is flushed,
//! and only then do the reactor and workers exit. The write-behind tune
//! cache therefore always sees in-flight results before the process goes
//! away.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use tilelink_probe::metrics::{SERVE_POOL_ACTIVE, SERVE_POOL_QUEUED, SERVE_POOL_REJECTED};

use crate::protocol::{parse_command, Command};
use crate::service::TuneService;

/// Hard cap on one request line. Anything longer gets `ERR` and a closed
/// connection instead of an unbounded buffer.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// How long the reactor sleeps on a fully idle tick. Bounds the latency a
/// request can sit unnoticed, so it is sized well under the warm-path p99
/// budget (1 ms).
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// Idle ticks spent merely yielding before the reactor starts sleeping —
/// keeps back-to-back requests on the fast path.
const IDLE_SPINS: u32 = 64;

/// Read granularity per connection per tick.
const READ_CHUNK: usize = 4096;

/// One parsed-off request line travelling to the worker pool.
struct Job {
    conn: u64,
    line: String,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded dispatch queue between the reactor and the workers.
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

impl JobQueue {
    fn new(cap: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues unless the queue is at capacity. Never blocks — the reactor
    /// must not stall behind a slow pool.
    fn try_push(&self, job: Job) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.jobs.len() >= self.cap {
            return false;
        }
        state.jobs.push_back(job);
        SERVE_POOL_QUEUED.add(1);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                SERVE_POOL_QUEUED.add(-1);
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// Per-connection reactor state: buffered reads, pending writes, and whether
/// a request is out at the pool.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// One request dispatched, its response not yet queued for write.
    busy: bool,
    /// Close once the write buffer drains (line-cap violations).
    close_after_write: bool,
    /// Peer sent FIN; stop reading, drain what's owed, then drop.
    peer_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            busy: false,
            close_after_write: false,
            peer_closed: false,
        })
    }

    fn queue_response(&mut self, response: &str) {
        self.write_buf.extend_from_slice(response.as_bytes());
        self.write_buf.push(b'\n');
    }

    /// Writes as much of the pending buffer as the socket accepts.
    /// `Err(())` means the connection is dead.
    fn flush_writes(&mut self) -> Result<bool, ()> {
        let mut progressed = false;
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    self.write_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        if self.write_pos >= self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        Ok(progressed)
    }

    /// Pulls available bytes into the read buffer. `Err(())` = dead.
    fn fill_read_buf(&mut self) -> Result<bool, ()> {
        let mut progressed = false;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        Ok(progressed)
    }

    /// Splits one complete line (newline stripped, optional `\r` too) off the
    /// front of the read buffer.
    fn take_line(&mut self) -> Option<Vec<u8>> {
        let pos = self.read_buf.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.read_buf.drain(..=pos).collect();
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(line)
    }

    fn has_full_line(&self) -> bool {
        self.read_buf.contains(&b'\n')
    }
}

/// A running daemon: the bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    reactor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    queue: Arc<JobQueue>,
    service: Arc<TuneService>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the daemon is listening on (useful with `addr` port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the listener.
    pub fn service(&self) -> &Arc<TuneService> {
        &self.service
    }

    /// Drains and stops the daemon: no new connections or requests are
    /// admitted, every dispatched request (cold searches included) completes
    /// and has its response flushed, then the reactor and workers exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The reactor notices the flag within one idle sleep and drains:
        // joining it is what waits for in-flight requests to finish.
        if let Some(thread) = self.reactor.take() {
            let _ = thread.join();
        }
        self.queue.close();
        for thread in self.workers.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.reactor.is_some() {
            self.stop();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// `service` until [`ServerHandle::shutdown`]. Worker-pool size and queue
/// bound come from the service's [`crate::ServeOptions`].
///
/// # Errors
///
/// Returns the bind error if the address is unavailable, or the spawn error
/// if a thread cannot be created.
pub fn serve(service: Arc<TuneService>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (pool_workers, pool_queue) = service.pool_config();
    let queue = Arc::new(JobQueue::new(pool_queue));
    let (completion_tx, completion_rx) = mpsc::channel::<(u64, String)>();

    let mut workers = Vec::with_capacity(pool_workers);
    for i in 0..pool_workers {
        let service = Arc::clone(&service);
        let queue = Arc::clone(&queue);
        let tx = completion_tx.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&service, &queue, &tx))?,
        );
    }
    drop(completion_tx);

    let reactor = {
        let shutdown = Arc::clone(&shutdown);
        let queue = Arc::clone(&queue);
        let service = Arc::clone(&service);
        std::thread::Builder::new()
            .name("serve-reactor".to_string())
            .spawn(move || reactor_loop(&listener, &shutdown, &queue, &completion_rx, &service))?
    };

    Ok(ServerHandle {
        addr: local,
        shutdown,
        reactor: Some(reactor),
        workers,
        queue,
        service,
    })
}

/// One pool worker: pop, execute, push the response back to the reactor. A
/// panicking handler (a buggy oracle, say) costs that request an `ERR`, not
/// the pool a worker.
fn worker_loop(service: &TuneService, queue: &JobQueue, completions: &mpsc::Sender<(u64, String)>) {
    while let Some(job) = queue.pop() {
        SERVE_POOL_ACTIVE.add(1);
        let response = catch_unwind(AssertUnwindSafe(|| respond(service, &job.line)))
            .unwrap_or_else(|_| "ERR internal: request handler panicked".to_string());
        SERVE_POOL_ACTIVE.add(-1);
        if completions.send((job.conn, response)).is_err() {
            break;
        }
    }
}

/// The reactor: owns the listener and every connection; see the module docs
/// for the per-tick structure.
fn reactor_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    queue: &JobQueue,
    completions: &mpsc::Receiver<(u64, String)>,
    service: &TuneService,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut idle_ticks: u32 = 0;
    loop {
        let draining = shutdown.load(Ordering::SeqCst);
        let mut activity = false;

        if !draining {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if let Ok(conn) = Conn::new(stream) {
                            conns.insert(next_id, conn);
                            next_id += 1;
                            activity = true;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        while let Ok((id, response)) = completions.try_recv() {
            activity = true;
            if let Some(conn) = conns.get_mut(&id) {
                conn.queue_response(&response);
                conn.busy = false;
            }
        }

        let mut dead: Vec<u64> = Vec::new();
        for (&id, conn) in conns.iter_mut() {
            if tick_conn(id, conn, queue, service, draining, &mut activity).is_err() {
                dead.push(id);
            }
        }
        for id in dead {
            conns.remove(&id);
        }

        if draining {
            // Keep only connections still owed a response; exit once none.
            conns.retain(|_, c| c.busy || c.write_pos < c.write_buf.len());
            if conns.is_empty() {
                return;
            }
        }

        if activity {
            idle_ticks = 0;
            // Let peers run before the next tick: on a loaded (or small)
            // machine the reactor would otherwise monopolize its core until
            // preemption, and clients waiting to send their next request
            // would see multi-millisecond scheduling stalls as tail latency.
            // On an idle machine the yield is a no-op.
            std::thread::yield_now();
        } else {
            idle_ticks = idle_ticks.saturating_add(1);
            if idle_ticks < IDLE_SPINS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }
}

/// Advances one connection one tick: flush writes, then (unless draining or
/// awaiting a response) read and maybe dispatch one request line.
/// `Err(())` means the connection should be dropped.
fn tick_conn(
    id: u64,
    conn: &mut Conn,
    queue: &JobQueue,
    service: &TuneService,
    draining: bool,
    activity: &mut bool,
) -> Result<(), ()> {
    *activity |= conn.flush_writes()?;
    let write_pending = conn.write_pos < conn.write_buf.len();
    if conn.close_after_write && !write_pending {
        // Drain whatever the peer already sent before dropping the stream:
        // closing with unread bytes in the receive queue turns the close
        // into an RST, which can destroy the ERR we just flushed before the
        // client gets to read it.
        let _ = conn.fill_read_buf();
        conn.read_buf.clear();
        return Err(());
    }
    if draining || conn.busy || conn.close_after_write {
        return Ok(());
    }
    if !conn.peer_closed {
        *activity |= conn.fill_read_buf()?;
    }
    if let Some(raw) = conn.take_line() {
        *activity = true;
        if raw.len() > MAX_LINE_BYTES {
            conn.queue_response(&format!("ERR request line exceeds {MAX_LINE_BYTES} bytes"));
            conn.close_after_write = true;
        } else {
            let line = String::from_utf8_lossy(&raw).into_owned();
            if let Some(response) = fast_response(service, &line) {
                // Answered inline on the reactor thread — warm hits and
                // control commands never pay the two scheduler hops through
                // the worker pool.
                conn.queue_response(&response);
            } else if queue.try_push(Job { conn: id, line }) {
                conn.busy = true;
            } else {
                SERVE_POOL_REJECTED.inc();
                conn.queue_response("ERR busy: request queue is full");
            }
        }
    } else if conn.read_buf.len() > MAX_LINE_BYTES {
        conn.queue_response(&format!("ERR request line exceeds {MAX_LINE_BYTES} bytes"));
        conn.close_after_write = true;
        conn.read_buf.clear();
    } else if conn.peer_closed && !conn.busy && !write_pending && !conn.has_full_line() {
        return Err(());
    }
    Ok(())
}

/// Answers a request inline when doing so cannot block the reactor: control
/// commands, parse errors, and `TUNE` requests the warm cache can satisfy.
/// `None` hands the request (a cold or in-flight search) to the worker pool.
fn fast_response(service: &TuneService, line: &str) -> Option<String> {
    if line.trim().is_empty() {
        return Some("ERR empty request".to_string());
    }
    match parse_command(line) {
        Ok(Command::Ping) => Some("PONG".to_string()),
        Ok(Command::Stats) => Some(format!("STATS {}", service.stats_line())),
        Ok(Command::Tune(req)) => service
            .try_warm(&req)
            .map(|(outcome, source)| outcome.ok_fields(req.workload.name(), source).render()),
        Err(message) => Some(format!("ERR {}", message.replace('\n', " "))),
    }
}

/// Produces the single response line (no newline) for one request line.
fn respond(service: &TuneService, line: &str) -> String {
    if line.trim().is_empty() {
        return "ERR empty request".to_string();
    }
    match parse_command(line) {
        Ok(Command::Ping) => "PONG".to_string(),
        Ok(Command::Stats) => format!("STATS {}", service.stats_line()),
        Ok(Command::Tune(req)) => match service.tune(&req) {
            Ok((outcome, source)) => outcome.ok_fields(req.workload.name(), source).render(),
            Err(message) => format!("ERR {}", message.replace('\n', " ")),
        },
        Err(message) => format!("ERR {}", message.replace('\n', " ")),
    }
}

/// A minimal blocking client for the daemon's protocol — what the load
/// generator, the smoke test and examples use to talk to the server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and reads the matching response line.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the connection drops.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }
}

/// Shared infrastructure for binding test/bench servers: a server on an
/// ephemeral localhost port.
///
/// # Errors
///
/// Returns the bind error.
pub fn serve_ephemeral(service: TuneService) -> std::io::Result<ServerHandle> {
    serve(Arc::new(service), "127.0.0.1:0")
}
