//! The line-oriented wire protocol of the tuning daemon.
//!
//! One request per line, one response line per request, all UTF-8. The
//! grammar (space-separated `key=value` pairs, order-insensitive):
//!
//! ```text
//! request   = tune | "PING" | "STATS"
//! tune      = "TUNE" SP pair (SP pair)*
//! pair      = "workload=" name            ; required: "MLP-1".."MLP-6" or
//!                                         ; "MoE-1".."MoE-6" (Table 4)
//!           | "cluster=" cluster          ; default "h800x8"
//!           | "objective=" objective      ; default "mean"
//!           | "routing=" profile          ; MoE only: uniform | zipf:<s> | hot:<k>
//!           | "samples=" uint             ; routing samples per candidate
//!           | "seed=" uint                ; routing sampler seed
//! cluster   = ("h800" | "a100") "x" gpus ["x" nodes]
//! objective = "mean" | "worst" | "p" <1-99>
//!
//! response  = ok | "ERR " message | "PONG" | "STATS " pairs
//! ok        = "OK workload=<name> source=<warm|cold|deduped> config=<key>
//!              total_ms=<f> comm_ms=<f> comp_ms=<f> evals=<n> cache_hits=<n>"
//! ```
//!
//! The five request axes — workload shape, cluster, routing, objective, and
//! (chosen by the search) config — are exactly the parts of the persistent
//! tune-cache key quintuple, so a request maps 1:1 onto a cache scope.
//!
//! A request the daemon cannot parse answers `ERR` and keeps the connection
//! open; clients send any number of requests over one connection.

use std::str::FromStr;

use tilelink_sim::{ClusterSpec, GpuSpec};
use tilelink_tune::Objective;
use tilelink_workloads::moe::RoutingProfile;
use tilelink_workloads::shapes::{mlp_shapes, moe_shapes, MlpShape, MoeShape};
use tilelink_workloads::RoutingSpec;

/// The workload a tuning request names: one catalog shape from Table 4.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// A tensor-parallel MLP shape ("MLP-1".."MLP-6").
    Mlp(MlpShape),
    /// An MoE shape ("MoE-1".."MoE-6"), optionally priced over sampled
    /// routings.
    Moe {
        /// The shape to tune.
        shape: MoeShape,
        /// Routing distribution to sample; `None` prices expected uniform
        /// routing.
        routing: Option<RoutingSpec>,
    },
}

impl WorkloadSpec {
    /// The catalog name of the shape ("MLP-3", "MoE-1", …).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Mlp(shape) => shape.name,
            WorkloadSpec::Moe { shape, .. } => shape.name,
        }
    }
}

/// One parsed `TUNE` request: the cache-key quintuple minus the config,
/// which the search chooses.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneRequest {
    /// What to tune.
    pub workload: WorkloadSpec,
    /// The simulated cluster to tune for.
    pub cluster: ClusterSpec,
    /// The statistic of the sampled makespans the search minimises.
    pub objective: Objective,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run (or answer from cache) one tuning search.
    Tune(Box<TuneRequest>),
    /// Liveness probe; answered with `PONG`.
    Ping,
    /// One-line snapshot of the serve counters.
    Stats,
}

/// Parses `cluster=` values: `h800x8`, `a100x4`, `h800x8x2`, …
fn parse_cluster(value: &str) -> Result<ClusterSpec, String> {
    let mut parts = value.split('x');
    let gpu = match parts.next() {
        Some("h800") => GpuSpec::h800(),
        Some("h100") => GpuSpec::h100(),
        Some("a100") => GpuSpec::a100(),
        other => {
            return Err(format!(
                "unknown GPU {:?} in cluster (expected h800, h100 or a100)",
                other.unwrap_or("")
            ))
        }
    };
    let gpus_per_node = parts
        .next()
        .ok_or_else(|| format!("cluster {value:?} is missing a GPU count (e.g. h800x8)"))?
        .parse::<usize>()
        .map_err(|_| format!("bad GPU count in cluster {value:?}"))?;
    let nodes = match parts.next() {
        Some(n) => n
            .parse::<usize>()
            .map_err(|_| format!("bad node count in cluster {value:?}"))?,
        None => 1,
    };
    if parts.next().is_some() {
        return Err(format!(
            "cluster {value:?} has too many components (expected <gpu>x<gpus>[x<nodes>])"
        ));
    }
    if gpus_per_node == 0 || nodes == 0 {
        return Err(format!("cluster {value:?} has a zero component"));
    }
    if gpus_per_node < 2 && nodes < 2 {
        return Err(format!(
            "cluster {value:?} has a single GPU; overlap tuning needs at least 2 ranks"
        ));
    }
    Ok(ClusterSpec::new(gpu, gpus_per_node, nodes))
}

/// Parses one request line into a [`Command`].
///
/// # Errors
///
/// Returns a human-readable message (sent back as `ERR …`) when the line
/// does not match the grammar above.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    match line {
        "PING" => return Ok(Command::Ping),
        "STATS" => return Ok(Command::Stats),
        _ => {}
    }
    let Some(rest) = line.strip_prefix("TUNE") else {
        return Err(format!(
            "unknown request {:?} (expected TUNE, PING or STATS)",
            line.split_whitespace().next().unwrap_or("")
        ));
    };

    let mut workload_name: Option<&str> = None;
    let mut cluster: Option<&str> = None;
    let mut objective = Objective::Mean;
    let mut routing: Option<RoutingProfile> = None;
    let mut samples: Option<usize> = None;
    let mut seed: Option<u64> = None;
    for pair in rest.split_whitespace() {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!("malformed pair {pair:?} (expected key=value)"));
        };
        match key {
            "workload" => workload_name = Some(value),
            "cluster" => cluster = Some(value),
            "objective" => objective = Objective::from_str(value)?,
            "routing" => routing = Some(RoutingProfile::from_str(value)?),
            "samples" => {
                samples =
                    Some(value.parse().map_err(|_| {
                        format!("samples must be a positive integer, got {value:?}")
                    })?)
            }
            "seed" => {
                seed = Some(
                    value
                        .parse()
                        .map_err(|_| format!("seed must be an unsigned integer, got {value:?}"))?,
                )
            }
            _ => return Err(format!("unknown key {key:?}")),
        }
    }

    let Some(name) = workload_name else {
        return Err("TUNE requires workload=<name> (MLP-1..MLP-6 or MoE-1..MoE-6)".to_string());
    };
    let cluster = match cluster {
        Some(value) => parse_cluster(value)?,
        None => ClusterSpec::h800_node(8),
    };

    let workload = if let Some(shape) = mlp_shapes().into_iter().find(|s| s.name == name) {
        if routing.is_some() || samples.is_some() || seed.is_some() {
            return Err(format!(
                "routing applies only to MoE workloads, {name} is an MLP"
            ));
        }
        if objective != Objective::Mean {
            return Err(format!(
                "objective {} needs sampled routings; {name} is a deterministic MLP \
                 (only objective=mean is meaningful)",
                objective.key()
            ));
        }
        WorkloadSpec::Mlp(shape)
    } else if let Some(shape) = moe_shapes().into_iter().find(|s| s.name == name) {
        if routing.is_none() && (samples.is_some() || seed.is_some()) {
            return Err("samples/seed require routing=<profile>".to_string());
        }
        // A tail objective without an explicit routing profile means "over
        // sampled uniform routings" — same convention as the reproduce CLI.
        if routing.is_none() && objective != Objective::Mean {
            routing = Some(RoutingProfile::Uniform);
        }
        let routing = routing.map(|profile| {
            let mut spec = RoutingSpec::new(profile);
            if let Some(samples) = samples {
                spec.samples = samples;
            }
            if let Some(seed) = seed {
                spec.seed = seed;
            }
            spec
        });
        WorkloadSpec::Moe { shape, routing }
    } else {
        return Err(format!(
            "unknown workload {name:?} (expected MLP-1..MLP-6 or MoE-1..MoE-6)"
        ));
    };

    Ok(Command::Tune(Box::new(TuneRequest {
        workload,
        cluster,
        objective,
    })))
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The payload of an `OK` response line.
#[derive(Debug, Clone, PartialEq)]
pub struct OkFields {
    /// Catalog name of the tuned workload.
    pub workload: String,
    /// How the answer was produced: `warm`, `cold` or `deduped`.
    pub source: String,
    /// [`tilelink::OverlapConfig::cache_key`] of the winning config.
    pub config: String,
    /// Simulated layer time under the winning config, milliseconds.
    pub total_ms: f64,
    /// Exposed (non-overlapped) communication time, milliseconds.
    pub comm_ms: f64,
    /// Computation time, milliseconds.
    pub comp_ms: f64,
    /// Oracle evaluations the producing search ran (0 when every candidate
    /// came from the persistent cache).
    pub evals: usize,
    /// Candidates the producing search answered from the persistent cache.
    pub cache_hits: usize,
}

impl OkFields {
    /// Renders the `OK …` response line (no trailing newline).
    pub fn render(&self) -> String {
        format!(
            "OK workload={} source={} config={} total_ms={:.6} comm_ms={:.6} comp_ms={:.6} \
             evals={} cache_hits={}",
            self.workload,
            self.source,
            self.config,
            self.total_ms,
            self.comm_ms,
            self.comp_ms,
            self.evals,
            self.cache_hits
        )
    }
}

/// The parsed payload of a `STATS` response: request sources, warm-cache
/// occupancy and churn, and request-pool pressure. Gauges are signed so a
/// transiently skewed snapshot still parses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsFields {
    /// Requests answered from the warm cache.
    pub warm: u64,
    /// Requests that ran a search.
    pub cold: u64,
    /// Requests that piggybacked on an in-flight search.
    pub deduped: u64,
    /// Requests currently being answered.
    pub inflight: i64,
    /// Entries in the warm result cache (legacy alias of `cache_entries`).
    pub cached: u64,
    /// Entries in the warm result cache.
    pub cache_entries: u64,
    /// Warm entries evicted by the LRU cap so far.
    pub evictions: u64,
    /// Warm entries dropped by TTL expiry so far.
    pub expired: u64,
    /// Requests sitting in the worker-pool queue.
    pub pool_queued: i64,
    /// Requests executing on pool workers.
    pub pool_active: i64,
    /// Requests answered `ERR busy` because the queue was full.
    pub pool_rejected: u64,
}

/// Parses the pair list of a `STATS` response into [`StatsFields`]
/// (unlisted keys stay 0, so older daemons' shorter lines still parse).
///
/// # Errors
///
/// Returns a message on a malformed pair, an unknown key, or a bad number.
pub fn parse_stats(pairs: &str) -> Result<StatsFields, String> {
    let mut fields = StatsFields::default();
    for pair in pairs.split_whitespace() {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!("malformed stats pair {pair:?}"));
        };
        let bad_num = || format!("bad number in stats pair {pair:?}");
        match key {
            "warm" => fields.warm = value.parse().map_err(|_| bad_num())?,
            "cold" => fields.cold = value.parse().map_err(|_| bad_num())?,
            "deduped" => fields.deduped = value.parse().map_err(|_| bad_num())?,
            "inflight" => fields.inflight = value.parse().map_err(|_| bad_num())?,
            "cached" => fields.cached = value.parse().map_err(|_| bad_num())?,
            "cache_entries" => fields.cache_entries = value.parse().map_err(|_| bad_num())?,
            "evictions" => fields.evictions = value.parse().map_err(|_| bad_num())?,
            "expired" => fields.expired = value.parse().map_err(|_| bad_num())?,
            "pool_queued" => fields.pool_queued = value.parse().map_err(|_| bad_num())?,
            "pool_active" => fields.pool_active = value.parse().map_err(|_| bad_num())?,
            "pool_rejected" => fields.pool_rejected = value.parse().map_err(|_| bad_num())?,
            _ => return Err(format!("unknown stats key {key:?}")),
        }
    }
    Ok(fields)
}

/// One parsed response line, as seen by a client.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A successful tuning answer.
    Ok(OkFields),
    /// The daemon rejected or failed the request.
    Err(String),
    /// Answer to `PING`.
    Pong,
    /// Answer to `STATS` (the raw pair list; see [`parse_stats`]).
    Stats(String),
}

impl Reply {
    /// Parses this reply's `STATS` payload, if it is one.
    ///
    /// # Errors
    ///
    /// Returns the [`parse_stats`] error, or a message when the reply is not
    /// a `STATS` response at all.
    pub fn stats(&self) -> Result<StatsFields, String> {
        match self {
            Reply::Stats(pairs) => parse_stats(pairs),
            other => Err(format!("not a STATS reply: {other:?}")),
        }
    }
}

/// Parses one response line into a [`Reply`] (the client half of the
/// protocol; used by the load generator and the smoke test).
///
/// # Errors
///
/// Returns a message when the line matches no response form.
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let line = line.trim_end();
    if line == "PONG" {
        return Ok(Reply::Pong);
    }
    if let Some(rest) = line.strip_prefix("STATS ") {
        return Ok(Reply::Stats(rest.to_string()));
    }
    if let Some(rest) = line.strip_prefix("ERR ") {
        return Ok(Reply::Err(rest.to_string()));
    }
    let Some(rest) = line.strip_prefix("OK ") else {
        return Err(format!("unparseable response line {line:?}"));
    };
    let mut fields = OkFields {
        workload: String::new(),
        source: String::new(),
        config: String::new(),
        total_ms: f64::NAN,
        comm_ms: f64::NAN,
        comp_ms: f64::NAN,
        evals: 0,
        cache_hits: 0,
    };
    for pair in rest.split_whitespace() {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!("malformed response pair {pair:?}"));
        };
        let bad_num = || format!("bad number in response pair {pair:?}");
        match key {
            "workload" => fields.workload = value.to_string(),
            "source" => fields.source = value.to_string(),
            "config" => fields.config = value.to_string(),
            "total_ms" => fields.total_ms = value.parse().map_err(|_| bad_num())?,
            "comm_ms" => fields.comm_ms = value.parse().map_err(|_| bad_num())?,
            "comp_ms" => fields.comp_ms = value.parse().map_err(|_| bad_num())?,
            "evals" => fields.evals = value.parse().map_err(|_| bad_num())?,
            "cache_hits" => fields.cache_hits = value.parse().map_err(|_| bad_num())?,
            _ => return Err(format!("unknown response key {key:?}")),
        }
    }
    if fields.workload.is_empty() || fields.source.is_empty() || !fields.total_ms.is_finite() {
        return Err(format!("incomplete OK response {line:?}"));
    }
    Ok(Reply::Ok(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_and_stats_parse() {
        assert_eq!(parse_command("PING").unwrap(), Command::Ping);
        assert_eq!(parse_command("  STATS \n").unwrap(), Command::Stats);
    }

    #[test]
    fn minimal_tune_request_defaults() {
        let Command::Tune(req) = parse_command("TUNE workload=MLP-1").unwrap() else {
            panic!("expected TUNE");
        };
        assert_eq!(req.workload.name(), "MLP-1");
        assert_eq!(req.cluster, ClusterSpec::h800_node(8));
        assert_eq!(req.objective, Objective::Mean);
    }

    #[test]
    fn full_moe_request_parses_every_axis() {
        let line = "TUNE workload=MoE-3 cluster=h800x8x2 routing=zipf:1.2 samples=4 seed=99 \
                    objective=p95";
        let Command::Tune(req) = parse_command(line).unwrap() else {
            panic!("expected TUNE");
        };
        assert_eq!(req.workload.name(), "MoE-3");
        assert_eq!(req.cluster, ClusterSpec::h800_multi_node(2));
        assert_eq!(req.objective, Objective::Percentile(95));
        let WorkloadSpec::Moe { routing, .. } = &req.workload else {
            panic!("expected MoE");
        };
        let spec = routing.expect("routing parsed");
        assert_eq!(spec.profile, RoutingProfile::Zipf { s: 1.2 });
        assert_eq!(spec.samples, 4);
        assert_eq!(spec.seed, 99);
    }

    #[test]
    fn tail_objective_without_routing_implies_uniform_sampling() {
        let Command::Tune(req) = parse_command("TUNE workload=MoE-1 objective=worst").unwrap()
        else {
            panic!("expected TUNE");
        };
        let WorkloadSpec::Moe { routing, .. } = &req.workload else {
            panic!("expected MoE");
        };
        assert_eq!(routing.unwrap().profile, RoutingProfile::Uniform);
    }

    #[test]
    fn invalid_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("FETCH workload=MLP-1", "unknown request"),
            ("TUNE", "requires workload"),
            ("TUNE workload=MLP-9", "unknown workload"),
            ("TUNE workload=MLP-1 routing=uniform", "only to MoE"),
            ("TUNE workload=MLP-1 objective=p95", "sampled routings"),
            ("TUNE workload=MoE-1 samples=4", "require routing"),
            ("TUNE workload=MoE-1 routing=zipf:x", "zipf exponent"),
            ("TUNE workload=MLP-1 cluster=b200x8", "unknown GPU"),
            ("TUNE workload=MLP-1 cluster=h800x1", "at least 2 ranks"),
            (
                "TUNE workload=MLP-1 cluster=h800x8x2x2",
                "too many components",
            ),
            ("TUNE workload=MLP-1 frobnicate=yes", "unknown key"),
            ("TUNE workload", "malformed pair"),
        ] {
            let err = parse_command(line).unwrap_err();
            assert!(
                err.contains(needle),
                "{line:?} should fail with {needle:?}, got {err:?}"
            );
        }
    }

    #[test]
    fn a100_cluster_parses() {
        let Command::Tune(req) = parse_command("TUNE workload=MLP-1 cluster=a100x4").unwrap()
        else {
            panic!("expected TUNE");
        };
        assert_eq!(req.cluster.gpu.name, "A100");
        assert_eq!(req.cluster.world_size(), 4);
    }

    #[test]
    fn ok_response_roundtrips() {
        let fields = OkFields {
            workload: "MoE-1".into(),
            source: "warm".into(),
            config: "ct128x128-gt256x256".into(),
            total_ms: 1.25,
            comm_ms: 0.5,
            comp_ms: 1.0,
            evals: 17,
            cache_hits: 3,
        };
        let parsed = parse_reply(&fields.render()).unwrap();
        assert_eq!(parsed, Reply::Ok(fields));
    }

    #[test]
    fn err_pong_and_stats_replies_parse() {
        assert_eq!(
            parse_reply("ERR unknown workload \"MLP-9\"").unwrap(),
            Reply::Err("unknown workload \"MLP-9\"".to_string())
        );
        assert_eq!(parse_reply("PONG\n").unwrap(), Reply::Pong);
        assert!(matches!(
            parse_reply("STATS warm=1 cold=2").unwrap(),
            Reply::Stats(s) if s == "warm=1 cold=2"
        ));
        assert!(parse_reply("BOGUS").is_err());
    }

    #[test]
    fn stats_payload_roundtrips_through_the_typed_parser() {
        let line = "STATS warm=12 cold=3 deduped=5 inflight=2 cached=7 cache_entries=7 \
                    evictions=4 expired=1 pool_queued=6 pool_active=8 pool_rejected=9";
        let stats = parse_reply(line).unwrap().stats().unwrap();
        assert_eq!(
            stats,
            StatsFields {
                warm: 12,
                cold: 3,
                deduped: 5,
                inflight: 2,
                cached: 7,
                cache_entries: 7,
                evictions: 4,
                expired: 1,
                pool_queued: 6,
                pool_active: 8,
                pool_rejected: 9,
            }
        );
        // Shorter lines from older daemons still parse; absent keys stay 0.
        let old = parse_stats("warm=1 cold=2 deduped=0 inflight=0 cached=3").unwrap();
        assert_eq!(old.cache_entries, 0);
        assert_eq!(old.warm, 1);
        // A non-STATS reply refuses the typed accessor.
        assert!(parse_reply("PONG").unwrap().stats().is_err());
    }

    #[test]
    fn invalid_stats_payloads_are_rejected_with_reasons() {
        for (pairs, needle) in [
            ("warm", "malformed stats pair"),
            ("warm=x", "bad number"),
            ("inflight=1.5", "bad number"),
            ("frobnications=3", "unknown stats key"),
        ] {
            let err = parse_stats(pairs).unwrap_err();
            assert!(
                err.contains(needle),
                "{pairs:?} should fail with {needle:?}, got {err:?}"
            );
        }
    }
}
