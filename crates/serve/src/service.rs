//! The tuning service: warm sharded cache, deduplicated cold searches.
//!
//! Requests resolve in three ways, counted by the probe registry:
//!
//! * **warm** (`serve.requests.warm`) — the request key is in the sharded
//!   in-memory result cache; the answer is a couple of lock-free hashes and
//!   one shard read-lock away, microseconds end to end.
//! * **cold** (`serve.requests.cold`) — this request is the first for its
//!   key: it becomes the *leader*, runs the beam search (through the
//!   existing `tilelink-tune` machinery, multi-threaded evaluator and
//!   persistent [`TuneCache`] included), publishes the result and wakes the
//!   waiters.
//! * **deduped** (`serve.requests.deduped`) — an identical request arrived
//!   while a leader was already searching; it blocks on the leader's
//!   in-flight slot instead of starting a second search. N simultaneous
//!   identical cold requests cost exactly one search.
//!
//! The persistent [`TuneCache`] is the service's write-behind layer: each
//! cold search opens it, reuses any priced candidates, and flushes its new
//! entries at the end (atomically, merged with concurrent writers). A
//! restarted daemon therefore warms straight from disk — the first request
//! per key still runs a "search", but one in which every candidate is a
//! cache hit (`evals=0`).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use tilelink_probe::metrics::{
    SERVE_CACHE_EVICTIONS, SERVE_CACHE_EXPIRED, SERVE_INFLIGHT, SERVE_POOL_ACTIVE,
    SERVE_POOL_QUEUED, SERVE_POOL_REJECTED, SERVE_REQUESTS_COLD, SERVE_REQUESTS_DEDUPED,
    SERVE_REQUESTS_WARM,
};
use tilelink_sim::{ClusterSpec, CostModelSpec, SharedCost};
use tilelink_tune::{cluster_key, CostOracle, SearchExecutor, SearchSpace, Strategy, TuneCache};
use tilelink_workloads::autotune::{MlpOracle, MoeOracle};
use tilelink_workloads::{autotune, TuneOptions};

use crate::protocol::{OkFields, TuneRequest, WorkloadSpec};
use crate::shard::{CachePolicy, ShardedCache, DEFAULT_SHARDS};

/// How a request was answered (the `source=` response field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Served from the sharded in-memory cache.
    Warm,
    /// This request ran the search.
    Cold,
    /// Piggybacked on another request's in-flight search.
    Deduped,
}

impl Source {
    /// Wire name of the source.
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Warm => "warm",
            Source::Cold => "cold",
            Source::Deduped => "deduped",
        }
    }
}

/// The result of one tuning search, as cached and broadcast to waiters.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOutcome {
    /// `OverlapConfig::cache_key` of the winning configuration.
    pub config_key: String,
    /// Simulated total layer time under the winner, seconds.
    pub total_s: f64,
    /// Exposed communication seconds under the winner.
    pub comm_s: f64,
    /// Computation seconds under the winner.
    pub comp_s: f64,
    /// Oracle evaluations the search ran.
    pub evaluations: usize,
    /// Candidates answered from the persistent cache.
    pub cache_hits: usize,
}

impl TuneOutcome {
    /// The response payload for this outcome.
    pub fn ok_fields(&self, workload: &str, source: Source) -> OkFields {
        OkFields {
            workload: workload.to_string(),
            source: source.as_str().to_string(),
            config: self.config_key.clone(),
            total_ms: self.total_s * 1e3,
            comm_ms: self.comm_s * 1e3,
            comp_ms: self.comp_s * 1e3,
            evals: self.evaluations,
            cache_hits: self.cache_hits,
        }
    }
}

/// Search failures are broadcast to every waiter as strings (the search
/// error types are not `Clone`).
type SearchResult = Result<TuneOutcome, String>;

/// One in-flight cold search: waiters block on the condvar until the leader
/// publishes into the slot.
#[derive(Default)]
struct Flight {
    slot: Mutex<Option<SearchResult>>,
    done: Condvar,
}

impl Flight {
    fn wait(&self) -> SearchResult {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn publish(&self, result: SearchResult) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(result);
        self.done.notify_all();
    }
}

/// The search function a [`TuneService`] runs on a cold miss. Injectable so
/// tests can count invocations against a slow stub instead of a real search.
pub type SearchFn = dyn Fn(&TuneRequest, &SharedCost, &ServeOptions) -> SearchResult + Send + Sync;

/// Configuration of a [`TuneService`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Cost model every search prices against.
    pub cost: CostModelSpec,
    /// Search strategy for cold misses.
    pub strategy: Strategy,
    /// Design space cold searches explore.
    pub space: SearchSpace,
    /// Persistent write-behind cache file; `None` keeps searches in-memory.
    pub cache_path: Option<PathBuf>,
    /// Shards of the warm result cache.
    pub shards: usize,
    /// Entry cap of the warm result cache (`0` = unbounded); beyond it the
    /// least-recently-used entry per shard is evicted.
    pub cache_entries: usize,
    /// Idle TTL of warm entries; `None` keeps them until evicted.
    pub cache_ttl: Option<Duration>,
    /// Evaluation threads per search; `None` uses one per CPU.
    pub threads: Option<usize>,
    /// Shared search executor for cold misses; `None` uses
    /// [`SearchExecutor::global`], so every cold search in the process reuses
    /// one warm evaluator pool.
    pub executor: Option<Arc<SearchExecutor>>,
    /// Sweep stale persistent-cache entries (older cost revisions or other
    /// objectives for the same workload/cluster) after each cold search.
    pub sweep_stale: bool,
    /// Request worker threads behind the connection reactor.
    pub pool_workers: usize,
    /// Dispatch-queue bound; requests beyond it are answered `ERR busy`.
    pub pool_queue: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            cost: CostModelSpec::Analytic,
            strategy: Strategy::default(),
            space: SearchSpace::standard(),
            cache_path: Some(TuneCache::default_path()),
            shards: DEFAULT_SHARDS,
            cache_entries: 4096,
            cache_ttl: None,
            threads: None,
            executor: None,
            sweep_stale: true,
            pool_workers: 8,
            pool_queue: 256,
        }
    }
}

impl ServeOptions {
    /// A compact configuration for smokes and quick benches: the same
    /// reduced space and narrow beam the `--quick` tuning paths use, so a
    /// cold search costs milliseconds instead of minutes.
    pub fn quick() -> Self {
        Self {
            strategy: Strategy::Beam {
                width: 2,
                sweeps: 1,
            },
            space: SearchSpace::new()
                .with_comm_tiles([
                    tilelink::TileShape::new(128, 128),
                    tilelink::TileShape::new(256, 128),
                ])
                .with_compute_tiles([
                    tilelink::TileShape::new(128, 256),
                    tilelink::TileShape::new(256, 256),
                ])
                .with_mappings([
                    tilelink::CommMapping::CopyEngine,
                    tilelink::CommMapping::Hybrid { sms: 20 },
                ])
                .with_stages([2, 3]),
            ..Self::default()
        }
    }
}

/// The tuning service shared by every connection of the daemon.
pub struct TuneService {
    opts: ServeOptions,
    results: ShardedCache<TuneOutcome>,
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
    /// One provider per cluster asked about, built lazily; providers embed
    /// their cluster, so one per topology serves every request for it.
    providers: Mutex<HashMap<String, SharedCost>>,
    search: Box<SearchFn>,
}

impl std::fmt::Debug for TuneService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuneService")
            .field("opts", &self.opts)
            .field("cached", &self.results.len())
            .finish_non_exhaustive()
    }
}

impl TuneService {
    /// Creates a service running real beam searches on cold misses.
    pub fn new(opts: ServeOptions) -> Self {
        Self::with_search(opts, Box::new(run_search))
    }

    /// Creates a service with an injected search function (tests use a slow
    /// counting stub to prove dedup semantics).
    pub fn with_search(opts: ServeOptions, search: Box<SearchFn>) -> Self {
        let results = ShardedCache::with_policy(
            opts.shards,
            CachePolicy {
                max_entries: opts.cache_entries,
                ttl: opts.cache_ttl,
            },
        );
        Self {
            opts,
            results,
            inflight: Mutex::new(HashMap::new()),
            providers: Mutex::new(HashMap::new()),
            search,
        }
    }

    /// The options the service was built with.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Entries in the warm result cache.
    pub fn cached_results(&self) -> usize {
        self.results.len()
    }

    /// Request-pool sizing for the front end: `(workers, queue bound)`.
    pub fn pool_config(&self) -> (usize, usize) {
        (self.opts.pool_workers.max(1), self.opts.pool_queue.max(1))
    }

    /// Drops expired warm entries now; returns how many were reclaimed.
    /// No-op without a [`ServeOptions::cache_ttl`].
    pub fn purge_expired(&self) -> usize {
        self.results.purge_expired()
    }

    /// The cost provider for `cluster`, built on first use.
    fn provider_for(&self, cluster: &ClusterSpec) -> Result<SharedCost, String> {
        let key = cluster_key(cluster);
        let mut providers = self.providers.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cost) = providers.get(&key) {
            return Ok(cost.clone());
        }
        let cost = self.opts.cost.build(cluster).map_err(|e| e.to_string())?;
        providers.insert(key, cost.clone());
        Ok(cost)
    }

    /// The full cache-key prefix of a request: workload (routing included),
    /// cluster, cost revision and objective — the same quintuple scope the
    /// persistent cache files entries under, so warm-cache identity and
    /// disk identity can never drift apart.
    fn request_key(&self, req: &TuneRequest, cost: &SharedCost) -> String {
        let (workload_key, cluster_key, revision, objective) = match &req.workload {
            WorkloadSpec::Mlp(shape) => {
                let oracle =
                    MlpOracle::new(shape.clone(), req.cluster.clone()).with_cost(cost.clone());
                (
                    oracle.workload_key(),
                    cluster_key(oracle.cluster()),
                    oracle.cost_revision(),
                    oracle.objective().key(),
                )
            }
            WorkloadSpec::Moe { shape, routing } => {
                let mut oracle = MoeOracle::new(shape.clone(), req.cluster.clone())
                    .with_cost(cost.clone())
                    .with_objective(req.objective);
                if let Some(spec) = routing {
                    oracle = oracle.with_routing(*spec);
                }
                (
                    oracle.workload_key(),
                    cluster_key(oracle.cluster()),
                    oracle.cost_revision(),
                    oracle.objective().key(),
                )
            }
        };
        TuneCache::key_prefix(&workload_key, &cluster_key, &revision, &objective)
    }

    /// Warm-cache-only probe: answers from the in-memory cache without ever
    /// running — or waiting on — a search. `None` means the request needs
    /// the cold path.
    ///
    /// This is the daemon front end's fast path: it never blocks beyond a
    /// shard read lock, so the reactor thread can answer warm hits inline
    /// instead of paying two scheduler hops through the worker pool. A
    /// cluster whose cost provider was never built cannot have warm entries
    /// (providers are built by the first search), so the probe only reuses
    /// an existing provider and never constructs one.
    pub fn try_warm(&self, req: &TuneRequest) -> Option<(TuneOutcome, Source)> {
        let cost = {
            let providers = self.providers.lock().unwrap_or_else(|e| e.into_inner());
            providers.get(&cluster_key(&req.cluster)).cloned()?
        };
        let key = self.request_key(req, &cost);
        let outcome = self.results.get(&key)?;
        SERVE_REQUESTS_WARM.inc();
        Some((outcome, Source::Warm))
    }

    /// Answers one tuning request: warm hit, in-flight piggyback, or leader
    /// search (see the module docs for the three paths).
    ///
    /// # Errors
    ///
    /// Returns the (stringified) search or cost-model error; parse errors
    /// never reach this layer.
    pub fn tune(&self, req: &TuneRequest) -> Result<(TuneOutcome, Source), String> {
        let _inflight = InflightGuard::new();
        self.tune_inner(req)
    }

    fn tune_inner(&self, req: &TuneRequest) -> Result<(TuneOutcome, Source), String> {
        let cost = self.provider_for(&req.cluster)?;
        let key = self.request_key(req, &cost);

        if let Some(outcome) = self.results.get(&key) {
            SERVE_REQUESTS_WARM.inc();
            return Ok((outcome, Source::Warm));
        }

        // Join an in-flight search for this key, or become its leader. The
        // map is the only cross-key shared state on the cold path and is
        // held just long enough to decide.
        enum Role {
            Leader(Arc<Flight>),
            Follower(Arc<Flight>),
        }
        let role = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match inflight.get(&key) {
                Some(flight) => Role::Follower(Arc::clone(flight)),
                None => {
                    let flight = Arc::new(Flight::default());
                    inflight.insert(key.clone(), Arc::clone(&flight));
                    Role::Leader(flight)
                }
            }
        };

        match role {
            Role::Follower(flight) => {
                let result = flight.wait();
                SERVE_REQUESTS_DEDUPED.inc();
                result.map(|outcome| (outcome, Source::Deduped))
            }
            Role::Leader(flight) => {
                // If the search panics, the guard's Drop still deregisters
                // the flight and publishes an error — waiters get `ERR`
                // instead of blocking forever on a leader that unwound.
                let mut guard = LeaderGuard {
                    service: self,
                    key: &key,
                    flight: &flight,
                    armed: true,
                };
                let result = (self.search)(req, &cost, &self.opts);
                guard.armed = false;
                drop(guard);
                if let Ok(outcome) = &result {
                    self.results.insert(key.clone(), outcome.clone());
                }
                // Deregister *after* publishing to the warm cache: a request
                // arriving in between sees either the in-flight entry or the
                // warm result, never a gap that would start a second search.
                self.inflight
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&key);
                flight.publish(result.clone());
                SERVE_REQUESTS_COLD.inc();
                result.map(|outcome| (outcome, Source::Cold))
            }
        }
    }

    /// One-line snapshot of the serve counters (the `STATS` response body):
    /// request sources, warm-cache occupancy and churn, and request-pool
    /// pressure.
    pub fn stats_line(&self) -> String {
        format!(
            "warm={} cold={} deduped={} inflight={} cached={} cache_entries={} \
             evictions={} expired={} pool_queued={} pool_active={} pool_rejected={}",
            SERVE_REQUESTS_WARM.get(),
            SERVE_REQUESTS_COLD.get(),
            SERVE_REQUESTS_DEDUPED.get(),
            SERVE_INFLIGHT.get(),
            self.results.len(),
            self.results.len(),
            SERVE_CACHE_EVICTIONS.get(),
            SERVE_CACHE_EXPIRED.get(),
            SERVE_POOL_QUEUED.get(),
            SERVE_POOL_ACTIVE.get(),
            SERVE_POOL_REJECTED.get(),
        )
    }
}

/// RAII owner of one unit of the `serve.inflight` gauge: constructed on
/// request entry, decremented on drop — error returns and unwinding panics
/// can no longer leak the gauge upward.
struct InflightGuard;

impl InflightGuard {
    fn new() -> Self {
        SERVE_INFLIGHT.add(1);
        InflightGuard
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        SERVE_INFLIGHT.add(-1);
    }
}

/// Unwind insurance for a cold-search leader: while `armed`, dropping the
/// guard (i.e. the search panicked) deregisters the in-flight entry and
/// publishes an error so followers wake with `ERR` instead of waiting on a
/// flight nobody will ever land.
struct LeaderGuard<'a> {
    service: &'a TuneService,
    key: &'a str,
    flight: &'a Flight,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.service
                .inflight
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(self.key);
            self.flight
                .publish(Err("search panicked before producing a result".to_string()));
        }
    }
}

/// The real cold-search path: the same `tuned_full_*` constructors the
/// `reproduce` binary uses, persistent cache and multi-threaded evaluator
/// included.
fn run_search(req: &TuneRequest, cost: &SharedCost, opts: &ServeOptions) -> SearchResult {
    let executor = opts.executor.clone().unwrap_or_else(SearchExecutor::global);
    let mut topts = TuneOptions {
        strategy: opts.strategy,
        space: opts.space.clone(),
        cache_path: opts.cache_path.clone(),
        threads: opts.threads,
        objective: req.objective,
        ..TuneOptions::default()
    }
    .with_cost(cost.clone())
    .with_executor(executor)
    .with_stale_sweep(opts.sweep_stale);
    let tuned = match &req.workload {
        WorkloadSpec::Mlp(shape) => autotune::tuned_full_mlp(shape, cost.cluster(), &topts),
        WorkloadSpec::Moe { shape, routing } => {
            if let Some(spec) = routing {
                topts = topts.with_routing(*spec);
            }
            autotune::tuned_full_moe(shape, cost.cluster(), &topts)
        }
    }
    .map_err(|e| e.to_string())?;
    Ok(TuneOutcome {
        config_key: tuned.config.cache_key(),
        total_s: tuned.layer.total_s,
        comm_s: tuned.layer.comm_only_s,
        comp_s: tuned.layer.comp_only_s,
        evaluations: tuned.search.evaluations,
        cache_hits: tuned.search.cache_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_command, Command};

    fn request(line: &str) -> TuneRequest {
        match parse_command(line).unwrap() {
            Command::Tune(req) => *req,
            other => panic!("expected TUNE, got {other:?}"),
        }
    }

    fn stub_service(counter: Arc<std::sync::atomic::AtomicUsize>) -> TuneService {
        let opts = ServeOptions {
            cache_path: None,
            ..ServeOptions::quick()
        };
        TuneService::with_search(
            opts,
            Box::new(move |req, _cost, _opts| {
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Ok(TuneOutcome {
                    config_key: format!("stub-{}", req.workload.name()),
                    total_s: 1e-3,
                    comm_s: 4e-4,
                    comp_s: 8e-4,
                    evaluations: 1,
                    cache_hits: 0,
                })
            }),
        )
    }

    #[test]
    fn warm_hits_after_one_cold_search() {
        let calls = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let service = stub_service(Arc::clone(&calls));
        let req = request("TUNE workload=MLP-1");

        let (first, source) = service.tune(&req).unwrap();
        assert_eq!(source, Source::Cold);
        let (second, source) = service.tune(&req).unwrap();
        assert_eq!(source, Source::Warm);
        assert_eq!(first, second);
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn distinct_quintuple_axes_get_distinct_searches() {
        let calls = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let service = stub_service(Arc::clone(&calls));
        for line in [
            "TUNE workload=MLP-1",
            "TUNE workload=MLP-2",
            "TUNE workload=MLP-1 cluster=h800x4",
            "TUNE workload=MoE-1",
            "TUNE workload=MoE-1 routing=zipf:1.2",
            "TUNE workload=MoE-1 routing=zipf:1.2 objective=p95",
            "TUNE workload=MoE-1 routing=zipf:1.2 seed=7",
        ] {
            let (_, source) = service.tune(&request(line)).unwrap();
            assert_eq!(source, Source::Cold, "{line} should be a fresh key");
        }
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 7);
        assert_eq!(service.cached_results(), 7);
    }

    #[test]
    fn search_errors_are_not_cached() {
        let attempts = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let attempts_in_stub = Arc::clone(&attempts);
        let service = TuneService::with_search(
            ServeOptions {
                cache_path: None,
                ..ServeOptions::quick()
            },
            Box::new(move |_req, _cost, _opts| {
                let n = attempts_in_stub.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if n == 0 {
                    Err("transient failure".to_string())
                } else {
                    Ok(TuneOutcome {
                        config_key: "recovered".into(),
                        total_s: 1e-3,
                        comm_s: 4e-4,
                        comp_s: 8e-4,
                        evaluations: 1,
                        cache_hits: 0,
                    })
                }
            }),
        );
        let req = request("TUNE workload=MLP-1");
        assert!(service.tune(&req).is_err());
        assert_eq!(service.cached_results(), 0, "failures must not be cached");
        let (outcome, source) = service.tune(&req).unwrap();
        assert_eq!(
            source,
            Source::Cold,
            "a retry after a failure searches again"
        );
        assert_eq!(outcome.config_key, "recovered");
    }

    #[test]
    fn warm_and_disk_identity_share_the_quintuple_prefix() {
        let service = TuneService::new(ServeOptions {
            cache_path: None,
            ..ServeOptions::quick()
        });
        let req = request("TUNE workload=MoE-2 routing=hot:2 objective=p95");
        let cost = service.provider_for(&req.cluster).unwrap();
        let key = service.request_key(&req, &cost);
        assert!(key.contains("moe/"), "workload part missing: {key}");
        assert!(key.contains("rt="), "routing part missing: {key}");
        assert!(key.contains("H800"), "cluster part missing: {key}");
        assert!(
            key.ends_with("|p95"),
            "objective must close the prefix: {key}"
        );
    }
}
