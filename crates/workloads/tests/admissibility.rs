//! Branch-and-bound admissibility property suite.
//!
//! The tuner's pruning is only sound if every oracle lower bound *floors* the
//! simulated objective and every bounded evaluation is bit-identical to the
//! unbounded one whenever the cutoff is not hit. These tests drive seeded
//! random constrained sub-spaces of the overlap design space through both
//! cost models (analytic and calibrated) and assert, for each:
//!
//! * (a) every candidate the bounded search pruned or aborted, when force-
//!   simulated unbounded, prices no better than the final winner;
//! * (b) the bounded and unbounded searches return bit-identical winners and
//!   winning makespans;
//! * the raw bound invariant `lower_bound(cfg) <= evaluate(cfg).total_s`
//!   (or the folded objective value) for every candidate in the space.

use std::collections::HashSet;
use std::sync::Arc;

use tilelink::{CommMapping, OverlapConfig, TileShape};
use tilelink_sim::{analytic_cost, CalibratedCostModel, ClusterSpec, SharedCost};
use tilelink_tune::{
    BoundedEval, CostOracle, Objective, SearchSpace, Strategy, Tuner, RING_REQUIRES_PUSH,
};
use tilelink_workloads::autotune::{MlpOracle, MoeOracle};
use tilelink_workloads::{RoutingProfile, RoutingSpec};

/// Tiny deterministic xorshift so the sub-spaces are seeded and reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Picks a random non-empty subset of `pool`.
    fn subset<T: Copy>(&mut self, pool: &[T]) -> Vec<T> {
        loop {
            let mask = self.next() as usize;
            let picked: Vec<T> = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            if !picked.is_empty() {
                return picked;
            }
        }
    }
}

/// A random constrained sub-space of the standard axes (always includes the
/// default config's values so the search is never empty).
fn random_space(rng: &mut Rng) -> SearchSpace {
    let compute = rng.subset(&[
        TileShape::new(128, 128),
        TileShape::new(128, 256),
        TileShape::new(256, 256),
    ]);
    let mappings = rng.subset(&[
        CommMapping::CopyEngine,
        CommMapping::Sm { sms: 20 },
        CommMapping::Hybrid { sms: 16 },
    ]);
    // The comm-tile, channel and stage axes stay full-width so exhaustive
    // runs span several incumbent chunks — cutoff-bounded aborts only bite
    // once an incumbent exists.
    SearchSpace::new()
        .with_comm_tiles([TileShape::new(64, 64), TileShape::new(128, 128)])
        .with_compute_tiles(compute)
        .with_mappings(mappings)
        .with_channels([1, 2])
        .with_stages([2, 3, 4])
        .with_constraint(RING_REQUIRES_PUSH)
}

/// Drives one oracle through one sub-space with pruning on and off and checks
/// the full admissibility contract.
fn assert_admissible<O: CostOracle>(oracle: &O, space: &SearchSpace, strategy: Strategy) -> usize {
    // Raw bound invariant plus bounded-evaluation parity at infinite cutoff.
    for cfg in space.candidates(oracle) {
        let report = oracle.evaluate(&cfg).expect("candidate simulates");
        if let Some(lb) = oracle.lower_bound(&cfg) {
            assert!(
                lb <= report.total_s,
                "inadmissible bound {lb} > simulated {} for {cfg:?}",
                report.total_s
            );
        }
        match oracle
            .evaluate_bounded(&cfg, f64::INFINITY)
            .expect("bounded eval succeeds")
        {
            BoundedEval::Report(bounded) => assert_eq!(
                bounded, report,
                "infinite-cutoff evaluation diverged for {cfg:?}"
            ),
            BoundedEval::Exceeded(_) => panic!("infinite cutoff aborted for {cfg:?}"),
        }
    }

    let bounded = Tuner::new(strategy)
        .tune(oracle, space)
        .expect("bounded search succeeds");
    let unbounded = Tuner::new(strategy)
        .with_pruning(false)
        .tune(oracle, space)
        .expect("unbounded search succeeds");

    // (b) bit-identical winners and makespans.
    assert_eq!(bounded.best.config, unbounded.best.config);
    assert_eq!(
        bounded.best.report.total_s.to_bits(),
        unbounded.best.report.total_s.to_bits(),
        "winning makespan changed under pruning"
    );

    // (a) every candidate the bounded search did not rank (bound-pruned or
    // abort-short) force-simulates no better than the winner. Only meaningful
    // for the exhaustive strategy: a beam legitimately never visits parts of
    // the space, pruned or not.
    if matches!(strategy, Strategy::Exhaustive) {
        let ranked: HashSet<OverlapConfig> = bounded.ranked.iter().map(|c| c.config).collect();
        for cfg in space.candidates(oracle) {
            if ranked.contains(&cfg) {
                continue;
            }
            let report = oracle.evaluate(&cfg).expect("pruned candidate simulates");
            assert!(
                report.total_s >= bounded.best.report.total_s,
                "pruned candidate {cfg:?} beats the winner: {} < {}",
                report.total_s,
                bounded.best.report.total_s
            );
        }
    }

    bounded.failed.bound_pruned
}

fn providers(cluster: &ClusterSpec) -> [(&'static str, SharedCost); 2] {
    [
        ("analytic", analytic_cost(cluster)),
        (
            "calibrated",
            Arc::new(CalibratedCostModel::h800_defaults(cluster.clone())),
        ),
    ]
}

#[test]
fn mlp_pruning_is_admissible_across_random_subspaces_and_cost_models() {
    let shape = tilelink_workloads::shapes::mlp_shapes()[0].clone();
    let cluster = ClusterSpec::h800_node(8);
    let mut rng = Rng(0x1517_5d00_d1ce_d001);
    let mut pruned_total = 0;
    for round in 0..2 {
        let space = random_space(&mut rng);
        for (name, cost) in providers(&cluster) {
            let oracle = MlpOracle::new(shape.clone(), cluster.clone()).with_cost(cost);
            let pruned = assert_admissible(&oracle, &space, Strategy::Exhaustive);
            eprintln!("round {round} ({name}): {pruned} bound-pruned");
            pruned_total += pruned;
        }
    }
    // The bounds must actually bite somewhere across the rounds, or the
    // branch-and-bound machinery is silently inert.
    assert!(pruned_total > 0, "no candidate was ever bound-pruned");
}

#[test]
fn routed_moe_pruning_is_admissible_for_tail_objectives() {
    let shape = tilelink_workloads::shapes::moe_shapes()[0].clone();
    let cluster = ClusterSpec::h800_node(8);
    let space = SearchSpace::new()
        .with_comm_tiles([TileShape::new(128, 128)])
        .with_compute_tiles([TileShape::new(128, 128), TileShape::new(256, 256)])
        .with_mappings([CommMapping::CopyEngine, CommMapping::Sm { sms: 20 }])
        .with_constraint(RING_REQUIRES_PUSH);
    let spec = RoutingSpec {
        samples: 3,
        ..RoutingSpec::new(RoutingProfile::Zipf { s: 1.2 })
    };
    for objective in [
        Objective::Mean,
        Objective::Percentile(67),
        Objective::WorstCase,
    ] {
        let oracle = MoeOracle::new(shape.clone(), cluster.clone())
            .with_routing(spec)
            .with_objective(objective);
        assert_admissible(&oracle, &space, Strategy::Exhaustive);
    }
}

#[test]
fn beam_search_winners_survive_pruning_bit_for_bit() {
    let shape = tilelink_workloads::shapes::mlp_shapes()[0].clone();
    let cluster = ClusterSpec::h800_node(8);
    let mut rng = Rng(0xbeef_cafe_f00d_0005);
    let space = random_space(&mut rng);
    let oracle = MlpOracle::new(shape, cluster);
    assert_admissible(
        &oracle,
        &space,
        Strategy::Beam {
            width: 2,
            sweeps: 2,
        },
    );
}
