//! Incremental-recompile bit-identity over the standard search space.
//!
//! Beam and coordinate-descent searches move one [`OverlapConfig`] axis at a
//! time, so a tuning run compiles long chains of axis-neighbour candidates
//! against a warm compile cache — stage/mapping neighbours take the patch
//! path, every other axis a keyed full rebuild. The incremental-recompile
//! contract is that none of this is observable: for every axis-neighbour pair
//! of the standard space, compiling the neighbour against a cache warmed by
//! the base must produce the same compiled kernel, the same task graph and a
//! bit-identical overlap report as a cold compile of the neighbour alone,
//! under both cost models.

use tilelink::exec::{simulate_report_with, task_graph};
use tilelink::{
    reset_compile_cache, CacheSite, CommMapping, CompiledKernel, Compiler, OverlapConfig,
    OverlapReport, TileOrder, TileShape, TransferMode,
};
use tilelink_sim::{analytic_cost, CalibratedCostModel, ClusterSpec, SharedCost};
use tilelink_workloads::moe::{ag_group_gemm_program, group_gemm_rs_program};
use tilelink_workloads::shapes::moe_shapes;
use tilelink_workloads::MoeShape;

/// Every axis-neighbour of `base` in the standard space: for each of the
/// seven axes, each candidate value of that axis with all other axes held at
/// `base` (mirrors `SearchSpace::standard()` in `tilelink-tune`).
fn standard_axis_neighbours(base: &OverlapConfig) -> Vec<OverlapConfig> {
    let mut out = Vec::new();
    for comm in [
        TileShape::new(64, 64),
        TileShape::new(128, 128),
        TileShape::new(256, 128),
    ] {
        out.push(base.with_comm_tile(comm));
    }
    for compute in [
        TileShape::new(64, 128),
        TileShape::new(128, 128),
        TileShape::new(128, 256),
    ] {
        out.push(base.with_compute_tile(compute));
    }
    for order in [TileOrder::AllToAll, TileOrder::Ring] {
        out.push(base.with_order(order));
    }
    for mode in [TransferMode::Pull, TransferMode::Push] {
        out.push(base.with_mode(mode));
    }
    for mapping in [
        CommMapping::CopyEngine,
        CommMapping::Sm { sms: 8 },
        CommMapping::Sm { sms: 20 },
        CommMapping::Sm { sms: 40 },
        CommMapping::Hybrid { sms: 8 },
        CommMapping::Hybrid { sms: 20 },
    ] {
        out.push(base.with_comm_mapping(mapping));
    }
    // The standard space has a single channels value (4); list the axis
    // anyway so widening the space later extends coverage automatically.
    let channel_values = [4usize];
    for &channels in &channel_values {
        let mut cfg = *base;
        cfg.channels_per_rank = channels;
        out.push(cfg);
    }
    for stages in [2, 3, 4] {
        let mut cfg = *base;
        cfg.num_stages = stages;
        out.push(cfg);
    }
    out
}

fn compile_kernel(
    site: &'static str,
    shape: &MoeShape,
    cluster: &ClusterSpec,
    cfg: &OverlapConfig,
    cost: &SharedCost,
) -> CompiledKernel {
    let world = cluster.world_size();
    let compiler = Compiler::new(*cfg, cluster.gpu.clone()).with_cost(cost.clone());
    match site {
        "ag" => compiler
            .compile_cached(CacheSite::new("test.axis_neighbour.ag", 0), || {
                Ok(ag_group_gemm_program(shape, world, cfg))
            })
            .expect("compile ag"),
        _ => compiler
            .compile_cached(CacheSite::new("test.axis_neighbour.rs", 0), || {
                Ok(group_gemm_rs_program(shape, world, cfg))
            })
            .expect("compile rs"),
    }
}

fn assert_reports_bit_identical(a: &OverlapReport, b: &OverlapReport, ctx: &str) {
    assert_eq!(a.total_s.to_bits(), b.total_s.to_bits(), "total_s: {ctx}");
    assert_eq!(
        a.comm_only_s.to_bits(),
        b.comm_only_s.to_bits(),
        "comm_only_s: {ctx}"
    );
    assert_eq!(
        a.comp_only_s.to_bits(),
        b.comp_only_s.to_bits(),
        "comp_only_s: {ctx}"
    );
}

#[test]
fn warm_axis_neighbour_compiles_match_cold_compiles_for_both_cost_models() {
    let shape = moe_shapes()[0].clone();
    let cluster = ClusterSpec::h800_node(8);
    let sm_count = cluster.gpu.sm_count;
    let analytic: SharedCost = analytic_cost(&cluster);
    let calibrated: SharedCost =
        std::sync::Arc::new(CalibratedCostModel::h800_defaults(cluster.clone()));
    let base = OverlapConfig::default();

    let mut checked = 0usize;
    for nb in standard_axis_neighbours(&base) {
        if nb == base || nb.validate(sm_count).is_err() {
            continue;
        }
        // Ring schedules forward partials to a neighbour, which is inherently
        // a push; the standard space prunes ring+pull the same way.
        if nb.order == TileOrder::Ring && nb.mode != TransferMode::Push {
            continue;
        }
        for site in ["ag", "rs"] {
            for (model, cost) in [("analytic", &analytic), ("calibrated", &calibrated)] {
                let ctx = format!("{site}/{model}: {base:?} -> {nb:?}");

                // Warm path: the cache holds the base candidate, exactly as a
                // search leaves it before stepping to the neighbour.
                reset_compile_cache();
                let _ = compile_kernel(site, &shape, &cluster, &base, cost);
                let warm = compile_kernel(site, &shape, &cluster, &nb, cost);
                let warm_graph = task_graph(&warm, &cluster);
                let warm_report = simulate_report_with(&warm, cost).expect("warm report");

                // Cold path: the same neighbour compiled from nothing.
                reset_compile_cache();
                let cold = compile_kernel(site, &shape, &cluster, &nb, cost);
                let cold_graph = task_graph(&cold, &cluster);
                let cold_report = simulate_report_with(&cold, cost).expect("cold report");

                assert_eq!(warm, cold, "compiled kernel: {ctx}");
                assert_eq!(warm_graph, cold_graph, "task graph: {ctx}");
                assert_reports_bit_identical(&warm_report, &cold_report, &ctx);
                checked += 1;
            }
        }
    }
    // 13 distinct neighbours survive pruning; each is checked for both
    // kernels and both cost models. Guard the loop against silently
    // vacuous pruning.
    assert!(checked >= 40, "only {checked} neighbour cases checked");
}
