//! Mixture-of-experts layer with dynamic routing and dynamic tile mapping.
//!
//! The MoE layer splits into two halves (Section 7.2):
//!
//! 1. `AllGather + Gather + GroupGEMM` — tokens are gathered across ranks and
//!    shuffled to experts according to the runtime routing, then multiplied by
//!    each expert's first-layer weight shard;
//! 2. `GroupGEMM + Scatter + TopK-Reduce + ReduceScatter` — the second expert
//!    GEMM followed by the weighted combine of the top-k expert outputs and a
//!    ReduceScatter of the partial results.
//!
//! Because routing decides at runtime which tokens each expert tile needs, the
//! consumer side cannot be described by an affine mapping: this is the paper's
//! *dynamic mapping* case. The functional kernel below fills a
//! [`DynamicMapping`] from the routing (one entry per consumer tile describing
//! the dispatched-row range and the expert that consumes it) and uses the
//! static AllGather mapping to wait for exactly the token tiles each consumer
//! tile touches.

use tilelink::config::{CommMapping, OverlapConfig, TileShape};
use tilelink::exec::{run_comm_compute, simulate_with};
use tilelink::ir::{BlockDesc, BlockRole, ComputeKind, TileOp, TileProgram};
use tilelink::primitives::{NotifyScope, PushTarget};
use tilelink::tile::{read_tile, TileRect};
use tilelink::{
    BlockChannel, Compiler, DeviceHandle, DynamicMapping, OverlapReport, StaticMapping, TileMapping,
};
use tilelink_compute::gemm::matmul;
use tilelink_compute::group_gemm::expert_weight;
use tilelink_compute::topk::{topk_routing, Routing};
use tilelink_compute::{Dispatch, Tensor};
use tilelink_shmem::ProcessGroup;
use tilelink_sim::{analytic_cost, ClusterSpec, CostProvider, SharedCost};

use crate::mlp::BYTES_PER_ELEM;
use crate::MoeShape;

/// Recommended configuration for the MoE halves: AllGather on the copy engine,
/// large compute tiles, dynamic routing handled by the dynamic mapping.
pub fn moe_config() -> OverlapConfig {
    OverlapConfig {
        comm_tile: TileShape::new(128, 128),
        compute_tile: TileShape::new(128, 128),
        comm_mapping: CommMapping::CopyEngine,
        ..OverlapConfig::default()
    }
}

/// Result of the functional overlapped MoE first half on one rank.
#[derive(Debug, Clone)]
pub struct MoeForwardResult {
    /// Expert outputs for every dispatched row (sorted by expert), `[M*topk, I_r]`.
    pub expert_out: Tensor,
    /// The routing used (identical on every rank).
    pub routing: Routing,
}

/// Overlapped AllGather + Gather + GroupGEMM on real data.
///
/// * `tokens`: full `[M, H]` token matrix (rank `r` owns rows `r*M/world ..`);
/// * `router_logits`: full `[M, E]` router logits (replicated, as routing is
///   deterministic given the tokens);
/// * `expert_weights[r]`: rank `r`'s `[E, H, I_r]` first-layer expert weights.
///
/// Every rank returns the expert outputs for all dispatched rows computed with
/// its own weight shard, which must equal the unoverlapped reference
/// (`Dispatch::gather` + grouped GEMM).
///
/// # Panics
///
/// Panics if `M` is not divisible by `world * comm_tile_m`.
pub fn ag_moe_functional(
    world: usize,
    tokens: &Tensor,
    router_logits: &Tensor,
    expert_weights: &[Tensor],
    top_k: usize,
    comm_tile_m: usize,
    dispatch_tile_m: usize,
) -> Vec<MoeForwardResult> {
    let m = tokens.shape()[0];
    let h = tokens.shape()[1];
    let m_per_rank = m / world;
    assert_eq!(m % (world * comm_tile_m), 0, "M must divide evenly");
    let ag_mapping = StaticMapping::new(m, comm_tile_m, world, 2);

    // Routing is computed identically on every rank from the (replicated) logits.
    let routing = topk_routing(router_logits, top_k);
    let dispatch = Dispatch::new(&routing);

    ProcessGroup::launch(world, |ctx| {
        let rank = ctx.rank();
        let src = ctx.alloc("moe/src", m_per_rank * h);
        src.write_slice(
            0,
            tokens
                .slice_rows(rank * m_per_rank..(rank + 1) * m_per_rank)
                .data(),
        );
        ctx.alloc("moe/gathered", m * h);
        let num_dispatch_tiles = dispatch.num_rows().div_ceil(dispatch_tile_m);
        let bc = BlockChannel::derive(
            rank,
            world,
            &ag_mapping,
            ag_mapping.num_tiles() / world,
            num_dispatch_tiles,
        );
        let dev = DeviceHandle::new(&ctx, "moe_ag_group_gemm", bc, 0);
        dev.barrier_all();

        // Fill the dynamic mapping from the routing: one entry per consumer
        // (dispatched-row) tile. The "rank" slot records the expert group the
        // tile belongs to, which is what the Group GEMM needs at runtime.
        let dyn_mapping = DynamicMapping::new(num_dispatch_tiles, num_dispatch_tiles);
        for t in 0..num_dispatch_tiles {
            let rows = t * dispatch_tile_m..((t + 1) * dispatch_tile_m).min(dispatch.num_rows());
            let expert = dispatch.expert_of_row[rows.start];
            dyn_mapping
                .fill(t, rows, expert, t)
                .expect("fill dynamic mapping");
        }

        let own_tiles = ag_mapping.tiles_of_rank(rank);
        let weights = expert_weights[rank].clone();
        let i_local = weights.shape()[2];

        let (_, results) = run_comm_compute(
            own_tiles.len(),
            num_dispatch_tiles,
            // AllGather producer blocks (push mode)
            |b| {
                let tile = own_tiles[b];
                let rows = ag_mapping.rows_of(tile).expect("tile in range");
                let local_rows = (rows.start - rank * m_per_rank)..(rows.end - rank * m_per_rank);
                let data = read_tile(&src, h, &TileRect::full_rows(local_rows, h));
                dev.tile_push_data(
                    "moe/gathered",
                    &ag_mapping,
                    tile,
                    h,
                    &data,
                    PushTarget::Broadcast,
                );
                dev.producer_tile_notify(&ag_mapping, tile, NotifyScope::Broadcast);
            },
            // Group GEMM consumer blocks: one per dispatched-row tile
            |t| {
                let rows = dyn_mapping.rows_of(t).expect("tile filled");
                // wait for exactly the token tiles this dispatch tile gathers from
                for row in rows.clone() {
                    let token = dispatch.token_of_row[row];
                    let token_tile = token / comm_tile_m;
                    dev.consumer_tile_wait(&ag_mapping, token_tile);
                }
                // gather the rows (fused gather, as in vLLM's kernels) and run
                // each row against the weight of the expert it routes to.
                let gathered = dev.buffer_on(rank, "moe/gathered");
                let mut out = Tensor::zeros(&[rows.len(), i_local]);
                for (i, row) in rows.clone().enumerate() {
                    let token = dispatch.token_of_row[row];
                    let vals = read_tile(&gathered, h, &TileRect::full_rows(token..token + 1, h));
                    let a = Tensor::from_vec(vals, &[1, h]);
                    let w = expert_weight(&weights, dispatch.expert_of_row[row]);
                    let product = matmul(&a, &w);
                    for c in 0..i_local {
                        out.set(&[i, c], product.at(&[0, c]));
                    }
                }
                (rows, out)
            },
        );

        let mut expert_out = Tensor::zeros(&[dispatch.num_rows(), i_local]);
        for (rows, tile) in results {
            for (i, r) in rows.enumerate() {
                for c in 0..i_local {
                    expert_out.set(&[r, c], tile.at(&[i, c]));
                }
            }
        }
        MoeForwardResult {
            expert_out,
            routing: routing.clone(),
        }
    })
}

// ---------------------------------------------------------------------------
// Timed kernels
// ---------------------------------------------------------------------------

/// Expected number of dispatched rows per rank-sharded expert group.
pub fn dispatched_rows(shape: &MoeShape) -> usize {
    shape.tokens * shape.top_k
}

/// Builds the AG + Gather + GroupGEMM tile program for one MoE shape.
///
/// The routing is load-balanced in expectation, so the timed program assumes a
/// uniform distribution of dispatched rows over experts (the benchmark harness
/// regenerates the routing with a seeded RNG, so tests stay deterministic).
pub fn ag_group_gemm_program(
    shape: &MoeShape,
    world: usize,
    cfg: &OverlapConfig,
) -> (TileProgram, StaticMapping) {
    let m = shape.tokens;
    let h = shape.hidden;
    let i_local = shape.intermediate / world;
    let mapping = StaticMapping::new(m, cfg.comm_tile.m, world, cfg.channels_per_rank);
    let tile_bytes = cfg.comm_tile.m as f64 * h as f64 * BYTES_PER_ELEM;
    let rows = dispatched_rows(shape);
    let compute_tiles = rows.div_ceil(cfg.compute_tile.m * 8); // 8 dispatch tiles share one block
    let mut program = TileProgram::new("moe_ag_group_gemm", world);
    for rank in 0..world {
        for (i, tile) in mapping.tiles_of_rank(rank).into_iter().enumerate() {
            program.add_block(
                BlockDesc::new(format!("ag/r{rank}/b{i}"), rank, BlockRole::Producer)
                    .op(TileOp::PushTile {
                        buffer: "gathered".into(),
                        bytes: tile_bytes,
                        tile,
                        target: PushTarget::Broadcast,
                    })
                    .op(TileOp::ProducerNotify {
                        tile,
                        scope: NotifyScope::Broadcast,
                    }),
            );
        }
        let rows_per_block = rows.div_ceil(compute_tiles);
        for b in 0..compute_tiles {
            // Each Group-GEMM block consumes tokens scattered across the whole
            // gathered matrix, so it waits on a spread of producer tiles.
            let mut block =
                BlockDesc::new(format!("ggemm/r{rank}/b{b}"), rank, BlockRole::Consumer);
            let wait_tiles =
                (mapping.num_tiles() * (b + 1) / compute_tiles).min(mapping.num_tiles());
            for tile in (mapping.num_tiles() * b / compute_tiles)..wait_tiles {
                block = block.op(TileOp::ConsumerWait { tile });
            }
            block = block
                .op(TileOp::LoadTile {
                    buffer: "gathered".into(),
                    bytes: rows_per_block as f64 * h as f64 * BYTES_PER_ELEM,
                    tile: None,
                })
                .op(TileOp::Compute(ComputeKind::MatmulTile {
                    m: rows_per_block,
                    n: i_local,
                    k: h,
                }))
                .op(TileOp::StoreTile {
                    buffer: "expert_out".into(),
                    bytes: rows_per_block as f64 * i_local as f64 * BYTES_PER_ELEM,
                    tile: None,
                });
            program.add_block(block);
        }
    }
    (program, mapping)
}

/// Builds the GroupGEMM + Scatter + TopK-Reduce + ReduceScatter program for one
/// MoE shape (the layer's second half, with an extended producer-consumer
/// chain: GroupGEMM → TopK reduce → ReduceScatter).
pub fn group_gemm_rs_program(
    shape: &MoeShape,
    world: usize,
    cfg: &OverlapConfig,
) -> (TileProgram, StaticMapping) {
    let m = shape.tokens;
    let h = shape.hidden;
    let i_local = shape.intermediate / world;
    let rows = dispatched_rows(shape);
    let tile_m = cfg.compute_tile.m;
    let mapping = StaticMapping::new(m, tile_m, world, cfg.channels_per_rank);
    let m_per_rank = m / world;
    let tiles_per_segment = (m_per_rank / tile_m).max(1);
    let tile_out_bytes = tile_m as f64 * h as f64 * BYTES_PER_ELEM;
    let mut program = TileProgram::new("moe_group_gemm_rs", world);
    for rank in 0..world {
        // Group GEMM producing partial token outputs, fused with the scatter +
        // top-k reduce epilogue (each output tile combines top_k expert rows).
        for tile in 0..mapping.num_tiles() {
            let trows = mapping.rows_of(tile).expect("tile in range");
            let rows_of_tile = trows.len() * rows / m; // dispatched rows feeding this tile
            program.add_block(
                BlockDesc::new(format!("ggemm2/r{rank}/t{tile}"), rank, BlockRole::Consumer)
                    .op(TileOp::LoadTile {
                        buffer: "expert_act".into(),
                        bytes: rows_of_tile as f64 * i_local as f64 * BYTES_PER_ELEM,
                        tile: None,
                    })
                    .op(TileOp::Compute(ComputeKind::MatmulTile {
                        m: rows_of_tile,
                        n: h,
                        k: i_local,
                    }))
                    // top-k weighted combine of the expert rows into token rows
                    .op(TileOp::Compute(ComputeKind::Elementwise {
                        elems: rows_of_tile * h,
                    }))
                    .op(TileOp::StoreTile {
                        buffer: "gemm_out".into(),
                        bytes: tile_out_bytes,
                        tile: Some(tile),
                    })
                    .op(TileOp::ProducerNotify {
                        tile,
                        scope: NotifyScope::Local,
                    }),
            );
        }
        // Ring ReduceScatter, identical in structure to the MLP second half.
        let to_rank = (rank + world - 1) % world;
        for tid_m in 0..tiles_per_segment {
            let mut block =
                BlockDesc::new(format!("rs/r{rank}/t{tid_m}"), rank, BlockRole::Producer);
            for stage in 0..world {
                let seg = (rank + stage + 1) % world;
                let tile_global = seg * tiles_per_segment + tid_m;
                block = block
                    .op(TileOp::ConsumerWait { tile: tile_global })
                    .op(TileOp::LoadTile {
                        buffer: "gemm_out".into(),
                        bytes: tile_out_bytes,
                        tile: Some(tile_global),
                    });
                if stage != 0 {
                    block = block
                        .op(TileOp::PeerWait {
                            slot: tile_global,
                            expected: 1,
                        })
                        .op(TileOp::Compute(ComputeKind::Reduction {
                            elems: tile_m * h,
                        }));
                }
                if stage == world - 1 {
                    block = block.op(TileOp::StoreTile {
                        buffer: "out".into(),
                        bytes: tile_out_bytes,
                        tile: None,
                    });
                } else {
                    block = block
                        .op(TileOp::PushTile {
                            buffer: "partial".into(),
                            bytes: tile_out_bytes,
                            tile: tile_global,
                            target: PushTarget::Rank(to_rank),
                        })
                        .op(TileOp::PeerNotify {
                            slot: tile_global,
                            dst_rank: to_rank,
                        });
                }
            }
            program.add_block(block);
        }
    }
    (program, mapping)
}

/// Simulates the TileLink AG + Gather + GroupGEMM kernel with the default
/// analytic cost model.
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_ag_group_gemm(
    shape: &MoeShape,
    cluster: &ClusterSpec,
    cfg: &OverlapConfig,
) -> tilelink::Result<OverlapReport> {
    timed_ag_group_gemm_with(shape, cfg, &analytic_cost(cluster))
}

/// Simulates the TileLink AG + Gather + GroupGEMM kernel priced by an
/// explicit cost provider (the cluster is the provider's).
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_ag_group_gemm_with(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
) -> tilelink::Result<OverlapReport> {
    let world = cost.cluster().world_size();
    let (program, mapping) = ag_group_gemm_program(shape, world, cfg);
    let kernel = Compiler::new(cfg.clone(), cost.cluster().gpu.clone())
        .with_cost(cost.clone())
        .compile(&program, &mapping)?;
    let (report, _) = simulate_with(&kernel, cost)?;
    Ok(report)
}

/// Simulates the TileLink GroupGEMM + Scatter + TopK-Reduce + RS kernel with
/// the default analytic cost model.
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_group_gemm_rs(
    shape: &MoeShape,
    cluster: &ClusterSpec,
    cfg: &OverlapConfig,
) -> tilelink::Result<OverlapReport> {
    timed_group_gemm_rs_with(shape, cfg, &analytic_cost(cluster))
}

/// Simulates the TileLink GroupGEMM + Scatter + TopK-Reduce + RS kernel
/// priced by an explicit cost provider (the cluster is the provider's).
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_group_gemm_rs_with(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
) -> tilelink::Result<OverlapReport> {
    let world = cost.cluster().world_size();
    let mut cfg = cfg.clone();
    cfg.comm_mapping = CommMapping::Hybrid { sms: 20 };
    let (program, mapping) = group_gemm_rs_program(shape, world, &cfg);
    let kernel = Compiler::new(cfg.clone(), cost.cluster().gpu.clone())
        .with_cost(cost.clone())
        .compile(&program, &mapping)?;
    let (report, _) = simulate_with(&kernel, cost)?;
    Ok(report)
}

/// Simulates the full TileLink MoE layer (both halves plus the activation)
/// with the default analytic cost model.
///
/// # Errors
///
/// Returns an error if either half fails.
pub fn timed_full_moe(shape: &MoeShape, cluster: &ClusterSpec) -> tilelink::Result<OverlapReport> {
    timed_full_moe_with(shape, &analytic_cost(cluster))
}

/// Simulates the full TileLink MoE layer priced by an explicit cost provider.
///
/// # Errors
///
/// Returns an error if either half fails.
pub fn timed_full_moe_with(shape: &MoeShape, cost: &SharedCost) -> tilelink::Result<OverlapReport> {
    let cfg = moe_config();
    let first = timed_ag_group_gemm_with(shape, &cfg, cost)?;
    let second = timed_group_gemm_rs_with(shape, &cfg, cost)?;
    let act = activation_seconds_with(shape, &**cost);
    Ok(OverlapReport::new(
        first.total_s + second.total_s + act,
        first.comm_only_s + second.comm_only_s,
        first.comp_only_s + second.comp_only_s + act,
    ))
}

/// Time of the expert-MLP activation between the two MoE halves, priced by an
/// explicit cost provider (memory bound; three passes over the dispatched
/// intermediate activations).
pub fn activation_seconds_with(shape: &MoeShape, cost: &dyn CostProvider) -> f64 {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let act_elems = dispatched_rows(shape) as f64 * (shape.intermediate / world) as f64;
    cost.hbm_seconds(3.0 * act_elems * BYTES_PER_ELEM) + cluster.gpu.kernel_launch_s()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilelink_compute::group_gemm::group_gemm;

    fn reference(
        tokens: &Tensor,
        logits: &Tensor,
        weights: &Tensor,
        top_k: usize,
    ) -> (Tensor, Routing) {
        let routing = topk_routing(logits, top_k);
        let dispatch = Dispatch::new(&routing);
        let gathered = dispatch.gather(tokens);
        (
            group_gemm(&gathered, &dispatch.expert_offsets, weights),
            routing,
        )
    }

    #[test]
    fn functional_ag_moe_matches_reference() {
        let world = 2;
        let (m, h, experts, i_local, top_k) = (16, 6, 4, 5, 2);
        let tokens = Tensor::random(&[m, h], 1);
        let logits = Tensor::random(&[m, experts], 2);
        let weights: Vec<Tensor> = (0..world)
            .map(|r| Tensor::random(&[experts, h, i_local], 50 + r as u64))
            .collect();
        let results = ag_moe_functional(world, &tokens, &logits, &weights, top_k, 4, 4);
        for (rank, result) in results.iter().enumerate() {
            let (expected, routing) = reference(&tokens, &logits, &weights[rank], top_k);
            assert_eq!(result.routing, routing);
            assert!(
                result.expert_out.allclose(&expected, 1e-3),
                "rank {rank} diff {}",
                result.expert_out.max_abs_diff(&expected)
            );
        }
    }

    #[test]
    fn functional_ag_moe_with_uneven_dispatch_tiles() {
        // dispatch tile size that does not divide the dispatched row count
        let world = 2;
        let tokens = Tensor::random(&[8, 4], 7);
        let logits = Tensor::random(&[8, 3], 8);
        let weights: Vec<Tensor> = (0..world)
            .map(|r| Tensor::random(&[3, 4, 3], 60 + r as u64))
            .collect();
        let results = ag_moe_functional(world, &tokens, &logits, &weights, 2, 2, 3);
        let (expected, _) = reference(&tokens, &logits, &weights[0], 2);
        assert!(results[0].expert_out.allclose(&expected, 1e-3));
    }

    #[test]
    fn timed_moe_first_half_overlaps() {
        let shape = crate::shapes::moe_shapes()[0].clone();
        let cluster = ClusterSpec::h800_node(8);
        let report = timed_ag_group_gemm(&shape, &cluster, &moe_config()).unwrap();
        assert!(report.total_s < report.comm_only_s + report.comp_only_s);
        assert!(report.total_ms() > 0.01 && report.total_ms() < 20.0);
    }

    #[test]
    fn timed_moe_second_half_overlaps() {
        let shape = crate::shapes::moe_shapes()[0].clone();
        let cluster = ClusterSpec::h800_node(8);
        let report = timed_group_gemm_rs(&shape, &cluster, &moe_config()).unwrap();
        assert!(report.total_s < report.comm_only_s + report.comp_only_s);
    }

    #[test]
    fn timed_full_moe_scales_with_topk() {
        let shapes = crate::shapes::moe_shapes();
        let cluster = ClusterSpec::h800_node(8);
        let k2 = timed_full_moe(&shapes[1], &cluster).unwrap(); // MoE-2: topk 2
        let k5 = timed_full_moe(&shapes[2], &cluster).unwrap(); // MoE-3: topk 5
        assert!(k5.total_s > k2.total_s);
    }
}
