//! Mixture-of-experts layer with dynamic routing and dynamic tile mapping.
//!
//! The MoE layer splits into two halves (Section 7.2):
//!
//! 1. `AllGather + Gather + GroupGEMM` — tokens are gathered across ranks and
//!    shuffled to experts according to the runtime routing, then multiplied by
//!    each expert's first-layer weight shard;
//! 2. `GroupGEMM + Scatter + TopK-Reduce + ReduceScatter` — the second expert
//!    GEMM followed by the weighted combine of the top-k expert outputs and a
//!    ReduceScatter of the partial results.
//!
//! Because routing decides at runtime which tokens each expert tile needs, the
//! consumer side cannot be described by an affine mapping: this is the paper's
//! *dynamic mapping* case. The functional kernel below fills a
//! [`DynamicMapping`] from the routing (one entry per consumer tile describing
//! the dispatched-row range and the expert that consumes it) and uses the
//! static AllGather mapping to wait for exactly the token tiles each consumer
//! tile touches.

use tilelink::config::{CommMapping, OverlapConfig, TileShape};
use tilelink::exec::{
    run_comm_compute, simulate_report_bounded_with, simulate_report_with, BoundedReport,
};
use tilelink::ir::{BlockDesc, BlockRole, ComputeKind, Symbol, TileOp, TileProgram};
use tilelink::primitives::{NotifyScope, PushTarget};
use tilelink::tile::{read_tile, TileRect};
use tilelink::{
    detail_hash, BlockChannel, CacheSite, Compiler, DeviceHandle, DynamicMapping, OverlapReport,
    StaticMapping, TileMapping,
};
use tilelink_compute::gemm::matmul;
use tilelink_compute::group_gemm::expert_weight;
use tilelink_compute::topk::{topk_routing, Routing};
use tilelink_compute::{Dispatch, Tensor};
use tilelink_shmem::ProcessGroup;
use tilelink_sim::{analytic_cost, ClusterSpec, CostProvider, SharedCost};

use std::fmt;
use std::fmt::Write as _;
use std::ops::Range;
use std::str::FromStr;

use crate::mlp::BYTES_PER_ELEM;
use crate::MoeShape;

/// Recommended configuration for the MoE halves: AllGather on the copy engine,
/// large compute tiles, dynamic routing handled by the dynamic mapping.
pub fn moe_config() -> OverlapConfig {
    OverlapConfig {
        comm_tile: TileShape::new(128, 128),
        compute_tile: TileShape::new(128, 128),
        comm_mapping: CommMapping::CopyEngine,
        ..OverlapConfig::default()
    }
}

/// Result of the functional overlapped MoE first half on one rank.
#[derive(Debug, Clone)]
pub struct MoeForwardResult {
    /// Expert outputs for every dispatched row (sorted by expert), `[M*topk, I_r]`.
    pub expert_out: Tensor,
    /// The routing used (identical on every rank).
    pub routing: Routing,
}

/// Overlapped AllGather + Gather + GroupGEMM on real data.
///
/// * `tokens`: full `[M, H]` token matrix (rank `r` owns rows `r*M/world ..`);
/// * `router_logits`: full `[M, E]` router logits (replicated, as routing is
///   deterministic given the tokens);
/// * `expert_weights[r]`: rank `r`'s `[E, H, I_r]` first-layer expert weights.
///
/// Every rank returns the expert outputs for all dispatched rows computed with
/// its own weight shard, which must equal the unoverlapped reference
/// (`Dispatch::gather` + grouped GEMM).
///
/// # Panics
///
/// Panics if `M` is not divisible by `world * comm_tile_m`.
pub fn ag_moe_functional(
    world: usize,
    tokens: &Tensor,
    router_logits: &Tensor,
    expert_weights: &[Tensor],
    top_k: usize,
    comm_tile_m: usize,
    dispatch_tile_m: usize,
) -> Vec<MoeForwardResult> {
    let m = tokens.shape()[0];
    let h = tokens.shape()[1];
    let m_per_rank = m / world;
    assert_eq!(m % (world * comm_tile_m), 0, "M must divide evenly");
    let ag_mapping = StaticMapping::new(m, comm_tile_m, world, 2);

    // Routing is computed identically on every rank from the (replicated) logits.
    let routing = topk_routing(router_logits, top_k);
    let dispatch = Dispatch::new(&routing);

    ProcessGroup::launch(world, |ctx| {
        let rank = ctx.rank();
        let src = ctx.alloc("moe/src", m_per_rank * h);
        src.write_slice(
            0,
            tokens
                .slice_rows(rank * m_per_rank..(rank + 1) * m_per_rank)
                .data(),
        );
        ctx.alloc("moe/gathered", m * h);
        let num_dispatch_tiles = dispatch.num_rows().div_ceil(dispatch_tile_m);
        let bc = BlockChannel::derive(
            rank,
            world,
            &ag_mapping,
            ag_mapping.num_tiles() / world,
            num_dispatch_tiles,
        );
        let dev = DeviceHandle::new(&ctx, "moe_ag_group_gemm", bc, 0);
        dev.barrier_all();

        // Fill the dynamic mapping from the routing: one entry per consumer
        // (dispatched-row) tile. The "rank" slot records the expert group the
        // tile belongs to, which is what the Group GEMM needs at runtime.
        let dyn_mapping = DynamicMapping::new(num_dispatch_tiles, num_dispatch_tiles);
        for t in 0..num_dispatch_tiles {
            let rows = t * dispatch_tile_m..((t + 1) * dispatch_tile_m).min(dispatch.num_rows());
            let expert = dispatch.expert_of_row[rows.start];
            dyn_mapping
                .fill(t, rows, expert, t)
                .expect("fill dynamic mapping");
        }

        let own_tiles = ag_mapping.tiles_of_rank(rank);
        let weights = expert_weights[rank].clone();
        let i_local = weights.shape()[2];

        let (_, results) = run_comm_compute(
            own_tiles.len(),
            num_dispatch_tiles,
            // AllGather producer blocks (push mode)
            |b| {
                let tile = own_tiles[b];
                let rows = ag_mapping.rows_of(tile).expect("tile in range");
                let local_rows = (rows.start - rank * m_per_rank)..(rows.end - rank * m_per_rank);
                let data = read_tile(&src, h, &TileRect::full_rows(local_rows, h));
                dev.tile_push_data(
                    "moe/gathered",
                    &ag_mapping,
                    tile,
                    h,
                    &data,
                    PushTarget::Broadcast,
                );
                dev.producer_tile_notify(&ag_mapping, tile, NotifyScope::Broadcast);
            },
            // Group GEMM consumer blocks: one per dispatched-row tile
            |t| {
                let rows = dyn_mapping.rows_of(t).expect("tile filled");
                // wait for exactly the token tiles this dispatch tile gathers from
                for row in rows.clone() {
                    let token = dispatch.token_of_row[row];
                    let token_tile = token / comm_tile_m;
                    dev.consumer_tile_wait(&ag_mapping, token_tile);
                }
                // gather the rows (fused gather, as in vLLM's kernels) and run
                // each row against the weight of the expert it routes to.
                let gathered = dev.buffer_on(rank, "moe/gathered");
                let mut out = Tensor::zeros(&[rows.len(), i_local]);
                for (i, row) in rows.clone().enumerate() {
                    let token = dispatch.token_of_row[row];
                    let vals = read_tile(&gathered, h, &TileRect::full_rows(token..token + 1, h));
                    let a = Tensor::from_vec(vals, &[1, h]);
                    let w = expert_weight(&weights, dispatch.expert_of_row[row]);
                    let product = matmul(&a, &w);
                    for c in 0..i_local {
                        out.set(&[i, c], product.at(&[0, c]));
                    }
                }
                (rows, out)
            },
        );

        let mut expert_out = Tensor::zeros(&[dispatch.num_rows(), i_local]);
        for (rows, tile) in results {
            for (i, r) in rows.enumerate() {
                for c in 0..i_local {
                    expert_out.set(&[r, c], tile.at(&[i, c]));
                }
            }
        }
        MoeForwardResult {
            expert_out,
            routing: routing.clone(),
        }
    })
}

// ---------------------------------------------------------------------------
// Timed kernels
// ---------------------------------------------------------------------------

/// Expected number of dispatched rows per rank-sharded expert group.
pub fn dispatched_rows(shape: &MoeShape) -> usize {
    shape.tokens * shape.top_k
}

/// Builds the AG + Gather + GroupGEMM tile program for one MoE shape.
///
/// The routing is load-balanced in expectation, so the timed program assumes a
/// uniform distribution of dispatched rows over experts (the benchmark harness
/// regenerates the routing with a seeded RNG, so tests stay deterministic).
pub fn ag_group_gemm_program(
    shape: &MoeShape,
    world: usize,
    cfg: &OverlapConfig,
) -> (TileProgram, StaticMapping) {
    let _span = tilelink_probe::span("compile.build");
    let m = shape.tokens;
    let h = shape.hidden;
    let i_local = shape.intermediate / world;
    let mapping = StaticMapping::new(m, cfg.comm_tile.m, world, cfg.channels_per_rank);
    let tile_bytes = cfg.comm_tile.m as f64 * h as f64 * BYTES_PER_ELEM;
    let rows = dispatched_rows(shape);
    let compute_tiles = rows.div_ceil(cfg.compute_tile.m * 8); // 8 dispatch tiles share one block
                                                               // Buffer names are interned once here instead of once per op: the intern
                                                               // table lookup takes a global lock, and these loops run for every block of
                                                               // every rank on every cache-miss compile.
    let gathered = Symbol::intern("gathered");
    let expert_out = Symbol::intern("expert_out");
    let mut name = String::with_capacity(32);
    let mut program = TileProgram::new("moe_ag_group_gemm", world);
    for rank in 0..world {
        for (i, tile) in mapping.tiles_of_rank(rank).into_iter().enumerate() {
            name.clear();
            write!(name, "ag/r{rank}/b{i}").expect("write to string");
            program.add_block(
                BlockDesc::new(name.as_str(), rank, BlockRole::Producer)
                    .op(TileOp::PushTile {
                        buffer: gathered,
                        bytes: tile_bytes,
                        tile,
                        target: PushTarget::Broadcast,
                    })
                    .op(TileOp::ProducerNotify {
                        tile,
                        scope: NotifyScope::Broadcast,
                    }),
            );
        }
        let rows_per_block = rows.div_ceil(compute_tiles);
        for b in 0..compute_tiles {
            // Each Group-GEMM block consumes tokens scattered across the whole
            // gathered matrix, so it waits on a spread of producer tiles.
            name.clear();
            write!(name, "ggemm/r{rank}/b{b}").expect("write to string");
            let mut block = BlockDesc::new(name.as_str(), rank, BlockRole::Consumer);
            let wait_tiles =
                (mapping.num_tiles() * (b + 1) / compute_tiles).min(mapping.num_tiles());
            for tile in (mapping.num_tiles() * b / compute_tiles)..wait_tiles {
                block = block.op(TileOp::ConsumerWait { tile });
            }
            block = block
                .op(TileOp::LoadTile {
                    buffer: gathered,
                    bytes: rows_per_block as f64 * h as f64 * BYTES_PER_ELEM,
                    tile: None,
                })
                .op(TileOp::Compute(ComputeKind::MatmulTile {
                    m: rows_per_block,
                    n: i_local,
                    k: h,
                }))
                .op(TileOp::StoreTile {
                    buffer: expert_out,
                    bytes: rows_per_block as f64 * i_local as f64 * BYTES_PER_ELEM,
                    tile: None,
                });
            program.add_block(block);
        }
    }
    (program, mapping)
}

/// Builds the GroupGEMM + Scatter + TopK-Reduce + ReduceScatter program for one
/// MoE shape (the layer's second half, with an extended producer-consumer
/// chain: GroupGEMM → TopK reduce → ReduceScatter).
pub fn group_gemm_rs_program(
    shape: &MoeShape,
    world: usize,
    cfg: &OverlapConfig,
) -> (TileProgram, StaticMapping) {
    let _span = tilelink_probe::span("compile.build");
    let m = shape.tokens;
    let h = shape.hidden;
    let i_local = shape.intermediate / world;
    let rows = dispatched_rows(shape);
    let tile_m = cfg.compute_tile.m;
    let mapping = StaticMapping::new(m, tile_m, world, cfg.channels_per_rank);
    let m_per_rank = m / world;
    let tiles_per_segment = (m_per_rank / tile_m).max(1);
    let tile_out_bytes = tile_m as f64 * h as f64 * BYTES_PER_ELEM;
    // Interned once per compile, not once per op (see ag_group_gemm_program).
    let expert_act = Symbol::intern("expert_act");
    let gemm_out = Symbol::intern("gemm_out");
    let out_buf = Symbol::intern("out");
    let partial = Symbol::intern("partial");
    let mut name = String::with_capacity(32);
    let mut program = TileProgram::new("moe_group_gemm_rs", world);
    for rank in 0..world {
        // Group GEMM producing partial token outputs, fused with the scatter +
        // top-k reduce epilogue (each output tile combines top_k expert rows).
        for tile in 0..mapping.num_tiles() {
            let trows = mapping.rows_of(tile).expect("tile in range");
            let rows_of_tile = trows.len() * rows / m; // dispatched rows feeding this tile
            name.clear();
            write!(name, "ggemm2/r{rank}/t{tile}").expect("write to string");
            program.add_block(
                BlockDesc::new(name.as_str(), rank, BlockRole::Consumer)
                    .op(TileOp::LoadTile {
                        buffer: expert_act,
                        bytes: rows_of_tile as f64 * i_local as f64 * BYTES_PER_ELEM,
                        tile: None,
                    })
                    .op(TileOp::Compute(ComputeKind::MatmulTile {
                        m: rows_of_tile,
                        n: h,
                        k: i_local,
                    }))
                    // top-k weighted combine of the expert rows into token rows
                    .op(TileOp::Compute(ComputeKind::Elementwise {
                        elems: rows_of_tile * h,
                    }))
                    .op(TileOp::StoreTile {
                        buffer: gemm_out,
                        bytes: tile_out_bytes,
                        tile: Some(tile),
                    })
                    .op(TileOp::ProducerNotify {
                        tile,
                        scope: NotifyScope::Local,
                    }),
            );
        }
        // Ring ReduceScatter, identical in structure to the MLP second half.
        let to_rank = (rank + world - 1) % world;
        for tid_m in 0..tiles_per_segment {
            name.clear();
            write!(name, "rs/r{rank}/t{tid_m}").expect("write to string");
            let mut block = BlockDesc::new(name.as_str(), rank, BlockRole::Producer);
            for stage in 0..world {
                let seg = (rank + stage + 1) % world;
                let tile_global = seg * tiles_per_segment + tid_m;
                block = block
                    .op(TileOp::ConsumerWait { tile: tile_global })
                    .op(TileOp::LoadTile {
                        buffer: gemm_out,
                        bytes: tile_out_bytes,
                        tile: Some(tile_global),
                    });
                if stage != 0 {
                    block = block
                        .op(TileOp::PeerWait {
                            slot: tile_global,
                            expected: 1,
                        })
                        .op(TileOp::Compute(ComputeKind::Reduction {
                            elems: tile_m * h,
                        }));
                }
                if stage == world - 1 {
                    block = block.op(TileOp::StoreTile {
                        buffer: out_buf,
                        bytes: tile_out_bytes,
                        tile: None,
                    });
                } else {
                    block = block
                        .op(TileOp::PushTile {
                            buffer: partial,
                            bytes: tile_out_bytes,
                            tile: tile_global,
                            target: PushTarget::Rank(to_rank),
                        })
                        .op(TileOp::PeerNotify {
                            slot: tile_global,
                            dst_rank: to_rank,
                        });
                }
            }
            program.add_block(block);
        }
    }
    (program, mapping)
}

/// Compile-cache detail words for one MoE shape on one cluster size.
fn moe_detail(shape: &MoeShape, world: usize) -> u64 {
    detail_hash([
        shape.tokens as u64,
        shape.hidden as u64,
        shape.intermediate as u64,
        shape.experts as u64,
        shape.top_k as u64,
        world as u64,
    ])
}

/// Detail words for the routed kernels: the sampled per-expert row counts
/// change the emitted program, so they are part of the cache identity.
fn routed_detail(shape: &MoeShape, world: usize, sample: &RoutingSample) -> u64 {
    detail_hash(
        [
            shape.tokens as u64,
            shape.hidden as u64,
            shape.intermediate as u64,
            shape.experts as u64,
            shape.top_k as u64,
            world as u64,
        ]
        .into_iter()
        .chain(sample.rows_per_expert.iter().map(|&r| r as u64)),
    )
}

/// Simulates the TileLink AG + Gather + GroupGEMM kernel with the default
/// analytic cost model.
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_ag_group_gemm(
    shape: &MoeShape,
    cluster: &ClusterSpec,
    cfg: &OverlapConfig,
) -> tilelink::Result<OverlapReport> {
    timed_ag_group_gemm_with(shape, cfg, &analytic_cost(cluster))
}

/// Simulates the TileLink AG + Gather + GroupGEMM kernel priced by an
/// explicit cost provider (the cluster is the provider's).
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_ag_group_gemm_with(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
) -> tilelink::Result<OverlapReport> {
    let kernel = compile_ag_group_gemm(shape, cfg, cost)?;
    simulate_report_with(&kernel, cost)
}

/// [`timed_ag_group_gemm_with`] with an abort cutoff on the overlapped
/// makespan — the branch-and-bound fast path.
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_ag_group_gemm_bounded_with(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
    cutoff: f64,
) -> tilelink::Result<BoundedReport> {
    let kernel = compile_ag_group_gemm(shape, cfg, cost)?;
    simulate_report_bounded_with(&kernel, cost, cutoff)
}

fn compile_ag_group_gemm(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
) -> tilelink::Result<tilelink::CompiledKernel> {
    let world = cost.cluster().world_size();
    Compiler::new(*cfg, cost.cluster().gpu.clone())
        .with_cost(cost.clone())
        .compile_cached(
            CacheSite::new("moe.ag_group_gemm", moe_detail(shape, world)),
            || Ok(ag_group_gemm_program(shape, world, cfg)),
        )
}

/// Simulates the TileLink GroupGEMM + Scatter + TopK-Reduce + RS kernel with
/// the default analytic cost model.
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_group_gemm_rs(
    shape: &MoeShape,
    cluster: &ClusterSpec,
    cfg: &OverlapConfig,
) -> tilelink::Result<OverlapReport> {
    timed_group_gemm_rs_with(shape, cfg, &analytic_cost(cluster))
}

/// Simulates the TileLink GroupGEMM + Scatter + TopK-Reduce + RS kernel
/// priced by an explicit cost provider (the cluster is the provider's).
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_group_gemm_rs_with(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
) -> tilelink::Result<OverlapReport> {
    let kernel = compile_group_gemm_rs(shape, cfg, cost)?;
    simulate_report_with(&kernel, cost)
}

/// [`timed_group_gemm_rs_with`] with an abort cutoff on the overlapped
/// makespan.
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_group_gemm_rs_bounded_with(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
    cutoff: f64,
) -> tilelink::Result<BoundedReport> {
    let kernel = compile_group_gemm_rs(shape, cfg, cost)?;
    simulate_report_bounded_with(&kernel, cost, cutoff)
}

fn compile_group_gemm_rs(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
) -> tilelink::Result<tilelink::CompiledKernel> {
    let world = cost.cluster().world_size();
    let mut cfg = *cfg;
    cfg.comm_mapping = CommMapping::Hybrid { sms: 20 };
    Compiler::new(cfg, cost.cluster().gpu.clone())
        .with_cost(cost.clone())
        .compile_cached(
            CacheSite::new("moe.group_gemm_rs", moe_detail(shape, world)),
            || Ok(group_gemm_rs_program(shape, world, &cfg)),
        )
}

/// Simulates the full TileLink MoE layer (both halves plus the activation)
/// with the default analytic cost model.
///
/// # Errors
///
/// Returns an error if either half fails.
pub fn timed_full_moe(shape: &MoeShape, cluster: &ClusterSpec) -> tilelink::Result<OverlapReport> {
    timed_full_moe_with(shape, &analytic_cost(cluster))
}

/// Simulates the full TileLink MoE layer priced by an explicit cost provider.
///
/// # Errors
///
/// Returns an error if either half fails.
pub fn timed_full_moe_with(shape: &MoeShape, cost: &SharedCost) -> tilelink::Result<OverlapReport> {
    let cfg = moe_config();
    let first = timed_ag_group_gemm_with(shape, &cfg, cost)?;
    let second = timed_group_gemm_rs_with(shape, &cfg, cost)?;
    let act = activation_seconds_with(shape, &**cost);
    Ok(OverlapReport::new(
        first.total_s + second.total_s + act,
        first.comm_only_s + second.comm_only_s,
        first.comp_only_s + second.comp_only_s + act,
    ))
}

/// Time of the expert-MLP activation between the two MoE halves, priced by an
/// explicit cost provider (memory bound; three passes over the dispatched
/// intermediate activations).
pub fn activation_seconds_with(shape: &MoeShape, cost: &dyn CostProvider) -> f64 {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let act_elems = dispatched_rows(shape) as f64 * (shape.intermediate / world) as f64;
    cost.hbm_seconds(3.0 * act_elems * BYTES_PER_ELEM) + cluster.gpu.kernel_launch_s()
}

// ---------------------------------------------------------------------------
// Routing distributions: sampler + routed (dynamic-mapping) timed kernels
// ---------------------------------------------------------------------------

/// Relative traffic of a hot expert under [`RoutingProfile::HotExpert`]
/// (cold experts have weight 1).
const HOT_EXPERT_WEIGHT: f64 = 8.0;

/// How dispatched rows distribute over experts when sampling routings.
///
/// The timed MoE kernels historically priced the *expected* (load-balanced)
/// routing; real MoE layers route with skew, and the skew — not the mean —
/// determines how much overlap is achievable. A profile describes the expert
/// popularity distribution the [`RoutingSampler`] draws from; which experts
/// are popular is re-drawn per sample, so a set of samples covers "any expert
/// may be hot", not "expert 0 is hot".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingProfile {
    /// Every expert equally likely (sampled, so counts still fluctuate around
    /// the mean the way a balanced router's do).
    Uniform,
    /// Zipf-distributed popularity: the `i`-th most popular expert has weight
    /// `(i + 1)^-s`. `s ≈ 1.0–1.5` matches reported MoE routing skew.
    Zipf {
        /// The Zipf exponent (`> 0`; larger is more skewed).
        s: f64,
    },
    /// `hot` experts receive [`HOT_EXPERT_WEIGHT`]× the traffic of the rest —
    /// the "few hot experts" regime of capacity-overflow studies. With
    /// `hot >= experts` every expert is "hot", which degenerates to
    /// [`RoutingProfile::Uniform`] (the sampler cannot know the expert count
    /// at parse time, so this is not rejected — pick `hot` well below the
    /// shape's expert count for actual skew).
    HotExpert {
        /// Number of hot experts (`>= 1`).
        hot: usize,
    },
}

impl RoutingProfile {
    /// Weight of the expert holding popularity rank `rank` (0 = most popular).
    fn weight_of_rank(&self, rank: usize) -> f64 {
        match self {
            RoutingProfile::Uniform => 1.0,
            RoutingProfile::Zipf { s } => ((rank + 1) as f64).powf(-s),
            RoutingProfile::HotExpert { hot } => {
                if rank < *hot {
                    HOT_EXPERT_WEIGHT
                } else {
                    1.0
                }
            }
        }
    }
}

impl fmt::Display for RoutingProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingProfile::Uniform => write!(f, "uniform"),
            RoutingProfile::Zipf { s } => write!(f, "zipf:{s}"),
            RoutingProfile::HotExpert { hot } => write!(f, "hot:{hot}"),
        }
    }
}

impl FromStr for RoutingProfile {
    type Err = String;

    /// Parses the `--routing` flag values: `uniform`, `zipf:<s>` or `hot:<k>`.
    fn from_str(text: &str) -> Result<Self, String> {
        if text == "uniform" {
            return Ok(RoutingProfile::Uniform);
        }
        if let Some(s) = text.strip_prefix("zipf:") {
            return match s.parse::<f64>() {
                Ok(s) if s.is_finite() && s > 0.0 => Ok(RoutingProfile::Zipf { s }),
                _ => Err(format!(
                    "zipf exponent must be a positive number, got {s:?}"
                )),
            };
        }
        if let Some(k) = text.strip_prefix("hot:") {
            return match k.parse::<usize>() {
                Ok(hot) if hot >= 1 => Ok(RoutingProfile::HotExpert { hot }),
                _ => Err(format!("hot expert count must be >= 1, got {k:?}")),
            };
        }
        Err(format!(
            "unknown routing profile {text:?} (expected uniform, zipf:<s> or hot:<k>)"
        ))
    }
}

/// One sampled routing: how many dispatched rows land on each expert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingSample {
    /// Dispatched rows per expert (sums to the shape's dispatched row count).
    pub rows_per_expert: Vec<usize>,
}

impl RoutingSample {
    /// The exactly-balanced sample the expected-routing kernels assume.
    pub fn balanced(experts: usize, rows: usize) -> Self {
        let base = rows / experts;
        let extra = rows % experts;
        Self {
            rows_per_expert: (0..experts)
                .map(|e| base + usize::from(e < extra))
                .collect(),
        }
    }

    /// Total dispatched rows.
    pub fn total_rows(&self) -> usize {
        self.rows_per_expert.iter().sum()
    }

    /// Rows on the most-loaded expert.
    pub fn max_rows(&self) -> usize {
        self.rows_per_expert.iter().copied().max().unwrap_or(0)
    }

    /// Load imbalance: max over mean (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let n = self.rows_per_expert.len();
        if n == 0 || self.total_rows() == 0 {
            return 1.0;
        }
        self.max_rows() as f64 / (self.total_rows() as f64 / n as f64)
    }
}

/// A splitmix64 generator: deterministic, seedable, no dependencies (the
/// builtin-sampler approach of the repository's property tests).
struct SplitMix(u64);

impl SplitMix {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `0..n`.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Deterministic, seedable sampler of per-expert routing loads.
///
/// Every `(seed, sample index)` pair maps to exactly one [`RoutingSample`],
/// independent of call order and thread count — tuned winners built on
/// sampled routings are bit-identical across runs. (The Zipf profile's
/// weights go through `f64::powf`, so samples are bit-stable per platform
/// libm rather than across every platform; persistent tuning caches carry
/// the cluster and workload key, not the sample values, so a cross-platform
/// cache at worst re-simulates.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingSampler {
    profile: RoutingProfile,
    seed: u64,
}

impl RoutingSampler {
    /// Creates a sampler for one profile and seed.
    pub fn new(profile: RoutingProfile, seed: u64) -> Self {
        Self { profile, seed }
    }

    /// The sampler's profile.
    pub fn profile(&self) -> RoutingProfile {
        self.profile
    }

    /// The sampler's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws sample `index`: `rows` dispatched rows over `experts` experts.
    ///
    /// Expert popularity ranks are re-permuted per sample (so different
    /// samples have different hot experts), then each row picks an expert by
    /// weighted draw.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is zero.
    pub fn sample(&self, experts: usize, rows: usize, index: usize) -> RoutingSample {
        assert!(experts > 0, "expert count must be positive");
        let mut rng = SplitMix::new(
            self.seed
                .wrapping_add((index as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F)),
        );
        // Fisher–Yates permutation of popularity ranks over experts.
        let mut rank_of_expert: Vec<usize> = (0..experts).collect();
        for i in (1..experts).rev() {
            let j = rng.below(i + 1);
            rank_of_expert.swap(i, j);
        }
        let weights: Vec<f64> = rank_of_expert
            .iter()
            .map(|&r| self.profile.weight_of_rank(r))
            .collect();
        let mut cumulative = Vec::with_capacity(experts);
        let mut total = 0.0;
        for w in &weights {
            total += w;
            cumulative.push(total);
        }
        let mut rows_per_expert = vec![0usize; experts];
        for _ in 0..rows {
            let u = rng.next_f64() * total;
            let e = cumulative.partition_point(|&c| c <= u).min(experts - 1);
            rows_per_expert[e] += 1;
        }
        RoutingSample { rows_per_expert }
    }

    /// Draws the first `n` samples for one MoE shape.
    pub fn samples_for(&self, shape: &MoeShape, n: usize) -> Vec<RoutingSample> {
        (0..n)
            .map(|i| self.sample(shape.experts, dispatched_rows(shape), i))
            .collect()
    }
}

/// Dispatch tiles per Group-GEMM consumer block (the granularity the expected
/// routing builder [`ag_group_gemm_program`] uses too).
const DISPATCH_TILES_PER_BLOCK: usize = 8;

/// Builds the routed AG + Gather + GroupGEMM program for one sampled routing.
///
/// Unlike [`ag_group_gemm_program`], which assumes the expected uniform
/// routing, the consumer side is laid out from the sample through a
/// [`DynamicMapping`]: one entry per Group-GEMM block describing the
/// dispatched-row slice it computes and (in the mapping's rank slot) the
/// expert group it belongs to. A hot expert gets proportionally more — and,
/// beyond the block row target, proportionally *larger* — consumer blocks, so
/// skewed samples price to longer makespans than balanced ones.
///
/// The returned mapping covers both tile namespaces: tiles
/// `0..ag.num_tiles()` mirror the static AllGather mapping (token rows),
/// tiles after that are the dispatch tiles (row ranges offset by the token
/// count, so the two spaces never overlap; dispatch tiles signal on their own
/// channels after the AllGather channels).
///
/// # Errors
///
/// Returns an error if the dynamic mapping cannot be filled (which indicates
/// a builder bug, e.g. overlapping dispatch slices).
pub fn routed_ag_group_gemm_program(
    shape: &MoeShape,
    world: usize,
    cfg: &OverlapConfig,
    sample: &RoutingSample,
) -> tilelink::Result<(TileProgram, DynamicMapping)> {
    let _span = tilelink_probe::span("compile.build");
    let m = shape.tokens;
    let h = shape.hidden;
    let i_local = shape.intermediate / world;
    let ag = StaticMapping::new(m, cfg.comm_tile.m, world, cfg.channels_per_rank);
    let ag_tiles = ag.num_tiles();
    let ag_channels = ag.num_channels();

    // One consumer block per slice of at most `compute_tile.m * 8` dispatched
    // rows of one expert (mirroring the expected-routing builder's block
    // granularity).
    let rows_per_block_target = (cfg.compute_tile.m * DISPATCH_TILES_PER_BLOCK).max(1);
    let mut block_rows: Vec<Range<usize>> = Vec::new();
    let mut block_expert: Vec<usize> = Vec::new();
    let mut cursor = 0usize;
    for (expert, &rows_e) in sample.rows_per_expert.iter().enumerate() {
        if rows_e == 0 {
            continue;
        }
        let blocks_e = rows_e.div_ceil(rows_per_block_target);
        let per_block = rows_e.div_ceil(blocks_e);
        let expert_end = cursor + rows_e;
        while cursor < expert_end {
            let end = (cursor + per_block).min(expert_end);
            block_rows.push(cursor..end);
            block_expert.push(expert);
            cursor = end;
        }
    }
    let dispatch_tiles = block_rows.len();

    let dyn_map = DynamicMapping::new(
        ag_tiles + dispatch_tiles.max(1),
        ag_channels + cfg.channels_per_rank,
    );
    for t in 0..ag_tiles {
        dyn_map.fill(t, ag.rows_of(t)?, ag.rank_of(t)?, ag.channel_of(t)?)?;
    }
    for (d, rows) in block_rows.iter().enumerate() {
        // Dispatched-row space starts after the token rows.
        dyn_map.fill(
            ag_tiles + d,
            m + rows.start..m + rows.end,
            block_expert[d],
            ag_channels + d % cfg.channels_per_rank,
        )?;
    }

    let tile_bytes = cfg.comm_tile.m as f64 * h as f64 * BYTES_PER_ELEM;
    let mut program = TileProgram::new("moe_routed_ag_group_gemm", world);
    for rank in 0..world {
        for (i, tile) in ag.tiles_of_rank(rank).into_iter().enumerate() {
            program.add_block(
                BlockDesc::new(format!("ag/r{rank}/b{i}"), rank, BlockRole::Producer)
                    .op(TileOp::PushTile {
                        buffer: "gathered".into(),
                        bytes: tile_bytes,
                        tile,
                        target: PushTarget::Broadcast,
                    })
                    .op(TileOp::ProducerNotify {
                        tile,
                        scope: NotifyScope::Broadcast,
                    }),
            );
        }
        for d in 0..dispatch_tiles {
            // The block's row slice and expert group come back out of the
            // dynamic mapping — the tables are the single source of truth the
            // compiled program is laid out from.
            let rows = dyn_map.rows_of(ag_tiles + d)?;
            let expert = dyn_map.rank_of(ag_tiles + d)?;
            let rows_blk = rows.len();
            let mut block = BlockDesc::new(
                format!("ggemm/r{rank}/e{expert}/d{d}"),
                rank,
                BlockRole::Consumer,
            );
            // Tokens routed to one expert are scattered over the whole
            // gathered matrix, so blocks wait on a prefix spread of producer
            // tiles (the same arrival model as the expected-routing builder).
            let wait_hi = (ag_tiles * (d + 1) / dispatch_tiles).min(ag_tiles);
            for tile in (ag_tiles * d / dispatch_tiles)..wait_hi {
                block = block.op(TileOp::ConsumerWait { tile });
            }
            block = block
                .op(TileOp::LoadTile {
                    buffer: "gathered".into(),
                    bytes: rows_blk as f64 * h as f64 * BYTES_PER_ELEM,
                    tile: None,
                })
                .op(TileOp::Compute(ComputeKind::MatmulTile {
                    m: rows_blk,
                    n: i_local,
                    k: h,
                }))
                .op(TileOp::StoreTile {
                    buffer: "expert_out".into(),
                    bytes: rows_blk as f64 * i_local as f64 * BYTES_PER_ELEM,
                    tile: Some(ag_tiles + d),
                });
            program.add_block(block);
        }
    }
    Ok((program, dyn_map))
}

/// Builds the routed GroupGEMM + Scatter + TopK-Reduce + ReduceScatter
/// program for one sampled routing.
///
/// The second-half Group GEMM runs per expert, so its block sizes follow the
/// sample; each expert block publishes the share of the token tiles
/// proportional to its load, which delays the ReduceScatter behind hot
/// experts exactly the way a skewed scatter does.
pub fn routed_group_gemm_rs_program(
    shape: &MoeShape,
    world: usize,
    cfg: &OverlapConfig,
    sample: &RoutingSample,
) -> (TileProgram, StaticMapping) {
    let _span = tilelink_probe::span("compile.build");
    let m = shape.tokens;
    let h = shape.hidden;
    let i_local = shape.intermediate / world;
    let rows_total = sample.total_rows().max(1);
    let tile_m = cfg.compute_tile.m;
    let mapping = StaticMapping::new(m, tile_m, world, cfg.channels_per_rank);
    let num_tiles = mapping.num_tiles();
    let m_per_rank = m / world;
    let tiles_per_segment = (m_per_rank / tile_m).max(1);
    let tile_out_bytes = tile_m as f64 * h as f64 * BYTES_PER_ELEM;
    let mut program = TileProgram::new("moe_routed_group_gemm_rs", world);
    for rank in 0..world {
        // Per-expert Group GEMM, fused with the scatter + top-k reduce
        // epilogue; token tiles are apportioned to experts by cumulative load
        // so every tile is published exactly once.
        let mut cumulative = 0usize;
        for (expert, &rows_e) in sample.rows_per_expert.iter().enumerate() {
            if rows_e == 0 {
                continue;
            }
            let tile_lo = num_tiles * cumulative / rows_total;
            cumulative += rows_e;
            let tile_hi = num_tiles * cumulative / rows_total;
            let mut block = BlockDesc::new(
                format!("ggemm2/r{rank}/e{expert}"),
                rank,
                BlockRole::Consumer,
            )
            .op(TileOp::LoadTile {
                buffer: "expert_act".into(),
                bytes: rows_e as f64 * i_local as f64 * BYTES_PER_ELEM,
                tile: None,
            })
            .op(TileOp::Compute(ComputeKind::MatmulTile {
                m: rows_e,
                n: h,
                k: i_local,
            }))
            // top-k weighted combine of the expert rows into token rows
            .op(TileOp::Compute(ComputeKind::Elementwise {
                elems: rows_e * h,
            }));
            for tile in tile_lo..tile_hi {
                block = block
                    .op(TileOp::StoreTile {
                        buffer: "gemm_out".into(),
                        bytes: tile_out_bytes,
                        tile: Some(tile),
                    })
                    .op(TileOp::ProducerNotify {
                        tile,
                        scope: NotifyScope::Local,
                    });
            }
            program.add_block(block);
        }
        // Ring ReduceScatter, identical in structure to the expected-routing
        // builder (the collective itself is routing-independent; only *when*
        // its inputs become ready depends on the sample).
        let to_rank = (rank + world - 1) % world;
        for tid_m in 0..tiles_per_segment {
            let mut block =
                BlockDesc::new(format!("rs/r{rank}/t{tid_m}"), rank, BlockRole::Producer);
            for stage in 0..world {
                let seg = (rank + stage + 1) % world;
                let tile_global = seg * tiles_per_segment + tid_m;
                block = block
                    .op(TileOp::ConsumerWait { tile: tile_global })
                    .op(TileOp::LoadTile {
                        buffer: "gemm_out".into(),
                        bytes: tile_out_bytes,
                        tile: Some(tile_global),
                    });
                if stage != 0 {
                    block = block
                        .op(TileOp::PeerWait {
                            slot: tile_global,
                            expected: 1,
                        })
                        .op(TileOp::Compute(ComputeKind::Reduction {
                            elems: tile_m * h,
                        }));
                }
                if stage == world - 1 {
                    block = block.op(TileOp::StoreTile {
                        buffer: "out".into(),
                        bytes: tile_out_bytes,
                        tile: None,
                    });
                } else {
                    block = block
                        .op(TileOp::PushTile {
                            buffer: "partial".into(),
                            bytes: tile_out_bytes,
                            tile: tile_global,
                            target: PushTarget::Rank(to_rank),
                        })
                        .op(TileOp::PeerNotify {
                            slot: tile_global,
                            dst_rank: to_rank,
                        });
                }
            }
            program.add_block(block);
        }
    }
    (program, mapping)
}

/// Simulates the routed AG + Gather + GroupGEMM kernel for one sampled
/// routing, priced by an explicit cost provider.
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_routed_ag_group_gemm_with(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
    sample: &RoutingSample,
) -> tilelink::Result<OverlapReport> {
    let kernel = compile_routed_ag_group_gemm(shape, cfg, cost, sample)?;
    simulate_report_with(&kernel, cost)
}

/// [`timed_routed_ag_group_gemm_with`] with an abort cutoff.
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_routed_ag_group_gemm_bounded_with(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
    sample: &RoutingSample,
    cutoff: f64,
) -> tilelink::Result<BoundedReport> {
    let kernel = compile_routed_ag_group_gemm(shape, cfg, cost, sample)?;
    simulate_report_bounded_with(&kernel, cost, cutoff)
}

fn compile_routed_ag_group_gemm(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
    sample: &RoutingSample,
) -> tilelink::Result<tilelink::CompiledKernel> {
    let world = cost.cluster().world_size();
    Compiler::new(*cfg, cost.cluster().gpu.clone())
        .with_cost(cost.clone())
        .compile_cached(
            CacheSite::new(
                "moe.routed_ag_group_gemm",
                routed_detail(shape, world, sample),
            ),
            || routed_ag_group_gemm_program(shape, world, cfg, sample),
        )
}

/// Simulates the routed GroupGEMM + Scatter + TopK-Reduce + RS kernel for one
/// sampled routing, priced by an explicit cost provider.
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_routed_group_gemm_rs_with(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
    sample: &RoutingSample,
) -> tilelink::Result<OverlapReport> {
    let kernel = compile_routed_group_gemm_rs(shape, cfg, cost, sample)?;
    simulate_report_with(&kernel, cost)
}

/// [`timed_routed_group_gemm_rs_with`] with an abort cutoff.
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_routed_group_gemm_rs_bounded_with(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
    sample: &RoutingSample,
    cutoff: f64,
) -> tilelink::Result<BoundedReport> {
    let kernel = compile_routed_group_gemm_rs(shape, cfg, cost, sample)?;
    simulate_report_bounded_with(&kernel, cost, cutoff)
}

fn compile_routed_group_gemm_rs(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
    sample: &RoutingSample,
) -> tilelink::Result<tilelink::CompiledKernel> {
    let world = cost.cluster().world_size();
    let mut cfg = *cfg;
    cfg.comm_mapping = CommMapping::Hybrid { sms: 20 };
    Compiler::new(cfg, cost.cluster().gpu.clone())
        .with_cost(cost.clone())
        .compile_cached(
            CacheSite::new(
                "moe.routed_group_gemm_rs",
                routed_detail(shape, world, sample),
            ),
            || Ok(routed_group_gemm_rs_program(shape, world, &cfg, sample)),
        )
}

/// Simulates the full routed MoE layer (both halves plus the activation) for
/// one sampled routing, priced by an explicit cost provider.
///
/// # Errors
///
/// Returns an error if either half fails.
pub fn timed_routed_full_moe_with(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
    sample: &RoutingSample,
) -> tilelink::Result<OverlapReport> {
    let first = timed_routed_ag_group_gemm_with(shape, cfg, cost, sample)?;
    let second = timed_routed_group_gemm_rs_with(shape, cfg, cost, sample)?;
    let act = activation_seconds_with(shape, &**cost);
    Ok(OverlapReport::new(
        first.total_s + second.total_s + act,
        first.comm_only_s + second.comm_only_s,
        first.comp_only_s + second.comp_only_s + act,
    ))
}

/// [`timed_routed_full_moe_with`] with an abort cutoff on the layer total.
///
/// The cutoff is threaded through both halves as a *residual budget*: the
/// first half aborts once its makespan alone makes the layer total exceed
/// `cutoff` (using the admissible lower bound of the second half for the
/// unsimulated remainder), the second once the running total does. An
/// `Exceeded` clock is therefore a certified lower bound on the full layer
/// total; with an infinite cutoff the report is bit-identical to
/// [`timed_routed_full_moe_with`].
///
/// # Errors
///
/// Returns an error if either half fails to compile or simulate.
pub fn timed_routed_full_moe_bounded_with(
    shape: &MoeShape,
    cfg: &OverlapConfig,
    cost: &SharedCost,
    sample: &RoutingSample,
    cutoff: f64,
) -> tilelink::Result<BoundedReport> {
    let act = activation_seconds_with(shape, &**cost);
    let second_lb = crate::bounds::moe_second_bound(shape, cfg, &**cost);
    let first = match timed_routed_ag_group_gemm_bounded_with(
        shape,
        cfg,
        cost,
        sample,
        cutoff - act - second_lb,
    )? {
        BoundedReport::Report(report) => report,
        BoundedReport::Exceeded(clock) => {
            return Ok(BoundedReport::Exceeded(clock + second_lb + act))
        }
    };
    // The first half is priced exactly; if even the second half's admissible
    // bound keeps the sample past the cutoff, skip its compile and simulation.
    if first.total_s + second_lb + act > cutoff {
        return Ok(BoundedReport::Exceeded(first.total_s + second_lb + act));
    }
    let second = match timed_routed_group_gemm_rs_bounded_with(
        shape,
        cfg,
        cost,
        sample,
        cutoff - act - first.total_s,
    )? {
        BoundedReport::Report(report) => report,
        BoundedReport::Exceeded(clock) => {
            return Ok(BoundedReport::Exceeded(first.total_s + clock + act))
        }
    };
    Ok(BoundedReport::Report(OverlapReport::new(
        first.total_s + second.total_s + act,
        first.comm_only_s + second.comm_only_s,
        first.comp_only_s + second.comp_only_s + act,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilelink_compute::group_gemm::group_gemm;

    fn reference(
        tokens: &Tensor,
        logits: &Tensor,
        weights: &Tensor,
        top_k: usize,
    ) -> (Tensor, Routing) {
        let routing = topk_routing(logits, top_k);
        let dispatch = Dispatch::new(&routing);
        let gathered = dispatch.gather(tokens);
        (
            group_gemm(&gathered, &dispatch.expert_offsets, weights),
            routing,
        )
    }

    #[test]
    fn functional_ag_moe_matches_reference() {
        let world = 2;
        let (m, h, experts, i_local, top_k) = (16, 6, 4, 5, 2);
        let tokens = Tensor::random(&[m, h], 1);
        let logits = Tensor::random(&[m, experts], 2);
        let weights: Vec<Tensor> = (0..world)
            .map(|r| Tensor::random(&[experts, h, i_local], 50 + r as u64))
            .collect();
        let results = ag_moe_functional(world, &tokens, &logits, &weights, top_k, 4, 4);
        for (rank, result) in results.iter().enumerate() {
            let (expected, routing) = reference(&tokens, &logits, &weights[rank], top_k);
            assert_eq!(result.routing, routing);
            assert!(
                result.expert_out.allclose(&expected, 1e-3),
                "rank {rank} diff {}",
                result.expert_out.max_abs_diff(&expected)
            );
        }
    }

    #[test]
    fn functional_ag_moe_with_uneven_dispatch_tiles() {
        // dispatch tile size that does not divide the dispatched row count
        let world = 2;
        let tokens = Tensor::random(&[8, 4], 7);
        let logits = Tensor::random(&[8, 3], 8);
        let weights: Vec<Tensor> = (0..world)
            .map(|r| Tensor::random(&[3, 4, 3], 60 + r as u64))
            .collect();
        let results = ag_moe_functional(world, &tokens, &logits, &weights, 2, 2, 3);
        let (expected, _) = reference(&tokens, &logits, &weights[0], 2);
        assert!(results[0].expert_out.allclose(&expected, 1e-3));
    }

    #[test]
    fn timed_moe_first_half_overlaps() {
        let shape = crate::shapes::moe_shapes()[0].clone();
        let cluster = ClusterSpec::h800_node(8);
        let report = timed_ag_group_gemm(&shape, &cluster, &moe_config()).unwrap();
        assert!(report.total_s < report.comm_only_s + report.comp_only_s);
        assert!(report.total_ms() > 0.01 && report.total_ms() < 20.0);
    }

    #[test]
    fn timed_moe_second_half_overlaps() {
        let shape = crate::shapes::moe_shapes()[0].clone();
        let cluster = ClusterSpec::h800_node(8);
        let report = timed_group_gemm_rs(&shape, &cluster, &moe_config()).unwrap();
        assert!(report.total_s < report.comm_only_s + report.comp_only_s);
    }

    #[test]
    fn timed_full_moe_scales_with_topk() {
        let shapes = crate::shapes::moe_shapes();
        let cluster = ClusterSpec::h800_node(8);
        let k2 = timed_full_moe(&shapes[1], &cluster).unwrap(); // MoE-2: topk 2
        let k5 = timed_full_moe(&shapes[2], &cluster).unwrap(); // MoE-3: topk 5
        assert!(k5.total_s > k2.total_s);
    }

    #[test]
    fn routing_profile_parse_round_trips() {
        for text in ["uniform", "zipf:1.2", "zipf:0.5", "hot:4", "hot:1"] {
            let profile: RoutingProfile = text.parse().unwrap();
            assert_eq!(profile.to_string(), text);
        }
        for bad in ["zipf", "zipf:-1", "zipf:abc", "hot:0", "hot:x", "skewed"] {
            assert!(bad.parse::<RoutingProfile>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn sampler_is_deterministic_and_conserves_rows() {
        let shape = crate::shapes::moe_shapes()[2].clone(); // 32 experts, topk 5
        let rows = dispatched_rows(&shape);
        for profile in [
            RoutingProfile::Uniform,
            RoutingProfile::Zipf { s: 1.2 },
            RoutingProfile::HotExpert { hot: 2 },
        ] {
            let a = RoutingSampler::new(profile, 42).samples_for(&shape, 4);
            let b = RoutingSampler::new(profile, 42).samples_for(&shape, 4);
            assert_eq!(a, b, "{profile}: same seed must be bit-identical");
            for s in &a {
                assert_eq!(s.total_rows(), rows, "{profile}: rows must be conserved");
                assert_eq!(s.rows_per_expert.len(), shape.experts);
            }
            // Different seeds and different indices draw different routings.
            let c = RoutingSampler::new(profile, 43).sample(shape.experts, rows, 0);
            assert_ne!(a[0], c, "{profile}: different seed");
            assert_ne!(a[0], a[1], "{profile}: different index");
        }
    }

    #[test]
    fn skewed_profiles_are_more_imbalanced_than_uniform() {
        let shape = crate::shapes::moe_shapes()[2].clone();
        let mean_imbalance = |profile| {
            let sampler = RoutingSampler::new(profile, 7);
            let samples = sampler.samples_for(&shape, 8);
            samples.iter().map(RoutingSample::imbalance).sum::<f64>() / 8.0
        };
        let uniform = mean_imbalance(RoutingProfile::Uniform);
        let zipf = mean_imbalance(RoutingProfile::Zipf { s: 1.2 });
        let hot = mean_imbalance(RoutingProfile::HotExpert { hot: 2 });
        assert!(uniform < zipf, "uniform {uniform} vs zipf {zipf}");
        assert!(uniform < hot, "uniform {uniform} vs hot {hot}");
        // Sampled-uniform still hovers near balance.
        assert!(uniform < 1.5, "uniform imbalance {uniform}");
        assert!(zipf > 2.0, "zipf:1.2 imbalance {zipf}");
    }

    #[test]
    fn routed_kernels_price_skew_higher_than_balance() {
        let shape = crate::shapes::moe_shapes()[0].clone();
        let cost = analytic_cost(&ClusterSpec::h800_node(8));
        let cfg = moe_config();
        let rows = dispatched_rows(&shape);
        let balanced = RoutingSample::balanced(shape.experts, rows);
        // Everything on one expert: the worst possible skew.
        let mut all_on_one = vec![0usize; shape.experts];
        all_on_one[3] = rows;
        let skewed = RoutingSample {
            rows_per_expert: all_on_one,
        };
        let flat = timed_routed_full_moe_with(&shape, &cfg, &cost, &balanced).unwrap();
        let hot = timed_routed_full_moe_with(&shape, &cfg, &cost, &skewed).unwrap();
        assert!(
            hot.total_s > flat.total_s,
            "skewed {} ms <= balanced {} ms",
            hot.total_ms(),
            flat.total_ms()
        );
        // Both are real overlapped kernels in a sane range.
        assert!(flat.total_s < flat.comm_only_s + flat.comp_only_s);
        assert!(flat.total_ms() > 0.01 && hot.total_ms() < 50.0);
    }

    #[test]
    fn routed_kernel_is_deterministic_for_a_fixed_sample() {
        let shape = crate::shapes::moe_shapes()[0].clone();
        let cost = analytic_cost(&ClusterSpec::h800_node(8));
        let sample = RoutingSampler::new(RoutingProfile::Zipf { s: 1.2 }, 42).sample(
            shape.experts,
            dispatched_rows(&shape),
            0,
        );
        let a = timed_routed_full_moe_with(&shape, &moe_config(), &cost, &sample).unwrap();
        let b = timed_routed_full_moe_with(&shape, &moe_config(), &cost, &sample).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn routed_first_half_fills_a_complete_dynamic_mapping() {
        let shape = crate::shapes::moe_shapes()[0].clone();
        let sample = RoutingSample::balanced(shape.experts, dispatched_rows(&shape));
        let (program, dyn_map) =
            routed_ag_group_gemm_program(&shape, 8, &moe_config(), &sample).unwrap();
        assert!(dyn_map.is_complete());
        assert!(program.blocks.len() > 8);
        // AG tiles mirror the static mapping; dispatch tiles live beyond the
        // token rows and carry the expert id in the rank slot.
        let ag = StaticMapping::new(shape.tokens, 128, 8, 4);
        let ag_tiles = ag.num_tiles();
        assert_eq!(dyn_map.rows_of(0).unwrap(), ag.rows_of(0).unwrap());
        let first_dispatch = dyn_map.rows_of(ag_tiles).unwrap();
        assert!(first_dispatch.start >= shape.tokens);
        assert!(dyn_map.rank_of(ag_tiles).unwrap() < shape.experts);
    }
}
