//! The baselines of the paper's evaluation, as analytic cost models on the
//! same simulated hardware.
//!
//! Every baseline uses the *same* cost ingredients as the TileLink timed path
//! (the `tilelink-sim` cost provider: tensor-core roofline, tile efficiency,
//! wave quantisation, link bandwidth, kernel-launch and host-sync latencies),
//! so the comparisons in the benchmark harness measure the overlap *strategy*,
//! not a different hardware model. Each baseline comes in two forms: the
//! historical `foo(shape, cluster)` signature priced by the default analytic
//! [`CostModel`], and a `foo_with(shape, cost)` variant priced by any
//! [`CostProvider`] (e.g. the calibrated model), so a `--cost-model` switch
//! reprices baselines and TileLink kernels consistently. The strategies are:
//!
//! * **cuBLAS + NCCL (non-overlap)** — collective, then compute, serially;
//! * **Async-TP (decomposition)** — the operators are split into `world`
//!   chunks pipelined on two streams with host-driven synchronisation between
//!   chunks (Section 2.2's decomposition approach);
//! * **FLUX (fusion)** — a tightly-coupled fused kernel: excellent for
//!   AllGather + GEMM, sub-optimal for GEMM + ReduceScatter where the coupled
//!   tile size compromises the GEMM (Section 7.2);
//! * **CUTLASS + NCCL / vLLM-Op** — the MoE-specific baselines of Figure 9
//!   (unfused vs fused gather/scatter, no overlap);
//! * **Torch / RingAttention** — the attention baselines of Figure 10
//!   (materialised-score attention, and ring-scheduled blockwise attention).

use tilelink::OverlapReport;
use tilelink_sim::{ClusterSpec, CostModel, CostProvider};

use crate::mlp::BYTES_PER_ELEM;
use crate::{AttnShape, MlpShape, MoeShape};

/// Seconds for a ring AllGather / ReduceScatter where every rank ends up
/// sending `(world-1)/world` of `total_bytes` through its link, priced step
/// by step so a calibrated provider sees the real per-message chunk size.
///
/// Hops are priced through the shared
/// [`tilelink_collectives::timed::ring_collective_seconds_with`] estimator:
/// every pipeline step drains at the *slowest* hop of the ring, so on
/// multi-node rings the baselines pay the InfiniBand node-crossing hop (and,
/// via [`CostProvider::link_seconds`], the per-message α floor) exactly like
/// the collectives crate's own closed form.
fn ring_collective_seconds(cost: &dyn CostProvider, total_bytes: f64) -> f64 {
    let cluster = cost.cluster();
    let world = cluster.world_size() as f64;
    if world <= 1.0 {
        return 0.0;
    }
    let per_rank = total_bytes / world;
    tilelink_collectives::timed::ring_collective_seconds_with(cost, per_rank)
        + cluster.gpu.kernel_launch_s()
}

fn gathered_bytes(shape: &MlpShape) -> f64 {
    shape.tokens as f64 * shape.hidden as f64 * BYTES_PER_ELEM
}

fn analytic(cluster: &ClusterSpec) -> CostModel {
    CostModel::new(cluster.clone())
}

// ---------------------------------------------------------------------------
// MLP: cuBLAS+NCCL, Async-TP, FLUX
// ---------------------------------------------------------------------------

/// cuBLAS + NCCL AllGather + GEMM: collective then GEMM, no overlap.
pub fn non_overlap_ag_gemm(shape: &MlpShape, cluster: &ClusterSpec) -> OverlapReport {
    non_overlap_ag_gemm_with(shape, &analytic(cluster))
}

/// [`non_overlap_ag_gemm`] priced by an explicit cost provider.
pub fn non_overlap_ag_gemm_with(shape: &MlpShape, cost: &dyn CostProvider) -> OverlapReport {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let comm = ring_collective_seconds(cost, gathered_bytes(shape));
    let n_local = 2 * shape.intermediate / world;
    let comp = cost.gemm_seconds(
        shape.tokens,
        n_local,
        shape.hidden,
        128,
        256,
        cluster.gpu.sm_count,
    ) + cluster.gpu.kernel_launch_s();
    OverlapReport::new(comm + comp, comm, comp)
}

/// cuBLAS + NCCL GEMM + ReduceScatter: GEMM then collective, no overlap.
pub fn non_overlap_gemm_rs(shape: &MlpShape, cluster: &ClusterSpec) -> OverlapReport {
    non_overlap_gemm_rs_with(shape, &analytic(cluster))
}

/// [`non_overlap_gemm_rs`] priced by an explicit cost provider.
pub fn non_overlap_gemm_rs_with(shape: &MlpShape, cost: &dyn CostProvider) -> OverlapReport {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let comm = ring_collective_seconds(cost, gathered_bytes(shape));
    let k_local = shape.intermediate / world;
    let comp = cost.gemm_seconds(
        shape.tokens,
        shape.hidden,
        k_local,
        128,
        256,
        cluster.gpu.sm_count,
    ) + cluster.gpu.kernel_launch_s();
    OverlapReport::new(comm + comp, comm, comp)
}

/// cuBLAS + NCCL full MLP (both halves plus the activation).
pub fn non_overlap_full_mlp(shape: &MlpShape, cluster: &ClusterSpec) -> OverlapReport {
    non_overlap_full_mlp_with(shape, &analytic(cluster))
}

/// [`non_overlap_full_mlp`] priced by an explicit cost provider.
pub fn non_overlap_full_mlp_with(shape: &MlpShape, cost: &dyn CostProvider) -> OverlapReport {
    let a = non_overlap_ag_gemm_with(shape, cost);
    let b = non_overlap_gemm_rs_with(shape, cost);
    let act = crate::mlp::activation_seconds_with(shape, cost);
    OverlapReport::new(
        a.total_s + b.total_s + act,
        a.comm_only_s + b.comm_only_s,
        a.comp_only_s + b.comp_only_s + act,
    )
}

/// Async-TP style decomposition: the M dimension is split into `world` chunks,
/// each chunk's copy and GEMM run on separate streams with host
/// synchronisation between them.
pub fn decompose_ag_gemm(shape: &MlpShape, cluster: &ClusterSpec) -> OverlapReport {
    decompose_ag_gemm_with(shape, &analytic(cluster))
}

/// [`decompose_ag_gemm`] priced by an explicit cost provider.
pub fn decompose_ag_gemm_with(shape: &MlpShape, cost: &dyn CostProvider) -> OverlapReport {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let chunks = world.max(2);
    let n_local = 2 * shape.intermediate / world;
    let chunk_rows = shape.tokens / chunks;
    // Each chunk's copy circulates around the same ring as the collective, so
    // it drains at the slowest (on multi-node rings: InfiniBand) hop.
    let chunk_comm =
        tilelink_collectives::timed::ring_hop_seconds(cost, gathered_bytes(shape) / chunks as f64);
    // The decomposed GEMM loses efficiency from wave quantisation on the small chunk.
    let chunk_comp = cost.gemm_seconds(
        chunk_rows,
        n_local,
        shape.hidden,
        128,
        256,
        cluster.gpu.sm_count,
    );
    // Per chunk: a copy launch, a GEMM launch and two host synchronisations to
    // order the streams (the host intervention the paper blames for Async-TP's
    // overhead).
    let per_chunk_overhead = 2.0 * cluster.gpu.kernel_launch_s() + 2.0 * cluster.gpu.host_sync_s();
    let steady = (chunks as f64) * chunk_comm.max(chunk_comp);
    let total = chunk_comm + steady + chunks as f64 * per_chunk_overhead;
    let comm = chunks as f64 * chunk_comm;
    let comp = chunks as f64 * chunk_comp;
    OverlapReport::new(total, comm, comp)
}

/// Async-TP style decomposition of GEMM + ReduceScatter.
pub fn decompose_gemm_rs(shape: &MlpShape, cluster: &ClusterSpec) -> OverlapReport {
    decompose_gemm_rs_with(shape, &analytic(cluster))
}

/// [`decompose_gemm_rs`] priced by an explicit cost provider.
pub fn decompose_gemm_rs_with(shape: &MlpShape, cost: &dyn CostProvider) -> OverlapReport {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let chunks = world.max(2);
    let k_local = shape.intermediate / world;
    let chunk_rows = shape.tokens / chunks;
    let chunk_comm =
        tilelink_collectives::timed::ring_hop_seconds(cost, gathered_bytes(shape) / chunks as f64);
    let chunk_comp = cost.gemm_seconds(
        chunk_rows,
        shape.hidden,
        k_local,
        128,
        256,
        cluster.gpu.sm_count,
    );
    let per_chunk_overhead = 2.0 * cluster.gpu.kernel_launch_s() + 2.0 * cluster.gpu.host_sync_s();
    let steady = (chunks as f64) * chunk_comm.max(chunk_comp);
    let total = chunk_comp + steady + chunks as f64 * per_chunk_overhead;
    OverlapReport::new(
        total,
        chunks as f64 * chunk_comm,
        chunks as f64 * chunk_comp,
    )
}

/// FLUX-style fused AllGather + GEMM: the communication is almost entirely
/// hidden beneath a highly-tuned GEMM (the best result in Figure 8's first
/// panel).
pub fn flux_ag_gemm(shape: &MlpShape, cluster: &ClusterSpec) -> OverlapReport {
    flux_ag_gemm_with(shape, &analytic(cluster))
}

/// [`flux_ag_gemm`] priced by an explicit cost provider.
pub fn flux_ag_gemm_with(shape: &MlpShape, cost: &dyn CostProvider) -> OverlapReport {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let comm = ring_collective_seconds(cost, gathered_bytes(shape));
    let n_local = 2 * shape.intermediate / world;
    let comp = cost.gemm_seconds(
        shape.tokens,
        n_local,
        shape.hidden,
        128,
        256,
        cluster.gpu.sm_count,
    );
    // A hand-tuned fused kernel: tiny exposed communication prologue plus the GEMM.
    let exposed = comm / world as f64;
    OverlapReport::new(
        comp.max(comm) + exposed + cluster.gpu.kernel_launch_s(),
        comm,
        comp,
    )
}

/// FLUX-style fused GEMM + ReduceScatter: the tightly-coupled tile choice
/// penalises the GEMM and leaves part of the scatter exposed (the paper finds
/// it slower than the non-overlapped baseline here).
pub fn flux_gemm_rs(shape: &MlpShape, cluster: &ClusterSpec) -> OverlapReport {
    flux_gemm_rs_with(shape, &analytic(cluster))
}

/// [`flux_gemm_rs`] priced by an explicit cost provider.
pub fn flux_gemm_rs_with(shape: &MlpShape, cost: &dyn CostProvider) -> OverlapReport {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let comm = ring_collective_seconds(cost, gathered_bytes(shape));
    let k_local = shape.intermediate / world;
    // Coupled tile: the GEMM must adopt the communication tile (128x128) and
    // runs its reduction epilogue on the same CTAs, costing efficiency.
    let comp = cost.gemm_seconds(
        shape.tokens,
        shape.hidden,
        k_local,
        128,
        128,
        cluster.gpu.sm_count,
    ) * 1.15;
    let exposed = 0.35 * comm;
    OverlapReport::new(
        comp.max(comm) + exposed + cluster.gpu.kernel_launch_s(),
        comm,
        comp,
    )
}

/// FLUX-style full MLP.
pub fn flux_full_mlp(shape: &MlpShape, cluster: &ClusterSpec) -> OverlapReport {
    flux_full_mlp_with(shape, &analytic(cluster))
}

/// [`flux_full_mlp`] priced by an explicit cost provider.
pub fn flux_full_mlp_with(shape: &MlpShape, cost: &dyn CostProvider) -> OverlapReport {
    let a = flux_ag_gemm_with(shape, cost);
    let b = flux_gemm_rs_with(shape, cost);
    let act = crate::mlp::activation_seconds_with(shape, cost);
    OverlapReport::new(
        a.total_s + b.total_s + act,
        a.comm_only_s + b.comm_only_s,
        a.comp_only_s + b.comp_only_s + act,
    )
}

/// Async-TP full MLP.
pub fn decompose_full_mlp(shape: &MlpShape, cluster: &ClusterSpec) -> OverlapReport {
    decompose_full_mlp_with(shape, &analytic(cluster))
}

/// [`decompose_full_mlp`] priced by an explicit cost provider.
pub fn decompose_full_mlp_with(shape: &MlpShape, cost: &dyn CostProvider) -> OverlapReport {
    let a = decompose_ag_gemm_with(shape, cost);
    let b = decompose_gemm_rs_with(shape, cost);
    let act = crate::mlp::activation_seconds_with(shape, cost);
    OverlapReport::new(
        a.total_s + b.total_s + act,
        a.comm_only_s + b.comm_only_s,
        a.comp_only_s + b.comp_only_s + act,
    )
}

// ---------------------------------------------------------------------------
// MoE: cuBLAS+NCCL, CUTLASS+NCCL, vLLM-Op
// ---------------------------------------------------------------------------

fn moe_gathered_bytes(shape: &MoeShape) -> f64 {
    shape.tokens as f64 * shape.hidden as f64 * BYTES_PER_ELEM
}

fn dispatched_rows(shape: &MoeShape) -> usize {
    shape.tokens * shape.top_k
}

/// Time of an *unfused* gather (or scatter) that materialises the dispatched
/// token matrix in HBM.
fn unfused_shuffle_seconds(shape: &MoeShape, cost: &dyn CostProvider, width: usize) -> f64 {
    let bytes = (shape.tokens + 2 * dispatched_rows(shape)) as f64 * width as f64 * BYTES_PER_ELEM;
    cost.hbm_seconds(bytes) + cost.cluster().gpu.kernel_launch_s()
}

/// First MoE half with cuBLAS + NCCL: AllGather, unfused gather, one GEMM per
/// expert (each paying a launch and running far below peak).
pub fn cublas_nccl_moe_first(shape: &MoeShape, cluster: &ClusterSpec) -> OverlapReport {
    cublas_nccl_moe_first_with(shape, &analytic(cluster))
}

/// [`cublas_nccl_moe_first`] priced by an explicit cost provider.
pub fn cublas_nccl_moe_first_with(shape: &MoeShape, cost: &dyn CostProvider) -> OverlapReport {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let comm = ring_collective_seconds(cost, moe_gathered_bytes(shape));
    let gather = unfused_shuffle_seconds(shape, cost, shape.hidden);
    let rows_per_expert = (dispatched_rows(shape) / shape.experts).max(1);
    let i_local = shape.intermediate / world;
    let per_expert = cost.gemm_seconds(
        rows_per_expert,
        i_local,
        shape.hidden,
        64,
        64,
        cluster.gpu.sm_count,
    ) + cluster.gpu.kernel_launch_s();
    let comp = gather + shape.experts as f64 * per_expert;
    OverlapReport::new(comm + comp, comm, comp)
}

/// First MoE half with CUTLASS + NCCL: unfused gather, one grouped GEMM.
pub fn cutlass_nccl_moe_first(shape: &MoeShape, cluster: &ClusterSpec) -> OverlapReport {
    cutlass_nccl_moe_first_with(shape, &analytic(cluster))
}

/// [`cutlass_nccl_moe_first`] priced by an explicit cost provider.
pub fn cutlass_nccl_moe_first_with(shape: &MoeShape, cost: &dyn CostProvider) -> OverlapReport {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let comm = ring_collective_seconds(cost, moe_gathered_bytes(shape));
    let gather = unfused_shuffle_seconds(shape, cost, shape.hidden);
    let i_local = shape.intermediate / world;
    let group_gemm = cost.gemm_seconds(
        dispatched_rows(shape),
        i_local,
        shape.hidden,
        128,
        128,
        cluster.gpu.sm_count,
    ) + cluster.gpu.kernel_launch_s();
    let comp = gather + group_gemm;
    OverlapReport::new(comm + comp, comm, comp)
}

/// First MoE half with vLLM's fused gather + grouped GEMM (no overlap with the
/// AllGather).
pub fn vllm_moe_first(shape: &MoeShape, cluster: &ClusterSpec) -> OverlapReport {
    vllm_moe_first_with(shape, &analytic(cluster))
}

/// [`vllm_moe_first`] priced by an explicit cost provider.
pub fn vllm_moe_first_with(shape: &MoeShape, cost: &dyn CostProvider) -> OverlapReport {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let comm = ring_collective_seconds(cost, moe_gathered_bytes(shape));
    let i_local = shape.intermediate / world;
    let fused = cost.gemm_seconds(
        dispatched_rows(shape),
        i_local,
        shape.hidden,
        128,
        128,
        cluster.gpu.sm_count,
    ) + cluster.gpu.kernel_launch_s();
    OverlapReport::new(comm + fused, comm, fused)
}

/// Second MoE half (GroupGEMM + Scatter + TopK-Reduce + RS) under the three
/// baselines; `fused_epilogue` distinguishes vLLM (true) from cuBLAS/CUTLASS
/// (false), and `per_expert_launches` distinguishes cuBLAS (true) from the rest.
fn moe_second_baseline(
    shape: &MoeShape,
    cost: &dyn CostProvider,
    fused_epilogue: bool,
    per_expert_launches: bool,
) -> OverlapReport {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let i_local = shape.intermediate / world;
    let comm = ring_collective_seconds(cost, moe_gathered_bytes(shape));
    let gemm_rows = dispatched_rows(shape);
    let mut comp = if per_expert_launches {
        let rows_per_expert = (gemm_rows / shape.experts).max(1);
        shape.experts as f64
            * (cost.gemm_seconds(
                rows_per_expert,
                shape.hidden,
                i_local,
                64,
                64,
                cluster.gpu.sm_count,
            ) + cluster.gpu.kernel_launch_s())
    } else {
        cost.gemm_seconds(
            gemm_rows,
            shape.hidden,
            i_local,
            128,
            128,
            cluster.gpu.sm_count,
        ) + cluster.gpu.kernel_launch_s()
    };
    if !fused_epilogue {
        comp += unfused_shuffle_seconds(shape, cost, shape.hidden);
    }
    // top-k reduce epilogue (memory bound)
    comp += cost
        .hbm_seconds(dispatched_rows(shape) as f64 * shape.hidden as f64 * BYTES_PER_ELEM * 3.0);
    OverlapReport::new(comm + comp, comm, comp)
}

/// Second MoE half with cuBLAS + NCCL.
pub fn cublas_nccl_moe_second(shape: &MoeShape, cluster: &ClusterSpec) -> OverlapReport {
    cublas_nccl_moe_second_with(shape, &analytic(cluster))
}

/// [`cublas_nccl_moe_second`] priced by an explicit cost provider.
pub fn cublas_nccl_moe_second_with(shape: &MoeShape, cost: &dyn CostProvider) -> OverlapReport {
    moe_second_baseline(shape, cost, false, true)
}

/// Second MoE half with CUTLASS + NCCL.
pub fn cutlass_nccl_moe_second(shape: &MoeShape, cluster: &ClusterSpec) -> OverlapReport {
    cutlass_nccl_moe_second_with(shape, &analytic(cluster))
}

/// [`cutlass_nccl_moe_second`] priced by an explicit cost provider.
pub fn cutlass_nccl_moe_second_with(shape: &MoeShape, cost: &dyn CostProvider) -> OverlapReport {
    moe_second_baseline(shape, cost, false, false)
}

/// Second MoE half with vLLM's fused scatter kernels.
pub fn vllm_moe_second(shape: &MoeShape, cluster: &ClusterSpec) -> OverlapReport {
    vllm_moe_second_with(shape, &analytic(cluster))
}

/// [`vllm_moe_second`] priced by an explicit cost provider.
pub fn vllm_moe_second_with(shape: &MoeShape, cost: &dyn CostProvider) -> OverlapReport {
    moe_second_baseline(shape, cost, true, false)
}

fn combine_moe(
    first: OverlapReport,
    second: OverlapReport,
    shape: &MoeShape,
    cost: &dyn CostProvider,
) -> OverlapReport {
    let act = crate::moe::activation_seconds_with(shape, cost);
    OverlapReport::new(
        first.total_s + second.total_s + act,
        first.comm_only_s + second.comm_only_s,
        first.comp_only_s + second.comp_only_s + act,
    )
}

/// Full MoE layer with cuBLAS + NCCL.
pub fn cublas_nccl_full_moe(shape: &MoeShape, cluster: &ClusterSpec) -> OverlapReport {
    cublas_nccl_full_moe_with(shape, &analytic(cluster))
}

/// [`cublas_nccl_full_moe`] priced by an explicit cost provider.
pub fn cublas_nccl_full_moe_with(shape: &MoeShape, cost: &dyn CostProvider) -> OverlapReport {
    combine_moe(
        cublas_nccl_moe_first_with(shape, cost),
        cublas_nccl_moe_second_with(shape, cost),
        shape,
        cost,
    )
}

/// Full MoE layer with CUTLASS + NCCL.
pub fn cutlass_nccl_full_moe(shape: &MoeShape, cluster: &ClusterSpec) -> OverlapReport {
    cutlass_nccl_full_moe_with(shape, &analytic(cluster))
}

/// [`cutlass_nccl_full_moe`] priced by an explicit cost provider.
pub fn cutlass_nccl_full_moe_with(shape: &MoeShape, cost: &dyn CostProvider) -> OverlapReport {
    combine_moe(
        cutlass_nccl_moe_first_with(shape, cost),
        cutlass_nccl_moe_second_with(shape, cost),
        shape,
        cost,
    )
}

/// Full MoE layer with vLLM's fused operators.
pub fn vllm_full_moe(shape: &MoeShape, cluster: &ClusterSpec) -> OverlapReport {
    vllm_full_moe_with(shape, &analytic(cluster))
}

/// [`vllm_full_moe`] priced by an explicit cost provider.
pub fn vllm_full_moe_with(shape: &MoeShape, cost: &dyn CostProvider) -> OverlapReport {
    combine_moe(
        vllm_moe_first_with(shape, cost),
        vllm_moe_second_with(shape, cost),
        shape,
        cost,
    )
}

// ---------------------------------------------------------------------------
// Attention: Torch (non-flash, non-overlap) and RingAttention
// ---------------------------------------------------------------------------

fn kv_allgather_seconds(shape: &AttnShape, seq_len: usize, cost: &dyn CostProvider) -> f64 {
    let total = 2.0 * shape.heads as f64 * seq_len as f64 * shape.head_dim as f64 * BYTES_PER_ELEM;
    ring_collective_seconds(cost, total)
}

/// Flash-attention compute time for one rank's query shard against the full
/// sequence, at `efficiency` of peak.
fn flash_seconds(
    shape: &AttnShape,
    seq_len: usize,
    cost: &dyn CostProvider,
    efficiency: f64,
) -> f64 {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let q_rows = seq_len / world;
    let flops = 4.0 * shape.heads as f64 * q_rows as f64 * seq_len as f64 * shape.head_dim as f64;
    flops / (cluster.gpu.peak_flops() * efficiency)
}

/// The "Torch" baseline of Figure 10: NCCL AllGather of the KV cache followed
/// by attention with materialised score matrices (two batched GEMMs plus a
/// softmax over the `S_q × S_kv` matrix).
pub fn torch_attention(shape: &AttnShape, seq_len: usize, cluster: &ClusterSpec) -> OverlapReport {
    torch_attention_with(shape, seq_len, &analytic(cluster))
}

/// [`torch_attention`] priced by an explicit cost provider.
pub fn torch_attention_with(
    shape: &AttnShape,
    seq_len: usize,
    cost: &dyn CostProvider,
) -> OverlapReport {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let comm = kv_allgather_seconds(shape, seq_len, cost);
    let q_rows = seq_len / world;
    // materialised scores: written and re-read around the softmax (4 passes)
    let score_bytes = 4.0 * shape.heads as f64 * q_rows as f64 * seq_len as f64 * BYTES_PER_ELEM;
    let softmax = cost.hbm_seconds(score_bytes);
    let gemms = flash_seconds(shape, seq_len, cost, 0.45);
    let comp = softmax + gemms + 3.0 * cluster.gpu.kernel_launch_s();
    OverlapReport::new(comm + comp, comm, comp)
}

/// RingAttention: blockwise flash attention scheduled around the ring; each of
/// the `world` steps waits for its KV block before computing, so the first
/// transfer is exposed and the blockwise rescaling costs efficiency.
pub fn ring_attention(shape: &AttnShape, seq_len: usize, cluster: &ClusterSpec) -> OverlapReport {
    ring_attention_with(shape, seq_len, &analytic(cluster))
}

/// [`ring_attention`] priced by an explicit cost provider.
pub fn ring_attention_with(
    shape: &AttnShape,
    seq_len: usize,
    cost: &dyn CostProvider,
) -> OverlapReport {
    let cluster = cost.cluster();
    let world = cluster.world_size();
    let comm = kv_allgather_seconds(shape, seq_len, cost);
    let comp = flash_seconds(shape, seq_len, cost, 0.35);
    let step_comm = comm / (world as f64 - 1.0).max(1.0);
    let step_comp = comp / world as f64;
    let per_step_sync = cluster.gpu.host_sync_s();
    let total = step_comm
        + world as f64 * (step_comm.max(step_comp) + per_step_sync)
        + cluster.gpu.kernel_launch_s();
    OverlapReport::new(total, comm, comp)
}

/// TileLink's overlapped attention expressed with the same analytic
/// ingredients (used by the Figure 10 harness alongside the compiled-kernel
/// simulation for cross-checking).
pub fn overlapped_attention_estimate(
    shape: &AttnShape,
    seq_len: usize,
    cluster: &ClusterSpec,
) -> OverlapReport {
    overlapped_attention_estimate_with(shape, seq_len, &analytic(cluster))
}

/// [`overlapped_attention_estimate`] priced by an explicit cost provider.
pub fn overlapped_attention_estimate_with(
    shape: &AttnShape,
    seq_len: usize,
    cost: &dyn CostProvider,
) -> OverlapReport {
    let cluster = cost.cluster();
    let comm = kv_allgather_seconds(shape, seq_len, cost);
    let comp = flash_seconds(shape, seq_len, cost, 0.7);
    let exposed = comm / cluster.world_size() as f64;
    OverlapReport::new(
        comp.max(comm) + exposed + cluster.gpu.kernel_launch_s(),
        comm,
        comp,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{attn_shapes, mlp_shapes, moe_shapes};
    use tilelink_sim::CalibratedCostModel;

    fn cluster() -> ClusterSpec {
        ClusterSpec::h800_node(8)
    }

    #[test]
    fn table2_non_overlap_magnitudes() {
        // Table 2 reports 0.676 ms and 0.541 ms for the two MLP-1 halves; the
        // simulated substrate should land in the same regime (hundreds of µs).
        let shape = &mlp_shapes()[0];
        let ag = non_overlap_ag_gemm(shape, &cluster());
        let rs = non_overlap_gemm_rs(shape, &cluster());
        assert!(ag.total_ms() > 0.1 && ag.total_ms() < 3.0, "{ag}");
        assert!(rs.total_ms() > 0.1 && rs.total_ms() < 3.0, "{rs}");
    }

    #[test]
    fn decomposition_is_slower_than_non_overlap() {
        // The paper's motivational example: Async-TP is slower than the
        // non-overlapping baseline for both halves.
        let shape = &mlp_shapes()[0];
        let c = cluster();
        assert!(decompose_ag_gemm(shape, &c).total_s > non_overlap_ag_gemm(shape, &c).total_s);
        assert!(decompose_gemm_rs(shape, &c).total_s > non_overlap_gemm_rs(shape, &c).total_s);
    }

    #[test]
    fn flux_wins_ag_gemm_but_not_gemm_rs() {
        let shape = &mlp_shapes()[0];
        let c = cluster();
        assert!(flux_ag_gemm(shape, &c).total_s < non_overlap_ag_gemm(shape, &c).total_s);
        // FLUX GEMM+RS is not better than the plain baseline (Figure 8, middle).
        assert!(flux_gemm_rs(shape, &c).total_s >= non_overlap_gemm_rs(shape, &c).total_s * 0.95);
    }

    #[test]
    fn vllm_fusion_crushes_unfused_moe_baselines() {
        // Figure 9: fusing gather/scatter into the Group GEMM gives vLLM a large
        // advantage over the unfused cuBLAS baseline, biggest for many experts.
        let c = cluster();
        for shape in moe_shapes() {
            let cublas = cublas_nccl_full_moe(&shape, &c);
            let vllm = vllm_full_moe(&shape, &c);
            let speedup = vllm.speedup_over(&cublas);
            let floor = if shape.experts >= 32 { 1.8 } else { 1.3 };
            assert!(
                speedup > floor,
                "{}: vLLM speedup only {speedup:.2} (expected > {floor})",
                shape.name
            );
        }
    }

    #[test]
    fn cutlass_sits_between_cublas_and_vllm() {
        let c = cluster();
        let shape = &moe_shapes()[2]; // 32 experts: many small per-expert GEMMs
        let cublas = cublas_nccl_full_moe(shape, &c).total_s;
        let cutlass = cutlass_nccl_full_moe(shape, &c).total_s;
        let vllm = vllm_full_moe(shape, &c).total_s;
        assert!(cutlass < cublas);
        assert!(vllm < cutlass);
    }

    #[test]
    fn torch_attention_is_much_slower_than_overlapped_flash() {
        let shape = &attn_shapes()[0];
        let c = cluster();
        for &s in &shape.seq_lens {
            let torch = torch_attention(shape, s, &c);
            let tl = overlapped_attention_estimate(shape, s, &c);
            let speedup = tl.speedup_over(&torch);
            assert!(speedup > 2.0, "seq {s}: speedup {speedup:.2}");
        }
    }

    #[test]
    fn ring_attention_beats_torch_but_loses_to_overlap() {
        let shape = &attn_shapes()[1];
        let c = cluster();
        let s = 65_536;
        let torch = torch_attention(shape, s, &c).total_s;
        let ring = ring_attention(shape, s, &c).total_s;
        let tl = overlapped_attention_estimate(shape, s, &c).total_s;
        assert!(ring < torch);
        assert!(tl < ring);
    }

    #[test]
    fn attention_times_grow_with_sequence_length() {
        let shape = &attn_shapes()[0];
        let c = cluster();
        let t16 = torch_attention(shape, 16_384, &c).total_s;
        let t128 = torch_attention(shape, 131_072, &c).total_s;
        assert!(t128 > 4.0 * t16);
    }

    #[test]
    fn analytic_wrappers_match_their_with_variants() {
        // The provider refactor must not change any analytic baseline number.
        let c = cluster();
        let cost = analytic(&c);
        let mlp = &mlp_shapes()[0];
        assert_eq!(
            non_overlap_full_mlp(mlp, &c),
            non_overlap_full_mlp_with(mlp, &cost)
        );
        assert_eq!(flux_full_mlp(mlp, &c), flux_full_mlp_with(mlp, &cost));
        assert_eq!(
            decompose_full_mlp(mlp, &c),
            decompose_full_mlp_with(mlp, &cost)
        );
        let moe = &moe_shapes()[0];
        assert_eq!(
            cublas_nccl_full_moe(moe, &c),
            cublas_nccl_full_moe_with(moe, &cost)
        );
        assert_eq!(vllm_full_moe(moe, &c), vllm_full_moe_with(moe, &cost));
        let attn = &attn_shapes()[0];
        assert_eq!(
            torch_attention(attn, 16_384, &c),
            torch_attention_with(attn, 16_384, &cost)
        );
        assert_eq!(
            ring_attention(attn, 16_384, &c),
            ring_attention_with(attn, 16_384, &cost)
        );
    }

    #[test]
    fn two_node_ring_baseline_pays_inter_node_pricing() {
        // At equal per-rank bytes, the 16-GPU two-node ring has 15 pipeline
        // steps draining at InfiniBand rate vs the 8-GPU single-node ring's 7
        // NVLink steps — strictly slower under both cost models.
        let one = cluster();
        let two = ClusterSpec::h800_multi_node(2);
        let per_rank = 8e6;
        for (label, cost_one, cost_two) in [
            (
                "analytic",
                Box::new(analytic(&one)) as Box<dyn CostProvider>,
                Box::new(analytic(&two)) as Box<dyn CostProvider>,
            ),
            (
                "calibrated",
                Box::new(CalibratedCostModel::h800_defaults(one.clone())),
                Box::new(CalibratedCostModel::h800_defaults(two.clone())),
            ),
        ] {
            let t8 = ring_collective_seconds(&*cost_one, per_rank * 8.0);
            let t16 = ring_collective_seconds(&*cost_two, per_rank * 16.0);
            // Strictly slower than the single-node ring even after accounting
            // for the extra hops alone: the bottleneck hop is IB.
            assert!(
                t16 > t8 * 15.0 / 7.0,
                "{label}: t8={t8} t16={t16} (two-node ring must pay IB)"
            );
        }
    }

    #[test]
    fn calibrated_provider_raises_baseline_communication_costs() {
        // The calibrated table never credits more than 95% of peak bandwidth,
        // so every baseline's comm phase is strictly slower than analytic.
        let c = cluster();
        let calibrated = CalibratedCostModel::h800_defaults(c.clone());
        let shape = &mlp_shapes()[0];
        let a = non_overlap_ag_gemm(shape, &c);
        let m = non_overlap_ag_gemm_with(shape, &calibrated);
        assert!(m.comm_only_s > a.comm_only_s);
        assert!(m.total_s > a.total_s);
    }
}
