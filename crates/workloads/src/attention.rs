//! Sequence-parallel self-attention: AllGather-KV overlapped with flash attention.
//!
//! The kernel follows Figure 6 of the paper: the KV cache is sharded across
//! ranks along the sequence dimension; host-side `rank_copy_data` calls stream
//! each remote shard into the local contiguous KV buffer on the copy engine
//! while the attention kernel consumes KV tiles with `consumer_tile_wait` as
//! soon as they arrive, folding them into a flash-attention accumulator (which
//! is order-invariant, so tiles may arrive in any rank order).

use tilelink::config::{CommMapping, OverlapConfig, TileShape};
use tilelink::exec::{run_comm_compute, simulate_report_with};
use tilelink::ir::{BlockDesc, BlockRole, ComputeKind, TileOp, TileProgram};
use tilelink::primitives::NotifyScope;
use tilelink::tile::{read_tile, TileRect};
use tilelink::{
    detail_hash, BlockChannel, CacheSite, Compiler, DeviceHandle, OverlapReport, StaticMapping,
    TileMapping,
};
use tilelink_compute::{FlashAccumulator, Tensor};
use tilelink_shmem::ProcessGroup;
use tilelink_sim::{analytic_cost, ClusterSpec, SharedCost};

use crate::mlp::BYTES_PER_ELEM;
use crate::AttnShape;

/// Recommended configuration: KV AllGather on the copy engine, per-rank KV
/// segments as communication tiles.
pub fn attention_config() -> OverlapConfig {
    OverlapConfig {
        comm_tile: TileShape::new(128, 128),
        compute_tile: TileShape::new(128, 128),
        comm_mapping: CommMapping::CopyEngine,
        ..OverlapConfig::default()
    }
}

/// Overlapped AllGather-KV + flash attention on real data, for one head.
///
/// * `q_shards[r]`: rank `r`'s `[S/world, D]` query shard;
/// * `k_shards[r]`, `v_shards[r]`: rank `r`'s KV shards.
///
/// Each rank returns the attention output for its own query shard against the
/// **full** gathered KV, which must equal the single-device reference.
///
/// # Panics
///
/// Panics if the shard lengths are inconsistent.
pub fn sp_attention_functional(
    world: usize,
    q_shards: &[Tensor],
    k_shards: &[Tensor],
    v_shards: &[Tensor],
    kv_tile_rows: usize,
) -> Vec<Tensor> {
    let s_per_rank = k_shards[0].shape()[0];
    let d = k_shards[0].shape()[1];
    let s = s_per_rank * world;
    assert_eq!(
        s_per_rank % kv_tile_rows,
        0,
        "KV tile must divide the shard length"
    );
    // one communication tile per kv_tile_rows rows of the gathered sequence
    let mapping = StaticMapping::new(s, kv_tile_rows, world, 1);

    ProcessGroup::launch(world, |ctx| {
        let rank = ctx.rank();
        // Symmetric buffers: local KV shards (sources) and the gathered KV.
        let k_src = ctx.alloc("attn/k_src", s_per_rank * d);
        let v_src = ctx.alloc("attn/v_src", s_per_rank * d);
        k_src.write_slice(0, k_shards[rank].data());
        v_src.write_slice(0, v_shards[rank].data());
        ctx.alloc("attn/k", s * d);
        ctx.alloc("attn/v", s * d);
        let bc = BlockChannel::derive(rank, world, &mapping, 1, 1);
        let dev = DeviceHandle::new(&ctx, "sp_attention", bc, 0);
        dev.barrier_all();

        let q = q_shards[rank].clone();
        let (_, mut outputs) = run_comm_compute(
            1,
            1,
            // host-style communication block: copy every rank's KV shard into the
            // local gathered buffers with the copy engine, own shard first.
            |_| {
                for step in 0..world {
                    let src_rank = (rank + step) % world;
                    let dst_off = src_rank * s_per_rank * d;
                    dev.rank_copy_data(
                        src_rank,
                        "attn/k_src",
                        0,
                        rank,
                        "attn/k",
                        dst_off,
                        s_per_rank * d,
                    );
                    dev.rank_copy_data(
                        src_rank,
                        "attn/v_src",
                        0,
                        rank,
                        "attn/v",
                        dst_off,
                        s_per_rank * d,
                    );
                    // host notify: every KV tile of this segment is now ready
                    dev.rank_segment_ready(&mapping, src_rank);
                }
            },
            // flash-attention block: consume KV tiles as they become ready
            |_| {
                let mut acc = FlashAccumulator::new(&q);
                let k_buf = dev.buffer_on(rank, "attn/k");
                let v_buf = dev.buffer_on(rank, "attn/v");
                // iterate tiles in arrival order (own segment first, then ring order)
                for step in 0..world {
                    let src_rank = (rank + step) % world;
                    for tile in mapping.tiles_of_rank(src_rank) {
                        dev.consumer_tile_wait(&mapping, tile);
                        let rows = mapping.rows_of(tile).expect("tile in range");
                        let k_tile = Tensor::from_vec(
                            read_tile(&k_buf, d, &TileRect::full_rows(rows.clone(), d)),
                            &[rows.len(), d],
                        );
                        let v_tile = Tensor::from_vec(
                            read_tile(&v_buf, d, &TileRect::full_rows(rows.clone(), d)),
                            &[rows.len(), d],
                        );
                        acc.update(&k_tile, &v_tile);
                    }
                }
                acc.finalize()
            },
        );
        outputs.remove(0)
    })
}

// ---------------------------------------------------------------------------
// Timed kernel
// ---------------------------------------------------------------------------

/// Builds the AG-KV + flash attention tile program for one head-count /
/// sequence-length point.
pub fn sp_attention_program(
    heads: usize,
    head_dim: usize,
    seq_len: usize,
    world: usize,
    _cfg: &OverlapConfig,
) -> (TileProgram, StaticMapping) {
    let _span = tilelink_probe::span("compile.build");
    let s_per_rank = seq_len / world;
    // Communication tiles cover one rank's KV shard per host copy.
    let mapping = StaticMapping::new(seq_len, s_per_rank, world, 1);
    // 2 (K and V) tensors per head
    let shard_bytes = 2.0 * heads as f64 * s_per_rank as f64 * head_dim as f64 * BYTES_PER_ELEM;
    let mut program = TileProgram::new("sp_attention", world);
    for rank in 0..world {
        // Host communication block: one copy per remote rank.
        let mut comm = BlockDesc::new(format!("agkv/r{rank}"), rank, BlockRole::Producer);
        for step in 0..world {
            let src_rank = (rank + step) % world;
            let tile = mapping.tiles_of_rank(src_rank)[0];
            if src_rank != rank {
                comm = comm.op(TileOp::HostCopy {
                    bytes: shard_bytes,
                    src_rank,
                });
            } else {
                comm = comm.op(TileOp::StoreTile {
                    buffer: "kv".into(),
                    bytes: shard_bytes,
                    tile: Some(tile),
                });
            }
            comm = comm.op(TileOp::ProducerNotify {
                tile,
                scope: NotifyScope::Local,
            });
        }
        program.add_block(comm);
        // Flash attention consumer blocks: split query rows across blocks.
        let q_blocks = 16usize;
        let q_rows = (s_per_rank / q_blocks).max(1);
        for b in 0..q_blocks {
            let mut block = BlockDesc::new(format!("fa/r{rank}/b{b}"), rank, BlockRole::Consumer);
            for step in 0..world {
                let src_rank = (rank + step) % world;
                let tile = mapping.tiles_of_rank(src_rank)[0];
                block = block
                    .op(TileOp::ConsumerWait { tile })
                    .op(TileOp::LoadTile {
                        buffer: "kv".into(),
                        bytes: shard_bytes / q_blocks as f64,
                        tile: Some(tile),
                    })
                    .op(TileOp::Compute(ComputeKind::FlashAttnTile {
                        q_rows: q_rows * heads,
                        kv_rows: s_per_rank,
                        head_dim,
                    }));
            }
            block = block.op(TileOp::StoreTile {
                buffer: "out".into(),
                bytes: q_rows as f64 * heads as f64 * head_dim as f64 * BYTES_PER_ELEM,
                tile: None,
            });
            program.add_block(block);
        }
    }
    (program, mapping)
}

/// Simulates the TileLink sequence-parallel attention kernel with the default
/// analytic cost model.
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_sp_attention(
    shape: &AttnShape,
    seq_len: usize,
    cluster: &ClusterSpec,
    cfg: &OverlapConfig,
) -> tilelink::Result<OverlapReport> {
    timed_sp_attention_with(shape, seq_len, cfg, &analytic_cost(cluster))
}

/// Simulates the TileLink sequence-parallel attention kernel priced by an
/// explicit cost provider (the cluster is the provider's).
///
/// # Errors
///
/// Returns an error if compilation or simulation fails.
pub fn timed_sp_attention_with(
    shape: &AttnShape,
    seq_len: usize,
    cfg: &OverlapConfig,
    cost: &SharedCost,
) -> tilelink::Result<OverlapReport> {
    let world = cost.cluster().world_size();
    let kernel = Compiler::new(*cfg, cost.cluster().gpu.clone())
        .with_cost(cost.clone())
        .compile_cached(
            CacheSite::new(
                "attn.sp_attention",
                detail_hash([
                    shape.heads as u64,
                    shape.head_dim as u64,
                    seq_len as u64,
                    world as u64,
                ]),
            ),
            || {
                Ok(sp_attention_program(
                    shape.heads,
                    shape.head_dim,
                    seq_len,
                    world,
                    cfg,
                ))
            },
        )?;
    simulate_report_with(&kernel, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilelink_compute::attention::attention_reference;

    #[test]
    fn functional_sp_attention_matches_reference() {
        let world = 4;
        let (s_per_rank, d) = (8, 4);
        let s = s_per_rank * world;
        let q_shards: Vec<Tensor> = (0..world)
            .map(|r| Tensor::random(&[s_per_rank, d], r as u64))
            .collect();
        let k_shards: Vec<Tensor> = (0..world)
            .map(|r| Tensor::random(&[s_per_rank, d], 10 + r as u64))
            .collect();
        let v_shards: Vec<Tensor> = (0..world)
            .map(|r| Tensor::random(&[s_per_rank, d], 20 + r as u64))
            .collect();
        let k_full = Tensor::concat_rows(&k_shards);
        let v_full = Tensor::concat_rows(&v_shards);
        assert_eq!(k_full.shape(), &[s, d]);

        let outputs = sp_attention_functional(world, &q_shards, &k_shards, &v_shards, 4);
        for (rank, out) in outputs.iter().enumerate() {
            let expected = attention_reference(&q_shards[rank], &k_full, &v_full);
            assert!(
                out.allclose(&expected, 1e-3),
                "rank {rank} diff {}",
                out.max_abs_diff(&expected)
            );
        }
    }

    #[test]
    fn functional_sp_attention_with_coarse_tiles() {
        // KV tile equal to a full shard (one tile per rank).
        let world = 2;
        let (s_per_rank, d) = (6, 3);
        let q: Vec<Tensor> = (0..world)
            .map(|r| Tensor::random(&[s_per_rank, d], 30 + r as u64))
            .collect();
        let k: Vec<Tensor> = (0..world)
            .map(|r| Tensor::random(&[s_per_rank, d], 40 + r as u64))
            .collect();
        let v: Vec<Tensor> = (0..world)
            .map(|r| Tensor::random(&[s_per_rank, d], 50 + r as u64))
            .collect();
        let outputs = sp_attention_functional(world, &q, &k, &v, 6);
        let expected =
            attention_reference(&q[1], &Tensor::concat_rows(&k), &Tensor::concat_rows(&v));
        assert!(outputs[1].allclose(&expected, 1e-3));
    }

    #[test]
    fn timed_attention_overlaps_and_scales_with_sequence() {
        let shape = crate::shapes::attn_shapes()[0].clone();
        let cluster = ClusterSpec::h800_node(8);
        let short = timed_sp_attention(&shape, 16_384, &cluster, &attention_config()).unwrap();
        let long = timed_sp_attention(&shape, 65_536, &cluster, &attention_config()).unwrap();
        assert!(short.total_s < long.total_s);
        assert!(short.total_s < short.comm_only_s + short.comp_only_s);
        assert!(long.overlap_ratio() > 0.2, "{long}");
    }
}
